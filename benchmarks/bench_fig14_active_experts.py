"""Figure 14 — MoE block latency vs the number of activated experts.

Paper result (Switch-Base 64, normalised to GPU-only): every CPU-offloading
design degrades as more experts are activated (the model behaves more like a
dense LLM), and the gap between MoE-Prefetch and Pre-gated MoE shrinks as
activation approaches 100% because prefetching "everything" stops being
wasteful.
"""

import pytest

from conftest import ENGINE_CONFIG, emit
from repro.analysis import FigureReport
from repro.moe import get_config
from repro.serving import DESIGN_LABELS, make_engine

CONFIG = get_config("switch_base_64")
DESIGNS = ("gpu_only", "pregated", "ondemand", "prefetch_all")
ACTIVE_EXPERTS = (1, 4, 16, 32, 64)


def run_active_expert_sweep():
    num_blocks = CONFIG.num_moe_blocks("decoder")
    table = {}
    for k in ACTIVE_EXPERTS:
        activations = [list(range(k)) for _ in range(num_blocks)]
        latencies = {}
        for design in DESIGNS:
            engine = make_engine(design, CONFIG, engine_config=ENGINE_CONFIG)
            result = engine.run_decoder_iteration(activations)
            latencies[design] = result.mean_block_latency
        table[k] = latencies
    return table


@pytest.mark.benchmark(group="fig14")
def test_fig14_block_latency_vs_active_experts(benchmark, results_dir):
    table = benchmark.pedantic(run_active_expert_sweep, rounds=1, iterations=1)
    report = FigureReport(
        figure="Figure 14",
        description="MoE block latency vs number of activated experts (Switch-Base 64)",
        headers=["active experts", "activation %", "design", "latency (ms)",
                 "normalised to GPU-only"],
        paper_reference="All offloading designs degrade with more active experts; "
                        "the Prefetch vs Pre-gated gap closes towards 100% activation.",
    )
    for k, latencies in table.items():
        for design in DESIGNS:
            report.add_row(k, round(100 * k / CONFIG.num_experts, 1), DESIGN_LABELS[design],
                           round(latencies[design] * 1e3, 3),
                           round(latencies[design] / latencies["gpu_only"], 2))
    emit(report, results_dir, "fig14_active_experts.csv")

    # Offloading designs lose more ground as activation grows.
    ratio_1 = table[1]["pregated"] / table[1]["gpu_only"]
    ratio_64 = table[64]["pregated"] / table[64]["gpu_only"]
    assert ratio_64 > ratio_1
    # The Prefetch/Pre-gated gap shrinks as the activation fraction rises.
    gap_1 = table[1]["prefetch_all"] / table[1]["pregated"]
    gap_64 = table[64]["prefetch_all"] / table[64]["pregated"]
    assert gap_64 < gap_1
    assert gap_64 < 3.0
