"""Section VI-A headline claims, aggregated across the Switch-Base configurations.

Paper claims checked here:
* Pre-gated MoE reduces MoE block latency by ~1.7x on average vs MoE-OnDemand
  and by ~42x on average vs MoE-Prefetch.
* Pre-gated MoE incurs only ~19-23% block-latency overhead vs GPU-only.
* Pre-gated MoE reaches ~81% of GPU-only's end-to-end throughput.
* Pre-gated MoE reduces peak GPU memory consumption by ~4.2x vs GPU-only and
  stays within a whisker of the memory-optimal MoE-OnDemand.
"""

from statistics import mean

import pytest

from conftest import ENGINE_CONFIG, PERF_WORKLOAD, emit
from repro.analysis import FigureReport
from repro.moe import get_config
from repro.serving import compare_designs
from repro.workloads import generate_traces

BASE_CONFIGS = ("switch_base_8", "switch_base_64", "switch_base_128")
DESIGNS = ("gpu_only", "pregated", "ondemand", "prefetch_all")


def run_headline_study():
    per_config = {}
    for name in BASE_CONFIGS:
        config = get_config(name)
        traces = generate_traces(config, PERF_WORKLOAD)
        results = compare_designs(config, traces, designs=DESIGNS, engine_config=ENGINE_CONFIG)
        per_config[name] = results
    summary = {
        "block_vs_ondemand": mean(
            r["ondemand"].mean_block_latency / r["pregated"].mean_block_latency
            for r in per_config.values()),
        "block_vs_prefetch": mean(
            r["prefetch_all"].mean_block_latency / r["pregated"].mean_block_latency
            for r in per_config.values()),
        "block_overhead_vs_gpu": mean(
            r["pregated"].mean_block_latency / r["gpu_only"].mean_block_latency
            for r in per_config.values()),
        "throughput_fraction_of_gpu": mean(
            r["pregated"].aggregate_tokens_per_second / r["gpu_only"].aggregate_tokens_per_second
            for r in per_config.values()),
        "memory_reduction_vs_gpu": mean(
            r["gpu_only"].peak_gpu_bytes / r["pregated"].peak_gpu_bytes
            for r in per_config.values()),
        "memory_overhead_vs_ondemand": mean(
            r["pregated"].peak_gpu_bytes / r["ondemand"].peak_gpu_bytes
            for r in per_config.values()),
    }
    return summary


@pytest.mark.benchmark(group="headline")
def test_headline_claims(benchmark, results_dir):
    summary = benchmark.pedantic(run_headline_study, rounds=1, iterations=1)
    report = FigureReport(
        figure="Section VI-A/VI-B headline claims",
        description="Averages over Switch-Base 8/64/128",
        headers=["claim", "paper", "measured"],
        paper_reference="Section VI-A and VI-B of the paper.",
    )
    report.add_row("block latency: Pre-gated speedup vs OnDemand", "~1.7x",
                   f"{summary['block_vs_ondemand']:.2f}x")
    report.add_row("block latency: Pre-gated speedup vs Prefetch", "~42x",
                   f"{summary['block_vs_prefetch']:.1f}x")
    report.add_row("block latency overhead vs GPU-only", "~1.19x",
                   f"{summary['block_overhead_vs_gpu']:.2f}x")
    report.add_row("throughput fraction of GPU-only", "~81%",
                   f"{100 * summary['throughput_fraction_of_gpu']:.0f}%")
    report.add_row("peak memory reduction vs GPU-only", "~4.2x",
                   f"{summary['memory_reduction_vs_gpu']:.1f}x")
    report.add_row("peak memory overhead vs OnDemand", "~1.002x",
                   f"{summary['memory_overhead_vs_ondemand']:.3f}x")
    emit(report, results_dir, "headline_claims.csv")

    assert summary["block_vs_ondemand"] > 1.3
    assert summary["block_vs_prefetch"] > 15
    assert summary["block_overhead_vs_gpu"] < 1.6
    assert summary["throughput_fraction_of_gpu"] > 0.5
    assert summary["memory_reduction_vs_gpu"] > 2.0
    assert summary["memory_overhead_vs_ondemand"] < 1.3
