"""Table I — model configurations of Google's SwitchTransformer.

Paper values: Switch-Base 8/64/128 experts at 0.7B/3.8B/7.5B parameters
(2.8/15.2/30.0 GB) and Switch-Large 128 at 26.4B parameters (105.6 GB).
"""

import pytest

from conftest import emit
from repro.analysis import FigureReport
from repro.moe import get_config

PAPER_TABLE1 = {
    "switch_base_8": (8, 12, 0.7, 2.8),
    "switch_base_64": (64, 12, 3.8, 15.2),
    "switch_base_128": (128, 12, 7.5, 30.0),
    "switch_large_128": (128, 24, 26.4, 105.6),
}


def compute_table1():
    rows = []
    for name, (experts, layers, params_b, capacity_gb) in PAPER_TABLE1.items():
        config = get_config(name)
        rows.append([
            config.label, config.num_experts, config.num_moe_blocks("all"),
            round(config.total_params() / 1e9, 2), round(config.total_bytes() / 1e9, 1),
            params_b, capacity_gb,
        ])
    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_model_configurations(benchmark, results_dir):
    rows = benchmark(compute_table1)
    report = FigureReport(
        figure="Table I",
        description="SwitchTransformer configurations: measured vs paper",
        headers=["model", "experts", "MoE layers", "params (B)", "capacity (GB)",
                 "paper params (B)", "paper capacity (GB)"],
        rows=rows,
        paper_reference="Hwang et al., Table I",
    )
    emit(report, results_dir, "table1_configs.csv")

    for row in rows:
        measured_params, measured_gb, paper_params, paper_gb = row[3], row[4], row[5], row[6]
        assert measured_params == pytest.approx(paper_params, rel=0.15)
        assert measured_gb == pytest.approx(paper_gb, rel=0.15)
