"""Figure 16 — end-to-end throughput with SSD offloading (Switch-Large, Switch-XXL).

Paper result (normalised to Pre-gated MoE; GPU-only OOMs): with expert
parameters on SSD the migration latency dominates every design, shrinking
Pre-gated MoE's advantage, but it still delivers the highest throughput;
MoE-Prefetch collapses to ~1% of Pre-gated MoE.
"""

import pytest

from conftest import ENGINE_CONFIG, emit
from repro.analysis import FigureReport
from repro.moe import get_config
from repro.serving import DESIGN_LABELS, compare_designs
from repro.system import PAPER_SYSTEM, SSD_SYSTEM
from repro.workloads import TraceGenerator, WorkloadSpec

CONFIGS = ("switch_large_128", "switch_xxl")
DESIGNS = ("pregated", "ondemand", "prefetch_all")
WORKLOAD = WorkloadSpec(name="fig16_ssd", num_requests=1, input_length=8,
                        output_length=8, seed=0)


def run_ssd_study():
    table = {}
    for name in CONFIGS:
        config = get_config(name)
        traces = TraceGenerator(config, seed=WORKLOAD.seed).workload(
            WORKLOAD.num_requests, WORKLOAD.input_length, WORKLOAD.output_length)
        ssd = compare_designs(config, traces, designs=DESIGNS, system=SSD_SYSTEM,
                              engine_config=ENGINE_CONFIG)
        dram = compare_designs(config, traces, designs=("pregated", "ondemand"),
                               system=PAPER_SYSTEM, engine_config=ENGINE_CONFIG)
        table[name] = {
            "ssd": {d: r.aggregate_tokens_per_second for d, r in ssd.items()},
            "dram": {d: r.aggregate_tokens_per_second for d, r in dram.items()},
        }
    return table


@pytest.mark.benchmark(group="fig16")
def test_fig16_ssd_offloading(benchmark, results_dir):
    table = benchmark.pedantic(run_ssd_study, rounds=1, iterations=1)
    report = FigureReport(
        figure="Figure 16",
        description="Throughput with SSD offloading (normalised to Pre-gated MoE)",
        headers=["config", "design", "tokens/s", "normalised"],
        paper_reference="Pre-gated remains fastest but its edge over OnDemand shrinks "
                        "vs DRAM offloading; Prefetch drops to ~0.01x.",
    )
    for name, entry in table.items():
        reference = entry["ssd"]["pregated"]
        for design in DESIGNS:
            report.add_row(name, DESIGN_LABELS[design], round(entry["ssd"][design], 3),
                           round(entry["ssd"][design] / reference, 3))
    emit(report, results_dir, "fig16_ssd.csv")

    for name, entry in table.items():
        ssd = entry["ssd"]
        assert ssd["pregated"] >= ssd["ondemand"]
        assert ssd["prefetch_all"] < 0.2 * ssd["pregated"]
    # The Pre-gated vs OnDemand gap shrinks when moving from DRAM to SSD offload.
    large = table["switch_large_128"]
    dram_gap = large["dram"]["pregated"] / large["dram"]["ondemand"]
    ssd_gap = large["ssd"]["pregated"] / large["ssd"]["ondemand"]
    assert ssd_gap <= dram_gap + 0.05
