"""Figure 16 under load — SSD offloading with a DRAM staging cache.

The paper's Figure 16 serves one request at a time with expert parameters on
SSD (see ``bench_fig16_ssd.py``): migration latency dominates every design
and the Pre-gated-vs-OnDemand gap shrinks.  This benchmark re-runs the study
the way a serving fleet would see it — a stream of skewed (hot-expert)
requests through the continuous-batching scheduler on ``SSD_SYSTEM`` —
sweeping design × DRAM-stage capacity × offered load.

Reproduction targets:

* the paper's Figure 16 ordering survives under load at every stage
  capacity: pregated ≥ ondemand, and both far above prefetch_all (which
  pays the SSD for every expert of every block);
* a warm DRAM stage strictly reduces SSD bytes read and reports a positive
  stage hit rate for both Pre-gated MoE and MoE-OnDemand;
* a zero-capacity stage is timing-identical to running without one (the
  tier-path parity contract).
"""

import pytest

from conftest import ENGINE_CONFIG, emit
from repro.analysis import FigureReport
from repro.moe import get_config
from repro.serving import DESIGN_LABELS, serve_load
from repro.system import SSD_SYSTEM
from repro.workloads import WorkloadSpec
from sweeps import open_loop, run_grid

CONFIG = get_config("switch_base_64")
DESIGNS = ("pregated", "ondemand", "prefetch_all")
STAGE_CAPACITIES = (0, 128, 512)     # experts retained in host DRAM
LOADS = (0.5, 2.0)                   # requests/second (SSD serving is slow)

#: Hot-expert open-loop traffic: repeat activations give the stage its hits.
WORKLOAD = WorkloadSpec(name="fig16_load_hot_experts", num_requests=5,
                        input_length=8, output_length=6, routing_skew=1.5, seed=0)


def _serve(design, rate, stage_capacity=None):
    stage_policy = "lru" if stage_capacity is not None else None
    return serve_load(design, CONFIG, open_loop(rate), workload=WORKLOAD,
                      system=SSD_SYSTEM, engine_config=ENGINE_CONFIG,
                      max_batch_size=4, stage_policy=stage_policy,
                      stage_capacity=stage_capacity)


def run_ssd_load_study():
    baseline = run_grid(_serve, design=DESIGNS, rate=LOADS)
    staged = run_grid(_serve, design=DESIGNS, stage_capacity=STAGE_CAPACITIES,
                      rate=LOADS)
    results = {(design, None, rate): result
               for (design, rate), result in baseline.items()}
    results.update(staged)
    return results


@pytest.mark.benchmark(group="fig16_load")
def test_fig16_ssd_under_load(benchmark, results_dir):
    results = benchmark.pedantic(run_ssd_load_study, rounds=1, iterations=1)
    report = FigureReport(
        figure="Figure 16 (under load)",
        description="SSD offloading with a DRAM staging cache, "
                    "Switch-Base 64, skewed routing",
        headers=["design", "stage capacity", "load rps", "tokens/s",
                 "p99 ttft ms", "SSD GB read", "stage hit rate"],
        paper_reference="With experts on SSD, migration latency dominates all "
                        "designs; Pre-gated MoE stays fastest and the gap to "
                        "OnDemand narrows (Fig. 16).",
        notes="Stage capacity in experts retained in host DRAM; capacity 0 "
              "keeps the staging machinery but retains nothing (parity with "
              "the unstaged multi-hop path).")
    for (design, capacity, rate), result in results.items():
        stats = result.tier_stats
        hit_rate = result.stage_hit_rate
        report.add_row(
            DESIGN_LABELS[design],
            "w/o stage" if capacity is None else capacity, rate,
            round(result.sustained_tokens_per_second, 2),
            round(result.ttft_stats.p99 * 1e3, 2),
            round(stats.ssd_bytes_read / 1e9, 3),
            round(hit_rate, 3) if hit_rate is not None else "-")
    emit(report, results_dir, "fig16_ssd_load.csv")

    warm = max(STAGE_CAPACITIES)
    for rate in LOADS:
        for capacity in (None,) + STAGE_CAPACITIES:
            # Figure 16's ordering survives under load at every capacity:
            # pregated >= ondemand >> prefetch_all.
            pregated = results[("pregated", capacity, rate)]
            ondemand = results[("ondemand", capacity, rate)]
            prefetch = results[("prefetch_all", capacity, rate)]
            assert (pregated.sustained_tokens_per_second
                    >= ondemand.sustained_tokens_per_second)
            assert (prefetch.sustained_tokens_per_second
                    < 0.5 * ondemand.sustained_tokens_per_second)
        for design in ("pregated", "ondemand"):
            base = results[(design, None, rate)]
            staged = results[(design, warm, rate)]
            # A warm stage strictly cuts SSD reads and reports hits.
            assert staged.ssd_bytes_read < base.ssd_bytes_read
            assert staged.stage_hit_rate > 0.0
            assert staged.tier_stats.ssd_bytes_saved > 0
            # Bigger stages never read more off the SSD (LRU retention).
            small = results[(design, min(s for s in STAGE_CAPACITIES if s > 0), rate)]
            assert staged.ssd_bytes_read <= small.ssd_bytes_read


@pytest.mark.benchmark(group="fig16_load")
def test_fig16_zero_capacity_stage_parity(benchmark):
    def run():
        base = _serve("pregated", 1.0)
        zero = _serve("pregated", 1.0, stage_capacity=0)
        return base, zero

    base, zero = benchmark.pedantic(run, rounds=1, iterations=1)
    assert zero.makespan == pytest.approx(base.makespan, abs=1e-9)
    assert zero.expert_bytes_transferred == base.expert_bytes_transferred
    assert zero.ssd_bytes_read == base.ssd_bytes_read
    assert zero.peak_gpu_bytes == base.peak_gpu_bytes
