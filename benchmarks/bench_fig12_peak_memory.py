"""Figure 12 — peak GPU memory consumption, normalised to GPU-only.

Paper result: Pre-gated MoE consumes ~23% of GPU-only's peak GPU memory on
average (a ~4.2x reduction), within ~0.2% of the memory-optimal
MoE-OnDemand, while MoE-Prefetch needs ~51% of GPU-only; the savings grow
with the number of experts (Switch-Base 256 included).
"""

import pytest

from conftest import ENGINE_CONFIG, PERF_WORKLOAD, emit
from repro.analysis import FigureReport, pick_reference
from repro.core import peak_memory_comparison
from repro.moe import get_config
from repro.serving import DESIGN_LABELS, compare_designs
from repro.workloads import generate_traces

CONFIGS = ("switch_base_8", "switch_base_64", "switch_base_128", "switch_base_256",
           "switch_large_128")
DESIGNS = ("gpu_only", "pregated", "ondemand", "prefetch_all")


def run_peak_memory_study():
    table = {}
    for name in CONFIGS:
        config = get_config(name)
        traces = generate_traces(config, PERF_WORKLOAD.with_overrides(num_requests=1,
                                                                      output_length=8))
        results = compare_designs(config, traces, designs=DESIGNS, engine_config=ENGINE_CONFIG)
        peaks = {d: r.peak_gpu_bytes for d, r in results.items() if not r.oom}
        oom = [d for d, r in results.items() if r.oom]
        # The GPU-only peak for an OOM config is still well-defined analytically
        # (it simply exceeds the GPU); use the analytic Equation-1 comparison there.
        analytic = peak_memory_comparison(config)
        reference = pick_reference(["gpu_only", "prefetch_all"], oom)
        table[name] = {"peaks": peaks, "oom": oom, "analytic": analytic,
                       "reference": reference}
    return table


@pytest.mark.benchmark(group="fig12")
def test_fig12_peak_gpu_memory(benchmark, results_dir):
    table = benchmark.pedantic(run_peak_memory_study, rounds=1, iterations=1)
    report = FigureReport(
        figure="Figure 12",
        description="Peak GPU memory usage (GB, engine-measured; normalised)",
        headers=["config", "design", "peak GB", "normalised", "note"],
        paper_reference="Pre-gated ~23% of GPU-only on average (4.2x less), "
                        "+0.2% vs OnDemand; Prefetch ~51%; gap widens with experts.",
        notes="Normalised to MoE-Prefetch when GPU-only is OOM (as in the paper).",
    )
    for name, entry in table.items():
        reference_value = entry["peaks"][entry["reference"]]
        for design in DESIGNS:
            if design in entry["oom"]:
                report.add_row(name, DESIGN_LABELS[design], "-", "-", "OOM")
            else:
                peak = entry["peaks"][design]
                report.add_row(name, DESIGN_LABELS[design], round(peak / 1e9, 2),
                               round(peak / reference_value, 3), f"vs {entry['reference']}")
    emit(report, results_dir, "peak_mems.csv")

    # Shape assertions.
    ratios = []
    for name in ("switch_base_8", "switch_base_64", "switch_base_128", "switch_base_256"):
        peaks = table[name]["peaks"]
        assert peaks["ondemand"] <= peaks["pregated"] <= peaks["prefetch_all"] <= peaks["gpu_only"]
        ratios.append(peaks["pregated"] / peaks["gpu_only"])
    # Savings grow with the number of experts and reach several-fold.
    assert ratios == sorted(ratios, reverse=True)
    assert ratios[2] < 0.5
    assert "gpu_only" in table["switch_large_128"]["oom"]
