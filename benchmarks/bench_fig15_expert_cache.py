"""Figure 15 under load — shared expert caching in the continuous-batching path.

The paper's Figure 15 evaluates LIFO/LFU/LRU expert caching one request at a
time (see ``bench_fig15_caching.py``).  This benchmark re-runs the study the
way a serving fleet would see it: a stream of skewed (hot-expert) requests
through the :class:`~repro.serving.scheduler.ContinuousBatchingScheduler`,
whose shared refcounted residency map caches experts *across* concurrent
requests, sweeping replacement policy × cache capacity × offered load.

Reproduction targets (both Pre-gated MoE and MoE-OnDemand):

* a warm cache strictly reduces total CPU→GPU transfer volume and reports a
  positive hit rate at every swept load;
* a zero-capacity cache is byte-identical to running without one (the
  parity contract of the residency subsystem).
"""

import pytest

from conftest import ENGINE_CONFIG, emit
from repro.analysis import FigureReport
from repro.moe import get_config
from repro.serving import DESIGN_LABELS, serve_load
from repro.system import cache_capacity_from_fraction
from repro.workloads import WorkloadSpec
from sweeps import open_loop, run_grid

CONFIG = get_config("switch_base_64")
POLICIES = ("lifo", "lfu", "lru")
FRACTIONS = (0.05, 0.20)
LOADS = (4.0, 16.0)
DESIGNS = ("pregated", "ondemand")

#: Hot-expert open-loop traffic (skewed routing, as observed by Huang et al.).
WORKLOAD = WorkloadSpec(name="fig15_load_hot_experts", num_requests=6,
                        input_length=8, output_length=8, routing_skew=1.5, seed=0)


def _serve(design, rate, policy=None, fraction=None):
    capacity = None
    if fraction is not None:
        capacity = cache_capacity_from_fraction(
            CONFIG.num_moe_blocks("all"), CONFIG.num_experts, fraction)
    return serve_load(design, CONFIG, open_loop(rate), workload=WORKLOAD,
                      engine_config=ENGINE_CONFIG, max_batch_size=4,
                      cache_policy=policy, cache_capacity=capacity)


def run_cache_load_study():
    baseline = run_grid(_serve, design=DESIGNS, rate=LOADS)
    cached = run_grid(_serve, design=DESIGNS, policy=POLICIES,
                      fraction=FRACTIONS, rate=LOADS)
    results = {(design, "w/o cache", 0.0, rate): result
               for (design, rate), result in baseline.items()}
    results.update(cached)
    return results


@pytest.mark.benchmark(group="fig15_load")
def test_fig15_expert_cache_under_load(benchmark, results_dir):
    results = benchmark.pedantic(run_cache_load_study, rounds=1, iterations=1)
    report = FigureReport(
        figure="Figure 15 (under load)",
        description="Expert caching in the continuous-batching scheduler, "
                    "Switch-Base 64, skewed routing",
        headers=["design", "policy", "cache %", "load rps", "tokens/s",
                 "p99 ttft ms", "hit rate", "GB transferred", "GB saved",
                 "evictions"],
        paper_reference="Caching compounds the pre-gated prefetch wins; the "
                        "relative benefit is larger for MoE-OnDemand.",
        notes="Cache capacity as a fraction of all experts; shared residency "
              "map refcounts in-flight experts across concurrent requests.")
    for (design, policy, fraction, rate), result in results.items():
        stats = result.cache_stats
        report.add_row(
            DESIGN_LABELS[design], policy, int(fraction * 100), rate,
            round(result.sustained_tokens_per_second, 2),
            round(result.ttft_stats.p99 * 1e3, 2),
            round(stats.hit_rate, 3) if stats else "-",
            round(result.expert_bytes_transferred / 1e9, 3),
            round(stats.bytes_saved / 1e9, 3) if stats else "-",
            stats.evictions if stats else "-")
    emit(report, results_dir, "fig15_expert_cache_load.csv")

    for design in DESIGNS:
        for rate in LOADS:
            uncached = results[(design, "w/o cache", 0.0, rate)]
            for policy in POLICIES:
                warm = results[(design, policy, max(FRACTIONS), rate)]
                # Transferred bytes strictly decrease and hits appear.
                # (Exact transferred+saved conservation only holds when round
                # composition matches the uncached run — caching shifts
                # completion times and therefore round membership, so it is
                # asserted in the fixed-arrival unit tests instead.)
                assert (warm.expert_bytes_transferred
                        < uncached.expert_bytes_transferred)
                assert warm.cache_stats.hit_rate > 0.0
                assert warm.cache_stats.bytes_saved > 0
            # Bigger caches never transfer more than smaller ones (LRU).
            small = results[(design, "lru", min(FRACTIONS), rate)]
            large = results[(design, "lru", max(FRACTIONS), rate)]
            assert large.expert_bytes_transferred <= small.expert_bytes_transferred


@pytest.mark.benchmark(group="fig15_load")
def test_fig15_zero_capacity_parity(benchmark):
    def run():
        base = _serve("pregated", 8.0)
        zero = serve_load("pregated", CONFIG, open_loop(8.0),
                          workload=WORKLOAD, engine_config=ENGINE_CONFIG,
                          max_batch_size=4, cache_policy="lru", cache_capacity=0)
        return base, zero

    base, zero = benchmark.pedantic(run, rounds=1, iterations=1)
    assert zero.makespan == pytest.approx(base.makespan, abs=1e-9)
    assert zero.expert_bytes_transferred == base.expert_bytes_transferred
    assert zero.peak_gpu_bytes == base.peak_gpu_bytes
