"""Shared fixtures and reporting helpers for the figure/table benchmarks.

Every benchmark regenerates one of the paper's tables or figures.  Results
are printed as paper-style tables (run ``pytest benchmarks/ --benchmark-only
-s`` to see them) and also written as CSV files under ``benchmarks/results/``
— the same three outputs the paper's artifact produces (block latencies,
throughputs, peak memories) plus one file per additional figure.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import FigureReport
from repro.serving import EngineConfig
from repro.workloads import WorkloadSpec

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Workload used by the performance figures (10, 11, 12, 16): single-batch
#: QA-style serving, scaled down in request count so the full benchmark
#: suite completes in minutes.
PERF_WORKLOAD = WorkloadSpec(
    name="bench_squad_single_batch",
    num_requests=2,
    input_length=16,
    output_length=16,
    batch_size=1,
    seed=0,
    description="Single-batch QA-style serving workload used by the benches.",
)

#: Engine configuration shared by all serving benchmarks.
ENGINE_CONFIG = EngineConfig(activation_level=1)


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def perf_workload() -> WorkloadSpec:
    return PERF_WORKLOAD


def emit(report: FigureReport, results_dir: str, filename: str) -> None:
    """Print a figure report and persist it as CSV."""
    print()
    print(report.render())
    os.makedirs(results_dir, exist_ok=True)
    with open(os.path.join(results_dir, filename), "w") as handle:
        handle.write(report.as_csv())
