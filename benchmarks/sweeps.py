"""Shared sweep scaffolding for the serving load benchmarks.

The implementation moved into the installed package (:mod:`repro.sweeps`)
so the ``python -m repro`` CLI can drive the same grids (optionally over a
process pool); this module re-exports it for the benchmark files.
"""

from __future__ import annotations

from repro.sweeps import open_loop, run_grid

__all__ = ["open_loop", "run_grid"]
