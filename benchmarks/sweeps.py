"""Shared sweep scaffolding for the serving load benchmarks.

The load studies (Figure 15 under load, Figure 16 under load, the
expert-parallel sweep) all walk a cartesian grid of serving knobs — design ×
capacity × offered load × … — and key their results by the swept values.
:func:`run_grid` is that loop, written once: axes are declared as keyword
arguments (name → values, in key order) and the serve callable receives one
keyword per axis.
"""

from __future__ import annotations

from itertools import product
from typing import Any, Callable, Dict, Sequence, Tuple

from repro.workloads import POISSON_QA_LOAD, LoadSpec


def open_loop(rate: float, base: LoadSpec = POISSON_QA_LOAD) -> LoadSpec:
    """Open-loop Poisson arrivals at ``rate`` requests/second."""
    return base.with_overrides(request_rate=rate)


def run_grid(serve: Callable[..., Any],
             **axes: Sequence[Any]) -> Dict[Tuple[Any, ...], Any]:
    """Run ``serve(**combo)`` for every combination of the named axes.

    ``axes`` maps axis names to their swept values; combinations are visited
    in row-major order of the declaration.  Returns a dict keyed by the
    tuple of axis values (declaration order) — the shape every load
    benchmark's report/assert loops consume.
    """
    if not axes:
        raise ValueError("run_grid needs at least one axis")
    names = list(axes)
    results: Dict[Tuple[Any, ...], Any] = {}
    for combo in product(*axes.values()):
        results[combo] = serve(**dict(zip(names, combo)))
    return results
