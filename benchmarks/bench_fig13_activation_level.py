"""Figure 13 — model accuracy vs pre-gate activation level (N = 0..3).

Paper result (Switch-Base 8, SQuAD): pre-gating one block ahead (N=1)
matches or slightly improves on the conventional gate (N=0), while pushing
the selection further ahead (N=2, N=3) gradually degrades accuracy because
the earlier representation carries less information about the later block's
routing needs.
"""

import pytest

from conftest import emit
from repro.analysis import FigureReport
from repro.training import TrainingConfig, activation_level_sweep

MODEL = "tiny_moe_8"
TASK = "squad_like"
TRAINING = TrainingConfig(steps=60, batch_size=16, learning_rate=3e-3, seed=0)


def run_activation_level_study():
    return activation_level_sweep(MODEL, TASK, levels=(1, 2, 3), training=TRAINING,
                                  train_size=192, eval_size=48, seed=0)


@pytest.mark.benchmark(group="fig13")
def test_fig13_activation_level(benchmark, results_dir):
    outcomes = benchmark.pedantic(run_activation_level_study, rounds=1, iterations=1)
    report = FigureReport(
        figure="Figure 13",
        description="Accuracy vs pre-gate activation level (SQuAD-like task)",
        headers=["variant", "ExactMatch", "F1"],
        paper_reference="N=1 matches/exceeds the conventional gate; accuracy declines "
                        "gradually for N=2 and N=3.",
        notes="Synthetic SQuAD substitute on the tiny functional model.",
    )
    for variant, outcome in outcomes.items():
        report.add_row(variant, round(outcome.scores.exact_match, 1),
                       round(outcome.scores.f1, 1))
    emit(report, results_dir, "fig13_activation_level.csv")

    assert "conventional" in outcomes and "N=1" in outcomes
    conventional = outcomes["conventional"].scores.exact_match
    level1 = outcomes["N=1"].scores.exact_match
    # All variants learn the task and N=1 stays close to the conventional gate.
    assert conventional > 30.0
    assert level1 > 30.0
    assert level1 - conventional > -25.0
    # Deeper look-ahead must not *beat* N=1 by a large margin (the paper finds
    # it degrades); allow noise but catch gross inversions.
    for key in ("N=2", "N=3"):
        if key in outcomes:
            assert outcomes[key].scores.exact_match <= level1 + 15.0
