"""Figure 3 — model capacity (GB), split into MoE vs non-MoE parameters.

Paper result: expert parameters account for the overwhelming majority of an
MoE model's memory footprint (up to ~75x the dense T5 equivalent).
"""

import pytest

from conftest import emit
from repro.analysis import FigureReport
from repro.moe import capacity_breakdown, get_config, memory_ratio

CONFIGS = ["t5_base", "switch_base_8", "switch_base_64", "switch_base_128", "switch_base_256",
           "t5_large", "switch_large_128"]


def compute_figure3():
    rows = []
    for name in CONFIGS:
        breakdown = capacity_breakdown(get_config(name))
        gb = breakdown.gigabytes()
        rows.append([name, round(gb["moe"], 1), round(gb["non_moe"], 1), round(gb["total"], 1),
                     round(100 * breakdown.moe_fraction, 1)])
    return rows


@pytest.mark.benchmark(group="fig03")
def test_fig03_capacity_breakdown(benchmark, results_dir):
    rows = benchmark(compute_figure3)
    report = FigureReport(
        figure="Figure 3",
        description="Memory capacity requirement, MoE vs non-MoE parameters (GB)",
        headers=["model", "MoE GB", "non-MoE GB", "total GB", "MoE %"],
        rows=rows,
        paper_reference="Switch-Base-128 ~30GB, Switch-Large-128 ~105.6GB; "
                        "MoE params dominate (up to 75x dense T5).",
    )
    emit(report, results_dir, "fig03_capacity.csv")

    by_name = {row[0]: row for row in rows}
    assert by_name["switch_base_128"][3] == pytest.approx(30.0, rel=0.15)
    assert by_name["switch_large_128"][3] == pytest.approx(105.6, rel=0.15)
    assert by_name["switch_base_256"][4] > 90.0
    assert 50 < memory_ratio(get_config("switch_base_256"), get_config("t5_base")) < 90
