"""Real-model tensor-path performance: the model engine's perf trajectory.

Unlike the figure benchmarks (which measure the *simulated* designs) and
``bench_simperf`` (which measures the discrete-event simulator), this one
measures the numpy tensor engine the functional models run on: forward,
train-step and batched greedy-decode throughput on a shape ladder, for both
tensor backends (eager and the lazy fusing op-graph) crossed with the three
precision policies (``pure_fp64`` / ``pure_fp32`` / ``mixed``), against the
recorded pre-optimisation eager baseline in
:data:`repro.analysis.tensorperf.RECORDED_EAGER_BASELINE`.

The assertions pin the tentpole contracts end-to-end:

* eager and lazy agree on the loss and every parameter gradient to 1e-9
  at every precision (they share one primitive registry, so the observed
  difference is 0.0);
* ``pure_fp64`` is exactly the ambient default (0.0 loss/grad delta) and
  ``pure_fp32`` / ``mixed`` stay within the documented deviation budgets;
* eager train throughput stays above the recorded CI floor per precision
  on the always-measured rungs (~0.4x the recording-machine measurement,
  so honest regressions trip them but runner jitter does not);
* lazy ``generate_tokens_per_s`` is never below eager — batched greedy
  decode stands the lazy graph down to the eager engine, so the two run
  identical code; decode is timed with the backends interleaved, both
  cells record the pooled best, and the lazy/eager decode-minimum ratio
  (the stand-down health signal, ~1.0) is asserted per rung;
* on the serving-scale rung (``--full`` / ``TENSORPERF_FULL=1`` runs) the
  engine clears **10x** the recorded pre-optimisation train-step
  throughput, and ``mixed`` clears **1.8x** the same run's fp64 eager
  train step — the fp32-BLAS precision tentpole.

The default pytest run measures the tiny and mini rungs (tens of seconds);
set ``TENSORPERF_QUICK=1`` for the CI smoke shape or ``TENSORPERF_FULL=1``
to regenerate the committed artifact's full ladder including the
serving-scale rung and the Table-II-style accuracy-parity protocol
(minutes).  Only full runs overwrite ``BENCH_tensorperf.json``.
``python -m repro tensorperf`` runs the same measurement outside pytest.
"""

from __future__ import annotations

import os

from repro.analysis.tensorperf import (GENERATE_STANDDOWN_FLOOR,
                                       MIXED_TRAIN_SPEEDUP_BAR,
                                       PARITY_BUDGET, PRECISIONS,
                                       TENSORPERF_FILENAME,
                                       TRAIN_FLOOR_STEPS_PER_S,
                                       run_tensorperf, write_tensorperf)

#: Committed at the repo root so the perf trajectory is versioned.
OUTPUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                           TENSORPERF_FILENAME)

#: The lazy-backend tentpole bar: train-step throughput over the recorded
#: pre-optimisation baseline at the serving-scale rung.
SERVING_RUNG = "tiny_serving"
SERVING_SPEEDUP_BAR = 10.0

def _env_flag(name: str) -> bool:
    return os.environ.get(name, "") not in ("", "0", "false", "False")


def test_tensorperf_records_trajectory():
    quick = _env_flag("TENSORPERF_QUICK")
    full = _env_flag("TENSORPERF_FULL") and not quick
    payload = run_tensorperf(quick=quick, full=full)
    if full:
        write_tensorperf(payload, os.path.abspath(OUTPUT_PATH))

    # Backend parity at every precision: one primitive registry, identical
    # results.
    for precision, parity in payload["parity"]["backend"].items():
        assert parity["loss_abs_diff"] <= PARITY_BUDGET, (precision, parity)
        assert parity["grad_max_abs_diff"] <= PARITY_BUDGET, (precision, parity)

    # Precision parity against pure_fp64: the default policy is exact,
    # the reduced-precision policies stay within the documented budgets.
    for precision, parity in payload["parity"]["precision"].items():
        assert parity["loss_abs_diff"] <= parity["loss_budget"], (precision, parity)
        assert parity["grad_max_abs_diff"] <= parity["grad_budget"], (precision, parity)

    for name, row in payload["ladder"].items():
        for cell, metrics in row["cells"].items():
            assert metrics["train_steps_per_s"] > 0, cell
            assert metrics["forward_tokens_per_s"] > 0, cell
            assert metrics["generate_tokens_per_s"] > 0, cell
        for precision in PRECISIONS:
            floor = TRAIN_FLOOR_STEPS_PER_S[precision].get(name)
            if floor is not None:
                measured = row["cells"][f"eager/{precision}"]["train_steps_per_s"]
                assert measured >= floor, (
                    f"eager/{precision} train step ran {measured:.2f} steps/s "
                    f"on the {name} rung, below the recorded floor of "
                    f"{floor:.2f}")
            # Decode stands the lazy graph down to the eager engine, so
            # the interleaved lazy/eager decode-minimum ratio sits at ~1.0
            # and collapses to ~0.5 if the stand-down ever breaks.
            ratio = row["cells"][f"lazy/{precision}"]["generate_lazy_over_eager"]
            assert ratio >= GENERATE_STANDDOWN_FLOOR, (
                f"lazy decode ran at {ratio:.2f}x eager on the {name} rung "
                f"({precision}) — the greedy-decode stand-down looks broken")

    speedups = payload["speedup_over_recorded_baseline"]
    if SERVING_RUNG in payload["ladder"]:
        # The lazy-backend tentpole claim, measured whenever the
        # serving-scale rung runs: the pre-optimisation engine's per-expert
        # scatter-matmul combine was quadratic in tokens, so at ~30k
        # tokens/step the vectorized engine clears 10x its recorded
        # throughput.
        speedup = speedups[SERVING_RUNG]["train_steps_per_s"]
        assert speedup >= SERVING_SPEEDUP_BAR, (
            f"serving-rung train speedup {speedup:.1f}x is below the "
            f"{SERVING_SPEEDUP_BAR:.0f}x bar (see {TENSORPERF_FILENAME})")
        # The precision tentpole claim: fp32 compute with fp64 masters and
        # fp64 reductions breaks the float64 BLAS floor.
        mixed = payload["mixed_train_speedup_over_fp64"][SERVING_RUNG]
        assert mixed >= MIXED_TRAIN_SPEEDUP_BAR, (
            f"serving-rung mixed-precision train speedup {mixed:.2f}x is "
            f"below the {MIXED_TRAIN_SPEEDUP_BAR:.1f}x bar "
            f"(see {TENSORPERF_FILENAME})")

    if "accuracy_parity" in payload:
        parity = payload["accuracy_parity"]
        for metric, diff in parity["abs_diffs"].items():
            assert diff <= parity["tolerance"], (metric, parity)

    print()
    print("tensorperf (eager vs lazy x precision, speedup vs recorded "
          "pre-optimisation eager baseline):")
    for name, row in payload["ladder"].items():
        for cell, metrics in row["cells"].items():
            speedup = speedups.get(name, {}).get("train_steps_per_s")
            suffix = (f"  train speedup {speedup:5.1f}x"
                      if cell == "eager/pure_fp64" and speedup else "")
            print(f"  {name:>13} {cell:>15}: "
                  f"{metrics['train_steps_per_s']:8.2f} train steps/s  "
                  f"{metrics['forward_tokens_per_s']:9.0f} fwd tok/s  "
                  f"{metrics['generate_tokens_per_s']:8.0f} gen tok/s{suffix}")
        mixed = payload["mixed_train_speedup_over_fp64"].get(name)
        if mixed:
            print(f"  {name:>13} mixed vs fp64 train: {mixed:.2f}x")
    for precision, parity in payload["parity"]["backend"].items():
        print(f"  backend parity [{precision}]: "
              f"loss diff {parity['loss_abs_diff']:.1e}, "
              f"grad diff {parity['grad_max_abs_diff']:.1e} "
              f"(budget {parity['budget']:.0e})")
    for precision, parity in payload["parity"]["precision"].items():
        print(f"  precision parity [{precision} vs pure_fp64]: "
              f"loss diff {parity['loss_abs_diff']:.1e}, "
              f"grad diff {parity['grad_max_abs_diff']:.1e}")
