"""Real-model tensor-path performance: the model engine's perf trajectory.

Unlike the figure benchmarks (which measure the *simulated* designs) and
``bench_simperf`` (which measures the discrete-event simulator), this one
measures the numpy tensor engine the functional models run on: forward,
train-step and batched greedy-decode throughput on a shape ladder, for both
tensor backends (eager and the lazy fusing op-graph), against the recorded
pre-optimisation eager baseline in
:data:`repro.analysis.tensorperf.RECORDED_EAGER_BASELINE`.

The assertions pin the tentpole contract end-to-end:

* eager and lazy agree on the loss and every parameter gradient to 1e-9
  (they share one primitive registry, so the observed difference is 0.0);
* eager train throughput stays above the recorded CI floor on the
  always-measured rungs (~0.25x the recording-machine measurement, so
  honest regressions trip it but runner jitter does not);
* on the serving-scale rung (``--full`` / ``TENSORPERF_FULL=1`` runs) the
  engine clears **10x** the recorded pre-optimisation train-step
  throughput — the committed ``BENCH_tensorperf.json`` records ~15x.

The default pytest run measures the tiny and mini rungs (tens of seconds);
set ``TENSORPERF_QUICK=1`` for the CI smoke shape or ``TENSORPERF_FULL=1``
to regenerate the committed artifact's full ladder including the
serving-scale rung (minutes).  Only full runs overwrite
``BENCH_tensorperf.json``.  ``python -m repro tensorperf`` runs the same
measurement outside pytest.
"""

from __future__ import annotations

import os

from repro.analysis.tensorperf import (EAGER_TRAIN_FLOOR_STEPS_PER_S,
                                       PARITY_BUDGET, TENSORPERF_FILENAME,
                                       run_tensorperf, write_tensorperf)

#: Committed at the repo root so the perf trajectory is versioned.
OUTPUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                           TENSORPERF_FILENAME)

#: The tentpole bar: train-step throughput over the recorded
#: pre-optimisation baseline at the serving-scale rung.
SERVING_RUNG = "tiny_serving"
SERVING_SPEEDUP_BAR = 10.0


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "") not in ("", "0", "false", "False")


def test_tensorperf_records_trajectory():
    quick = _env_flag("TENSORPERF_QUICK")
    full = _env_flag("TENSORPERF_FULL") and not quick
    payload = run_tensorperf(quick=quick, full=full)
    if full:
        write_tensorperf(payload, os.path.abspath(OUTPUT_PATH))

    # Backend parity: one primitive registry, identical results.
    parity = payload["parity"]
    assert parity["loss_abs_diff"] <= PARITY_BUDGET, parity
    assert parity["grad_max_abs_diff"] <= PARITY_BUDGET, parity

    for name, row in payload["ladder"].items():
        for backend, metrics in row["backends"].items():
            assert metrics["train_steps_per_s"] > 0
            assert metrics["forward_tokens_per_s"] > 0
            assert metrics["generate_tokens_per_s"] > 0
        floor = EAGER_TRAIN_FLOOR_STEPS_PER_S.get(name)
        if floor is not None:
            measured = row["backends"]["eager"]["train_steps_per_s"]
            assert measured >= floor, (
                f"eager train step ran {measured:.2f} steps/s on the {name} "
                f"rung, below the recorded floor of {floor:.2f}")

    speedups = payload["speedup_over_recorded_baseline"]
    if SERVING_RUNG in payload["ladder"]:
        # The tentpole claim, measured whenever the serving-scale rung runs:
        # the pre-optimisation engine's per-expert scatter-matmul combine
        # was quadratic in tokens, so at ~30k tokens/step the vectorized
        # engine clears 10x its recorded throughput.
        speedup = speedups[SERVING_RUNG]["train_steps_per_s"]
        assert speedup >= SERVING_SPEEDUP_BAR, (
            f"serving-rung train speedup {speedup:.1f}x is below the "
            f"{SERVING_SPEEDUP_BAR:.0f}x bar (see {TENSORPERF_FILENAME})")

    print()
    print("tensorperf (eager vs lazy, speedup vs recorded pre-optimisation "
          "eager baseline):")
    for name, row in payload["ladder"].items():
        for backend, metrics in row["backends"].items():
            speedup = speedups.get(name, {}).get("train_steps_per_s")
            suffix = (f"  train speedup {speedup:5.1f}x"
                      if backend == "eager" and speedup else "")
            print(f"  {name:>13} {backend:>5}: "
                  f"{metrics['train_steps_per_s']:8.2f} train steps/s  "
                  f"{metrics['forward_tokens_per_s']:9.0f} fwd tok/s  "
                  f"{metrics['generate_tokens_per_s']:8.0f} gen tok/s{suffix}")
    print(f"  parity: loss diff {parity['loss_abs_diff']:.1e}, "
          f"grad diff {parity['grad_max_abs_diff']:.1e} "
          f"(budget {parity['budget']:.0e})")
