"""Figure 2 — required GFLOPs per sequence: Switch (MoE) vs dense T5.

Paper result: the MoE models' compute cost is flat in the number of experts
and essentially equal to the FLOPs-equivalent dense model, for both Base and
Large variants.
"""

import pytest

from conftest import emit
from repro.analysis import FigureReport
from repro.moe import get_config, gflops_per_sequence

SEQ_LEN = 256

SERIES = [
    ("Switch-Base", "t5_base", ["switch_base_8", "switch_base_64", "switch_base_128",
                                "switch_base_256"]),
    ("Switch-Large", "t5_large", ["switch_large_128"]),
]


def compute_figure2():
    rows = []
    for family, dense_name, moe_names in SERIES:
        dense = gflops_per_sequence(get_config(dense_name), SEQ_LEN)
        rows.append([family, "dense (1 expert)", round(dense, 1)])
        for name in moe_names:
            config = get_config(name)
            rows.append([family, f"MoE ({config.num_experts} experts)",
                         round(gflops_per_sequence(config, SEQ_LEN), 1)])
    return rows


@pytest.mark.benchmark(group="fig02")
def test_fig02_flops_per_sequence(benchmark, results_dir):
    rows = benchmark(compute_figure2)
    report = FigureReport(
        figure="Figure 2",
        description=f"GFLOPs per sequence (seq_len={SEQ_LEN}), MoE vs dense",
        headers=["family", "model", "GFLOPs/seq"],
        rows=rows,
        paper_reference="MoE curves are flat vs expert count and ~equal to the dense model "
                        "(~100-120 GFLOPs for Base, ~400 for Large).",
    )
    emit(report, results_dir, "fig02_flops.csv")

    # Shape assertions: flat in expert count, close to dense.
    base = {row[1]: row[2] for row in rows if row[0] == "Switch-Base"}
    assert base["MoE (256 experts)"] == pytest.approx(base["MoE (8 experts)"], rel=0.02)
    assert base["MoE (128 experts)"] == pytest.approx(base["dense (1 expert)"], rel=0.1)
