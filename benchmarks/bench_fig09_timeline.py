"""Figure 9 — execution timelines of the four system designs.

Qualitative figure in the paper: GPU-only has no communication; MoE-OnDemand
serialises fetch and execution; MoE-Prefetch saturates the copy stream with
whole-expert-set transfers; Pre-gated MoE overlaps the (small) activated-
expert transfers with the previous block's execution.  The bench regenerates
the timelines, prints ASCII Gantt charts and checks the overlap behaviour.
"""

import pytest

from conftest import ENGINE_CONFIG, emit
from repro.analysis import FigureReport
from repro.moe import get_config
from repro.serving import DESIGN_LABELS, make_engine
from repro.system import ExecutionTimeline, Stream
from repro.workloads import TraceGenerator

CONFIG = get_config("switch_base_64")
DESIGNS = ("gpu_only", "pregated", "ondemand", "prefetch_all")


def run_timeline_study():
    activations = TraceGenerator(CONFIG, seed=0).iteration_activations(
        num_tokens=1, num_moe_blocks=CONFIG.num_moe_blocks("decoder"))
    timelines = {}
    for design in DESIGNS:
        engine = make_engine(design, CONFIG, engine_config=ENGINE_CONFIG)
        timeline = ExecutionTimeline()
        engine.run_decoder_iteration(activations, timeline=timeline)
        timelines[design] = timeline
    return timelines


@pytest.mark.benchmark(group="fig09")
def test_fig09_execution_timeline(benchmark, results_dir):
    timelines = benchmark.pedantic(run_timeline_study, rounds=1, iterations=1)
    report = FigureReport(
        figure="Figure 9",
        description="One decoder iteration: makespan, copy time and overlap per design",
        headers=["design", "makespan (ms)", "copy busy (ms)", "exposed copy (ms)",
                 "overlap efficiency"],
        paper_reference="Pre-gated MoE hides expert migration under expert/non-MoE "
                        "execution; OnDemand exposes it; Prefetch is copy-bound.",
    )
    for design, timeline in timelines.items():
        report.add_row(DESIGN_LABELS[design],
                       round(timeline.makespan * 1e3, 3),
                       round(timeline.stream_busy_time(Stream.COPY) * 1e3, 3),
                       round(timeline.exposed_copy_time() * 1e3, 3),
                       round(timeline.overlap_efficiency(), 3))
    emit(report, results_dir, "fig09_timeline.csv")

    print()
    for design, timeline in timelines.items():
        print(f"--- {DESIGN_LABELS[design]} ---")
        print(timeline.render_ascii(width=78))

    assert timelines["gpu_only"].stream_busy_time(Stream.COPY) == 0.0
    assert timelines["pregated"].overlap_efficiency() > timelines["ondemand"].overlap_efficiency()
    assert timelines["prefetch_all"].makespan > 5 * timelines["pregated"].makespan
    assert timelines["pregated"].makespan < 1.5 * timelines["gpu_only"].makespan
