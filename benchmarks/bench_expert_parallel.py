"""Expert-parallel multi-GPU replicas — design × num_gpus × load sweep.

The paper evaluates one GPU per machine; production MoE serving shards the
expert pool across several GPUs inside one replica (expert parallelism) and
routes tokens over an intra-node interconnect.  This benchmark asks the
paper's question at that scale: does the design ordering (pregated ≥
ondemand ≫ prefetch_all) survive when expert fetches compete with all-to-all
dispatch/combine traffic and per-device fetch lanes?

Reproduction targets:

* a 1-GPU topology reproduces the single-GPU serving numbers to 1e-9 (time,
  bytes and peak memory — the degenerate-topology parity contract);
* the paper's ordering holds at 2, 4 and 8 GPUs: pregated ≥ ondemand >
  prefetch_all at every load (prefetch_all closes some of the gap as per-
  device PCIe lanes parallelise its bulk transfers — reported, not hidden);
* load-balanced expert sharding never loses to contiguous sharding on a
  skewed (hot-expert) gate distribution, which piles the hot low-id experts
  onto device 0 under contiguous assignment;
* per-device utilisation, all-to-all bytes and shard imbalance are reported
  for every multi-GPU cell.
"""

import numpy as np
import pytest

from conftest import ENGINE_CONFIG, emit
from repro.analysis import FigureReport
from repro.moe import get_config
from repro.serving import DESIGN_LABELS, serve_load
from repro.workloads import WorkloadSpec
from sweeps import open_loop, run_grid

CONFIG = get_config("switch_base_64")
DESIGNS = ("pregated", "ondemand", "prefetch_all")
GPU_COUNTS = (1, 2, 4, 8)
MULTI_GPU_COUNTS = tuple(n for n in GPU_COUNTS if n > 1)
LOADS = (2.0, 8.0)
SKEW = 1.5

#: Hot-expert open-loop traffic (same skew the caching studies use): the
#: imbalanced gate distribution that separates the sharding policies.
WORKLOAD = WorkloadSpec(name="expert_parallel_hot_experts", num_requests=4,
                        input_length=8, output_length=6, routing_skew=SKEW,
                        seed=0)


def gate_weights():
    """Expected per-expert gate load matching the trace generator's skew."""
    ranks = np.arange(1, CONFIG.num_experts + 1, dtype=np.float64)
    weights = ranks ** (-SKEW)
    return (weights / weights.sum()).tolist()


def _serve(design, num_gpus, rate, shard_policy="contiguous",
           expert_weights=None):
    return serve_load(design, CONFIG, open_loop(rate), workload=WORKLOAD,
                      engine_config=ENGINE_CONFIG, max_batch_size=4,
                      num_gpus=num_gpus, shard_policy=shard_policy,
                      expert_weights=expert_weights)


def run_expert_parallel_study():
    results = run_grid(_serve, design=DESIGNS, num_gpus=GPU_COUNTS, rate=LOADS)
    weights = gate_weights()
    balanced = run_grid(
        lambda design, num_gpus, rate: _serve(
            design, num_gpus, rate, shard_policy="load_balanced",
            expert_weights=weights),
        design=("pregated", "ondemand"), num_gpus=MULTI_GPU_COUNTS, rate=LOADS)
    return results, balanced


@pytest.mark.benchmark(group="expert_parallel")
def test_expert_parallel_sweep(benchmark, results_dir):
    results, balanced = benchmark.pedantic(run_expert_parallel_study,
                                           rounds=1, iterations=1)
    report = FigureReport(
        figure="Expert parallelism",
        description="Design ordering across expert-parallel replica sizes, "
                    "Switch-Base 64, skewed routing",
        headers=["design", "shard policy", "gpus", "load rps", "tokens/s",
                 "p99 ttft ms", "alltoall MB", "device util", "imbalance"],
        paper_reference="Single-GPU ordering (Figs. 10-11): pregated >= "
                        "ondemand >> prefetch_all; parallel per-device fetch "
                        "lanes narrow (but never close) prefetch_all's gap.",
        notes="Imbalance is max-over-mean fetched bytes across devices; "
              "contiguous sharding piles hot low-id experts on device 0, "
              "load-balanced spreads them by expected gate load.")
    rows = [((design, "contiguous", n, rate), result)
            for (design, n, rate), result in results.items()]
    rows += [((design, "load_balanced", n, rate), result)
             for (design, n, rate), result in balanced.items()]
    for (design, policy, n, rate), result in rows:
        report.add_row(
            DESIGN_LABELS[design], policy, n, rate,
            round(result.sustained_tokens_per_second, 2),
            round(result.ttft_stats.p99 * 1e3, 2),
            round(result.alltoall_bytes / 1e6, 3),
            "|".join(f"{u:.2f}" for u in result.device_utilisation),
            round(result.shard_imbalance, 2)
            if result.shard_imbalance is not None else "-")
    emit(report, results_dir, "expert_parallel.csv")

    for rate in LOADS:
        for n in MULTI_GPU_COUNTS:
            pregated = results[("pregated", n, rate)]
            ondemand = results[("ondemand", n, rate)]
            prefetch = results[("prefetch_all", n, rate)]
            # (b) the paper's ordering survives at every replica size.
            assert (pregated.sustained_tokens_per_second
                    >= ondemand.sustained_tokens_per_second)
            assert (ondemand.sustained_tokens_per_second
                    > prefetch.sustained_tokens_per_second)
            # All-to-all traffic and the per-device breakdown are reported.
            assert pregated.alltoall_bytes > 0
            assert len(pregated.device_utilisation) == n
            assert pregated.shard_imbalance is not None
        # At small replica sizes prefetch_all stays far behind (the paper's
        # ">>"); wider replicas parallelise its bulk fetches, narrowing but
        # never closing the gap (asserted strictly above).
        assert (results[("prefetch_all", 2, rate)].sustained_tokens_per_second
                < 0.75 * results[("ondemand", 2, rate)].sustained_tokens_per_second)
        # (c) load-balanced sharding never loses to contiguous under skew.
        for design in ("pregated", "ondemand"):
            for n in MULTI_GPU_COUNTS:
                contiguous = results[(design, n, rate)]
                lb = balanced[(design, n, rate)]
                assert (lb.sustained_tokens_per_second
                        >= contiguous.sustained_tokens_per_second - 1e-9)
                assert lb.shard_imbalance <= contiguous.shard_imbalance + 1e-9


@pytest.mark.benchmark(group="expert_parallel")
def test_expert_parallel_single_gpu_parity(benchmark):
    """(a) A 1-GPU topology reproduces today's single-GPU path to 1e-9."""

    def run():
        pairs = {}
        for design in DESIGNS:
            legacy = serve_load(design, CONFIG, open_loop(4.0),
                                workload=WORKLOAD, engine_config=ENGINE_CONFIG,
                                max_batch_size=4)
            topo = _serve(design, 1, 4.0)
            pairs[design] = (legacy, topo)
        return pairs

    pairs = benchmark.pedantic(run, rounds=1, iterations=1)
    for design, (legacy, topo) in pairs.items():
        assert topo.makespan == pytest.approx(legacy.makespan, abs=1e-9)
        assert topo.expert_bytes_transferred == legacy.expert_bytes_transferred
        assert topo.peak_gpu_bytes == legacy.peak_gpu_bytes
        assert topo.alltoall_bytes == 0
        for a, b in zip(topo.requests, legacy.requests):
            assert a.ttft == pytest.approx(b.ttft, abs=1e-9)
            assert a.completion_time == pytest.approx(b.completion_time, abs=1e-9)
