"""Figure 15 — expert caching (LIFO / LFU / LRU at 1% / 10% / 20% capacity).

Paper result (Switch-Large 128, normalised to Pre-gated MoE without a
cache): caching helps both Pre-gated MoE and MoE-OnDemand under hot-expert
workloads, but helps MoE-OnDemand more, because Pre-gated MoE already hides
most of the migration latency it would otherwise save.
"""

import pytest

from conftest import ENGINE_CONFIG, emit
from repro.analysis import FigureReport
from repro.moe import get_config
from repro.serving import DESIGN_LABELS, make_engine
from repro.system import ExpertCache, cache_capacity_from_fraction
from repro.workloads import TraceGenerator, WorkloadSpec

CONFIG = get_config("switch_large_128")
POLICIES = ("lifo", "lfu", "lru")
FRACTIONS = (0.01, 0.10, 0.20)
DESIGNS = ("pregated", "ondemand")

#: Hot-expert serving workload (skewed routing, as observed by Huang et al.).
WORKLOAD = WorkloadSpec(name="fig15_hot_experts", num_requests=2, input_length=8,
                        output_length=12, routing_skew=1.5, seed=0)


def _throughput(design, cache):
    engine = make_engine(design, CONFIG, cache=cache, engine_config=ENGINE_CONFIG)
    generator = TraceGenerator(CONFIG, skew=WORKLOAD.routing_skew, seed=WORKLOAD.seed)
    traces = generator.workload(WORKLOAD.num_requests, WORKLOAD.input_length,
                                WORKLOAD.output_length)
    return engine.run_workload(traces).aggregate_tokens_per_second


def run_caching_study():
    results = {}
    for design in DESIGNS:
        results[(design, "w/o cache", 0.0)] = _throughput(design, None)
        for policy in POLICIES:
            for fraction in FRACTIONS:
                capacity = cache_capacity_from_fraction(
                    CONFIG.num_moe_blocks("all"), CONFIG.num_experts, fraction)
                cache = ExpertCache(capacity_experts=capacity, policy=policy)
                results[(design, policy, fraction)] = _throughput(design, cache)
    return results


@pytest.mark.benchmark(group="fig15")
def test_fig15_expert_caching(benchmark, results_dir):
    results = benchmark.pedantic(run_caching_study, rounds=1, iterations=1)
    baseline = results[("pregated", "w/o cache", 0.0)]
    report = FigureReport(
        figure="Figure 15",
        description="Throughput with expert caching, Switch-Large 128 "
                    "(normalised to Pre-gated MoE without cache)",
        headers=["design", "policy", "cache %", "tokens/s", "normalised"],
        paper_reference="Caching helps both designs; the benefit is larger for "
                        "MoE-OnDemand than for Pre-gated MoE.",
    )
    for (design, policy, fraction), tput in results.items():
        report.add_row(DESIGN_LABELS[design], policy, int(fraction * 100),
                       round(tput, 2), round(tput / baseline, 3))
    emit(report, results_dir, "fig15_caching.csv")

    # Caching at 20% improves both designs under the skewed workload.
    for design in DESIGNS:
        uncached = results[(design, "w/o cache", 0.0)]
        best_cached = max(results[(design, p, 0.20)] for p in POLICIES)
        assert best_cached >= uncached
    # The relative gain is at least as large for MoE-OnDemand.
    pregated_gain = max(results[("pregated", p, 0.20)] for p in POLICIES) / baseline
    ondemand_gain = (max(results[("ondemand", p, 0.20)] for p in POLICIES)
                     / results[("ondemand", "w/o cache", 0.0)])
    assert ondemand_gain >= pregated_gain * 0.9
