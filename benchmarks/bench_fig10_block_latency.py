"""Figure 10 — average MoE block latency, normalised to GPU-only.

Paper result (Switch-Base 8/64/128 and Switch-Large 128):
Pre-gated MoE ~1.2x GPU-only, MoE-OnDemand ~1.9-2.0x, MoE-Prefetch 7x/54x/
107x/125x; GPU-only OOMs on Switch-Large (series then normalised to
Pre-gated MoE).
"""

import pytest

from conftest import ENGINE_CONFIG, PERF_WORKLOAD, emit
from repro.analysis import FigureReport, pick_reference
from repro.moe import PERFORMANCE_CONFIGS, get_config
from repro.serving import DESIGN_LABELS, compare_designs
from repro.workloads import generate_traces

DESIGNS = ("gpu_only", "pregated", "ondemand", "prefetch_all")


def run_block_latency_study():
    table = {}
    for name in PERFORMANCE_CONFIGS:
        config = get_config(name)
        traces = generate_traces(config, PERF_WORKLOAD)
        results = compare_designs(config, traces, designs=DESIGNS, engine_config=ENGINE_CONFIG)
        oom = [d for d, r in results.items() if r.oom]
        latencies = {d: r.mean_block_latency for d, r in results.items() if not r.oom}
        reference = pick_reference(["gpu_only", "pregated"], oom)
        table[name] = {
            "latencies": latencies,
            "normalised": {d: latencies[d] / latencies[reference] for d in latencies},
            "oom": oom,
            "reference": reference,
        }
    return table


@pytest.mark.benchmark(group="fig10")
def test_fig10_moe_block_latency(benchmark, results_dir):
    table = benchmark.pedantic(run_block_latency_study, rounds=1, iterations=1)
    report = FigureReport(
        figure="Figure 10",
        description="Average MoE block latency (ms and normalised to GPU-only)",
        headers=["config", "design", "latency (ms)", "normalised", "note"],
        paper_reference="Pre-gated ~1.19x GPU-only; OnDemand ~1.9-2.0x; "
                        "Prefetch 7x/54x/107x/125x; GPU-only OOM on Switch-Large.",
        notes="Normalised to Pre-gated MoE when GPU-only is OOM (as in the paper).",
    )
    for name, entry in table.items():
        for design in DESIGNS:
            if design in entry["oom"]:
                report.add_row(name, DESIGN_LABELS[design], "-", "-", "OOM")
                continue
            report.add_row(name, DESIGN_LABELS[design],
                           round(entry["latencies"][design] * 1e3, 3),
                           round(entry["normalised"][design], 2),
                           f"vs {entry['reference']}")
    emit(report, results_dir, "block_lats.csv")

    # Shape assertions mirroring the paper's claims.
    base_128 = table["switch_base_128"]["normalised"]
    assert 1.0 < base_128["pregated"] < 1.6
    assert 1.6 < base_128["ondemand"] < 2.8
    assert base_128["prefetch_all"] > 50
    assert "gpu_only" in table["switch_large_128"]["oom"]
    large = table["switch_large_128"]["normalised"]
    assert large["ondemand"] > 1.5
    assert large["prefetch_all"] > 50
