"""Simulator self-performance: throughput and memory of the serving loop.

Unlike the figure benchmarks (which measure the *simulated* designs), this
one measures the simulator itself and seeds the repo's perf trajectory:
serving a pregated Switch-Base-128 Poisson load, it records

* simulated requests per wall-clock second,
* total ops scheduled and the peak op count resident in memory,

for both serving modes — ``record_trace=False`` (production default:
incremental aggregates + op retirement) and ``record_trace=True`` (the
Figure 9 trace mode) — and writes them to ``BENCH_simperf.json`` at the
repo root.  The assertions pin the two structural wins of the incremental
timeline: both modes simulate the *same* execution (equal makespan), and
the no-trace mode's resident-op window stays far below the trace's O(total
ops) footprint.

Run directly via ``python -m repro simperf [--quick]`` for the same
measurement outside pytest.
"""

from __future__ import annotations

import os

from repro.analysis.simperf import SIMPERF_FILENAME, run_simperf, write_simperf

#: Committed at the repo root so the perf trajectory is versioned.
OUTPUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                           SIMPERF_FILENAME)


def test_simperf_records_trajectory():
    quick = os.environ.get("SIMPERF_QUICK", "") not in ("", "0", "false", "False")
    payload = run_simperf(quick=quick)
    write_simperf(payload, os.path.abspath(OUTPUT_PATH))

    no_trace = payload["modes"]["no_trace"]
    trace = payload["modes"]["trace"]
    # Same simulated execution in both modes.
    assert no_trace["makespan_seconds"] == trace["makespan_seconds"]
    assert no_trace["sustained_tokens_per_second"] == trace["sustained_tokens_per_second"]
    assert no_trace["total_ops"] == trace["total_ops"]
    # Trace mode keeps every op; no-trace retires them round by round, so
    # its resident window must be a small fraction of the total.
    assert trace["peak_resident_ops"] == trace["total_ops"]
    assert no_trace["peak_resident_ops"] < trace["total_ops"] / 10
    # Throughput numbers are meaningful (positive, finite).
    for mode in (no_trace, trace):
        assert mode["simulated_requests_per_second"] > 0
        assert mode["wall_seconds"] > 0

    print()
    print(f"simperf ({payload['num_requests']} requests, "
          f"{payload['design']}/{payload['config']}):")
    for name, mode in payload["modes"].items():
        print(f"  {name:>9}: {mode['simulated_requests_per_second']:8.1f} sim req/s  "
              f"{mode['peak_resident_ops']:>8} peak resident ops  "
              f"({mode['total_ops']} total)")
