"""Simulator self-performance: throughput and memory of the serving loop.

Unlike the figure benchmarks (which measure the *simulated* designs), this
one measures the simulator itself and records the repo's perf trajectory:
serving a decode-heavy pregated Switch-Base-128 load (per-request batch
size 1 — the paper's serving mode), it compares the serving modes:

* ``trace``           — scalar timeline, full op trace kept (Figure 9 mode);
* ``no_trace``        — scalar timeline, incremental aggregates + retirement;
* ``kernel``          — batched columnar timeline engine (``ArrayTimeline``);
* ``kernel_replay``   — the kernel plus steady-state round replay;
* ``no_trace_probed`` — ``no_trace`` with sampled observability probes on,
  pinning the probe layer's overhead against the no-trace floor.

Each run also measures the placement rungs — expert-cached and multi-GPU
serving in the hot-expert regime — where the replay controller now
engages (it used to stand down on any cache or shard map).

The assertions pin the engine contract end-to-end: trace, no-trace and
kernel simulate the *same* execution bit-for-bit (equal makespan, ops and
token throughput); replay matches them to 1e-7 relative (1e-9 at test
scale — the drift is float reassociation across closed-form windows)
while skipping most decode rounds; the replay engine is at least 4x
faster than the scalar no-trace baseline on this scenario (the committed
``BENCH_simperf.json`` records ~25x at the 16k-request rung of the
scaling ladder); and on every cached / multi-GPU placement rung replay
engages and clears 5x over the replay-off kernel.

The default pytest run measures a few hundred requests (seconds); set
``SIMPERF_QUICK=1`` for the CI smoke shape or ``SIMPERF_FULL=1`` to
regenerate the committed artifact's full 1.6k/16k/100k/1M ladder
(tens of minutes — the million-request rung alone is most of it).
Only full runs overwrite ``BENCH_simperf.json`` — a smoke run must not
replace the recorded scaling ladder.  ``python -m repro simperf`` runs the
same measurement outside pytest.
"""

from __future__ import annotations

import os

from repro.analysis.simperf import (SIMPERF_FILENAME, run_simperf,
                                    write_simperf)

#: Committed at the repo root so the perf trajectory is versioned.
OUTPUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                           SIMPERF_FILENAME)


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "") not in ("", "0", "false", "False")


def test_simperf_records_trajectory():
    quick = _env_flag("SIMPERF_QUICK")
    full = _env_flag("SIMPERF_FULL") and not quick
    payload = run_simperf(quick=quick, full=full)
    if full:
        write_simperf(payload, os.path.abspath(OUTPUT_PATH))

    for size, by_mode in payload["scaling"].items():
        no_trace = by_mode.get("no_trace")
        kernel = by_mode.get("kernel")
        replay = by_mode.get("kernel_replay")
        trace = by_mode.get("trace")
        # Scalar, kernel and trace modes are the SAME simulated execution.
        for exact in (trace, kernel):
            if exact is None or no_trace is None:
                continue
            assert exact["makespan_seconds"] == no_trace["makespan_seconds"]
            assert exact["total_ops"] == no_trace["total_ops"]
            assert exact["sustained_tokens_per_second"] == \
                no_trace["sustained_tokens_per_second"]
        if trace is not None:
            # Trace keeps every op; the others retire them round by round.
            assert trace["peak_resident_ops"] == trace["total_ops"]
        probed = by_mode.get("no_trace_probed")
        if probed is not None and no_trace is not None:
            # Probes observe the run, they must not change it.
            assert probed["makespan_seconds"] == no_trace["makespan_seconds"]
            assert probed["total_ops"] == no_trace["total_ops"]
            assert probed["sustained_tokens_per_second"] == \
                no_trace["sustained_tokens_per_second"]
        if no_trace is not None:
            assert no_trace["peak_resident_ops"] < no_trace["total_ops"] / 10
        # Replay simulates the same load while skipping most rounds.  The
        # parity tests pin 1e-9 at test scale; across tens of thousands of
        # closed-form windows the reassociated float sums drift a little
        # further (observed ~3e-8 relative at the 16k rung), so the ladder
        # bar is 1e-7 relative.
        if replay is not None and kernel is not None:
            rel = abs(replay["makespan_seconds"] - kernel["makespan_seconds"])
            assert rel <= 1e-7 * kernel["makespan_seconds"]
            assert replay["total_ops"] == kernel["total_ops"]
            assert replay["replay_windows"] > 0
            assert replay["replay_ops"] > replay["total_ops"] / 2
        for mode in by_mode.values():
            assert mode["simulated_requests_per_second"] > 0
            assert mode["wall_seconds"] > 0

    speedups = payload["kernel_replay_speedup_over_no_trace"]
    if speedups:
        # The headline claim, at whatever sizes this run measured both
        # modes: the replay engine clears 4x over the scalar no-trace
        # baseline (the committed full ladder records >= 10x at 16k).
        assert max(speedups.values()) >= 4.0, speedups

    # Placement rungs: replay must engage and pay off on cached and
    # multi-GPU serving, with the same exact-counter parity as the plain
    # scenario (the committed artifact records >= 10x per rung).
    placement_speedups = payload["kernel_replay_speedup_over_kernel"][
        "placements"]
    for name, rung in payload["placements"].items():
        kernel, replay = rung["kernel"], rung["kernel_replay"]
        rel = abs(replay["makespan_seconds"] - kernel["makespan_seconds"])
        assert rel <= 1e-7 * kernel["makespan_seconds"], name
        assert replay["total_ops"] == kernel["total_ops"], name
        assert replay["replay_windows"] > 0, name
        assert placement_speedups[name] >= 5.0, (name, placement_speedups)

    print()
    print(f"simperf ({payload['design']}/{payload['config']}, "
          f"in={payload['scenario']['input_length']} "
          f"out={payload['scenario']['output_length']} batch=1):")
    for size, by_mode in sorted(payload["scaling"].items(),
                                key=lambda kv: int(kv[0])):
        for name, mode in by_mode.items():
            print(f"  {int(size):>6} req {name:>13}: "
                  f"{mode['simulated_requests_per_second']:8.1f} sim req/s  "
                  f"{mode['peak_resident_ops']:>8} peak resident ops  "
                  f"({mode['total_ops']} total ops, "
                  f"{mode['replay_rounds']} replayed rounds)")
    for size, speedup in sorted(speedups.items(), key=lambda kv: int(kv[0])):
        print(f"  {int(size):>6} req kernel_replay speedup over no_trace: "
              f"{speedup:.1f}x")
    for name, rung in payload["placements"].items():
        print(f"  [{name}] {rung['requests']} req: "
              f"kernel {rung['kernel']['simulated_requests_per_second']:.1f} "
              f"-> replay "
              f"{rung['kernel_replay']['simulated_requests_per_second']:.1f} "
              f"sim req/s ({placement_speedups[name]:.1f}x, "
              f"{rung['kernel_replay']['replay_rounds']} replayed rounds)")
