"""Serving under load — offered load × design × replica count sweep.

Beyond the paper: the paper measures one request at a time; this bench
drives the continuous-batching scheduler with a Poisson open-loop arrival
process and reports what production serving asks about — sustained
tokens/second and p50/p99 tail latency for time-to-first-token (TTFT) and
time-between-tokens (TBT) — then scales Pre-gated MoE across replica counts
and router policies.

Expected shape: Pre-gated MoE sustains at least MoE-OnDemand's throughput at
every load point (same migrated bytes, more overlap), and a single-request
workload through the scheduler reproduces the engine's ``run_request``
latency exactly (the backward-compatibility contract).
"""

import pytest

from conftest import ENGINE_CONFIG, emit
from repro.analysis import load_test_report
from repro.moe import get_config
from repro.serving import ContinuousBatchingScheduler, ReplicaCluster, make_engine
from repro.workloads import (
    POISSON_QA_LOAD,
    WorkloadSpec,
    generate_timed_requests,
    generate_traces,
)

DESIGNS = ("gpu_only", "pregated", "ondemand", "prefetch_all")
CONFIG_NAME = "switch_base_128"
#: Offered loads swept (requests/second).  The low point leaves the replica
#: mostly idle; the high point saturates every offloading design.
OFFERED_LOADS = (2.0, 8.0, 32.0)
REPLICA_COUNTS = (1, 2, 4)

#: Request shape for the load sweep, scaled down so the whole sweep runs in
#: seconds (the registered heavy-traffic specs are the full-size versions).
LOAD_WORKLOAD = WorkloadSpec(
    name="bench_load_qa",
    num_requests=8,
    input_length=16,
    output_length=16,
    batch_size=1,
    seed=0,
    description="QA-style request mix for the load sweep.",
)


def run_load_sweep():
    config = get_config(CONFIG_NAME)
    results = []
    for rate in OFFERED_LOADS:
        load = POISSON_QA_LOAD.with_overrides(request_rate=rate)
        requests = generate_timed_requests(config, load, workload=LOAD_WORKLOAD)
        for design in DESIGNS:
            scheduler = ContinuousBatchingScheduler(
                design, config, engine_config=ENGINE_CONFIG, max_batch_size=8)
            results.append(scheduler.serve(requests, offered_load=rate))
    return results


def run_replica_sweep():
    config = get_config(CONFIG_NAME)
    rate = max(OFFERED_LOADS)
    load = POISSON_QA_LOAD.with_overrides(request_rate=rate)
    requests = generate_timed_requests(config, load, workload=LOAD_WORKLOAD)
    results = []
    for num_replicas in REPLICA_COUNTS:
        for policy in ("round_robin", "least_loaded"):
            cluster = ReplicaCluster("pregated", config, num_replicas=num_replicas,
                                     policy=policy, engine_config=ENGINE_CONFIG,
                                     max_batch_size=8)
            results.append((policy, cluster.serve(requests, offered_load=rate)))
    return results


@pytest.mark.benchmark(group="serving_load")
def test_load_sweep_throughput_and_tails(benchmark, results_dir):
    results = benchmark.pedantic(run_load_sweep, rounds=1, iterations=1)
    report = load_test_report(
        results,
        figure="Serving load sweep",
        description=f"Poisson open-loop load on {CONFIG_NAME}, 1 replica",
        paper_reference="Beyond the paper (batch-1, single request); load behaviour "
                        "follows Figure 11's ordering: GPU-only > Pre-gated > "
                        "OnDemand >> Prefetch.",
    )
    emit(report, results_dir, "serving_load.csv")

    by_point = {(r.offered_load, r.design): r for r in results}
    for rate in OFFERED_LOADS:
        pregated = by_point[(rate, "pregated")]
        ondemand = by_point[(rate, "ondemand")]
        # Pre-gated must sustain at least OnDemand's throughput at every
        # swept load point (same transfers, strictly more overlap).
        assert (pregated.sustained_tokens_per_second
                >= ondemand.sustained_tokens_per_second * (1 - 1e-9)), rate
        assert pregated.ttft_stats.p99 <= ondemand.ttft_stats.p99 * (1 + 1e-9)
        # Every request completed; tail latency ordering is well-formed.
        assert pregated.num_requests == LOAD_WORKLOAD.num_requests
        assert pregated.ttft_stats.p50 <= pregated.ttft_stats.p99 + 1e-12
        assert pregated.tbt_stats.p50 <= pregated.tbt_stats.p99 + 1e-12


@pytest.mark.benchmark(group="serving_load")
def test_replica_scaling(benchmark, results_dir):
    sweeps = benchmark.pedantic(run_replica_sweep, rounds=1, iterations=1)
    combined = [result.combined() for _, result in sweeps]
    report = load_test_report(
        combined,
        figure="Replica scaling",
        description=f"Pre-gated MoE at {max(OFFERED_LOADS)} req/s across replica counts "
                    "(round-robin and least-loaded routing, alternating rows)",
    )
    emit(report, results_dir, "serving_replicas.csv")

    by_replicas = {}
    for (_, cluster_result), result in zip(sweeps, combined):
        by_replicas.setdefault(cluster_result.num_replicas, []).append(result)
    # More replicas must not lengthen the test: the slowest replica of an
    # N-way split finishes no later than the single replica serving everything.
    for policy_results in zip(*[by_replicas[n] for n in REPLICA_COUNTS]):
        makespans = [r.makespan for r in policy_results]
        assert makespans == sorted(makespans, reverse=True)


@pytest.mark.benchmark(group="serving_load")
def test_scheduler_matches_run_request_for_single_request(benchmark):
    """Backward-compat contract: 1 request through the scheduler == run_request."""
    config = get_config(CONFIG_NAME)
    single = LOAD_WORKLOAD.with_overrides(num_requests=1)
    [trace] = generate_traces(config, single)

    def run_both():
        diffs = {}
        for design in DESIGNS:
            engine = make_engine(design, config, engine_config=ENGINE_CONFIG)
            reference = engine.run_request(trace)
            scheduler = ContinuousBatchingScheduler(design, config,
                                                    engine_config=ENGINE_CONFIG)
            served = scheduler.serve([trace]).requests[0]
            diffs[design] = abs(served.completion_time - reference.total_time)
        return diffs

    diffs = benchmark.pedantic(run_both, rounds=1, iterations=1)
    for design, diff in diffs.items():
        assert diff < 1e-9, (design, diff)
