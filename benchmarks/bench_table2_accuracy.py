"""Table II — model accuracy: conventional MoE vs Pre-gated MoE.

Paper result: fine-tuned from the same pre-trained weights with the same
recipe, Pre-gated MoE matches (sometimes slightly exceeds, sometimes
slightly trails) the conventional architecture's Rouge-1/2, ExactMatch and
F1 across Xsum, CB-WebQA and SQuAD.

This bench runs the same protocol on the synthetic task substitutes with the
tiny functional models (see DESIGN.md for the substitution argument) and
checks that the accuracy gap stays small.
"""

import pytest

from conftest import emit
from repro.analysis import FigureReport
from repro.data import PAPER_TASK_SUBSTITUTIONS
from repro.training import TrainingConfig, compare_architectures

# Promoted from tiny_moe_8 (~243k params) to switch_mini_8 (~1.27M params,
# ~5.2x) once the vectorized tensor engine made the larger config train in
# CI time — see BENCH_tensorperf.json for the engine's throughput ladder.
MODEL = "switch_mini_8"
TRAINING = TrainingConfig(steps=120, batch_size=16, learning_rate=3e-3, seed=0)
TASKS = ("xsum_like", "webqa_like", "squad_like")

PAPER_ROWS = {
    # (task, architecture) -> headline paper metric, for the reference column.
    "xsum_like": "Base-128: R1 38.1 vs 38.0 (pre-gated)",
    "webqa_like": "Base-128: EM 27.4 vs 25.8 (pre-gated)",
    "squad_like": "Base-128: EM 81.7 vs 82.2 (pre-gated)",
}


def run_accuracy_study():
    comparisons = {}
    for task in TASKS:
        comparisons[task] = compare_architectures(
            MODEL, task, training=TRAINING, train_size=192, eval_size=48, seed=0)
    return comparisons


@pytest.mark.benchmark(group="table2")
def test_table2_accuracy(benchmark, results_dir):
    comparisons = benchmark.pedantic(run_accuracy_study, rounds=1, iterations=1)
    report = FigureReport(
        figure="Table II",
        description="Conventional vs Pre-gated accuracy on the synthetic task substitutes",
        headers=["task", "architecture", "Rouge-1", "Rouge-2", "ExactMatch", "F1",
                 "paper reference"],
        paper_reference="Pre-gated MoE matches conventional MoE accuracy across tasks.",
        notes="Synthetic substitutes for Xsum / CB-WebQA / SQuAD; see DESIGN.md.",
    )
    substitution = {v: k for k, v in PAPER_TASK_SUBSTITUTIONS.items()}
    for task, comparison in comparisons.items():
        for outcome in (comparison.conventional, comparison.pregated):
            scores = outcome.scores
            report.add_row(f"{task} ({substitution[task]})", outcome.architecture,
                           round(scores.rouge1, 1), round(scores.rouge2, 1),
                           round(scores.exact_match, 1), round(scores.f1, 1),
                           PAPER_ROWS[task])
    emit(report, results_dir, "table2_accuracy.csv")

    for task, comparison in comparisons.items():
        metric = "rouge1" if task == "xsum_like" else "exact_match"
        conventional = comparison.conventional.metric(metric)
        pregated = comparison.pregated.metric(metric)
        # Both architectures must have learned the task...
        assert conventional > 30.0, f"{task}: conventional failed to learn"
        assert pregated > 30.0, f"{task}: pre-gated failed to learn"
        # ... and the pre-gate must not cost a large accuracy drop.
        assert pregated - conventional > -25.0, f"{task}: pre-gated dropped too far"
