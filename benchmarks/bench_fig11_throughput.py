"""Figure 11 — end-to-end inference throughput (tokens/second).

Paper result: Pre-gated MoE reaches ~111 tokens/s on Switch-Base (81% of
GPU-only), ~1.5x over MoE-OnDemand and ~27x (up to 55x) over MoE-Prefetch;
42 tokens/s on Switch-Large where GPU-only OOMs.
"""

import pytest

from conftest import ENGINE_CONFIG, PERF_WORKLOAD, emit
from repro.analysis import FigureReport
from repro.moe import PERFORMANCE_CONFIGS, get_config
from repro.serving import DESIGN_LABELS, compare_designs
from repro.workloads import generate_traces

DESIGNS = ("gpu_only", "pregated", "ondemand", "prefetch_all")


def run_throughput_study():
    table = {}
    for name in PERFORMANCE_CONFIGS:
        config = get_config(name)
        traces = generate_traces(config, PERF_WORKLOAD)
        results = compare_designs(config, traces, designs=DESIGNS, engine_config=ENGINE_CONFIG)
        table[name] = {
            "throughput": {d: r.aggregate_tokens_per_second for d, r in results.items()
                           if not r.oom},
            "oom": [d for d, r in results.items() if r.oom],
        }
    return table


@pytest.mark.benchmark(group="fig11")
def test_fig11_end_to_end_throughput(benchmark, results_dir):
    table = benchmark.pedantic(run_throughput_study, rounds=1, iterations=1)
    report = FigureReport(
        figure="Figure 11",
        description="End-to-end inference throughput (tokens/s)",
        headers=["config", "design", "tokens/s"],
        paper_reference="Pre-gated ~111 tok/s on Switch-Base (81% of GPU-only), "
                        "1.5x over OnDemand, 27-55x over Prefetch; 42 tok/s on Switch-Large.",
    )
    for name, entry in table.items():
        for design in DESIGNS:
            if design in entry["oom"]:
                report.add_row(name, DESIGN_LABELS[design], "OOM")
            else:
                report.add_row(name, DESIGN_LABELS[design],
                               round(entry["throughput"][design], 1))
    emit(report, results_dir, "throughputs.csv")

    base_128 = table["switch_base_128"]["throughput"]
    assert base_128["pregated"] / base_128["gpu_only"] > 0.5
    assert base_128["pregated"] / base_128["ondemand"] > 1.2
    assert base_128["pregated"] / base_128["prefetch_all"] > 15
    large = table["switch_large_128"]
    assert "gpu_only" in large["oom"]
    assert large["throughput"]["pregated"] > large["throughput"]["ondemand"]
    assert large["throughput"]["pregated"] / large["throughput"]["prefetch_all"] > 15
