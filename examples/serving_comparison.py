"""Serving-system comparison across model scales (Figures 10-12 in one script).

Sweeps the paper's model configurations (Switch-Base 8/64/128 experts and
Switch-Large 128) through the four system designs and prints, per
configuration:

* average MoE block latency (normalised to GPU-only, or to Pre-gated MoE
  when GPU-only is out of memory — exactly how the paper normalises),
* end-to-end throughput in tokens per second,
* peak GPU memory in GB.

Run with:  python examples/serving_comparison.py
"""

from repro.analysis import format_table, pick_reference
from repro.moe import PERFORMANCE_CONFIGS, get_config
from repro.serving import DESIGN_LABELS, compare_designs
from repro.workloads import SQUAD_SINGLE_BATCH, generate_traces

DESIGNS = ("gpu_only", "pregated", "ondemand", "prefetch_all")
WORKLOAD = SQUAD_SINGLE_BATCH.with_overrides(num_requests=2, input_length=16, output_length=16)


def main() -> None:
    for name in PERFORMANCE_CONFIGS:
        config = get_config(name)
        print("=" * 78)
        print(f"{config.label}  —  {config.total_params() / 1e9:.1f}B parameters, "
              f"{config.total_bytes() / 1e9:.1f} GB")
        print("=" * 78)

        traces = generate_traces(config, WORKLOAD)
        results = compare_designs(config, traces, designs=DESIGNS)
        oom = [d for d, r in results.items() if r.oom]
        reference = pick_reference(["gpu_only", "pregated"], oom)
        reference_latency = results[reference].mean_block_latency

        rows = []
        for design in DESIGNS:
            result = results[design]
            if result.oom:
                rows.append([DESIGN_LABELS[design], "OOM", "-", "-", "-"])
                continue
            rows.append([
                DESIGN_LABELS[design],
                f"{result.mean_block_latency * 1e3:.3f}",
                f"{result.mean_block_latency / reference_latency:.2f}x",
                f"{result.aggregate_tokens_per_second:.1f}",
                f"{result.peak_gpu_bytes / 1e9:.2f}",
            ])
        print(format_table(
            ["design", "block latency (ms)", f"normalised (vs {DESIGN_LABELS[reference]})",
             "tokens/s", "peak GPU (GB)"],
            rows))
        print()


if __name__ == "__main__":
    main()
