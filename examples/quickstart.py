"""Quickstart: the Pre-gated MoE algorithm and system in one script.

This example walks through the two halves of the paper's co-design:

1. **Algorithm** — build a tiny pre-gated Switch-Transformer, initialise it
   from a conventional model's weights, fine-tune it briefly on a synthetic
   closed-book QA task and show it matches the conventional model's accuracy.
2. **System** — serve a paper-scale configuration (Switch-Base, 64 experts)
   with all four system designs (GPU-only, Pre-gated, OnDemand, Prefetch) on
   the simulated A100 + PCIe machine and compare per-block latency,
   throughput and peak GPU memory.

Run with:  python examples/quickstart.py
"""

from repro.analysis import format_table
from repro.data import ClosedBookQATask, default_vocabulary, train_eval_split
from repro.moe import SwitchTransformer, get_config
from repro.core import PreGatedSwitchTransformer
from repro.serving import DESIGN_LABELS, compare_designs
from repro.training import Trainer, TrainingConfig
from repro.workloads import TraceGenerator


def algorithm_demo() -> None:
    print("=" * 70)
    print("Part 1 — the pre-gate algorithm (tiny functional model)")
    print("=" * 70)

    config = get_config("tiny_moe_4")
    tokenizer = default_vocabulary(config.vocab_size - 4)
    task = ClosedBookQATask(tokenizer=tokenizer, seed=0)
    train_set, eval_set = train_eval_split(task, train_size=96, eval_size=24,
                                           tokenizer=tokenizer)
    recipe = TrainingConfig(steps=60, batch_size=16, learning_rate=3e-3, seed=0)

    conventional = SwitchTransformer(config, seed=0)
    conventional_trainer = Trainer(conventional, recipe)
    conventional_trainer.fit(train_set)
    conventional_scores = conventional_trainer.evaluate(eval_set, tokenizer)

    # The pre-gated model reuses the conventional weights (Section IV-B) and
    # trains its pre-gates during the same fine-tuning recipe.
    pregated = PreGatedSwitchTransformer(config, activation_level=1, seed=1)
    pregated.load_from_conventional(conventional)
    pregated_trainer = Trainer(pregated, recipe)
    pregated_trainer.fit(train_set)
    pregated_scores = pregated_trainer.evaluate(eval_set, tokenizer)

    print(format_table(
        ["architecture", "ExactMatch", "F1"],
        [["conventional MoE", conventional_scores.exact_match, conventional_scores.f1],
         ["Pre-gated MoE (N=1)", pregated_scores.exact_match, pregated_scores.f1]],
        float_format="{:.1f}"))
    print()


def system_demo() -> None:
    print("=" * 70)
    print("Part 2 — the serving system (Switch-Base, 64 experts, simulated A100)")
    print("=" * 70)

    config = get_config("switch_base_64")
    traces = TraceGenerator(config, seed=0).workload(
        num_requests=2, input_length=16, output_length=16)
    results = compare_designs(config, traces)

    rows = []
    for design, result in results.items():
        if result.oom:
            rows.append([DESIGN_LABELS[design], "OOM", "-", "-"])
            continue
        rows.append([DESIGN_LABELS[design],
                     result.mean_block_latency * 1e3,
                     result.aggregate_tokens_per_second,
                     result.peak_gpu_bytes / 1e9])
    print(format_table(
        ["design", "MoE block latency (ms)", "throughput (tok/s)", "peak GPU mem (GB)"],
        rows, float_format="{:.2f}"))
    print()
    print("Pre-gated MoE tracks the oracular GPU-only latency while using a")
    print("fraction of its GPU memory — the paper's headline result.")


if __name__ == "__main__":
    algorithm_demo()
    system_demo()
