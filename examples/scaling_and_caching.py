"""Scaling study: serving Switch-Large / Switch-XXL on one GPU, caching, SSD.

Reproduces the paper's scalability discussion (Sections VI-B and VI-D):

1. Switch-Large (105.6 GB) does not fit on an 80 GB A100, so GPU-only OOMs;
   the offloading designs — and in particular Pre-gated MoE — serve it on a
   single GPU.
2. With a hot-expert (skewed-routing) workload, caching experts in GPU
   memory (LIFO / LFU / LRU) recovers throughput, more so for MoE-OnDemand
   than for Pre-gated MoE (Figure 15).
3. Offloading experts to SSD instead of CPU DRAM (to fit Switch-XXL's 395B
   parameters) slows every design; Pre-gated MoE remains the fastest
   (Figure 16).
4. Under continuous batching, the shared refcounted residency map caches
   experts *across* concurrent requests: repeat activations skip the
   CPU→GPU link entirely, cutting transfer volume under load.
5. With experts on SSD, a host-DRAM staging cache turns the two-hop
   SSD→DRAM→GPU fetch into a single PCIe hop for staged experts, cutting
   SSD reads and recovering throughput — the tiered-memory path.

Run with:  python examples/scaling_and_caching.py
"""

from repro.analysis import format_table
from repro.moe import get_config
from repro.serving import DESIGN_LABELS, compare_designs, make_engine, make_scheduler
from repro.system import ExpertCache, SSD_SYSTEM, cache_capacity_from_fraction
from repro.workloads import TimedRequest, TraceGenerator


def single_gpu_switch_large() -> None:
    print("=" * 72)
    print("1. Serving Switch-Large (105.6 GB) on one 80 GB A100")
    print("=" * 72)
    config = get_config("switch_large_128")
    traces = TraceGenerator(config, seed=0).workload(2, input_length=8, output_length=12)
    results = compare_designs(config, traces)
    rows = []
    for design, result in results.items():
        if result.oom:
            rows.append([DESIGN_LABELS[design], "OOM — model larger than HBM", "-"])
        else:
            rows.append([DESIGN_LABELS[design],
                         f"{result.aggregate_tokens_per_second:.1f}",
                         f"{result.peak_gpu_bytes / 1e9:.1f}"])
    print(format_table(["design", "tokens/s", "peak GPU (GB)"], rows))
    print()


def expert_caching() -> None:
    print("=" * 72)
    print("2. Expert caching under a hot-expert workload (Figure 15)")
    print("=" * 72)
    config = get_config("switch_large_128")
    generator = TraceGenerator(config, skew=1.5, seed=1)
    traces = generator.workload(2, input_length=8, output_length=12)

    rows = []
    for design in ("pregated", "ondemand"):
        baseline = make_engine(design, config).run_workload(traces).aggregate_tokens_per_second
        rows.append([DESIGN_LABELS[design], "no cache", f"{baseline:.2f}", "1.00x"])
        for policy in ("lifo", "lfu", "lru"):
            capacity = cache_capacity_from_fraction(config.num_moe_blocks("all"),
                                                    config.num_experts, 0.20)
            cache = ExpertCache(capacity_experts=capacity, policy=policy)
            tput = make_engine(design, config, cache=cache).run_workload(traces) \
                .aggregate_tokens_per_second
            rows.append([DESIGN_LABELS[design], f"{policy.upper()} @ 20%",
                         f"{tput:.2f}", f"{tput / baseline:.2f}x"])
    print(format_table(["design", "cache", "tokens/s", "vs no cache"], rows))
    print()


def ssd_offloading() -> None:
    print("=" * 72)
    print("3. SSD offloading for Switch-Large and Switch-XXL (Figure 16)")
    print("=" * 72)
    rows = []
    for name in ("switch_large_128", "switch_xxl"):
        config = get_config(name)
        traces = TraceGenerator(config, seed=2).workload(1, input_length=8, output_length=8)
        results = compare_designs(config, traces, designs=("pregated", "ondemand", "prefetch_all"),
                                  system=SSD_SYSTEM)
        reference = results["pregated"].aggregate_tokens_per_second
        for design, result in results.items():
            rows.append([config.label, DESIGN_LABELS[design],
                         f"{result.aggregate_tokens_per_second:.3f}",
                         f"{result.aggregate_tokens_per_second / reference:.2f}x"])
    print(format_table(["model", "design", "tokens/s", "vs Pre-gated"], rows))
    print()
    print("SSD bandwidth dominates every design's latency, but Pre-gated MoE")
    print("remains the fastest CPU-GPU design — the paper's Figure 16 takeaway.")


def shared_residency_under_load() -> None:
    print()
    print("=" * 72)
    print("4. Shared expert residency under continuous batching")
    print("=" * 72)
    config = get_config("switch_base_64")
    traces = TraceGenerator(config, skew=1.5, seed=3).workload(
        6, input_length=8, output_length=8)
    requests = [TimedRequest(request_id=i, arrival_time=0.05 * i, trace=t)
                for i, t in enumerate(traces)]

    rows = []
    uncached = make_scheduler("pregated", config, max_batch_size=4).serve(requests)
    rows.append(["no cache", f"{uncached.expert_bytes_transferred / 1e9:.2f}",
                 "-", "-", f"{uncached.sustained_tokens_per_second:.1f}"])
    for policy in ("lifo", "lfu", "lru"):
        cached = make_scheduler("pregated", config, max_batch_size=4,
                                cache_policy=policy, cache_capacity=128).serve(requests)
        stats = cached.cache_stats
        rows.append([f"{policy.upper()} @ 128 experts",
                     f"{cached.expert_bytes_transferred / 1e9:.2f}",
                     f"{stats.hit_rate:.2f}", f"{stats.bytes_saved / 1e9:.2f}",
                     f"{cached.sustained_tokens_per_second:.1f}"])
    print(format_table(["cache", "GB transferred", "hit rate", "GB saved",
                        "tokens/s"], rows))
    print()
    print("Concurrent requests pin shared experts while they compute; the")
    print("replacement policy only ever evicts unpinned entries.")


def ssd_with_dram_staging() -> None:
    print()
    print("=" * 72)
    print("5. SSD offload with a host-DRAM staging cache (tiered memory)")
    print("=" * 72)
    config = get_config("switch_base_64")
    traces = TraceGenerator(config, skew=1.5, seed=4).workload(
        4, input_length=8, output_length=8)
    requests = [TimedRequest(request_id=i, arrival_time=0.25 * i, trace=t)
                for i, t in enumerate(traces)]

    rows = []
    for design in ("pregated", "ondemand"):
        for capacity in (None, 256):
            scheduler = make_scheduler(
                design, config, system=SSD_SYSTEM, max_batch_size=4,
                stage_policy="lru" if capacity is not None else None,
                stage_capacity=capacity)
            result = scheduler.serve(requests)
            stats = result.tier_stats
            rows.append([
                DESIGN_LABELS[design],
                "w/o stage" if capacity is None else f"LRU @ {capacity}",
                f"{stats.ssd_bytes_read / 1e9:.2f}",
                f"{stats.pcie_bytes / 1e9:.2f}",
                f"{result.stage_hit_rate:.2f}" if result.stage_hit_rate is not None
                else "-",
                f"{result.sustained_tokens_per_second:.1f}",
            ])
    print(format_table(["design", "DRAM stage", "SSD GB read", "PCIe GB",
                        "stage hit rate", "tokens/s"], rows))
    print()
    print("Staged experts skip the SSD read entirely — only the PCIe hop")
    print("remains — so a warm stage cuts the coldest tier's traffic while")
    print("every fetch still crosses PCIe into HBM (faster runs repack")
    print("rounds, so PCIe volume can shift slightly with dedup).")


if __name__ == "__main__":
    single_gpu_switch_large()
    expert_caching()
    ssd_offloading()
    shared_residency_under_load()
    ssd_with_dram_staging()
