"""Accuracy study: does pre-gating hurt model quality? (Table II / Figure 13)

Fine-tunes the conventional and pre-gated architectures from the same
"pre-trained" weights on each of the three synthetic downstream-task
substitutes (summarisation, closed-book QA, extractive QA) and prints the
Table II style comparison, followed by the Figure 13 activation-level sweep
(pre-gating 1, 2 or 3 blocks ahead).

Run with:  python examples/accuracy_study.py
"""

from repro.analysis import format_table
from repro.data import PAPER_TASK_SUBSTITUTIONS
from repro.training import TrainingConfig, activation_level_sweep, compare_architectures

MODEL = "tiny_moe_8"
RECIPE = TrainingConfig(steps=60, batch_size=16, learning_rate=3e-3, seed=0)


def table2_study() -> None:
    print("=" * 72)
    print("Table II — conventional MoE vs Pre-gated MoE, per downstream task")
    print("=" * 72)
    rows = []
    for paper_dataset, task_name in PAPER_TASK_SUBSTITUTIONS.items():
        comparison = compare_architectures(MODEL, task_name, training=RECIPE,
                                           train_size=192, eval_size=48, seed=0)
        for outcome in (comparison.conventional, comparison.pregated):
            scores = outcome.scores
            rows.append([f"{paper_dataset} ({task_name})", outcome.architecture,
                         scores.rouge1, scores.rouge2, scores.exact_match, scores.f1])
    print(format_table(["task", "architecture", "R1", "R2", "EM", "F1"], rows,
                       float_format="{:.1f}"))
    print()


def figure13_study() -> None:
    print("=" * 72)
    print("Figure 13 — accuracy vs pre-gate activation level (SQuAD-like task)")
    print("=" * 72)
    outcomes = activation_level_sweep(MODEL, "squad_like", levels=(1, 2, 3),
                                      training=RECIPE, train_size=192, eval_size=48, seed=0)
    rows = [[variant, outcome.scores.exact_match, outcome.scores.f1]
            for variant, outcome in outcomes.items()]
    print(format_table(["variant", "ExactMatch", "F1"], rows, float_format="{:.1f}"))
    print()
    print("The pre-gate (N=1) keeps accuracy at the conventional gate's level;")
    print("selecting further ahead (N=2, N=3) uses staler information and tends")
    print("to cost accuracy — matching the paper's observation.")


if __name__ == "__main__":
    table2_study()
    figure13_study()
