"""Tests for the router (gate function) and the load-balancing loss."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.moe.gating import Router, load_balancing_loss
from repro.tensor import Tensor
from repro.tensor import functional as F


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestRouter:
    def test_routing_decision_shapes(self, rng):
        router = Router(d_model=16, num_experts=8, top_k=2, rng=rng)
        decision = router(Tensor(rng.standard_normal((10, 16))))
        assert decision.expert_indices.shape == (10, 2)
        assert decision.expert_weights.shape == (10, 2)
        assert decision.router_probs.shape == (10, 8)
        assert decision.num_tokens == 10
        assert decision.top_k == 2

    def test_weights_renormalised(self, rng):
        router = Router(16, 8, top_k=3, rng=rng)
        decision = router(Tensor(rng.standard_normal((5, 16))))
        assert np.allclose(decision.expert_weights.sum(axis=-1), 1.0)

    def test_indices_in_range_and_distinct_per_token(self, rng):
        router = Router(16, 6, top_k=3, rng=rng)
        decision = router(Tensor(rng.standard_normal((20, 16))))
        assert decision.expert_indices.min() >= 0
        assert decision.expert_indices.max() < 6
        for row in decision.expert_indices:
            assert len(set(row.tolist())) == 3

    def test_activated_experts_sorted_unique(self, rng):
        router = Router(16, 8, rng=rng)
        decision = router(Tensor(rng.standard_normal((30, 16))))
        acts = decision.activated_experts
        assert acts == sorted(set(acts))

    def test_top_k_override(self, rng):
        router = Router(16, 8, top_k=1, rng=rng)
        decision = router(Tensor(rng.standard_normal((4, 16))), top_k=4)
        assert decision.expert_indices.shape == (4, 4)

    def test_top1_selects_argmax_of_probs(self, rng):
        router = Router(16, 8, top_k=1, rng=rng)
        router.eval()
        hidden = Tensor(rng.standard_normal((12, 16)))
        decision = router(hidden)
        probs = decision.router_probs.numpy()
        assert np.array_equal(decision.expert_indices[:, 0], probs.argmax(axis=-1))

    def test_requires_2d_input(self, rng):
        router = Router(16, 4, rng=rng)
        with pytest.raises(ValueError):
            router(Tensor(rng.standard_normal((2, 3, 16))))

    def test_invalid_topk(self, rng):
        with pytest.raises(ValueError):
            Router(16, 4, top_k=5)
        router = Router(16, 4, rng=rng)
        with pytest.raises(ValueError):
            router(Tensor(rng.standard_normal((2, 16))), top_k=9)

    def test_jitter_only_in_training(self, rng):
        router = Router(16, 4, jitter=0.5, rng=np.random.default_rng(1))
        hidden = rng.standard_normal((6, 16))
        router.eval()
        a = router(Tensor(hidden)).router_probs.numpy()
        b = router(Tensor(hidden)).router_probs.numpy()
        assert np.allclose(a, b)

    def test_tokens_for_expert(self, rng):
        router = Router(16, 4, rng=rng)
        decision = router(Tensor(rng.standard_normal((10, 16))))
        for expert in decision.activated_experts:
            tokens = decision.tokens_for_expert(expert)
            assert all(expert in decision.expert_indices[t] for t in tokens)

    def test_gate_is_differentiable(self, rng):
        router = Router(16, 4, rng=rng)
        hidden = Tensor(rng.standard_normal((8, 16)), requires_grad=True)
        decision = router(hidden)
        decision.aux_loss.backward()
        assert router.classifier.weight.grad is not None


class TestLoadBalancingLoss:
    def test_uniform_routing_gives_unity(self):
        """Perfectly balanced routing gives a loss of ~1 (the Switch optimum)."""
        num_experts, tokens = 4, 1000
        probs = Tensor(np.full((tokens, num_experts), 1.0 / num_experts))
        indices = np.tile(np.arange(num_experts), tokens // num_experts)[:, None]
        loss = load_balancing_loss(probs, indices, num_experts)
        assert loss.item() == pytest.approx(1.0, rel=1e-6)

    def test_collapsed_routing_is_penalised(self):
        num_experts, tokens = 4, 100
        probs_arr = np.zeros((tokens, num_experts))
        probs_arr[:, 0] = 1.0
        loss = load_balancing_loss(Tensor(probs_arr), np.zeros((tokens, 1), dtype=int), num_experts)
        assert loss.item() == pytest.approx(float(num_experts))

    def test_empty_batch_gives_zero(self):
        loss = load_balancing_loss(Tensor(np.zeros((0, 4))), np.zeros((0, 1), dtype=int), 4)
        assert loss.item() == 0.0

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           num_experts=st.integers(min_value=2, max_value=16))
    def test_property_loss_at_least_one_for_softmax_probs(self, seed, num_experts):
        """For any softmax routing, the Switch load-balancing loss is >= ~1."""
        rng = np.random.default_rng(seed)
        logits = rng.standard_normal((64, num_experts))
        probs = F.softmax(Tensor(logits)).numpy()
        indices = probs.argmax(axis=-1)[:, None]
        loss = load_balancing_loss(Tensor(probs), indices, num_experts)
        assert loss.item() >= 0.99
