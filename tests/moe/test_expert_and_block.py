"""Tests for experts, the expert pool and the conventional MoE block."""

import numpy as np
import pytest

from repro.moe.expert import Expert, ExpertPool
from repro.moe.gating import RoutingDecision
from repro.moe.moe_block import MoEBlock
from repro.tensor import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def manual_routing(num_tokens, experts_per_token):
    """Build a RoutingDecision with explicit expert assignments (weight 1.0)."""
    indices = np.asarray(experts_per_token).reshape(num_tokens, -1)
    weights = np.ones_like(indices, dtype=np.float64)
    weights = weights / weights.sum(axis=-1, keepdims=True)
    num_experts = int(indices.max()) + 1
    probs = Tensor(np.full((num_tokens, num_experts), 1.0 / num_experts))
    return RoutingDecision(
        expert_indices=indices, expert_weights=weights, router_probs=probs,
        activated_experts=sorted(set(int(e) for e in indices.ravel())),
        aux_loss=Tensor(0.0))


class TestExpert:
    def test_expert_is_an_ffn(self, rng):
        expert = Expert(expert_id=3, d_model=8, d_ff=16, rng=rng)
        assert expert.expert_id == 3
        out = expert(Tensor(rng.standard_normal((4, 8))))
        assert out.shape == (4, 8)

    def test_param_count(self, rng):
        expert = Expert(0, d_model=8, d_ff=32, rng=rng)
        assert expert.num_params == 2 * 8 * 32


class TestExpertPool:
    def test_pool_size_and_indexing(self, rng):
        pool = ExpertPool(4, d_model=8, d_ff=16, rng=rng)
        assert len(pool) == 4
        assert pool[2].expert_id == 2

    def test_forward_routes_tokens_to_selected_experts(self, rng):
        pool = ExpertPool(3, d_model=8, d_ff=16, rng=rng)
        hidden = Tensor(rng.standard_normal((4, 8)))
        routing = manual_routing(4, [[0], [1], [2], [0]])
        out = pool(hidden, routing)
        assert out.shape == (4, 8)
        # Token 0 and 3 went to expert 0: identical inputs give identical outputs.
        same_in = Tensor(np.stack([hidden.numpy()[0], hidden.numpy()[0]]))
        same_routing = manual_routing(2, [[0], [0]])
        same_out = pool(same_in, same_routing).numpy()
        assert np.allclose(same_out[0], same_out[1])

    def test_output_is_weighted_combination_for_top2(self, rng):
        pool = ExpertPool(2, d_model=6, d_ff=12, rng=rng)
        hidden = Tensor(rng.standard_normal((1, 6)))
        both = pool(hidden, manual_routing(1, [[0, 1]])).numpy()
        only0 = pool(hidden, manual_routing(1, [[0]])).numpy()
        only1 = pool(hidden, manual_routing(1, [[1]])).numpy()
        assert np.allclose(both, 0.5 * only0 + 0.5 * only1, atol=1e-10)

    def test_token_count_mismatch_raises(self, rng):
        pool = ExpertPool(2, 6, 12, rng=rng)
        with pytest.raises(ValueError):
            pool(Tensor(rng.standard_normal((3, 6))), manual_routing(2, [[0], [1]]))

    def test_expert_param_counts(self, rng):
        pool = ExpertPool(3, 4, 8, rng=rng)
        counts = pool.expert_param_counts()
        assert set(counts) == {0, 1, 2}
        assert all(v == 2 * 4 * 8 for v in counts.values())

    def test_gradients_only_for_activated_experts(self, rng):
        pool = ExpertPool(3, d_model=6, d_ff=12, rng=rng)
        hidden = Tensor(rng.standard_normal((2, 6)), requires_grad=True)
        routing = manual_routing(2, [[0], [0]])
        out = pool(hidden, routing)
        (out * out).sum().backward()
        assert pool[0].ffn.wi.weight.grad is not None
        assert pool[1].ffn.wi.weight.grad is None
        assert pool[2].ffn.wi.weight.grad is None

    def test_invalid_expert_count(self):
        with pytest.raises(ValueError):
            ExpertPool(0, 4, 8)


class TestMoEBlock:
    def test_forward_returns_output_and_routing(self, rng):
        block = MoEBlock(d_model=8, d_ff=16, num_experts=4, rng=rng)
        hidden = Tensor(rng.standard_normal((6, 8)))
        out, routing = block(hidden)
        assert out.shape == (6, 8)
        assert isinstance(routing, RoutingDecision)
        assert routing.num_tokens == 6

    def test_selection_precedes_execution(self, rng):
        """The block's own gate decides which experts execute (the sequential dependency)."""
        block = MoEBlock(d_model=8, d_ff=16, num_experts=4, top_k=1, rng=rng)
        block.eval()
        hidden = Tensor(rng.standard_normal((5, 8)))
        out, routing = block(hidden)
        # Re-executing with the recorded routing reproduces the output exactly.
        replay = block.execute_with_routing(hidden, routing)
        assert np.allclose(out.numpy(), replay.numpy())

    def test_external_routing_changes_output(self, rng):
        block = MoEBlock(d_model=8, d_ff=16, num_experts=4, top_k=1, rng=rng)
        block.eval()
        hidden = Tensor(rng.standard_normal((3, 8)))
        out, routing = block(hidden)
        other = manual_routing(3, [[(int(routing.expert_indices[0, 0]) + 1) % 4],
                                   [(int(routing.expert_indices[1, 0]) + 1) % 4],
                                   [(int(routing.expert_indices[2, 0]) + 1) % 4]])
        forced = block.execute_with_routing(hidden, other)
        assert not np.allclose(out.numpy(), forced.numpy())

    def test_top_k_override_at_call_time(self, rng):
        block = MoEBlock(8, 16, num_experts=8, top_k=1, rng=rng)
        _, routing = block(Tensor(rng.standard_normal((2, 8))), top_k=4)
        assert routing.expert_indices.shape[1] == 4

    def test_block_index_recorded(self, rng):
        block = MoEBlock(8, 16, 4, block_index=7, rng=rng)
        assert block.block_index == 7
