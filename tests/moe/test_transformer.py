"""Tests for the conventional Switch-Transformer model."""

import numpy as np
import pytest

from repro.moe import SwitchTransformer, get_config
from repro.moe.transformer import _moe_layer_positions
from repro.tensor import functional as F
from repro.tensor import Adam


@pytest.fixture(scope="module")
def tiny_moe_model():
    return SwitchTransformer(get_config("tiny_moe_4"), seed=0)


@pytest.fixture(scope="module")
def tiny_dense_model():
    return SwitchTransformer(get_config("tiny_dense"), seed=0)


@pytest.fixture
def rng():
    return np.random.default_rng(1)


class TestMoELayerPositions:
    def test_every_other_layer(self):
        assert _moe_layer_positions(12, 2) == [1, 3, 5, 7, 9, 11]

    def test_every_layer(self):
        assert _moe_layer_positions(4, 1) == [0, 1, 2, 3]

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            _moe_layer_positions(4, 0)


class TestForward:
    def test_logits_shape(self, tiny_moe_model, rng):
        cfg = tiny_moe_model.config
        src = rng.integers(4, cfg.vocab_size, (2, 9))
        tgt = rng.integers(4, cfg.vocab_size, (2, 5))
        out = tiny_moe_model(src, tgt)
        assert out.logits.shape == (2, 5, cfg.vocab_size)

    def test_routing_trace_covers_all_moe_blocks(self, tiny_moe_model, rng):
        cfg = tiny_moe_model.config
        src = rng.integers(4, cfg.vocab_size, (1, 6))
        tgt = rng.integers(4, cfg.vocab_size, (1, 4))
        out = tiny_moe_model(src, tgt)
        expected = cfg.num_moe_blocks("all")
        assert len(out.routing_trace) == expected
        stacks = {(e.stack, e.moe_block_index) for e in out.routing_trace}
        assert len(stacks) == expected

    def test_aux_loss_positive_for_moe(self, tiny_moe_model, rng):
        cfg = tiny_moe_model.config
        out = tiny_moe_model(rng.integers(4, cfg.vocab_size, (1, 6)),
                             rng.integers(4, cfg.vocab_size, (1, 4)))
        assert out.aux_loss.item() > 0

    def test_dense_model_has_no_routing(self, tiny_dense_model, rng):
        cfg = tiny_dense_model.config
        out = tiny_dense_model(rng.integers(4, cfg.vocab_size, (1, 6)),
                               rng.integers(4, cfg.vocab_size, (1, 4)))
        assert out.routing_trace == []
        assert out.aux_loss.item() == 0.0

    def test_padding_mask_blocks_pad_influence(self, rng):
        model = SwitchTransformer(get_config("tiny_moe_4"), seed=3)
        model.eval()
        cfg = model.config
        src = rng.integers(4, cfg.vocab_size, (1, 6))
        src_padded = src.copy()
        src_padded[0, -2:] = 0
        mask = src_padded == 0
        tgt = rng.integers(4, cfg.vocab_size, (1, 3))
        out1 = model(src_padded, tgt, input_padding_mask=mask).logits.numpy()
        src_other = src_padded.copy()
        src_other[0, -1] = 5  # change a padded position but keep masking it
        out2 = model(src_other, tgt, input_padding_mask=mask).logits.numpy()
        assert np.allclose(out1, out2, atol=1e-8)


class TestTraining:
    def test_loss_decreases_over_steps(self, rng):
        cfg = get_config("tiny_moe_4")
        model = SwitchTransformer(cfg, seed=2)
        opt = Adam(model.parameters(), lr=2e-3)
        src = rng.integers(4, cfg.vocab_size, (8, 6))
        tgt = rng.integers(4, cfg.vocab_size, (8, 4))
        losses = []
        for _ in range(12):
            out = model(src, tgt)
            loss = F.cross_entropy(out.logits, tgt) + out.aux_loss * 0.01
            model.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]

    def test_gradients_reach_embedding_and_experts(self, rng):
        cfg = get_config("tiny_moe_4")
        model = SwitchTransformer(cfg, seed=4)
        src = rng.integers(4, cfg.vocab_size, (2, 5))
        tgt = rng.integers(4, cfg.vocab_size, (2, 3))
        out = model(src, tgt)
        (F.cross_entropy(out.logits, tgt) + out.aux_loss).backward()
        assert model.embedding.weight.grad is not None
        moe_grads = [p.grad is not None for name, p in model.named_parameters()
                     if ".moe.experts." in name and name.endswith("wi.weight")]
        assert any(moe_grads)


class TestGeneration:
    def test_greedy_decode_shapes_and_bos(self, tiny_moe_model, rng):
        cfg = tiny_moe_model.config
        src = rng.integers(4, cfg.vocab_size, (3, 5))
        generated, traces = tiny_moe_model.greedy_decode(src, bos_id=1, eos_id=2,
                                                         max_new_tokens=4)
        assert generated.shape[0] == 3
        assert generated.shape[1] <= 5
        assert (generated[:, 0] == 1).all()
        assert traces == []

    def test_collect_trace_records_each_iteration(self, tiny_moe_model, rng):
        cfg = tiny_moe_model.config
        src = rng.integers(4, cfg.vocab_size, (1, 5))
        generated, traces = tiny_moe_model.greedy_decode(
            src, bos_id=1, eos_id=2, max_new_tokens=3, collect_trace=True)
        # First trace entry is the encoder pass, the rest are decoder iterations.
        assert len(traces) == generated.shape[1]  # encoder + (len-1) decode steps
        decoder_blocks = cfg.num_moe_blocks("decoder")
        for step_trace in traces[1:]:
            assert len([e for e in step_trace if e.stack == "decoder"]) == decoder_blocks

    def test_eos_stops_generation(self, rng):
        cfg = get_config("tiny_moe_4")
        model = SwitchTransformer(cfg, seed=5)
        src = rng.integers(4, cfg.vocab_size, (2, 4))
        generated, _ = model.greedy_decode(src, bos_id=1, eos_id=2, max_new_tokens=20)
        assert generated.shape[1] <= 21

    def test_decode_is_deterministic(self, tiny_moe_model, rng):
        cfg = tiny_moe_model.config
        src = rng.integers(4, cfg.vocab_size, (2, 5))
        a, _ = tiny_moe_model.greedy_decode(src, bos_id=1, eos_id=2, max_new_tokens=4)
        b, _ = tiny_moe_model.greedy_decode(src, bos_id=1, eos_id=2, max_new_tokens=4)
        assert np.array_equal(a, b)


class TestParameterAccounting:
    def test_model_counts_match_config_arithmetic(self):
        """The instantiated tiny model's parameter count matches the analytic model."""
        cfg = get_config("tiny_moe_4")
        model = SwitchTransformer(cfg, seed=0)
        analytic = cfg.total_params()
        actual = model.num_parameters()
        # The analytic model excludes the (untied) LM head and counts the
        # shared embedding once; allow that known structural difference.
        lm_head = cfg.vocab_size * cfg.d_model
        assert actual == pytest.approx(analytic + lm_head, rel=0.02)

    def test_block_counts(self):
        cfg = get_config("tiny_moe_4")
        model = SwitchTransformer(cfg, seed=0)
        assert model.encoder_moe_block_count() == cfg.num_moe_blocks("encoder")
        assert model.decoder_moe_block_count() == cfg.num_moe_blocks("decoder")
