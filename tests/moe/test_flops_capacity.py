"""Tests for the analytical FLOPs (Figure 2) and capacity (Figure 3) models."""

import pytest

from repro.moe.capacity import (
    capacity_breakdown,
    capacity_table,
    fits_in_memory,
    memory_ratio,
)
from repro.moe.configs import get_config
from repro.moe.flops import gflops_per_sequence, moe_block_flops, sequence_flops


class TestFlopsModel:
    def test_moe_flops_independent_of_expert_count(self):
        """Figure 2: MoE compute cost is flat in the number of experts."""
        seq = 256
        flops_8 = gflops_per_sequence(get_config("switch_base_8"), seq)
        flops_256 = gflops_per_sequence(get_config("switch_base_256"), seq)
        assert flops_256 / flops_8 == pytest.approx(1.0, abs=0.02)

    def test_moe_flops_close_to_dense_equivalent(self):
        """Switch-Base (top-1) needs roughly the same FLOPs as dense T5-Base."""
        moe = gflops_per_sequence(get_config("switch_base_128"), 256)
        dense = gflops_per_sequence(get_config("t5_base"), 256)
        assert moe / dense == pytest.approx(1.0, rel=0.1)

    def test_large_model_needs_more_flops_than_base(self):
        base = gflops_per_sequence(get_config("switch_base_128"), 256)
        large = gflops_per_sequence(get_config("switch_large_128"), 256)
        assert large > 2 * base

    def test_flops_scale_with_sequence_length(self):
        cfg = get_config("switch_base_8")
        assert gflops_per_sequence(cfg, 512) > 1.9 * gflops_per_sequence(cfg, 256)

    def test_breakdown_sums_to_total(self):
        breakdown = sequence_flops(get_config("switch_base_64"), 128)
        parts = breakdown.as_dict()
        total = parts.pop("total")
        assert total == pytest.approx(sum(parts.values()))

    def test_dense_model_has_no_gate_or_expert_flops(self):
        breakdown = sequence_flops(get_config("t5_base"), 128)
        assert breakdown.gate == 0.0
        assert breakdown.expert_ffn == 0.0
        assert breakdown.dense_ffn > 0.0

    def test_topk_scales_expert_flops(self):
        cfg = get_config("switch_base_64")
        top1 = sequence_flops(cfg, 128, top_k=1).expert_ffn
        top4 = sequence_flops(cfg, 128, top_k=4).expert_ffn
        assert top4 == pytest.approx(4 * top1)

    def test_moe_block_flops_scale_with_active_experts(self):
        """Figure 14's sweep: block compute grows with forced activation count."""
        cfg = get_config("switch_base_64")
        one = moe_block_flops(cfg, tokens=1, num_active_experts=1)
        many = moe_block_flops(cfg, tokens=1, num_active_experts=64)
        assert many > 30 * one


class TestCapacityModel:
    def test_moe_fraction_grows_with_experts(self):
        """Figure 3: experts dominate capacity more and more as they multiply."""
        fractions = [capacity_breakdown(get_config(name)).moe_fraction
                     for name in ("switch_base_8", "switch_base_64", "switch_base_128")]
        assert fractions == sorted(fractions)
        assert fractions[-1] > 0.9

    def test_memory_ratio_up_to_75x(self):
        """The paper quotes SwitchTransformer consuming up to ~75x more memory than T5."""
        ratio = memory_ratio(get_config("switch_base_256"), get_config("t5_base"))
        assert 50 < ratio < 90

    def test_dense_breakdown_has_no_moe_bytes(self):
        breakdown = capacity_breakdown(get_config("t5_large"))
        assert breakdown.moe_bytes == 0
        assert breakdown.moe_fraction == 0.0

    def test_capacity_table_order_preserved(self):
        names = ["switch_base_8", "switch_base_64"]
        table = capacity_table(names)
        assert [b.config_name for b in table] == names

    def test_gigabytes_helper(self):
        gb = capacity_breakdown(get_config("switch_base_128")).gigabytes()
        assert gb["total"] == pytest.approx(gb["moe"] + gb["non_moe"])
        assert gb["total"] == pytest.approx(30.0, rel=0.15)

    def test_totals_match_config(self):
        cfg = get_config("switch_large_128")
        breakdown = capacity_breakdown(cfg)
        assert breakdown.total_bytes == cfg.total_bytes()
        assert breakdown.total_params == cfg.total_params()


class TestFitsInMemory:
    def test_switch_base_fits_in_a100(self):
        assert fits_in_memory(get_config("switch_base_128"), int(80e9))

    def test_switch_large_ooms_on_a100(self):
        """The GPU-only OOM of Figures 10-12."""
        assert not fits_in_memory(get_config("switch_large_128"), int(80e9))

    def test_reserve_fraction_validated(self):
        with pytest.raises(ValueError):
            fits_in_memory(get_config("t5_base"), int(80e9), activation_reserve_fraction=1.5)
