"""Tests for the model configuration registry and its parameter arithmetic."""

import pytest

from repro.moe.configs import (
    BYTES_FP32,
    PERFORMANCE_CONFIGS,
    TABLE1_CONFIGS,
    get_config,
    list_configs,
)


class TestRegistry:
    def test_all_paper_configs_registered(self):
        for name in ("switch_base_8", "switch_base_64", "switch_base_128",
                     "switch_base_256", "switch_large_128", "switch_xxl",
                     "t5_base", "t5_large", "tiny_moe_4", "tiny_moe_8", "tiny_dense"):
            assert get_config(name).name == name

    def test_unknown_config_raises(self):
        with pytest.raises(KeyError):
            get_config("switch_giant")

    def test_list_configs_returns_copy(self):
        configs = list_configs()
        configs.clear()
        assert list_configs()  # registry unaffected

    def test_performance_configs_match_table1(self):
        assert set(TABLE1_CONFIGS) == set(PERFORMANCE_CONFIGS)


class TestTableI:
    """Table I: parameter counts and capacities of the evaluated models."""

    @pytest.mark.parametrize("name,params_b,capacity_gb", [
        ("switch_base_8", 0.7, 2.8),
        ("switch_base_64", 3.8, 15.2),
        ("switch_base_128", 7.5, 30.0),
        ("switch_large_128", 26.4, 105.6),
    ])
    def test_parameters_and_capacity_match_paper(self, name, params_b, capacity_gb):
        config = get_config(name)
        assert config.total_params() / 1e9 == pytest.approx(params_b, rel=0.15)
        assert config.total_bytes() / 1e9 == pytest.approx(capacity_gb, rel=0.15)

    def test_switch_xxl_scale(self):
        """Switch-XXL: ~395B parameters, ~217GB after quantisation (Fig. 16)."""
        config = get_config("switch_xxl")
        assert config.total_params() / 1e9 == pytest.approx(395, rel=0.15)
        assert config.total_bytes() / 1e9 == pytest.approx(217, rel=0.15)

    def test_moe_blocks_count(self):
        assert get_config("switch_base_128").num_moe_blocks("all") == 12
        assert get_config("switch_large_128").num_moe_blocks("all") == 24
        assert get_config("t5_base").num_moe_blocks("all") == 0


class TestDerivedQuantities:
    def test_expert_params_equal_ffn_params(self):
        config = get_config("switch_base_8")
        assert config.expert_params == config.ffn_params == 2 * config.d_model * config.d_ff

    def test_moe_params_scale_linearly_with_experts(self):
        base_8 = get_config("switch_base_8")
        base_64 = get_config("switch_base_64")
        ratio = base_64.moe_params() / base_8.moe_params()
        assert ratio == pytest.approx(8.0, rel=0.01)

    def test_non_moe_params_independent_of_expert_count(self):
        assert get_config("switch_base_8").non_moe_params() == \
            get_config("switch_base_256").non_moe_params()

    def test_dense_model_has_no_moe_params(self):
        t5 = get_config("t5_base")
        assert t5.moe_params() == 0
        assert t5.gate_params == 0
        assert not t5.is_moe

    def test_total_is_moe_plus_non_moe(self):
        for name in TABLE1_CONFIGS:
            config = get_config(name)
            assert config.total_params() == config.moe_params() + config.non_moe_params()

    def test_bytes_follow_precision(self):
        config = get_config("switch_base_8")
        assert config.total_bytes() == int(config.total_params() * BYTES_FP32)

    def test_moe_dominates_capacity_for_large_expert_counts(self):
        """Figure 3: expert parameters dominate the memory footprint."""
        config = get_config("switch_base_128")
        assert config.moe_bytes() / config.total_bytes() > 0.9

    def test_scaled_returns_modified_copy(self):
        base = get_config("switch_base_8")
        bigger = base.scaled(num_experts=32, name="custom")
        assert bigger.num_experts == 32
        assert base.num_experts == 8

    def test_invalid_part_raises(self):
        with pytest.raises(ValueError):
            get_config("switch_base_8").num_moe_blocks("middle")

    def test_head_dim(self):
        config = get_config("switch_base_8")
        assert config.head_dim == config.d_model // config.num_heads

    def test_num_layers(self):
        config = get_config("switch_large_128")
        assert config.num_layers == 48
