"""Grouped expert dispatch ≡ the reference per-expert loop.

:meth:`ExpertPool.forward` buckets all (token, slot) routing pairs by
expert and runs every activated expert as one stacked batched matmul;
:meth:`ExpertPool._forward_loop` is the seed implementation (per-slot ×
per-unique-expert Python loop) kept as the behavioural oracle.  These
tests drive both through random routings — including capacity-dropped
pairs (expert id ``-1``) and ``top_k > 1`` — and require identical outputs
and identical gradients on the hidden states and every expert weight.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.moe.expert import ExpertPool
from repro.moe.gating import RoutingDecision
from repro.tensor import Tensor

BUDGET = 1e-9


def random_routing(rng, tokens, num_experts, k, drop_rate=0.0):
    """A synthetic RoutingDecision with optional capacity-dropped pairs."""
    indices = rng.integers(0, num_experts, size=(tokens, k))
    if drop_rate > 0:
        dropped = rng.random((tokens, k)) < drop_rate
        indices = np.where(dropped, -1, indices)
    weights = rng.random((tokens, k)) + 0.1
    weights = weights / weights.sum(axis=1, keepdims=True)
    activated = sorted(int(e) for e in np.unique(indices) if e >= 0)
    return RoutingDecision(
        expert_indices=indices, expert_weights=weights,
        router_probs=Tensor(np.zeros((tokens, num_experts))),
        activated_experts=activated, aux_loss=Tensor(0.0))


def run_pool(pool, hidden_data, routing, method):
    hidden = Tensor(hidden_data, requires_grad=True)
    out = method(pool, hidden, routing)
    (out * out).sum().backward()
    grads = {"hidden": np.array(hidden.grad, copy=True)}
    for expert in pool.experts:
        for name, param in (("wi", expert.ffn.wi.weight),
                            ("wo", expert.ffn.wo.weight)):
            key = f"expert{expert.expert_id}.{name}"
            grads[key] = (None if param.grad is None
                          else np.array(param.grad, copy=True))
    pool.zero_grad()
    return np.array(out.data, copy=True), grads


def assert_equivalent(pool, hidden_data, routing):
    out_g, grads_g = run_pool(pool, hidden_data, routing, ExpertPool.forward)
    out_l, grads_l = run_pool(pool, hidden_data, routing,
                              ExpertPool._forward_loop)
    assert np.max(np.abs(out_g - out_l)) <= BUDGET
    assert set(grads_g) == set(grads_l)
    for key, gl in grads_l.items():
        gg = grads_g[key]
        if gl is None:
            # The loop never touched this expert; grouped dispatch must not
            # have produced a gradient for it either (None or exact zero).
            assert gg is None or not np.any(gg), key
        else:
            assert gg is not None, key
            assert np.max(np.abs(gg - gl)) <= BUDGET, key


@pytest.mark.parametrize("activation", ["relu", "gelu"])
@pytest.mark.parametrize("k", [1, 2, 3])
def test_grouped_matches_loop_random_routing(k, activation):
    rng = np.random.default_rng(k)
    pool = ExpertPool(num_experts=4, d_model=6, d_ff=8, activation=activation,
                      rng=np.random.default_rng(7))
    for trial in range(3):
        hidden = rng.standard_normal((10, 6))
        routing = random_routing(rng, tokens=10, num_experts=4, k=k)
        assert_equivalent(pool, hidden, routing)


@pytest.mark.parametrize("k", [1, 2])
def test_grouped_matches_loop_with_capacity_drops(k):
    rng = np.random.default_rng(11)
    pool = ExpertPool(num_experts=4, d_model=6, d_ff=8,
                      rng=np.random.default_rng(7))
    for drop_rate in (0.2, 0.6):
        hidden = rng.standard_normal((12, 6))
        routing = random_routing(rng, tokens=12, num_experts=4, k=k,
                                 drop_rate=drop_rate)
        assert_equivalent(pool, hidden, routing)


def test_grouped_handles_all_pairs_dropped():
    rng = np.random.default_rng(3)
    pool = ExpertPool(num_experts=4, d_model=6, d_ff=8,
                      rng=np.random.default_rng(7))
    hidden = rng.standard_normal((5, 6))
    routing = random_routing(rng, tokens=5, num_experts=4, k=1, drop_rate=1.0)
    routing.expert_indices[:] = -1
    hidden_t = Tensor(hidden, requires_grad=True)
    out = pool(hidden_t, routing)
    assert out.shape == hidden.shape
    assert not np.any(out.data)
    # Nothing executed, so the output is a disconnected constant — exactly
    # what the reference loop produces for an all-dropped routing.
    assert not out.requires_grad


def test_grouped_handles_single_expert_concentration():
    """Every token routed to one expert — the bucket is maximally full."""
    rng = np.random.default_rng(5)
    pool = ExpertPool(num_experts=4, d_model=6, d_ff=8,
                      rng=np.random.default_rng(7))
    hidden = rng.standard_normal((8, 6))
    routing = random_routing(rng, tokens=8, num_experts=4, k=1)
    routing.expert_indices[:] = 2
    routing.expert_weights[:] = 1.0
    assert_equivalent(pool, hidden, routing)


def test_grouped_rejects_token_mismatch():
    rng = np.random.default_rng(9)
    pool = ExpertPool(num_experts=2, d_model=4, d_ff=4,
                      rng=np.random.default_rng(7))
    routing = random_routing(rng, tokens=6, num_experts=2, k=1)
    with pytest.raises(ValueError):
        pool(Tensor(rng.standard_normal((5, 4))), routing)
