"""Tests for the reporting / table utilities."""

import pytest

from repro.analysis import (
    FigureReport,
    format_table,
    normalise_series,
    pick_reference,
    to_csv,
    write_csv,
)


class TestFormatTable:
    def test_columns_aligned(self):
        text = format_table(["design", "latency"], [["gpu_only", 1.0], ["pregated", 1.19]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("design")
        assert "1.190" in text

    def test_float_format_override(self):
        text = format_table(["x"], [[3.14159]], float_format="{:.1f}")
        assert "3.1" in text


class TestNormaliseSeries:
    def test_normalises_to_reference(self):
        out = normalise_series({"gpu_only": 2.0, "pregated": 2.4}, reference="gpu_only")
        assert out["gpu_only"] == pytest.approx(1.0)
        assert out["pregated"] == pytest.approx(1.2)

    def test_oom_entries_become_none(self):
        out = normalise_series({"gpu_only": 2.0, "prefetch_all": 10.0},
                               reference="gpu_only", oom_keys=["prefetch_all"])
        assert out["prefetch_all"] is None

    def test_oom_reference_rejected(self):
        with pytest.raises(KeyError):
            normalise_series({"a": 1.0}, reference="a", oom_keys=["a"])

    def test_zero_reference_rejected(self):
        with pytest.raises(ZeroDivisionError):
            normalise_series({"a": 0.0}, reference="a")


class TestPickReference:
    def test_prefers_first_available(self):
        assert pick_reference(["gpu_only", "pregated"], oom_keys=[]) == "gpu_only"

    def test_falls_back_when_oom(self):
        """Figure 10/12: when GPU-only is OOM, normalise to Pre-gated MoE."""
        assert pick_reference(["gpu_only", "pregated"], oom_keys=["gpu_only"]) == "pregated"

    def test_all_oom_rejected(self):
        with pytest.raises(ValueError):
            pick_reference(["a"], oom_keys=["a"])


class TestCsv:
    def test_to_csv_round_trip(self):
        text = to_csv(["a", "b"], [[1, 2], [3, 4]])
        assert text.splitlines()[0] == "a,b"
        assert text.splitlines()[2] == "3,4"

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(str(path), ["x"], [[1]])
        assert path.read_text().splitlines() == ["x", "1"]


class TestFigureReport:
    def test_add_row_validates_width(self):
        report = FigureReport(figure="Fig 10", description="block latency",
                              headers=["config", "value"])
        report.add_row("switch_base_8", 1.2)
        with pytest.raises(ValueError):
            report.add_row("too", "many", "cells")

    def test_render_contains_everything(self):
        report = FigureReport(figure="Fig 11", description="throughput",
                              headers=["design", "tokens/s"],
                              paper_reference="Pre-gated ~111 tok/s",
                              notes="simulated")
        report.add_row("pregated", 105.0)
        text = report.render()
        assert "Fig 11" in text and "pregated" in text
        assert "Paper reference" in text and "Notes" in text

    def test_as_csv(self):
        report = FigureReport(figure="F", description="d", headers=["a"], rows=[[1]])
        assert report.as_csv().splitlines() == ["a", "1"]


class TestLoadTestReport:
    def make_load_result(self, oom=False):
        from repro.serving.metrics import LoadTestResult, ServedRequestResult
        result = LoadTestResult(design="pregated", config_name="switch_base_8",
                                offered_load=4.0, makespan=1.0,
                                peak_gpu_bytes=int(3e9), oom=oom)
        if not oom:
            result.requests.append(ServedRequestResult(
                request_id=0, design="pregated", config_name="switch_base_8",
                input_length=16, output_length=2, arrival_time=0.0,
                first_scheduled_time=0.1, first_token_time=0.2,
                completion_time=0.3, token_times=[0.2, 0.3]))
        return result

    def test_columns_match_summary(self):
        from repro.analysis import LOAD_REPORT_COLUMNS, load_test_report
        report = load_test_report([self.make_load_result()])
        assert report.headers == LOAD_REPORT_COLUMNS
        assert len(report.rows) == 1
        row = dict(zip(report.headers, report.rows[0]))
        assert row["design"] == "pregated"
        assert row["sustained_tokens_per_second"] == pytest.approx(2.0)
        assert row["p50_ttft_ms"] == pytest.approx(200.0)

    def test_oom_rows_marked(self):
        from repro.analysis import load_test_report
        report = load_test_report([self.make_load_result(oom=True)])
        row = dict(zip(report.headers, report.rows[0]))
        assert row["sustained_tokens_per_second"] == "OOM"
        assert row["design"] == "pregated"

    def test_cache_columns(self):
        from repro.analysis import load_test_report
        from repro.system import ResidencyStats

        uncached = self.make_load_result()
        row = dict(zip(*[load_test_report([uncached]).headers,
                         load_test_report([uncached]).rows[0]]))
        assert row["cache_hit_rate"] == "-"        # no cache: placeholder cells
        assert row["cache_evictions"] == "-"
        assert row["gb_saved"] == 0.0

        cached = self.make_load_result()
        cached.expert_bytes_transferred = int(2e9)
        cached.cache_stats = ResidencyStats(hits=3, misses=1, evictions=2,
                                            bytes_transferred=int(2e9),
                                            bytes_saved=int(6e9))
        row = dict(zip(*[load_test_report([cached]).headers,
                         load_test_report([cached]).rows[0]]))
        assert row["cache_hit_rate"] == 0.75
        assert row["cache_evictions"] == 2
        assert row["gb_transferred"] == 2.0
        assert row["gb_saved"] == 6.0

    def test_tier_columns(self):
        from repro.analysis import load_test_report
        from repro.system import TierTransferStats

        plain = self.make_load_result()
        row = dict(zip(load_test_report([plain]).headers,
                       load_test_report([plain]).rows[0]))
        assert row["offload_tier"] == "-"          # gpu-only style: no ledger
        assert row["ssd_gb_read"] == "-"
        assert row["stage_hit_rate"] == "-"

        ssd = self.make_load_result()
        ssd.tier_stats = TierTransferStats(fetches=4, pcie_bytes=int(4e9),
                                           ssd_bytes_read=int(3e9),
                                           ssd_bytes_saved=int(1e9),
                                           stage_hits=1, stage_misses=3,
                                           source_tier="ssd")
        row = dict(zip(load_test_report([ssd]).headers,
                       load_test_report([ssd]).rows[0]))
        assert row["offload_tier"] == "ssd"
        assert row["ssd_gb_read"] == 3.0
        assert row["stage_hit_rate"] == 0.25

    def test_replay_and_probe_columns(self):
        from repro.analysis import load_test_report
        from repro.obs.probes import MetricsRegistry

        plain = self.make_load_result()
        row = dict(zip(load_test_report([plain]).headers,
                       load_test_report([plain]).rows[0]))
        # Replay telemetry is always reported (0 when replay never engaged);
        # probe columns show placeholders when probes were off.
        assert row["replay_windows"] == 0
        assert row["replay_rounds"] == 0
        assert row["replay_ops"] == 0
        assert row["probe_samples"] == "-"
        assert row["max_queue_depth"] == "-"

        probed = self.make_load_result()
        probed.replay_windows = 2
        probed.replay_rounds = 40
        probed.replay_ops = 1200
        probed.probes = MetricsRegistry()
        gauge = probed.probes.gauge("queue_depth", mode="max")
        gauge.sample(0.0, 1.0)
        gauge.sample(0.5, 5.0)
        gauge.sample(1.0, 0.0)
        row = dict(zip(load_test_report([probed]).headers,
                       load_test_report([probed]).rows[0]))
        assert row["replay_windows"] == 2
        assert row["replay_rounds"] == 40
        assert row["replay_ops"] == 1200
        assert row["probe_samples"] == 3
        assert row["max_queue_depth"] == 5.0

    def test_renderable(self):
        from repro.analysis import load_test_report
        text = load_test_report([self.make_load_result()],
                                figure="Load sweep").render()
        assert "Load sweep" in text and "p99_ttft_ms" in text
