"""Tests for the expert-activation trace generators and workload specs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.moe import SwitchTransformer, get_config
from repro.workloads import (
    SQUAD_SINGLE_BATCH,
    TraceGenerator,
    expected_distinct_experts,
    generate_traces,
    generate_traces_by_name,
    get_workload,
    list_workloads,
    trace_from_routing,
)


CONFIG = get_config("switch_base_64")


class TestTraceGenerator:
    def test_block_activation_respects_topk(self):
        gen = TraceGenerator(CONFIG, seed=0)
        activation = gen.block_activation(num_tokens=1)
        assert len(activation) == 1
        assert 0 <= activation[0] < CONFIG.num_experts

    def test_more_tokens_activate_more_experts(self):
        gen = TraceGenerator(CONFIG, seed=1)
        few = gen.block_activation(num_tokens=1)
        many = gen.block_activation(num_tokens=128)
        assert len(many) > len(few)
        assert len(many) <= CONFIG.num_experts

    def test_activations_sorted_unique(self):
        gen = TraceGenerator(CONFIG, seed=2)
        activation = gen.block_activation(num_tokens=50)
        assert activation == sorted(set(activation))

    def test_request_trace_structure(self):
        gen = TraceGenerator(CONFIG, seed=3)
        trace = gen.request_trace(input_length=16, output_length=4)
        assert len(trace.encoder_activations) == CONFIG.num_moe_blocks("encoder")
        assert len(trace.decode_activations) == 4
        assert trace.num_decoder_moe_blocks == CONFIG.num_moe_blocks("decoder")
        assert trace.total_decode_expert_activations() >= 4

    def test_workload_size(self):
        traces = TraceGenerator(CONFIG, seed=4).workload(3, input_length=8, output_length=2)
        assert len(traces) == 3

    def test_skew_concentrates_activations(self):
        """With heavy skew, far fewer distinct experts are touched overall."""
        uniform = TraceGenerator(CONFIG, skew=0.0, seed=5)
        skewed = TraceGenerator(CONFIG, skew=2.0, seed=5)
        uniform_experts = set()
        skewed_experts = set()
        for _ in range(50):
            uniform_experts.update(uniform.block_activation(4))
            skewed_experts.update(skewed.block_activation(4))
        assert len(skewed_experts) < len(uniform_experts)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TraceGenerator(CONFIG, skew=-1.0)
        with pytest.raises(ValueError):
            TraceGenerator(CONFIG, top_k=0)
        with pytest.raises(ValueError):
            TraceGenerator(CONFIG).request_trace(input_length=0, output_length=1)

    def test_top_k_override(self):
        gen = TraceGenerator(CONFIG, seed=6)
        activation = gen.block_activation(num_tokens=1, top_k=4)
        assert len(activation) == 4

    def test_deterministic_per_seed(self):
        a = TraceGenerator(CONFIG, seed=9).request_trace(8, 3)
        b = TraceGenerator(CONFIG, seed=9).request_trace(8, 3)
        assert a.decode_activations == b.decode_activations


class TestExpectedDistinctExperts:
    def test_single_token(self):
        assert expected_distinct_experts(1, 64) == pytest.approx(1.0)

    def test_many_tokens_saturate(self):
        assert expected_distinct_experts(10_000, 64) == pytest.approx(64.0, rel=1e-3)

    def test_matches_empirical_mean(self):
        gen = TraceGenerator(CONFIG, seed=11)
        empirical = np.mean([len(gen.block_activation(32)) for _ in range(100)])
        analytic = expected_distinct_experts(32, CONFIG.num_experts)
        assert empirical == pytest.approx(analytic, rel=0.1)

    def test_invalid_expert_count(self):
        with pytest.raises(ValueError):
            expected_distinct_experts(1, 0)


class TestTraceFromRouting:
    def test_functional_model_trace_converts(self):
        config = get_config("tiny_moe_4")
        model = SwitchTransformer(config, seed=0)
        src = np.random.default_rng(0).integers(4, config.vocab_size, (1, 6))
        _, traces = model.greedy_decode(src, bos_id=1, eos_id=2, max_new_tokens=3,
                                        collect_trace=True)
        request = trace_from_routing(traces, input_length=6)
        assert len(request.encoder_activations) == config.num_moe_blocks("encoder")
        assert len(request.decode_activations) >= 1
        for iteration in request.decode_activations:
            assert len(iteration) == config.num_moe_blocks("decoder")
            for block in iteration:
                assert all(0 <= e < config.num_experts for e in block)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            trace_from_routing([], input_length=4)


class TestWorkloadSpecs:
    def test_named_workloads_exist(self):
        assert get_workload("squad_single_batch") is SQUAD_SINGLE_BATCH
        assert set(list_workloads()) >= {"squad_single_batch", "xsum_single_batch",
                                         "skewed_routing"}

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_workload("mmlu")

    def test_single_batch_serving_default(self):
        """The paper's performance evaluation uses batch size 1."""
        assert SQUAD_SINGLE_BATCH.batch_size == 1

    def test_generate_traces_matches_spec(self):
        spec = SQUAD_SINGLE_BATCH.with_overrides(num_requests=2, output_length=3)
        traces = generate_traces(CONFIG, spec)
        assert len(traces) == 2
        assert all(len(t.decode_activations) == 3 for t in traces)

    def test_generate_by_name(self):
        traces = generate_traces_by_name("switch_base_8", "squad_single_batch")
        assert len(traces) == SQUAD_SINGLE_BATCH.num_requests

    def test_with_overrides_is_copy(self):
        modified = SQUAD_SINGLE_BATCH.with_overrides(routing_skew=1.0)
        assert modified.routing_skew == 1.0
        assert SQUAD_SINGLE_BATCH.routing_skew == 0.0


@settings(max_examples=25, deadline=None)
@given(num_tokens=st.integers(min_value=1, max_value=64),
       seed=st.integers(min_value=0, max_value=500))
def test_property_activation_count_bounded(num_tokens, seed):
    """|activated experts| is between 1 and min(tokens*top_k, num_experts)."""
    gen = TraceGenerator(CONFIG, seed=seed)
    activation = gen.block_activation(num_tokens)
    assert 1 <= len(activation) <= min(num_tokens * CONFIG.top_k, CONFIG.num_experts)
