"""Tests for arrival processes, timestamped requests and load specs."""

import pytest

from repro.moe import get_config
from repro.workloads import (
    BURSTY_QA_LOAD,
    CLOSED_LOOP_QA_LOAD,
    POISSON_QA_LOAD,
    BurstArrivals,
    DeterministicArrivals,
    LoadSpec,
    PoissonArrivals,
    TimedRequest,
    generate_timed_requests,
    get_load_spec,
    list_load_specs,
    make_arrival_process,
    timestamp_traces,
    TraceGenerator,
)


class TestArrivalProcesses:
    def test_poisson_mean_rate(self):
        process = PoissonArrivals(rate=10.0, seed=0)
        times = process.arrival_times(2000)
        empirical_rate = len(times) / times[-1]
        assert empirical_rate == pytest.approx(10.0, rel=0.1)

    def test_poisson_reproducible(self):
        a = PoissonArrivals(rate=5.0, seed=7).arrival_times(50)
        b = PoissonArrivals(rate=5.0, seed=7).arrival_times(50)
        assert a == b

    def test_deterministic_spacing(self):
        process = DeterministicArrivals(rate=4.0)
        times = process.arrival_times(4)
        assert times == pytest.approx([0.25, 0.5, 0.75, 1.0])

    def test_burst_groups_and_average_rate(self):
        process = BurstArrivals(rate=8.0, burst_size=4)
        times = process.arrival_times(8)
        # First burst at t=0, second burst half a second later (4 / 8 rps).
        assert times[0] == times[3] == pytest.approx(0.0)
        assert times[4] == times[7] == pytest.approx(0.5)

    def test_arrival_times_monotone(self):
        for kind in ("poisson", "deterministic", "burst"):
            times = make_arrival_process(kind, rate=3.0, seed=1).arrival_times(20)
            assert all(b >= a for a, b in zip(times, times[1:]))

    def test_invalid_rate_and_kind(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=0.0)
        with pytest.raises(ValueError):
            make_arrival_process("pareto", rate=1.0)


class TestTimedRequests:
    def test_timestamp_traces_open_loop(self):
        config = get_config("switch_base_8")
        traces = TraceGenerator(config, seed=0).workload(5, 8, 4)
        timed = timestamp_traces(traces, DeterministicArrivals(rate=2.0))
        assert [t.request_id for t in timed] == [0, 1, 2, 3, 4]
        assert timed[1].arrival_time == pytest.approx(1.0)
        assert timed[0].input_length == 8 and timed[0].output_length == 4

    def test_timestamp_traces_closed_loop(self):
        config = get_config("switch_base_8")
        traces = TraceGenerator(config, seed=0).workload(3, 8, 4)
        timed = timestamp_traces(traces, None)
        assert all(t.arrival_time == 0.0 for t in timed)

    def test_generate_timed_requests_by_name(self):
        timed = generate_timed_requests("switch_base_8", POISSON_QA_LOAD)
        assert len(timed) > 0
        assert all(isinstance(t, TimedRequest) for t in timed)
        assert all(t.arrival_time >= 0.0 for t in timed)

    def test_closed_loop_spec_has_no_process(self):
        assert CLOSED_LOOP_QA_LOAD.arrival_process() is None
        timed = generate_timed_requests("switch_base_8", CLOSED_LOOP_QA_LOAD)
        assert all(t.arrival_time == 0.0 for t in timed)


class TestLoadSpecs:
    def test_registry(self):
        specs = list_load_specs()
        assert "poisson_qa" in specs and "closed_loop_qa" in specs
        assert get_load_spec("bursty_qa") is BURSTY_QA_LOAD
        with pytest.raises(KeyError):
            get_load_spec("nope")

    def test_overrides(self):
        faster = POISSON_QA_LOAD.with_overrides(request_rate=99.0)
        assert faster.request_rate == 99.0
        assert faster.arrival_process().rate == 99.0

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            LoadSpec(name="bad", mode="duplex")

    def test_burst_spec_builds_burst_process(self):
        process = BURSTY_QA_LOAD.arrival_process()
        assert isinstance(process, BurstArrivals)
        assert process.burst_size == BURSTY_QA_LOAD.burst_size
