"""Precision-policy tests: bit-identity, tolerances, masters, dtypes.

The contract under test (see ``repro/tensor/precision.py`` and the
"Precision policy" section of DESIGN.md):

* ``pure_fp64`` (the default) is **bit-identical** to the pre-policy
  engine — pinned by a golden fixture recorded before the policy layer
  landed (loss hex, sha256 of every grad and post-Adam-step parameter,
  greedy-decoded tokens);
* ``pure_fp32`` and ``mixed`` track the fp64 loss and gradients within
  the documented budgets on random graphs and on the real model;
* ``mixed`` keeps fp64 Adam master weights whose tiny updates survive
  (and eventually surface in) the fp32 working copies;
* the KV cache preserves its dtype across capacity doubling;
* explicit dtypes are validated with errors naming the offender.
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import tensor as T
from repro.tensor import KVCache, Tensor, no_grad, use_backend, use_precision
from repro.tensor import functional as F
from repro.tensor import precision as PR
from repro.moe.configs import get_config
from repro.moe.transformer import SwitchTransformer

GOLDEN_PATH = os.path.join(os.path.dirname(__file__),
                           "golden_fp64_trainstep.json")


# ----------------------------------------------------------------------
# Golden bit-identity: pure_fp64 == the pre-policy engine, exactly.
# ----------------------------------------------------------------------
def _tree_digest(items):
    """Order-sensitive sha256 over (name, dtype, bytes); None-safe."""
    digest = hashlib.sha256()
    for name, arr in items:
        digest.update(name.encode())
        if arr is None:
            digest.update(b"<none>")
            continue
        contiguous = np.ascontiguousarray(arr)
        digest.update(str(contiguous.dtype).encode())
        digest.update(contiguous.tobytes())
    return digest.hexdigest()


def _golden_trainstep():
    golden = json.load(open(GOLDEN_PATH))
    config = get_config(golden["config"])
    rng = np.random.default_rng(golden["seed"])
    batch, in_len, out_len = (golden["batch"], golden["input_length"],
                              golden["output_length"])
    enc = rng.integers(1, config.vocab_size, size=(batch, in_len))
    dec = rng.integers(1, config.vocab_size, size=(batch, out_len))
    tgt = rng.integers(1, config.vocab_size, size=(batch, out_len))
    model = SwitchTransformer(config, seed=golden["seed"]).train()
    opt = T.Adam(model.parameters(), lr=1e-4)
    out = model(enc, dec)
    loss = F.cross_entropy(out.logits, tgt, ignore_index=0)
    loss = loss + out.aux_loss * 1e-2
    loss.backward()
    named = list(model.named_parameters())
    grad_sha = _tree_digest([(n, p.grad) for n, p in named])
    T.clip_grad_norm(model.parameters(), 1.0)
    opt.step()
    param_sha = _tree_digest([(n, p.data) for n, p in named])
    model.eval()
    generated, _ = model.greedy_decode(enc, bos_id=1, eos_id=0,
                                       max_new_tokens=6)
    return golden, float(loss.numpy()), grad_sha, param_sha, generated


def test_pure_fp64_bit_identical_to_golden_fixture():
    golden, loss, grad_sha, param_sha, generated = _golden_trainstep()
    assert float.hex(loss) == golden["loss_hex"]
    assert grad_sha == golden["grad_sha256"]
    assert param_sha == golden["post_step_param_sha256"]
    assert generated.tolist() == golden["generated_tokens"]


def test_pure_fp64_bit_identical_under_explicit_policy():
    """An explicit ``use_precision("pure_fp64")`` is the ambient default."""
    golden, loss, grad_sha, param_sha, generated = _golden_trainstep()
    with use_precision("pure_fp64"):
        _, loss2, grad2, param2, gen2 = _golden_trainstep()
    assert loss == loss2
    assert grad_sha == grad2 and param_sha == param2
    assert generated.tolist() == gen2.tolist()


# ----------------------------------------------------------------------
# use_precision semantics (mirrors use_backend).
# ----------------------------------------------------------------------
def test_use_precision_context_manager_restores():
    assert T.current_precision_name() == "pure_fp64"
    with use_precision("mixed"):
        assert T.current_precision_name() == "mixed"
        with use_precision("pure_fp32"):
            assert T.current_precision_name() == "pure_fp32"
        assert T.current_precision_name() == "mixed"
    assert T.current_precision_name() == "pure_fp64"


def test_use_precision_global_switch():
    use_precision("pure_fp32")
    try:
        assert T.current_precision_name() == "pure_fp32"
        assert Tensor([1.0, 2.0]).dtype == np.float32
    finally:
        use_precision("pure_fp64")
    assert T.current_precision_name() == "pure_fp64"


def test_use_precision_rejects_unknown_policy():
    with pytest.raises(ValueError, match="unknown precision policy"):
        use_precision("bf16")


def test_policy_table():
    mixed = PR.POLICIES["mixed"]
    assert mixed.compute_dtype == np.float32
    assert mixed.reduction_dtype == np.float64
    assert mixed.keeps_master_weights and mixed.master_dtype == np.float64
    for name in ("pure_fp64", "pure_fp32"):
        assert not PR.POLICIES[name].keeps_master_weights


# ----------------------------------------------------------------------
# Explicit dtypes: constructors, astype, validation.
# ----------------------------------------------------------------------
def test_constructor_dtype_kwargs():
    assert Tensor([1.0], dtype=np.float32).dtype == np.float32
    assert T.tensor([1.0], dtype="float32").dtype == np.float32
    assert T.zeros((2, 3), dtype=np.float32).dtype == np.float32
    assert T.ones((2,), dtype=np.float64).dtype == np.float64
    assert T.randn((2, 2), dtype=np.float32).dtype == np.float32


def test_randn_same_weights_across_dtypes():
    a = T.randn((3, 4), rng=np.random.default_rng(7), dtype=np.float64)
    b = T.randn((3, 4), rng=np.random.default_rng(7), dtype=np.float32)
    np.testing.assert_array_equal(a.numpy().astype(np.float32), b.numpy())


@pytest.mark.parametrize("bad", [np.int32, np.float16, np.complex128, "int64",
                                 bool])
def test_unsupported_dtype_error_names_offender(bad):
    resolved = np.dtype(bad).name
    with pytest.raises(ValueError, match=resolved):
        Tensor([1.0], dtype=bad)
    with pytest.raises(ValueError, match=resolved):
        T.zeros((2,), dtype=bad)


def test_astype_values_and_grad_flow():
    x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
    y = x.astype(np.float32)
    assert y.dtype == np.float32
    assert y.astype(np.float64).dtype == np.float64
    (y * Tensor(np.float32(2.0))).sum().backward()
    # The astype VJP casts the gradient back to the input dtype.
    assert x.grad.dtype == np.float64
    np.testing.assert_allclose(x.grad, 2.0)


def test_astype_same_dtype_is_identity():
    x = Tensor(np.array([1.0, 2.0]))
    assert x.astype(np.float64) is x


def test_astype_rejects_unsupported():
    with pytest.raises(ValueError, match="float16"):
        Tensor([1.0]).astype(np.float16)


# ----------------------------------------------------------------------
# Property-based parity: pure_fp64 exact, fp32/mixed within tolerance.
# ----------------------------------------------------------------------
CHAIN_OPS = [
    lambda t, o: t + o,
    lambda t, o: t * o,
    lambda t, o: t - o,
    lambda t, o: t / (o * o + 1.5),
    lambda t, o: t.relu() + o,
    lambda t, o: (t * 0.5).tanh() * o,
    lambda t, o: t.sigmoid() - o,
    lambda t, o: (t + o).softmax(axis=-1),
    lambda t, o: (t * o).sum(axis=-1, keepdims=True) + t,
    lambda t, o: t.log_softmax(axis=-1) * o,
]


def _chain_loss_and_grads(policy, backend, ops, seed):
    rng = np.random.default_rng(seed)
    a_data = rng.standard_normal((3, 4))
    b_data = rng.standard_normal((3, 4))
    with use_precision(policy), use_backend(backend):
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        t = a
        for op_idx in ops:
            t = CHAIN_OPS[op_idx](t, b)
        loss = (t * t).sum()
        loss.backward()
        return (float(loss.item()),
                np.asarray(a.grad, dtype=np.float64),
                np.asarray(b.grad, dtype=np.float64))


@settings(max_examples=20, deadline=None)
@given(ops=st.lists(st.integers(min_value=0, max_value=len(CHAIN_OPS) - 1),
                    min_size=1, max_size=6),
       seed=st.integers(min_value=0, max_value=2**16))
def test_pure_fp64_policy_exact_on_random_graphs(ops, seed):
    ref = _chain_loss_and_grads("pure_fp64", "eager", ops, seed)
    for backend in ("eager", "lazy"):
        got = _chain_loss_and_grads("pure_fp64", backend, ops, seed)
        assert got[0] == ref[0]
        np.testing.assert_array_equal(got[1], ref[1])
        np.testing.assert_array_equal(got[2], ref[2])


@settings(max_examples=20, deadline=None)
@given(policy=st.sampled_from(["pure_fp32", "mixed"]),
       backend=st.sampled_from(["eager", "lazy"]),
       ops=st.lists(st.integers(min_value=0, max_value=len(CHAIN_OPS) - 1),
                    min_size=1, max_size=6),
       seed=st.integers(min_value=0, max_value=2**16))
def test_reduced_precision_within_tolerance_on_random_graphs(
        policy, backend, ops, seed):
    ref = _chain_loss_and_grads("pure_fp64", "eager", ops, seed)
    got = _chain_loss_and_grads(policy, backend, ops, seed)
    # fp32 keeps ~7 significant digits; chains of <=6 ops plus a quadratic
    # loss stay well inside 1e-4 relative.
    scale = max(1.0, abs(ref[0]))
    assert abs(got[0] - ref[0]) <= 1e-4 * scale
    for got_grad, ref_grad in zip(got[1:], ref[1:]):
        denom = max(1.0, float(np.max(np.abs(ref_grad))))
        assert float(np.max(np.abs(got_grad - ref_grad))) <= 1e-3 * denom


# ----------------------------------------------------------------------
# Real-model parity within the documented budgets.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", ["pure_fp32", "mixed"])
def test_model_trainstep_within_documented_budgets(policy):
    from repro.analysis.tensorperf import (PRECISION_GRAD_BUDGET,
                                           PRECISION_LOSS_BUDGET,
                                           measure_precision_parity)
    parity = measure_precision_parity()[policy]
    assert parity["loss_abs_diff"] <= PRECISION_LOSS_BUDGET[policy], parity
    assert parity["grad_max_abs_diff"] <= PRECISION_GRAD_BUDGET[policy], parity


# ----------------------------------------------------------------------
# Adam master weights.
# ----------------------------------------------------------------------
def test_adam_keeps_no_masters_under_pure_policies():
    for policy in ("pure_fp64", "pure_fp32"):
        with use_precision(policy):
            param = T.Parameter(np.ones(4))
            opt = T.Adam([param], lr=1e-4)
        assert opt._masters == [None]


def test_adam_master_weight_round_trip():
    """Updates below one fp32 ulp accumulate in the fp64 master and
    eventually surface in the fp32 working copy."""
    with use_precision("mixed"):
        param = T.Parameter(np.ones(8))
        assert param.data.dtype == np.float32
        opt = T.Adam([param], lr=1e-8)
        (master,) = opt._masters
        assert master is not None and master.dtype == np.float64
        np.testing.assert_array_equal(master, 1.0)

        fp32_ulp = np.spacing(np.float32(1.0))
        for _ in range(30):
            param.grad = np.full(8, 1e-3, dtype=np.float32)
            opt.step()
        # Each step moved the master by ~lr (Adam normalises the grad),
        # far below one fp32 ulp — yet the accumulated master drift has
        # crossed the ulp and the working copy reflects it.
        assert float(np.max(np.abs(master - 1.0))) < fp32_ulp * 4
        np.testing.assert_array_equal(param.data,
                                      master.astype(np.float32))
        assert np.all(param.data < np.float32(1.0))


def test_adam_master_free_fp32_rounds_tiny_updates_away():
    """The control: without masters the same recipe never moves fp32."""
    with use_precision("pure_fp32"):
        param = T.Parameter(np.ones(8))
        opt = T.Adam([param], lr=1e-8)
        for _ in range(30):
            param.grad = np.full(8, 1e-3, dtype=np.float32)
            opt.step()
        np.testing.assert_array_equal(param.data, np.float32(1.0))


# ----------------------------------------------------------------------
# KVCache dtype preservation across capacity doubling.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_kvcache_preserves_dtype_across_doubling(dtype):
    rng = np.random.default_rng(0)
    cache = KVCache()
    appended = []
    # _MIN_CAPACITY is 16: 40 single-token appends force two doublings.
    for _ in range(40):
        step = rng.standard_normal((2, 1, 3)).astype(dtype)
        cache.append(step, step * 2.0)
        appended.append(step)
    assert cache.keys.dtype == np.dtype(dtype)
    assert cache.values.dtype == np.dtype(dtype)
    assert cache.length == 40
    expected = np.concatenate(appended, axis=1)
    np.testing.assert_array_equal(cache.keys, expected)
    np.testing.assert_array_equal(cache.values, expected * 2.0)


def test_model_kvcache_dtype_follows_policy():
    config = get_config("tiny_moe_8")
    rng = np.random.default_rng(0)
    enc = rng.integers(1, config.vocab_size, size=(2, 4))
    for policy, expected in (("pure_fp64", np.float64), ("mixed", np.float32)):
        with use_precision(policy):
            model = SwitchTransformer(config, seed=0).eval()
            generated, _ = model.greedy_decode(enc, bos_id=1, eos_id=0,
                                               max_new_tokens=3)
            with no_grad():
                logits = model(enc, enc).logits
            assert logits.dtype == np.dtype(expected)
        assert generated.shape == (2, 4)


# ----------------------------------------------------------------------
# Lazy-backend dtype plumbing.
# ----------------------------------------------------------------------
def test_lazy_buffer_pool_keys_on_dtype():
    """Same-shape fp32 and fp64 chains in one graph must not share
    recycled buffers."""
    rng = np.random.default_rng(3)
    a_data = rng.standard_normal((8, 8))
    with use_backend("lazy"), no_grad():
        a64 = Tensor(a_data)
        a32 = a64.astype(np.float32)
        chain64 = ((a64 + 1.0) * 2.0).tanh() + a64
        chain32 = ((a32 + 1.0) * 2.0).tanh() + a32
        total = chain64 + chain32.astype(np.float64)
        value = np.array(total.data, copy=True)
    expected64 = np.tanh((a_data + 1.0) * 2.0) + a_data
    a32_np = a_data.astype(np.float32)
    expected32 = np.tanh((a32_np + np.float32(1.0)) * np.float32(2.0)) + a32_np
    np.testing.assert_allclose(value, expected64 + expected32, rtol=1e-6)


def test_lazy_expr_tracks_dtype():
    with use_backend("lazy"), use_precision("mixed"), no_grad():
        x = Tensor([[1.0, 2.0]])
        assert x.dtype == np.float32
        y = x + x
        assert y.dtype == np.float32          # inferred, not materialised
        z = y.astype(np.float64)
        assert z.dtype == np.float64
        assert z.numpy().dtype == np.float64


def test_greedy_decode_stands_down_lazy_backend():
    config = get_config("tiny_moe_8")
    rng = np.random.default_rng(0)
    enc = rng.integers(1, config.vocab_size, size=(3, 5))
    model = SwitchTransformer(config, seed=0).eval()
    eager_tokens, _ = model.greedy_decode(enc, bos_id=1, eos_id=0,
                                          max_new_tokens=4)
    with use_backend("lazy"):
        lazy_tokens, _ = model.greedy_decode(enc, bos_id=1, eos_id=0,
                                             max_new_tokens=4)
        assert T.current_backend() == "lazy"   # restored after stand-down
    np.testing.assert_array_equal(eager_tokens, lazy_tokens)
