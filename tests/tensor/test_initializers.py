"""Tests for weight initialisation schemes."""

import numpy as np
import pytest

from repro.tensor.initializers import (
    kaiming_normal,
    ones_init,
    truncated_normal,
    xavier_normal,
    xavier_uniform,
    zeros_init,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def test_xavier_uniform_bounds(rng):
    w = xavier_uniform((100, 200), rng=rng)
    limit = np.sqrt(6.0 / 300)
    assert w.shape == (100, 200)
    assert w.max() <= limit and w.min() >= -limit


def test_xavier_normal_std(rng):
    w = xavier_normal((500, 500), rng=rng)
    assert abs(w.std() - np.sqrt(2.0 / 1000)) < 5e-3


def test_kaiming_normal_std(rng):
    w = kaiming_normal((400, 100), rng=rng)
    assert abs(w.std() - np.sqrt(2.0 / 400)) < 5e-3


def test_truncated_normal_clipped(rng):
    w = truncated_normal((1000,), std=0.1, rng=rng)
    assert np.abs(w).max() <= 0.2 + 1e-12


def test_zeros_and_ones():
    assert zeros_init((3, 3)).sum() == 0.0
    assert ones_init((3, 3)).sum() == 9.0


def test_scalar_shape_fans():
    # 1-D shapes use fan_in == fan_out == dim.
    w = xavier_uniform((10,), rng=np.random.default_rng(1))
    assert w.shape == (10,)


def test_empty_shape_raises():
    with pytest.raises(ValueError):
        xavier_uniform(())
