"""Eager ↔ lazy backend parity: same registry, identical results.

The two backends share one primitive registry (:mod:`repro.tensor.primitives`)
— the lazy backend records the same primitives it defers and the backward
pass always runs the same VJPs over materialised values — so forward values
and gradients must agree to :data:`BUDGET` (they are in fact bit-identical).
The property-based suite drives random expression graphs, random shapes and
broadcasting through every primitive; dedicated tests pin the backend
switch semantics, the no-grad fusion path and the stand-down cases.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor, no_grad, use_backend
from repro.tensor import current_backend
from repro.tensor import functional as F
from repro.tensor.autograd import (concatenate, embedding_lookup, layer_norm,
                                   scaled_dot_product_attention,
                                   softmax_cross_entropy, stack, where)
from repro.tensor import lazy

BUDGET = 1e-9


def _assert_close(a, b, label):
    assert np.max(np.abs(np.asarray(a) - np.asarray(b))) <= BUDGET, label


def run_both(build, n_inputs_grads):
    """Run ``build`` under each backend; compare output and input grads.

    ``build`` receives fresh input Tensors (created by ``n_inputs_grads``, a
    callable returning a list of Tensors with ``requires_grad=True``) and
    returns a Tensor; the harness reduces it to a scalar, runs backward,
    and asserts value + gradient parity within :data:`BUDGET`.
    """
    results = {}
    for backend in ("eager", "lazy"):
        with use_backend(backend):
            inputs = n_inputs_grads()
            out = build(*inputs)
            value = np.array(out.data, copy=True)
            (out * out).sum().backward()
            grads = [None if t.grad is None else np.array(t.grad, copy=True)
                     for t in inputs]
            results[backend] = (value, grads)
    value_e, grads_e = results["eager"]
    value_l, grads_l = results["lazy"]
    _assert_close(value_e, value_l, "forward values diverged")
    for i, (ge, gl) in enumerate(zip(grads_e, grads_l)):
        assert (ge is None) == (gl is None)
        if ge is not None:
            _assert_close(ge, gl, f"gradient {i} diverged")


def make_inputs(*shapes, seed=0):
    def factory():
        rng = np.random.default_rng(seed)
        return [Tensor(rng.standard_normal(shape) + 0.1, requires_grad=True)
                for shape in shapes]
    return factory


# ----------------------------------------------------------------------
# Per-primitive coverage: every op the registry exposes, both backends.
# ----------------------------------------------------------------------
BINARY_CASES = [
    ("add", lambda a, b: a + b),
    ("sub", lambda a, b: a - b),
    ("mul", lambda a, b: a * b),
    ("div", lambda a, b: a / (b * b + 1.0)),
    ("where", lambda a, b: where(np.asarray(a.data) > 0, a, b)),
]

UNARY_CASES = [
    ("neg", lambda a: -a),
    ("pow", lambda a: (a * a + 1.0) ** 1.5),
    ("exp", lambda a: a.exp()),
    ("log", lambda a: (a * a + 1.0).log()),
    ("sqrt", lambda a: (a * a + 1.0).sqrt()),
    ("tanh", lambda a: a.tanh()),
    ("sigmoid", lambda a: a.sigmoid()),
    ("relu", lambda a: a.relu()),
    ("gelu", lambda a: a.gelu()),
    ("masked_fill", lambda a: a.masked_fill(np.asarray(a.data) < 0, -2.0)),
    ("reshape", lambda a: a.reshape(-1)),
    ("transpose", lambda a: a.transpose(1, 0)),
    ("getitem", lambda a: a[1:, :2]),
    ("sum", lambda a: a.sum(axis=1)),
    ("sum_keepdims", lambda a: a.sum(axis=0, keepdims=True)),
    ("mean", lambda a: a.mean(axis=-1)),
    ("max", lambda a: a.max(axis=1)),
    ("softmax", lambda a: a.softmax(axis=-1)),
    ("log_softmax", lambda a: a.log_softmax(axis=-1)),
]


@pytest.mark.parametrize("name,fn", BINARY_CASES, ids=[c[0] for c in BINARY_CASES])
def test_binary_primitive_parity(name, fn):
    run_both(fn, make_inputs((3, 4), (3, 4)))


@pytest.mark.parametrize("name,fn", BINARY_CASES[:4], ids=[c[0] for c in BINARY_CASES[:4]])
def test_binary_primitive_broadcast_parity(name, fn):
    run_both(fn, make_inputs((3, 4), (4,)))
    run_both(fn, make_inputs((2, 1, 4), (3, 1)))


@pytest.mark.parametrize("name,fn", UNARY_CASES, ids=[c[0] for c in UNARY_CASES])
def test_unary_primitive_parity(name, fn):
    run_both(fn, make_inputs((3, 4)))


def test_matmul_parity():
    run_both(lambda a, b: a @ b, make_inputs((3, 4), (4, 5)))
    run_both(lambda a, b: a @ b, make_inputs((2, 3, 4), (4, 5)))


def test_concatenate_stack_parity():
    run_both(lambda a, b: concatenate([a, b], axis=1), make_inputs((3, 2), (3, 4)))
    run_both(lambda a, b: stack([a, b], axis=0), make_inputs((3, 2), (3, 2)))


def test_embedding_parity():
    idx = np.array([[0, 2, 1], [2, 2, 0]])
    run_both(lambda w: embedding_lookup(w, idx), make_inputs((4, 5)))


def test_layer_norm_parity():
    run_both(lambda x, s, b: layer_norm(x, s, b),
             make_inputs((4, 6), (6,), (6,)))


def test_sdpa_parity():
    mask = np.triu(np.ones((5, 5), dtype=bool), k=1)[None, None]
    run_both(lambda q, k, v: scaled_dot_product_attention(
        q, k, v, mask=mask, scale=0.5),
        make_inputs((2, 2, 5, 3), (2, 2, 5, 3), (2, 2, 5, 3)))


def test_softmax_xent_parity():
    targets = np.array([0, 3, 1, 2])
    weights = np.array([1.0, 1.0, 0.0, 1.0])
    run_both(lambda logits: softmax_cross_entropy(logits, targets, weights, 3.0),
             make_inputs((4, 5)))


# ----------------------------------------------------------------------
# Property-based: random graphs of chained primitives.
# ----------------------------------------------------------------------
CHAIN_OPS = [
    lambda t, o: t + o,
    lambda t, o: t * o,
    lambda t, o: t - o,
    lambda t, o: t / (o * o + 1.5),
    lambda t, o: t.relu() + o,
    lambda t, o: (t * 0.5).tanh() * o,
    lambda t, o: t.sigmoid() - o,
    lambda t, o: (t + o).softmax(axis=-1),
    lambda t, o: t.masked_fill(np.zeros(t.shape, dtype=bool), 0.0) + o,
    lambda t, o: (t * o).sum(axis=-1, keepdims=True) + t,
]


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=4),
    cols=st.integers(min_value=1, max_value=5),
    broadcast=st.booleans(),
    ops=st.lists(st.integers(min_value=0, max_value=len(CHAIN_OPS) - 1),
                 min_size=1, max_size=8),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_random_graph_parity(rows, cols, broadcast, ops, seed):
    shape_a = (rows, cols)
    shape_b = (cols,) if broadcast else (rows, cols)

    def build(a, b):
        t = a
        for op_idx in ops:
            t = CHAIN_OPS[op_idx](t, b)
        return t

    run_both(build, make_inputs(shape_a, shape_b, seed=seed))


@settings(max_examples=15, deadline=None)
@given(
    ops=st.lists(st.integers(min_value=0, max_value=len(CHAIN_OPS) - 1),
                 min_size=1, max_size=8),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_random_graph_no_grad_parity(ops, seed):
    """Under ``no_grad`` the lazy evaluator recycles buffers — values must
    still match the eager backend exactly."""
    rng = np.random.default_rng(seed)
    a_data = rng.standard_normal((3, 4))
    b_data = rng.standard_normal((3, 4))
    values = {}
    for backend in ("eager", "lazy"):
        with use_backend(backend), no_grad():
            t, o = Tensor(a_data), Tensor(b_data)
            for op_idx in ops:
                t = CHAIN_OPS[op_idx](t, o)
            values[backend] = np.array(t.data, copy=True)
    _assert_close(values["eager"], values["lazy"], "no_grad values diverged")


# ----------------------------------------------------------------------
# Backend-switch semantics and the lazy evaluator's machinery.
# ----------------------------------------------------------------------
def test_use_backend_context_manager_restores():
    assert current_backend() == "eager"
    with use_backend("lazy"):
        assert current_backend() == "lazy"
        with use_backend("eager"):
            assert current_backend() == "eager"
        assert current_backend() == "lazy"
    assert current_backend() == "eager"


def test_use_backend_global_switch():
    use_backend("lazy")
    try:
        assert current_backend() == "lazy"
    finally:
        use_backend("eager")
    assert current_backend() == "eager"


def test_use_backend_rejects_unknown():
    with pytest.raises(ValueError):
        use_backend("jit")


def test_lazy_defers_until_demanded():
    with use_backend("lazy"), no_grad():
        a = Tensor(np.ones((2, 2)))
        out = (a + 1.0) * 3.0
        assert out._data is None          # recorded, not executed
        assert out.shape == (2, 2)        # shape known without materialising
        np.testing.assert_allclose(out.data, np.full((2, 2), 6.0))
        assert out._data is not None      # demand materialised it


def test_lazy_fuses_elementwise_chains():
    lazy.reset_stats()
    with use_backend("lazy"), no_grad():
        t = Tensor(np.ones((64, 64)))
        for _ in range(10):
            t = (t * 0.5 + 1.0).relu()
        value = t.data
    counters = lazy.stats()
    assert counters["materializations"] == 1
    assert counters["nodes_evaluated"] == 30
    # All but the first op of the chain can reuse a dying buffer.
    assert counters["elementwise_fused"] >= counters["nodes_evaluated"] - 2
    assert counters["inplace_reuses"] > 0
    expected = np.ones((64, 64))
    for _ in range(10):
        expected = np.maximum(expected * 0.5 + 1.0, 0.0)
    np.testing.assert_allclose(value, expected)


def test_lazy_view_primitives_stay_safe():
    """reshape/transpose return numpy views; the viewed buffer must not be
    recycled into the pool and corrupted by later ops."""
    with use_backend("lazy"), no_grad():
        a = Tensor(np.arange(12.0).reshape(3, 4))
        base = (a + 1.0) * 2.0
        view = base.reshape(2, 6)
        # Same-shape elementwise traffic that would love to recycle buffers.
        noise = ((a * 3.0) + (a * 4.0)).reshape(2, 6) + 1.0
        total = view + noise
        expected = ((np.arange(12.0).reshape(3, 4) + 1.0) * 2.0).reshape(2, 6) \
            + ((np.arange(12.0).reshape(3, 4) * 7.0).reshape(2, 6) + 1.0)
        np.testing.assert_allclose(total.data, expected)


def test_lazy_stands_down_for_fancy_indexing():
    with use_backend("lazy"), no_grad():
        a = Tensor(np.arange(12.0).reshape(3, 4))
        picked = (a + 1.0)[np.array([0, 2])]
        assert picked._data is not None   # getitem is always eager
        np.testing.assert_allclose(
            picked.data, (np.arange(12.0).reshape(3, 4) + 1.0)[[0, 2]])


def test_lazy_backward_materialises_and_matches():
    data = np.linspace(-1.0, 1.0, 12).reshape(3, 4)
    with use_backend("lazy"):
        t = Tensor(data, requires_grad=True)
        loss = ((t * 2.0).tanh() + 1.0).sum()
        loss.backward()
        lazy_grad = np.array(t.grad, copy=True)
    t2 = Tensor(data, requires_grad=True)
    ((t2 * 2.0).tanh() + 1.0).sum().backward()
    _assert_close(lazy_grad, t2.grad, "backward through lazy graph diverged")


def test_released_transient_recomputes_if_redemanded():
    """A transient whose buffer was recycled is recomputed from the pure
    graph when a second materialisation demands it again."""
    with use_backend("lazy"), no_grad():
        a = Tensor(np.full((4, 4), 2.0))
        mid = a * 3.0
        first = (mid + 1.0).relu()
        np.testing.assert_allclose(first.data, np.full((4, 4), 7.0))
        # mid's buffer may have been consumed by the chain above; a new
        # expression over mid must still see the right values.
        second = mid + 10.0
        np.testing.assert_allclose(second.data, np.full((4, 4), 16.0))
