"""Tests for Linear, LayerNorm, Embedding, Dropout and the Module system."""

import numpy as np
import pytest

from repro.tensor import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    Parameter,
    Sequential,
    Tensor,
)


class TestLinear:
    def test_output_shape(self):
        lin = Linear(8, 3, rng=np.random.default_rng(0))
        out = lin(Tensor(np.ones((5, 8))))
        assert out.shape == (5, 3)

    def test_no_bias_option(self):
        lin = Linear(4, 4, bias=False)
        assert not lin.has_bias
        assert len(lin.parameters()) == 1

    def test_gradients_reach_weights(self):
        lin = Linear(4, 2, rng=np.random.default_rng(1))
        out = lin(Tensor(np.ones((3, 4))))
        (out * out).sum().backward()
        assert lin.weight.grad is not None
        assert lin.bias.grad is not None

    def test_batched_input(self):
        lin = Linear(6, 2, rng=np.random.default_rng(2))
        out = lin(Tensor(np.ones((2, 5, 6))))
        assert out.shape == (2, 5, 2)


class TestLayerNorm:
    def test_normalises_last_dim(self):
        ln = LayerNorm(16)
        x = Tensor(np.random.default_rng(3).standard_normal((4, 16)) * 10 + 5)
        out = ln(x).numpy()
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_learnable_scale_shift(self):
        ln = LayerNorm(4)
        ln.scale.data = np.full(4, 2.0)
        ln.shift.data = np.full(4, 1.0)
        x = Tensor(np.random.default_rng(4).standard_normal((2, 4)))
        out = ln(x).numpy()
        assert np.allclose(out.mean(axis=-1), 1.0, atol=1e-6)

    def test_gradients_flow(self):
        ln = LayerNorm(8)
        x = Tensor(np.random.default_rng(5).standard_normal((3, 8)), requires_grad=True)
        (ln(x) ** 2).sum().backward()
        assert x.grad is not None
        assert ln.scale.grad is not None


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(vocab_size=10, dim=4, rng=np.random.default_rng(6))
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_out_of_range_raises(self):
        emb = Embedding(vocab_size=5, dim=2)
        with pytest.raises(IndexError):
            emb(np.array([[7]]))

    def test_gradient_accumulates_on_repeated_ids(self):
        emb = Embedding(vocab_size=6, dim=3, rng=np.random.default_rng(7))
        out = emb(np.array([[2, 2, 2]]))
        out.sum().backward()
        assert np.allclose(emb.weight.grad[2], 3.0)
        assert np.allclose(emb.weight.grad[0], 0.0)


class TestDropout:
    def test_eval_is_identity(self):
        drop = Dropout(0.5)
        drop.eval()
        x = Tensor(np.ones((4, 4)))
        assert np.allclose(drop(x).numpy(), 1.0)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestModuleSystem:
    def test_named_parameters_nesting(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.fc1 = Linear(4, 4)
                self.fc2 = Linear(4, 2)

            def forward(self, x):
                return self.fc2(self.fc1(x))

        net = Net()
        names = dict(net.named_parameters())
        assert "fc1.weight" in names and "fc2.bias" in names
        assert net.num_parameters() == 4 * 4 + 4 + 4 * 2 + 2

    def test_state_dict_roundtrip(self):
        net = Sequential(Linear(3, 3), LayerNorm(3))
        state = net.state_dict()
        net2 = Sequential(Linear(3, 3), LayerNorm(3))
        net2.load_state_dict(state)
        for (_, p1), (_, p2) in zip(net.named_parameters(), net2.named_parameters()):
            assert np.allclose(p1.data, p2.data)

    def test_strict_load_rejects_mismatch(self):
        net = Sequential(Linear(3, 3))
        with pytest.raises(KeyError):
            net.load_state_dict({"bogus": np.zeros(1)})

    def test_non_strict_load_ignores_extras(self):
        net = Sequential(Linear(3, 3))
        state = net.state_dict()
        state["extra"] = np.zeros(2)
        net.load_state_dict(state, strict=False)

    def test_load_shape_mismatch_raises(self):
        net = Sequential(Linear(3, 3))
        state = {name: np.zeros((1, 1)) for name in net.state_dict()}
        with pytest.raises(ValueError):
            net.load_state_dict(state, strict=False)

    def test_train_eval_propagates(self):
        net = Sequential(Dropout(0.5), Linear(2, 2))
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad_clears(self):
        lin = Linear(2, 2)
        (lin(Tensor(np.ones((1, 2)))) ** 2).sum().backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_module_list(self):
        ml = ModuleList([Linear(2, 2), Linear(2, 2)])
        ml.append(Linear(2, 2))
        assert len(ml) == 3
        assert isinstance(ml[1], Linear)
        assert len(list(iter(ml))) == 3

    def test_parameter_is_tensor_with_grad(self):
        p = Parameter(np.zeros((2, 2)))
        assert p.requires_grad
        assert isinstance(p, Tensor)

    def test_sequential_forward(self):
        net = Sequential(Linear(4, 8, rng=np.random.default_rng(0)),
                         Linear(8, 2, rng=np.random.default_rng(1)))
        out = net(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 2)
