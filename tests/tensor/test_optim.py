"""Tests for optimisers, LR schedules and gradient clipping."""

import numpy as np
import pytest

from repro.tensor import (
    SGD,
    Adam,
    ConstantLR,
    Linear,
    Tensor,
    WarmupInverseSqrtLR,
    clip_grad_norm,
)
from repro.tensor.module import Parameter
from repro.tensor import functional as F


def quadratic_loss(param):
    return ((param - Tensor(np.full_like(param.data, 3.0))) ** 2).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4))
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        assert np.allclose(p.data, 3.0, atol=1e-3)

    def test_momentum_accelerates(self):
        p_plain = Parameter(np.zeros(4))
        p_momentum = Parameter(np.zeros(4))
        sgd = SGD([p_plain], lr=0.01)
        sgdm = SGD([p_momentum], lr=0.01, momentum=0.9)
        for _ in range(50):
            for opt, p in ((sgd, p_plain), (sgdm, p_momentum)):
                opt.zero_grad()
                quadratic_loss(p).backward()
                opt.step()
        assert quadratic_loss(p_momentum).item() < quadratic_loss(p_plain).item()

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.5)

    def test_skips_params_without_grad(self):
        p = Parameter(np.ones(2))
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad yet: must be a no-op, not an error
        assert np.allclose(p.data, 1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        assert np.allclose(p.data, 3.0, atol=1e-2)

    def test_weight_decay_shrinks_solution(self):
        p_plain = Parameter(np.zeros(2))
        p_decay = Parameter(np.zeros(2))
        for p, wd in ((p_plain, 0.0), (p_decay, 0.5)):
            opt = Adam([p], lr=0.05, weight_decay=wd)
            for _ in range(400):
                opt.zero_grad()
                quadratic_loss(p).backward()
                opt.step()
        assert np.abs(p_decay.data).max() < np.abs(p_plain.data).max()

    def test_trains_a_linear_classifier(self):
        rng = np.random.default_rng(0)
        lin = Linear(4, 3, rng=rng)
        x = rng.standard_normal((64, 4))
        y = (x[:, 0] > 0).astype(np.int64)
        opt = Adam(lin.parameters(), lr=0.05)
        first_loss = None
        for _ in range(60):
            opt.zero_grad()
            loss = F.cross_entropy(lin(Tensor(x)), y)
            if first_loss is None:
                first_loss = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first_loss * 0.5

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=-1.0)


class TestSchedules:
    def test_constant_lr_is_constant(self):
        opt = Adam([Parameter(np.zeros(1))], lr=1e-4)
        sched = ConstantLR(opt)
        values = [sched.step() for _ in range(5)]
        assert all(v == pytest.approx(1e-4) for v in values)

    def test_warmup_then_decay(self):
        opt = Adam([Parameter(np.zeros(1))], lr=1.0)
        sched = WarmupInverseSqrtLR(opt, peak_lr=1.0, warmup_steps=10)
        warmup = [sched.step() for _ in range(10)]
        assert warmup[0] < warmup[-1]
        later = [sched.step() for _ in range(50)]
        assert later[-1] < later[0]

    def test_schedule_updates_optimizer(self):
        opt = Adam([Parameter(np.zeros(1))], lr=5.0)
        ConstantLR(opt, lr=0.123).step()
        assert opt.lr == pytest.approx(0.123)

    def test_warmup_requires_positive_steps(self):
        opt = Adam([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ValueError):
            WarmupInverseSqrtLR(opt, peak_lr=1.0, warmup_steps=0)


class TestClipGradNorm:
    def test_norm_reduced_to_max(self):
        p = Parameter(np.zeros(100))
        p.grad = np.ones(100)
        pre = clip_grad_norm([p], max_norm=1.0)
        assert pre == pytest.approx(10.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_small_gradients_untouched(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 0.1)
        clip_grad_norm([p], max_norm=10.0)
        assert np.allclose(p.grad, 0.1)

    def test_no_grads_returns_zero(self):
        assert clip_grad_norm([Parameter(np.zeros(3))], max_norm=1.0) == 0.0
