"""Tests for the functional ops (softmax, cross-entropy, dropout, top-k)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tensor import Tensor
from repro.tensor import functional as F


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).standard_normal((4, 7)))
        probs = F.softmax(x).numpy()
        assert np.allclose(probs.sum(axis=-1), 1.0)
        assert (probs >= 0).all()

    def test_shift_invariance(self):
        x = np.random.default_rng(1).standard_normal((3, 5))
        a = F.softmax(Tensor(x)).numpy()
        b = F.softmax(Tensor(x + 1000.0)).numpy()
        assert np.allclose(a, b)

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(np.random.default_rng(2).standard_normal((3, 5)))
        assert np.allclose(F.log_softmax(x).numpy(), np.log(F.softmax(x).numpy()))

    def test_softmax_gradient_flows(self):
        x = Tensor(np.random.default_rng(3).standard_normal((2, 4)), requires_grad=True)
        F.softmax(x).sum().backward()
        assert x.grad is not None
        # Softmax rows sum to 1 regardless of input, so d(sum)/dx ~ 0.
        assert np.allclose(x.grad, 0.0, atol=1e-8)


class TestCrossEntropy:
    def test_uniform_logits_give_log_vocab(self):
        vocab = 11
        logits = Tensor(np.zeros((2, 3, vocab)))
        targets = np.zeros((2, 3), dtype=np.int64)
        loss = F.cross_entropy(logits, targets)
        assert loss.item() == pytest.approx(np.log(vocab))

    def test_perfect_logits_give_near_zero_loss(self):
        targets = np.array([[1, 2]])
        logits_arr = np.full((1, 2, 4), -100.0)
        logits_arr[0, 0, 1] = 100.0
        logits_arr[0, 1, 2] = 100.0
        loss = F.cross_entropy(Tensor(logits_arr), targets)
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_ignore_index_masks_positions(self):
        logits = Tensor(np.random.default_rng(4).standard_normal((1, 3, 5)), requires_grad=True)
        targets = np.array([[1, 0, 0]])
        loss_all = F.cross_entropy(logits, targets)
        loss_masked = F.cross_entropy(logits, targets, ignore_index=0)
        assert loss_masked.item() != pytest.approx(loss_all.item())

    def test_gradient_shape(self):
        logits = Tensor(np.random.default_rng(5).standard_normal((2, 3, 7)), requires_grad=True)
        targets = np.random.default_rng(5).integers(0, 7, (2, 3))
        F.cross_entropy(logits, targets).backward()
        assert logits.grad.shape == (2, 3, 7)

    def test_loss_decreases_with_gradient_step(self):
        rng = np.random.default_rng(6)
        logits = Tensor(rng.standard_normal((4, 6)), requires_grad=True)
        targets = rng.integers(0, 6, (4,))
        loss = F.cross_entropy(logits, targets)
        loss.backward()
        stepped = Tensor(logits.numpy() - 1.0 * logits.grad)
        assert F.cross_entropy(stepped, targets).item() < loss.item()


class TestOneHotAndMasks:
    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), depth=3)
        assert np.allclose(out, [[1, 0, 0], [0, 0, 1]])

    def test_causal_mask_upper_triangular(self):
        mask = F.causal_mask(4)
        assert mask.shape == (4, 4)
        assert not mask[2, 1]
        assert mask[1, 2]
        assert not mask.diagonal().any()

    def test_padding_mask(self):
        ids = np.array([[5, 0, 0], [1, 2, 0]])
        mask = F.padding_mask(ids, pad_id=0)
        assert mask.tolist() == [[False, True, True], [False, False, True]]


class TestDropout:
    def test_eval_mode_is_identity(self):
        x = Tensor(np.ones((10, 10)))
        out = F.dropout(x, rate=0.5, training=False)
        assert np.allclose(out.numpy(), 1.0)

    def test_training_scales_survivors(self):
        rng = np.random.default_rng(7)
        x = Tensor(np.ones((2000,)))
        out = F.dropout(x, rate=0.5, training=True, rng=rng).numpy()
        survivors = out[out > 0]
        assert np.allclose(survivors, 2.0)
        assert 0.4 < (out > 0).mean() < 0.6

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor([1.0]), rate=1.5, training=True)


class TestTopK:
    def test_values_sorted_descending(self):
        scores = np.array([[0.1, 0.9, 0.5, 0.3]])
        idx, vals = F.top_k_indices(scores, k=3)
        assert idx[0].tolist() == [1, 2, 3]
        assert np.all(np.diff(vals[0]) <= 0)

    def test_k_larger_than_width_is_clamped(self):
        idx, _ = F.top_k_indices(np.array([[3.0, 1.0]]), k=5)
        assert idx.shape == (1, 2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            F.top_k_indices(np.ones((1, 3)), k=0)

    @settings(max_examples=30, deadline=None)
    @given(
        width=st.integers(min_value=1, max_value=16),
        k=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_property_topk_matches_argsort(self, width, k, seed):
        scores = np.random.default_rng(seed).standard_normal((3, width))
        idx, vals = F.top_k_indices(scores, k=k)
        expected = np.argsort(-scores, axis=-1)[:, :min(k, width)]
        expected_vals = np.take_along_axis(scores, expected, axis=-1)
        assert np.allclose(np.sort(vals, axis=-1), np.sort(expected_vals, axis=-1))
