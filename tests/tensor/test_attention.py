"""Tests for multi-head attention, the KV cache and the FFN layer."""

import numpy as np
import pytest

from repro.tensor import FeedForward, KVCache, MultiHeadAttention, Tensor, no_grad


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestMultiHeadAttention:
    def test_output_shape_matches_input(self, rng):
        attn = MultiHeadAttention(32, 4, rng=rng)
        x = Tensor(rng.standard_normal((2, 7, 32)))
        assert attn(x).shape == (2, 7, 32)

    def test_dim_must_divide_heads(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(30, 4)

    def test_causal_mask_blocks_future(self, rng):
        """Changing a future token must not change earlier outputs under causal masking."""
        attn = MultiHeadAttention(16, 2, causal=True, rng=rng)
        x = rng.standard_normal((1, 5, 16))
        with no_grad():
            base = attn(Tensor(x)).numpy()
            modified = x.copy()
            modified[0, 4, :] += 10.0
            out = attn(Tensor(modified)).numpy()
        assert np.allclose(base[0, :4], out[0, :4], atol=1e-10)
        assert not np.allclose(base[0, 4], out[0, 4])

    def test_non_causal_attends_everywhere(self, rng):
        attn = MultiHeadAttention(16, 2, causal=False, rng=rng)
        x = rng.standard_normal((1, 5, 16))
        with no_grad():
            base = attn(Tensor(x)).numpy()
            modified = x.copy()
            modified[0, 4, :] += 10.0
            out = attn(Tensor(modified)).numpy()
        assert not np.allclose(base[0, 0], out[0, 0])

    def test_padding_mask_ignored_positions(self, rng):
        attn = MultiHeadAttention(16, 2, rng=rng)
        x = rng.standard_normal((1, 4, 16))
        mask = np.array([[False, False, True, True]])
        with no_grad():
            base = attn(Tensor(x), key_padding_mask=mask).numpy()
            modified = x.copy()
            modified[0, 3, :] += 100.0
            out = attn(Tensor(modified), key_padding_mask=mask).numpy()
        # Padded key positions cannot influence non-padded queries' outputs.
        assert np.allclose(base[0, 0], out[0, 0], atol=1e-10)

    def test_padding_mask_length_mismatch_raises(self, rng):
        attn = MultiHeadAttention(16, 2, rng=rng)
        x = Tensor(rng.standard_normal((1, 4, 16)))
        with pytest.raises(ValueError):
            attn(x, key_padding_mask=np.zeros((1, 7), dtype=bool))

    def test_cross_attention_shapes(self, rng):
        attn = MultiHeadAttention(16, 4, rng=rng)
        query = Tensor(rng.standard_normal((2, 3, 16)))
        memory = Tensor(rng.standard_normal((2, 9, 16)))
        assert attn(query, key=memory, value=memory).shape == (2, 3, 16)

    def test_gradients_reach_all_projections(self, rng):
        attn = MultiHeadAttention(8, 2, rng=rng)
        x = Tensor(rng.standard_normal((1, 4, 8)), requires_grad=True)
        (attn(x) ** 2).sum().backward()
        for proj in (attn.q_proj, attn.k_proj, attn.v_proj, attn.out_proj):
            assert proj.weight.grad is not None
        assert x.grad is not None


class TestKVCache:
    def test_incremental_decode_matches_full_forward(self, rng):
        """Token-by-token decoding with a KV cache equals one causal forward pass."""
        attn = MultiHeadAttention(16, 4, causal=True, rng=rng)
        x = rng.standard_normal((1, 6, 16))
        with no_grad():
            full = attn(Tensor(x)).numpy()
            cache = KVCache()
            steps = []
            for t in range(6):
                step = attn(Tensor(x[:, t:t + 1, :]), kv_cache=cache)
                steps.append(step.numpy())
        incremental = np.concatenate(steps, axis=1)
        assert np.allclose(full, incremental, atol=1e-8)

    def test_cache_length_grows(self, rng):
        attn = MultiHeadAttention(8, 2, causal=True, rng=rng)
        cache = KVCache()
        assert cache.length == 0
        for t in range(3):
            attn(Tensor(rng.standard_normal((1, 1, 8))), kv_cache=cache)
            assert cache.length == t + 1


class TestFeedForward:
    def test_shape_preserved(self, rng):
        ffn = FeedForward(16, 64, rng=rng)
        out = ffn(Tensor(rng.standard_normal((2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_gelu_variant(self, rng):
        ffn = FeedForward(8, 16, activation="gelu", rng=rng)
        assert ffn(Tensor(rng.standard_normal((1, 2, 8)))).shape == (1, 2, 8)

    def test_invalid_activation(self):
        with pytest.raises(ValueError):
            FeedForward(8, 16, activation="swish")

    def test_parameter_count_matches_config_formula(self, rng):
        d_model, d_ff = 12, 48
        ffn = FeedForward(d_model, d_ff, rng=rng)
        # Two bias-free projections: exactly the paper's per-expert size.
        assert ffn.num_parameters() == 2 * d_model * d_ff
