"""KVCache preallocation: amortised append, capacity doubling, slice views.

The seed implementation re-``np.concatenate``d the whole cache on every
appended token (O(T²) over a T-token decode); the preallocated cache grows
by capacity doubling and exposes zero-copy views of the filled prefix.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.attention import KVCache


def test_empty_cache():
    cache = KVCache()
    assert cache.length == 0
    assert cache.keys is None
    assert cache.values is None


def test_append_accumulates_in_order():
    cache = KVCache()
    rng = np.random.default_rng(0)
    chunks = [rng.standard_normal((2, n, 4)) for n in (1, 3, 1, 2)]
    for chunk in chunks:
        cache.append(chunk, chunk * 2.0)
    expected = np.concatenate(chunks, axis=1)
    assert cache.length == expected.shape[1]
    np.testing.assert_array_equal(cache.keys, expected)
    np.testing.assert_array_equal(cache.values, expected * 2.0)


def test_capacity_doubles_not_reallocates_per_token():
    cache = KVCache()
    token = np.ones((1, 1, 8))
    cache.append(token, token)
    buffer = cache._keys
    capacity = buffer.shape[1]
    # Appends within capacity reuse the same underlying buffer.
    for _ in range(capacity - 1):
        cache.append(token, token)
    assert cache._keys is buffer
    # The append that exceeds capacity grows it geometrically (doubling),
    # keeping a T-token decode at O(T) amortised copies.
    cache.append(token, token)
    assert cache._keys is not buffer
    assert cache._keys.shape[1] == 2 * capacity
    assert cache.length == capacity + 1


def test_views_are_zero_copy_and_track_growth():
    cache = KVCache()
    first = np.arange(8.0).reshape(1, 1, 8)
    cache.append(first, first)
    keys = cache.keys
    assert keys.base is cache._keys          # slice view, not a copy
    np.testing.assert_array_equal(keys[0, 0], first[0, 0])
    cache.append(first + 1.0, first + 1.0)
    assert cache.keys.shape == (1, 2, 8)
    np.testing.assert_array_equal(cache.keys[0, 1], first[0, 0] + 1.0)


def test_constructor_seeds_from_initial_tensors():
    rng = np.random.default_rng(1)
    keys = rng.standard_normal((2, 5, 4))
    values = rng.standard_normal((2, 5, 4))
    cache = KVCache(keys, values)
    assert cache.length == 5
    np.testing.assert_array_equal(cache.keys, keys)
    np.testing.assert_array_equal(cache.values, values)
