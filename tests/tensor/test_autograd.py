"""Unit and property-based tests for the autograd engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tensor.autograd import (
    Tensor,
    concatenate,
    embedding_lookup,
    no_grad,
    randn,
    stack,
    unbroadcast,
    where,
    zeros,
    ones,
)


def numeric_grad(func, x, eps=1e-6):
    """Central-difference numerical gradient of a scalar function of an array."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        xp = x.copy()
        xm = x.copy()
        xp[idx] += eps
        xm[idx] -= eps
        grad[idx] = (func(xp) - func(xm)) / (2 * eps)
        it.iternext()
    return grad


def assert_grad_matches(op, x, atol=1e-5):
    """Check analytic vs numerical gradient of ``op`` applied to tensor(x)."""
    t = Tensor(x, requires_grad=True)
    out = op(t)
    loss = (out * out).sum()
    loss.backward()

    def scalar(arr):
        return float((op(Tensor(arr)).numpy() ** 2).sum())

    num = numeric_grad(scalar, x)
    assert np.allclose(t.grad, num, atol=atol), f"max err {np.abs(t.grad - num).max()}"


class TestBasicOps:
    def test_add_forward(self):
        a = Tensor([1.0, 2.0])
        b = Tensor([3.0, 4.0])
        assert np.allclose((a + b).numpy(), [4.0, 6.0])

    def test_add_backward_broadcast(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones((4,)), requires_grad=True)
        ((a + b).sum()).backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        assert np.allclose(b.grad, 3.0)

    def test_mul_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [5.0, 7.0])
        assert np.allclose(b.grad, [2.0, 3.0])

    def test_sub_and_neg(self):
        a = Tensor([3.0], requires_grad=True)
        b = Tensor([1.0], requires_grad=True)
        (a - b).backward()
        assert np.allclose(a.grad, 1.0)
        assert np.allclose(b.grad, -1.0)
        c = Tensor([2.0], requires_grad=True)
        (-c).backward()
        assert np.allclose(c.grad, -1.0)

    def test_div_backward(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).backward()
        assert np.allclose(a.grad, 0.5)
        assert np.allclose(b.grad, -1.5)

    def test_pow(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 2).backward()
        assert np.allclose(a.grad, 6.0)

    def test_scalar_radd_rmul(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = 2.0 + 3.0 * a
        out.sum().backward()
        assert np.allclose(out.numpy(), [5.0, 8.0])
        assert np.allclose(a.grad, 3.0)

    def test_rsub_rtruediv(self):
        a = Tensor([2.0])
        assert np.allclose((5.0 - a).numpy(), [3.0])
        assert np.allclose((10.0 / a).numpy(), [5.0])

    def test_matmul_shapes_and_grad(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
        out = a @ b
        assert out.shape == (3, 5)
        out.sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4, 5)

    def test_batched_matmul_grad(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((2, 3, 4))
        w = rng.standard_normal((4, 5))
        assert_grad_matches(lambda t: t @ Tensor(w), x)

    def test_accumulated_gradients_from_reuse(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = a * 2.0 + a * 3.0
        out.sum().backward()
        assert np.allclose(a.grad, 5.0)


class TestShapes:
    def test_reshape_roundtrip_grad(self):
        x = np.arange(12, dtype=np.float64).reshape(3, 4)
        assert_grad_matches(lambda t: t.reshape(2, 6), x)

    def test_transpose_grad(self):
        x = np.random.default_rng(2).standard_normal((2, 3, 4))
        assert_grad_matches(lambda t: t.transpose(1, 0, 2), x)

    def test_swapaxes(self):
        x = Tensor(np.arange(6).reshape(2, 3), requires_grad=True)
        out = x.swapaxes(0, 1)
        assert out.shape == (3, 2)

    def test_getitem_grad_scatters(self):
        x = Tensor(np.arange(5, dtype=np.float64), requires_grad=True)
        out = x[np.array([0, 0, 3])]
        out.sum().backward()
        assert np.allclose(x.grad, [2.0, 0.0, 0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_axis_keepdims(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        out = x.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_mean_value(self):
        x = Tensor(np.array([[1.0, 3.0], [5.0, 7.0]]))
        assert x.mean().item() == pytest.approx(4.0)
        assert np.allclose(x.mean(axis=0).numpy(), [3.0, 5.0])

    def test_mean_grad(self):
        x = np.random.default_rng(3).standard_normal((3, 4))
        assert_grad_matches(lambda t: t.mean(axis=1), x)

    def test_max_grad_ties_split(self):
        x = Tensor(np.array([2.0, 2.0, 1.0]), requires_grad=True)
        x.max().backward()
        assert np.allclose(x.grad.sum(), 1.0)
        assert x.grad[2] == 0.0


class TestNonlinearities:
    @pytest.mark.parametrize("op_name", ["exp", "tanh", "relu", "sigmoid", "gelu"])
    def test_gradients_match_numeric(self, op_name):
        x = np.random.default_rng(4).standard_normal((3, 3)) * 0.5
        assert_grad_matches(lambda t: getattr(t, op_name)(), x)

    def test_log_grad(self):
        x = np.abs(np.random.default_rng(5).standard_normal((3, 3))) + 0.5
        assert_grad_matches(lambda t: t.log(), x)

    def test_sqrt(self):
        x = Tensor([4.0], requires_grad=True)
        x.sqrt().backward()
        assert np.allclose(x.grad, 0.25)

    def test_relu_zeroes_negatives(self):
        x = Tensor([-1.0, 0.5])
        assert np.allclose(x.relu().numpy(), [0.0, 0.5])

    def test_masked_fill(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        mask = np.array([[True, False], [False, True]])
        out = x.masked_fill(mask, -99.0)
        assert out.numpy()[0, 0] == -99.0
        out.sum().backward()
        assert np.allclose(x.grad, (~mask).astype(float))


class TestCombinators:
    def test_concatenate_grad(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        out.sum().backward()
        assert np.allclose(a.grad, 1.0)
        assert np.allclose(b.grad, 1.0)

    def test_stack_grad(self):
        tensors = [Tensor(np.full((2,), float(i)), requires_grad=True) for i in range(3)]
        out = stack(tensors, axis=0)
        assert out.shape == (3, 2)
        (out * 2.0).sum().backward()
        for t in tensors:
            assert np.allclose(t.grad, 2.0)

    def test_where_grad_routes_by_condition(self):
        cond = np.array([True, False])
        a = Tensor([1.0, 1.0], requires_grad=True)
        b = Tensor([2.0, 2.0], requires_grad=True)
        where(cond, a, b).sum().backward()
        assert np.allclose(a.grad, [1.0, 0.0])
        assert np.allclose(b.grad, [0.0, 1.0])

    def test_embedding_lookup_accumulates_repeats(self):
        weight = Tensor(np.ones((4, 3)), requires_grad=True)
        out = embedding_lookup(weight, np.array([[1, 1], [2, 3]]))
        assert out.shape == (2, 2, 3)
        out.sum().backward()
        assert np.allclose(weight.grad[1], 2.0)
        assert np.allclose(weight.grad[0], 0.0)


class TestEngineSemantics:
    def test_no_grad_disables_graph(self):
        with no_grad():
            a = Tensor([1.0], requires_grad=True)
            out = a * 2.0
        assert not out.requires_grad

    def test_backward_requires_scalar_or_grad(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_detach_stops_gradient(self):
        a = Tensor([2.0], requires_grad=True)
        out = a.detach() * 3.0
        assert not out.requires_grad

    def test_deep_chain_does_not_recurse(self):
        x = Tensor([1.0], requires_grad=True)
        out = x
        for _ in range(2000):
            out = out + 1.0
        out.backward()
        assert np.allclose(x.grad, 1.0)

    def test_constructors(self):
        assert zeros((2, 2)).numpy().sum() == 0.0
        assert ones((2, 2)).numpy().sum() == 4.0
        assert randn((5, 5), rng=np.random.default_rng(0)).shape == (5, 5)


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)).shape == (2, 3)

    def test_leading_dims_summed(self):
        g = np.ones((4, 2, 3))
        assert unbroadcast(g, (2, 3)).shape == (2, 3)
        assert np.allclose(unbroadcast(g, (2, 3)), 4.0)

    def test_size_one_dims_summed(self):
        g = np.ones((2, 3))
        out = unbroadcast(g, (2, 1))
        assert out.shape == (2, 1)
        assert np.allclose(out, 3.0)


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=4),
    cols=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_elementwise_chain_gradcheck(rows, cols, seed):
    """Gradients of a random elementwise expression match numerical gradients."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((rows, cols)) * 0.5

    def op(t):
        return (t * 2.0 + 1.0).tanh() * t.sigmoid()

    assert_grad_matches(op, x, atol=1e-4)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=5),
    m=st.integers(min_value=1, max_value=5),
    k=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_matmul_gradcheck(n, m, k, seed):
    """Matmul gradients match numerical gradients for arbitrary small shapes."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, m)) * 0.5
    w = rng.standard_normal((m, k)) * 0.5
    assert_grad_matches(lambda t: t @ Tensor(w), x, atol=1e-4)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_sum_grad_is_ones(seed):
    """d(sum(x))/dx is exactly one everywhere, for any shape."""
    rng = np.random.default_rng(seed)
    shape = tuple(rng.integers(1, 5, size=rng.integers(1, 4)))
    x = Tensor(rng.standard_normal(shape), requires_grad=True)
    x.sum().backward()
    assert np.allclose(x.grad, np.ones(shape))
