"""Tests for the Chrome trace-event / Perfetto JSON exporter."""

import json

import pytest

from repro.obs.trace_export import (
    SPAN_PID,
    STREAM_TIDS,
    build_chrome_trace,
    span_trace_events,
    timeline_trace_events,
    write_chrome_trace,
)
from repro.serving.scheduler import make_scheduler
from repro.system.hardware import SSD_SYSTEM
from repro.workloads.arrivals import POISSON_QA_LOAD, generate_timed_requests
from repro.workloads.generator import WorkloadSpec

WORKLOAD = WorkloadSpec(name="trace_test", num_requests=4, input_length=12,
                        output_length=5, routing_skew=1.0, seed=0)


@pytest.fixture(scope="module")
def served():
    """A trace-recording, span-logged multi-GPU SSD-staged serve."""
    scheduler = make_scheduler("pregated", "switch_base_64",
                               system=SSD_SYSTEM, stage_policy="lru",
                               stage_capacity=8, num_gpus=2, max_batch_size=4,
                               record_trace=True, span_log=True)
    requests = generate_timed_requests("switch_base_64", POISSON_QA_LOAD,
                                       workload=WORKLOAD)
    result = scheduler.serve(requests, offered_load=4.0)
    return scheduler, result


@pytest.fixture(scope="module")
def payload(served):
    scheduler, result = served
    return build_chrome_trace(timeline=scheduler.last_timeline,
                              spans=result.spans,
                              metadata={"design": "pregated"})


class TestPayloadSchema:
    def test_round_trips_as_json(self, payload, tmp_path):
        path = tmp_path / "trace.json"
        with open(path, "w") as handle:
            json.dump(payload, handle)
        reloaded = json.loads(path.read_text())
        assert reloaded["displayTimeUnit"] == "ms"
        assert reloaded["otherData"] == {"design": "pregated"}
        assert isinstance(reloaded["traceEvents"], list)
        assert reloaded["traceEvents"]

    def test_write_chrome_trace_writes_payload(self, served, tmp_path):
        scheduler, result = served
        path = tmp_path / "trace.json"
        payload = write_chrome_trace(str(path),
                                     timeline=scheduler.last_timeline,
                                     spans=result.spans)
        assert json.loads(path.read_text()) == payload

    def test_required_keys(self, payload):
        for event in payload["traceEvents"]:
            assert {"ph", "pid", "tid", "name"} <= set(event)
            if event["ph"] == "X":
                assert "ts" in event and "dur" in event
                assert event["dur"] >= 0
            if event["ph"] in ("s", "t", "f"):
                assert "id" in event and "ts" in event

    def test_needs_timeline_or_spans(self):
        with pytest.raises(ValueError, match="nothing to export"):
            build_chrome_trace()


class TestTimelineEvents:
    def test_lane_layout_and_monotonic_timestamps(self, served):
        scheduler, _ = served
        events = timeline_trace_events(scheduler.last_timeline)
        lanes = {}
        for event in events:
            if event["ph"] != "X":
                continue
            lanes.setdefault((event["pid"], event["tid"]), []).append(event)
        # Both devices present, compute + copy + stage lanes in use.
        assert {pid for pid, _ in lanes} == {0, 1}
        assert {tid for _, tid in lanes} >= {STREAM_TIDS["compute"],
                                             STREAM_TIDS["copy"],
                                             STREAM_TIDS["stage"]}
        for (pid, tid), lane_events in lanes.items():
            times = [e["ts"] for e in lane_events]
            assert times == sorted(times), f"lane ({pid}, {tid}) out of order"

    def test_ops_become_complete_events(self, served):
        scheduler, _ = served
        timeline = scheduler.last_timeline
        events = timeline_trace_events(timeline)
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == timeline.num_ops
        categories = {e["cat"] for e in xs}
        assert "expert_transfer" in categories
        assert "stage_in" in categories

    def test_flow_events_per_request(self, served):
        scheduler, result = served
        events = timeline_trace_events(scheduler.last_timeline)
        flows = [e for e in events if e["ph"] in ("s", "t", "f")]
        by_id = {}
        for event in flows:
            by_id.setdefault(event["id"], []).append(event["ph"])
        assert set(by_id) == {r.request_id for r in result.requests}
        for phases in by_id.values():
            # One start, one finish, lm_head steps in between.
            assert phases[0] == "s" and phases[-1] == "f"
            assert all(ph == "t" for ph in phases[1:-1])


class TestSpanEvents:
    def test_one_track_per_request(self, served):
        _, result = served
        events = span_trace_events(result.spans)
        tracks = {e["tid"] for e in events if e["ph"] == "X"}
        assert tracks == {t.request_id for t in result.spans}
        assert all(e["pid"] == SPAN_PID for e in events)

    def test_span_args_carry_tree_structure(self, served):
        _, result = served
        events = [e for e in span_trace_events(result.spans)
                  if e["ph"] == "X"]
        roots = [e for e in events if e["args"]["parent"] == -1]
        assert len(roots) == len(result.spans)
        fetch_events = [e for e in events if e["cat"] == "expert_fetch"]
        assert fetch_events
        assert all(e["args"]["source_tier"] in ("dram", "ssd")
                   for e in fetch_events)
