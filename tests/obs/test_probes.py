"""Tests for the sampled probe layer: gauges, counters, histograms, export."""

import csv
import json

import pytest

from repro.obs.probes import (
    GAUGE_MODES,
    Counter,
    GaugeSeries,
    LogBucketHistogram,
    MetricsRegistry,
    ServingProbes,
    append_metrics_rows,
    merge_metrics,
    write_metrics,
    write_metrics_rows,
)


class TestGaugeSeries:
    def test_sample_and_aggregates(self):
        g = GaugeSeries("queue_depth")
        for t, v in [(0.0, 2.0), (1.0, 5.0), (2.0, 1.0)]:
            g.sample(t, v)
        assert len(g) == 3
        assert g.last == 1.0
        assert g.max_value == 5.0
        assert g.mean_value == pytest.approx(8.0 / 3)

    def test_empty_aggregates_are_none(self):
        g = GaugeSeries("x")
        assert g.last is None and g.max_value is None and g.mean_value is None

    def test_rejects_decreasing_time(self):
        g = GaugeSeries("x")
        g.sample(1.0, 0.0)
        with pytest.raises(ValueError, match="sampled at t=0.5"):
            g.sample(0.5, 0.0)

    def test_equal_times_allowed(self):
        g = GaugeSeries("x")
        g.sample(1.0, 1.0)
        g.sample(1.0, 2.0)
        assert g.values == [1.0, 2.0]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown gauge mode"):
            GaugeSeries("x", mode="median")

    @pytest.mark.parametrize("mode", GAUGE_MODES)
    def test_merged_modes(self, mode):
        a = GaugeSeries("g", mode)
        b = GaugeSeries("g", mode)
        a.sample(0.0, 2.0)
        a.sample(2.0, 4.0)
        b.sample(1.0, 10.0)
        merged = GaugeSeries.merged([a, b])
        # Union grid, each input held at its last value (0.0 before first).
        assert merged.times == [0.0, 1.0, 2.0]
        expected = {"sum": [2.0, 12.0, 14.0],
                    "max": [2.0, 10.0, 10.0],
                    "mean": [1.0, 6.0, 7.0]}[mode]
        assert merged.values == expected

    def test_merged_rejects_mode_mismatch(self):
        a = GaugeSeries("g", "sum")
        b = GaugeSeries("g", "max")
        with pytest.raises(ValueError, match="cannot merge"):
            GaugeSeries.merged([a, b])

    def test_merged_needs_series(self):
        with pytest.raises(ValueError):
            GaugeSeries.merged([])


class TestCounter:
    def test_add(self):
        c = Counter("rounds")
        c.add()
        c.add(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("x").add(-1)


class TestLogBucketHistogram:
    def test_bucket_edges(self):
        h = LogBucketHistogram("ops", base=2.0)
        # Bucket k covers (2**(k-1), 2**k]: 2.0 lands in bucket 1, 2.5 and
        # 4.0 in bucket 2, 5.0 in bucket 3.
        for v in (2.0, 2.5, 4.0, 5.0):
            h.observe(v)
        assert h.buckets == {1: 1, 2: 2, 3: 1}
        assert h.count == 4
        assert h.total == pytest.approx(13.5)
        assert h.mean == pytest.approx(13.5 / 4)
        assert (h.min_value, h.max_value) == (2.0, 5.0)

    def test_zeros_counted_separately(self):
        h = LogBucketHistogram("ops")
        h.observe(0.0)
        h.observe(1.0)
        assert h.zeros == 1
        assert h.buckets == {0: 1}

    def test_rejects_negative_and_bad_base(self):
        with pytest.raises(ValueError):
            LogBucketHistogram("x").observe(-1.0)
        with pytest.raises(ValueError):
            LogBucketHistogram("x", base=1.0)

    def test_summary_upper_bounds(self):
        h = LogBucketHistogram("ops", base=2.0)
        h.observe(3.0)
        assert h.summary()["buckets"] == {4.0: 1}


class TestMetricsRegistry:
    def test_instruments_are_memoised(self):
        reg = MetricsRegistry()
        assert reg.gauge("q") is reg.gauge("q")
        assert reg.counter("c") is reg.counter("c")
        assert reg.histogram("h") is reg.histogram("h")

    def test_gauge_mode_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.gauge("util", mode="mean")
        with pytest.raises(ValueError, match="registered with mode"):
            reg.gauge("util", mode="sum")

    def test_summary_shapes(self):
        reg = MetricsRegistry()
        reg.gauge("q").sample(0.0, 3.0)
        reg.counter("rounds").add(2)
        reg.histogram("ops").observe(4.0)
        summary = reg.summary()
        assert summary["q"]["kind"] == "gauge"
        assert summary["q"]["last"] == 3.0
        assert summary["rounds"] == {"kind": "counter", "value": 2}
        assert summary["ops"]["kind"] == "histogram"
        assert summary["ops"]["count"] == 1

    def test_to_records_rows(self):
        reg = MetricsRegistry()
        reg.gauge("q").sample(0.5, 3.0)
        reg.counter("rounds").add(2)
        h = reg.histogram("ops")
        h.observe(0.0)
        h.observe(3.0)
        rows = reg.to_records()
        kinds = [row["kind"] for row in rows]
        assert kinds == ["gauge", "counter", "histogram_count",
                         "histogram_sum", "histogram_bucket",
                         "histogram_bucket"]
        assert rows[0] == {"kind": "gauge", "name": "q", "t": 0.5,
                           "value": 3.0}
        # Zeros bucket exports at t=0.0, the 3.0 observation at its upper
        # bound 4.0.
        assert [(r["t"], r["value"]) for r in rows[-2:]] == [(0.0, 1),
                                                             (4.0, 1)]


class TestMergeMetrics:
    def test_none_only_when_all_none(self):
        assert merge_metrics([None, None]) is None
        reg = MetricsRegistry()
        reg.counter("c").add(1)
        merged = merge_metrics([None, reg])
        assert merged is not None and merged.counters["c"].value == 1

    def test_merges_all_instruments(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("q").sample(0.0, 1.0)
        b.gauge("q").sample(1.0, 2.0)
        a.counter("rounds").add(3)
        b.counter("rounds").add(4)
        a.histogram("ops").observe(2.0)
        b.histogram("ops").observe(8.0)
        merged = a.merged_with(b)
        assert merged.gauges["q"].values == [1.0, 3.0]
        assert merged.counters["rounds"].value == 7
        h = merged.histograms["ops"]
        assert h.count == 2 and h.total == 10.0
        assert (h.min_value, h.max_value) == (2.0, 8.0)

    def test_partial_instruments_merge_over_present(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("only_a").sample(0.0, 5.0)
        b.counter("only_b").add(1)
        merged = merge_metrics([a, b])
        assert merged.gauges["only_a"].values == [5.0]
        assert merged.counters["only_b"].value == 1


class TestServingProbes:
    def test_interval_validated(self):
        with pytest.raises(ValueError, match="must be > 0"):
            ServingProbes(0.0)

    def test_cadence(self):
        probes = ServingProbes(1.0)
        assert probes.due(0.0)
        probes.mark_sampled(0.3)
        assert probes.last_sample == 0.3
        assert not probes.due(1.2)
        assert probes.due(1.3)

    def test_observe_round(self):
        probes = ServingProbes(1.0)
        probes.observe_round(10)
        probes.observe_round(4)
        assert probes.registry.counters["rounds"].value == 2
        assert probes.registry.histograms["round_ops"].total == 14.0


class TestExport:
    @pytest.fixture
    def registry(self):
        reg = MetricsRegistry()
        reg.gauge("q").sample(0.0, 1.0)
        reg.counter("rounds").add(1)
        return reg

    def test_jsonl(self, registry, tmp_path):
        path = tmp_path / "metrics.jsonl"
        write_metrics(registry, str(path), extra={"design": "pregated"})
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(rows) == 2
        assert all(row["design"] == "pregated" for row in rows)
        assert rows[0]["kind"] == "gauge" and rows[0]["value"] == 1.0

    def test_csv(self, registry, tmp_path):
        path = tmp_path / "metrics.csv"
        write_metrics(registry, str(path))
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert [row["kind"] for row in rows] == ["gauge", "counter"]

    def test_multi_cell_rows(self, registry, tmp_path):
        rows = []
        append_metrics_rows(rows, registry, {"rate": 2.0})
        append_metrics_rows(rows, registry, {"rate": 8.0})
        path = tmp_path / "cells.jsonl"
        write_metrics_rows(rows, str(path))
        decoded = [json.loads(line) for line in path.read_text().splitlines()]
        assert {row["rate"] for row in decoded} == {2.0, 8.0}
