"""Tests for span-tree assembly: SpanLog unit behaviour plus the scheduler's
span logging on real serves (nesting, attribution, knob validation)."""

import pytest

from repro.obs.spans import (
    CAT_DECODE,
    CAT_FETCH,
    CAT_PREFILL,
    CAT_QUEUE,
    CAT_REQUEST,
    CAT_STAGE,
    PassFetch,
    SpanLog,
)
from repro.serving.scheduler import make_scheduler, serve_load
from repro.system.hardware import SSD_SYSTEM
from repro.workloads.arrivals import POISSON_QA_LOAD
from repro.workloads.generator import WorkloadSpec

WORKLOAD = WorkloadSpec(name="span_test", num_requests=5, input_length=12,
                        output_length=6, routing_skew=1.0, seed=0)


class TestSpanLog:
    def test_tree_assembly(self):
        log = SpanLog()
        log.admit(7, arrival_time=1.0)
        fetch = PassFetch(kind=CAT_FETCH, start=1.6, end=1.7, device=0,
                          num_bytes=64.0, source_tier="dram", stage_hit=False)
        log.record_pass(7, CAT_PREFILL, 0, 1.5, 2.0, [fetch])
        log.record_pass(7, CAT_DECODE, 0, 2.0, 2.5, [])
        tree = log.finalise(7, completion_time=2.5)
        assert tree.request_id == 7
        root = tree.root
        assert root.category == CAT_REQUEST
        assert (root.start, root.end) == (1.0, 2.5)
        queue = tree.by_category(CAT_QUEUE)[0]
        assert (queue.start, queue.end) == (1.0, 1.5)
        prefill = tree.by_category(CAT_PREFILL)[0]
        assert prefill.parent == 0
        decode = tree.by_category(CAT_DECODE)[0]
        assert decode.name == "decode[0]"
        fetch_span = tree.by_category(CAT_FETCH)[0]
        assert fetch_span.parent == tree.spans.index(prefill)
        assert fetch_span.attrs["source_tier"] == "dram"
        assert fetch_span.attrs["stage_hit"] is False

    def test_queue_span_never_negative(self):
        log = SpanLog()
        log.admit(0, arrival_time=2.0)
        # Pass starting before arrival (cannot happen in practice, but the
        # queue span must still be well-formed).
        log.record_pass(0, CAT_PREFILL, 0, 1.0, 3.0, [])
        tree = log.finalise(0, completion_time=3.0)
        queue = tree.by_category(CAT_QUEUE)[0]
        assert queue.end >= queue.start

    def test_root_covers_last_pass(self):
        log = SpanLog()
        log.admit(0, arrival_time=0.0)
        log.record_pass(0, CAT_PREFILL, 0, 0.0, 4.0, [])
        tree = log.finalise(0, completion_time=1.0)
        assert tree.root.end == 4.0


class TestSchedulerSpanLogging:
    @pytest.fixture(scope="class")
    def result(self):
        return serve_load("pregated", "switch_base_64", POISSON_QA_LOAD,
                          workload=WORKLOAD, system=SSD_SYSTEM,
                          stage_policy="lru", stage_capacity=8, num_gpus=2,
                          max_batch_size=4, span_log=True)

    def test_one_tree_per_request(self, result):
        assert result.spans is not None
        assert len(result.spans) == len(result.requests)
        assert sorted(t.request_id for t in result.spans) == [
            r.request_id for r in result.requests]

    def test_tree_shape_matches_request(self, result):
        by_id = {t.request_id: t for t in result.spans}
        for req in result.requests:
            tree = by_id[req.request_id]
            assert tree.root.start == pytest.approx(req.arrival_time)
            assert tree.root.end == pytest.approx(req.completion_time)
            assert len(tree.by_category(CAT_PREFILL)) == 1
            decodes = tree.by_category(CAT_DECODE)
            assert len(decodes) == req.output_length
            assert [d.attrs["iteration"] for d in decodes] == list(
                range(req.output_length))

    def test_spans_nest_within_parents(self, result):
        for tree in result.spans:
            for span in tree.spans:
                if span.parent < 0:
                    continue
                parent = tree.spans[span.parent]
                assert span.start >= parent.start - 1e-9
                assert span.end <= parent.end + 1e-9

    def test_fetches_attributed_to_tiers(self, result):
        fetches = [s for tree in result.spans
                   for s in tree.by_category(CAT_FETCH)]
        stages = [s for tree in result.spans
                  for s in tree.by_category(CAT_STAGE)]
        assert fetches, "SSD-staged serve must issue expert fetches"
        assert stages, "SSD-staged serve must issue stage-in ops"
        for span in fetches + stages:
            assert span.attrs["source_tier"] in ("dram", "ssd")
            assert isinstance(span.attrs["stage_hit"], bool)
            assert span.attrs["bytes"] > 0
            assert span.attrs["device"] in (0, 1)
        # A warm staging cache must convert some fetches into stage hits.
        assert any(s.attrs["stage_hit"] for s in fetches)

    def test_span_log_disables_replay(self):
        result = serve_load("pregated", "switch_base_64", POISSON_QA_LOAD,
                            workload=WORKLOAD, max_batch_size=4,
                            span_log=True, round_replay=True)
        assert result.replay_windows == 0
        assert result.spans is not None

    def test_span_log_requires_array_engine(self):
        with pytest.raises(ValueError, match="array timeline engine"):
            make_scheduler("pregated", "switch_base_64",
                           timeline_engine="scalar", span_log=True)

    def test_spans_off_by_default(self):
        result = serve_load("pregated", "switch_base_64", POISSON_QA_LOAD,
                            workload=WORKLOAD, max_batch_size=4)
        assert result.spans is None
