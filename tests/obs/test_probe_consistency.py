"""The probe-consistency contract: every gauge's forced final sample equals
the corresponding end-of-run aggregate on ``LoadTestResult`` (to 1e-9), and
the probe layer composes with replicas, replay and both timeline engines."""

import pytest

from repro.serving.cluster import ReplicaCluster
from repro.serving.scheduler import serve_load
from repro.system.hardware import SSD_SYSTEM
from repro.workloads.arrivals import POISSON_QA_LOAD, generate_timed_requests
from repro.workloads.generator import WorkloadSpec

WORKLOAD = WorkloadSpec(name="probe_test", num_requests=6, input_length=10,
                        output_length=8, routing_skew=1.0, seed=0)

TOL = 1e-9


def serve_probed(**kwargs):
    return serve_load("pregated", "switch_base_64", POISSON_QA_LOAD,
                      workload=WORKLOAD, max_batch_size=4,
                      probe_interval=0.02, **kwargs)


class TestFinalSampleMatchesAggregates:
    @pytest.fixture(scope="class", params=["array", "scalar"])
    def result(self, request):
        return serve_probed(timeline_engine=request.param,
                            num_gpus=2 if request.param == "array" else None)

    def test_timeline_ops(self, result):
        gauge = result.probes.gauges["timeline_ops"]
        assert gauge.last == pytest.approx(result.timeline_total_ops, abs=TOL)

    def test_device_utilisation(self, result):
        for d, util in enumerate(result.device_utilisation):
            gauge = result.probes.gauges[f"device{d}_utilisation"]
            assert gauge.mode == "mean"
            assert gauge.last == pytest.approx(util, abs=TOL)

    def test_queue_and_active_drain_to_zero(self, result):
        assert result.probes.gauges["queue_depth"].last == 0.0
        assert result.probes.gauges["active_requests"].last == 0.0

    def test_replay_rounds(self, result):
        gauge = result.probes.gauges["replay_rounds"]
        assert gauge.last == pytest.approx(result.replay_rounds, abs=TOL)

    def test_final_sample_at_makespan(self, result):
        for gauge in result.probes.gauges.values():
            assert gauge.times[-1] == pytest.approx(result.makespan, abs=TOL)

    def test_round_accounting(self, result):
        hist = result.probes.histograms["round_ops"]
        assert hist.count == result.probes.counters["rounds"].value
        assert hist.total == pytest.approx(result.timeline_total_ops, abs=TOL)

    def test_summary_surfaces_probe_columns(self, result):
        summary = result.summary()
        assert summary["probe_samples"] == len(
            result.probes.gauges["timeline_ops"])
        assert summary["max_queue_depth"] == (
            result.probes.gauges["queue_depth"].max_value)


class TestProbesWithReplay:
    def test_replayed_rounds_show_in_gauge(self):
        result = serve_probed(round_replay=True)
        assert result.replay_rounds > 0, "scenario must engage replay"
        gauge = result.probes.gauges["replay_rounds"]
        assert gauge.last == result.replay_rounds
        # Replayed rounds are not re-executed, so the rounds counter only
        # counts executed rounds.
        executed = result.probes.counters["rounds"].value
        total_rounds = executed + result.replay_rounds
        assert executed < total_rounds

    def test_no_probes_by_default(self):
        result = serve_load("pregated", "switch_base_64", POISSON_QA_LOAD,
                            workload=WORKLOAD, max_batch_size=4)
        assert result.probes is None
        assert result.probe_samples is None
        assert result.max_queue_depth is None
        assert result.summary()["probe_samples"] is None


class TestProbesWithStaging:
    def test_staged_and_resident_bytes_sampled(self):
        result = serve_probed(system=SSD_SYSTEM, stage_policy="lru",
                              stage_capacity=8, num_gpus=2)
        staged = result.probes.gauges["staged_expert_bytes"]
        assert staged.max_value > 0
        hbm = result.probes.gauges["hbm_used_bytes"]
        assert hbm.max_value > 0

    def test_cached_expert_bytes_sampled(self):
        result = serve_probed(cache_policy="lru", cache_capacity=16)
        resident = result.probes.gauges["resident_expert_bytes"]
        assert resident.max_value > 0


class TestClusterMerge:
    def test_merged_probes_and_spans(self):
        cluster = ReplicaCluster("pregated", "switch_base_64",
                                 num_replicas=2, probe_interval=0.02,
                                 span_log=True)
        requests = generate_timed_requests("switch_base_64", POISSON_QA_LOAD,
                                           workload=WORKLOAD)
        cluster_result = cluster.serve(requests, offered_load=4.0)
        combined = cluster_result.combined()
        assert combined.probes is not None
        # Extensive gauges sum at the final (union) sample point.
        per_replica = [r.probes.gauges["timeline_ops"].last
                       for r in cluster_result.replica_results]
        assert combined.probes.gauges["timeline_ops"].last == pytest.approx(
            sum(per_replica), abs=TOL)
        # Spans pool across replicas in request-id order.
        assert combined.spans is not None
        assert [t.request_id for t in combined.spans] == sorted(
            t.request_id for t in combined.spans)
        assert len(combined.spans) == len(requests)
