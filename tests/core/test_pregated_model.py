"""Tests for the pre-gated Switch-Transformer model."""

import numpy as np
import pytest

from repro.core import PreGatedSwitchTransformer
from repro.moe import SwitchTransformer, get_config
from repro.tensor import Adam
from repro.tensor import functional as F


@pytest.fixture(scope="module")
def config():
    return get_config("tiny_moe_4")


@pytest.fixture(scope="module")
def conventional(config):
    return SwitchTransformer(config, seed=0)


@pytest.fixture(scope="module")
def pregated(config, conventional):
    model = PreGatedSwitchTransformer(config, activation_level=1, seed=1)
    model.load_from_conventional(conventional)
    return model


@pytest.fixture
def rng():
    return np.random.default_rng(2)


class TestConstruction:
    def test_requires_moe_config(self):
        with pytest.raises(ValueError):
            PreGatedSwitchTransformer(get_config("tiny_dense"))

    def test_requires_positive_activation_level(self, config):
        with pytest.raises(ValueError):
            PreGatedSwitchTransformer(config, activation_level=0)

    def test_gate_placement_matches_schedule(self, pregated):
        """First decoder MoE block: first gate + pre-gate; last: no pre-gate."""
        decoder_moe_layers = pregated.decoder_moe_positions
        first_layer = pregated.decoder_blocks[decoder_moe_layers[0]]
        last_layer = pregated.decoder_blocks[decoder_moe_layers[-1]]
        assert len(first_layer.moe.first_gates) == 1
        assert first_layer.moe.pre_gate is not None
        assert last_layer.moe.pre_gate is None

    def test_total_gate_count_matches_conventional(self, config, conventional, pregated):
        """Re-wiring gates neither adds nor removes gate parameters overall."""
        def count_gate_params(model):
            return sum(p.size for name, p in model.named_parameters()
                       if "gate" in name and "classifier" in name)
        assert count_gate_params(pregated) == count_gate_params(conventional)


class TestWeightReuse:
    def test_shared_weights_copied_exactly(self, conventional, pregated):
        conv_state = conventional.state_dict()
        pre_state = pregated.state_dict()
        shared = [name for name in conv_state
                  if ".moe.gate." not in name and name in pre_state]
        assert shared, "expected shared parameter names"
        for name in shared:
            assert np.allclose(conv_state[name], pre_state[name]), name

    def test_expert_weights_copied(self, conventional, pregated):
        conv_state = conventional.state_dict()
        pre_state = pregated.state_dict()
        expert_names = [n for n in conv_state if ".moe.experts." in n]
        assert expert_names
        for name in expert_names:
            assert name in pre_state
            assert np.allclose(conv_state[name], pre_state[name])

    def test_gates_remapped_to_selecting_block(self, config, conventional):
        """The conventional gate of MoE block i initialises the gate that now selects
        for block i (a first gate or an earlier block's pre-gate)."""
        pregated = PreGatedSwitchTransformer(config, activation_level=1, seed=9)
        pregated.load_from_conventional(conventional)
        conv_state = conventional.state_dict()
        positions = pregated.decoder_moe_positions
        # Block 0's conventional gate -> pre-gated first gate at the same layer.
        src = conv_state[f"decoder_blocks.{positions[0]}.moe.gate.classifier.weight"]
        dst = dict(pregated.named_parameters())[
            f"decoder_blocks.{positions[0]}.moe.first_gates.0.classifier.weight"]
        assert np.allclose(src, dst.data)
        # Block 1's conventional gate -> block 0's pre-gate.
        src1 = conv_state[f"decoder_blocks.{positions[1]}.moe.gate.classifier.weight"]
        dst1 = dict(pregated.named_parameters())[
            f"decoder_blocks.{positions[0]}.moe.pre_gate.classifier.weight"]
        assert np.allclose(src1, dst1.data)

    def test_config_mismatch_rejected(self, conventional):
        other = PreGatedSwitchTransformer(get_config("tiny_moe_8"), seed=0)
        with pytest.raises(ValueError):
            other.load_from_conventional(conventional)


class TestForwardAndTraining:
    def test_forward_shapes_and_trace(self, pregated, config, rng):
        src = rng.integers(4, config.vocab_size, (2, 7))
        tgt = rng.integers(4, config.vocab_size, (2, 4))
        out = pregated(src, tgt)
        assert out.logits.shape == (2, 4, config.vocab_size)
        assert len(out.routing_trace) == config.num_moe_blocks("all")

    def test_activation_levels_2_and_3(self, config, rng):
        src = rng.integers(4, config.vocab_size, (1, 5))
        tgt = rng.integers(4, config.vocab_size, (1, 3))
        for level in (2, 3):
            model = PreGatedSwitchTransformer(config, activation_level=level, seed=level)
            out = model(src, tgt)
            assert out.logits.shape == (1, 3, config.vocab_size)

    def test_training_step_reduces_loss(self, config, rng):
        model = PreGatedSwitchTransformer(config, activation_level=1, seed=7)
        opt = Adam(model.parameters(), lr=2e-3)
        src = rng.integers(4, config.vocab_size, (8, 6))
        tgt = rng.integers(4, config.vocab_size, (8, 4))
        losses = []
        for _ in range(10):
            out = model(src, tgt)
            loss = F.cross_entropy(out.logits, tgt) + out.aux_loss * 0.01
            model.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]

    def test_pre_gate_receives_gradients(self, config, rng):
        model = PreGatedSwitchTransformer(config, activation_level=1, seed=8)
        src = rng.integers(4, config.vocab_size, (2, 5))
        tgt = rng.integers(4, config.vocab_size, (2, 3))
        out = model(src, tgt)
        (F.cross_entropy(out.logits, tgt) + out.aux_loss).backward()
        pre_gate_grads = [p.grad is not None for name, p in model.named_parameters()
                          if ".pre_gate." in name]
        assert pre_gate_grads and any(pre_gate_grads)


class TestGeneration:
    def test_greedy_decode(self, pregated, config, rng):
        src = rng.integers(4, config.vocab_size, (2, 6))
        generated, traces = pregated.greedy_decode(src, bos_id=1, eos_id=2,
                                                   max_new_tokens=4, collect_trace=True)
        assert generated.shape[0] == 2
        assert (generated[:, 0] == 1).all()
        assert len(traces) >= 1

    def test_trace_chain_is_per_iteration(self, pregated, config, rng):
        """Pre-gate chains never span decoder iterations (Figure 6)."""
        src = rng.integers(4, config.vocab_size, (1, 5))
        _, traces = pregated.greedy_decode(src, bos_id=1, eos_id=2,
                                           max_new_tokens=3, collect_trace=True)
        decoder_blocks = config.num_moe_blocks("decoder")
        for step_trace in traces[1:]:
            entries = [e for e in step_trace if e.stack == "decoder"]
            assert len(entries) == decoder_blocks
            assert [e.moe_block_index for e in entries] == list(range(decoder_blocks))
