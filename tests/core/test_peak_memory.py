"""Tests for the peak GPU memory model (Equation 1)."""

import pytest

from repro.core.peak_memory import (
    ActivationReserve,
    activated_experts_per_block,
    gpu_only_peak_memory,
    ondemand_peak_memory,
    peak_memory,
    peak_memory_comparison,
    prefetch_all_peak_memory,
    pregated_peak_memory,
)
from repro.moe.configs import get_config


@pytest.fixture(scope="module")
def base_128():
    return get_config("switch_base_128")


class TestActivatedExperts:
    def test_single_token_top1(self, base_128):
        assert activated_experts_per_block(base_128, batch_tokens=1) == 1

    def test_capped_by_expert_count(self, base_128):
        assert activated_experts_per_block(base_128, batch_tokens=10_000) == 128

    def test_topk_override(self, base_128):
        assert activated_experts_per_block(base_128, batch_tokens=1, top_k=4) == 4


class TestEquationOne:
    def test_pregated_holds_two_blocks_of_active_experts(self, base_128):
        """Equation 1: non-MoE + activated experts of blocks N and N+1."""
        reserve = ActivationReserve(batch_size=1)
        expected = (base_128.non_moe_bytes()
                    + 2 * 1 * base_128.expert_bytes()
                    + reserve.bytes_for(base_128))
        assert pregated_peak_memory(base_128) == expected

    def test_ondemand_holds_one_block(self, base_128):
        diff = pregated_peak_memory(base_128) - ondemand_peak_memory(base_128)
        assert diff == base_128.expert_bytes()

    def test_prefetch_all_holds_two_full_expert_sets(self, base_128):
        reserve = ActivationReserve(batch_size=1)
        expected = (base_128.non_moe_bytes()
                    + 2 * base_128.num_experts * base_128.expert_bytes()
                    + reserve.bytes_for(base_128))
        assert prefetch_all_peak_memory(base_128) == expected

    def test_gpu_only_holds_everything(self, base_128):
        assert gpu_only_peak_memory(base_128) > base_128.total_bytes()


class TestOrderingAcrossDesigns:
    """Figure 12's qualitative ordering must hold for every evaluated config."""

    @pytest.mark.parametrize("name", ["switch_base_8", "switch_base_64",
                                      "switch_base_128", "switch_base_256",
                                      "switch_large_128"])
    def test_ondemand_leq_pregated_leq_prefetch_leq_gpuonly(self, name):
        config = get_config(name)
        memory = peak_memory_comparison(config)
        assert memory["ondemand"] <= memory["pregated"]
        assert memory["pregated"] <= memory["prefetch_all"]
        assert memory["prefetch_all"] <= memory["gpu_only"]

    def test_savings_grow_with_expert_count(self):
        """The GPU-only vs offloading gap widens as experts multiply (Section VI-B)."""
        ratios = []
        for name in ("switch_base_8", "switch_base_64", "switch_base_128", "switch_base_256"):
            memory = peak_memory_comparison(get_config(name))
            ratios.append(memory["pregated"] / memory["gpu_only"])
        assert ratios == sorted(ratios, reverse=True)
        assert ratios[-1] < 0.1

    def test_pregated_close_to_memory_optimal_ondemand(self, base_128):
        """Pre-gated MoE consumes only marginally more than MoE-OnDemand."""
        memory = peak_memory_comparison(base_128)
        overhead = (memory["pregated"] - memory["ondemand"]) / memory["ondemand"]
        assert overhead < 0.05

    def test_pregated_fits_on_a100_even_for_switch_large(self):
        config = get_config("switch_large_128")
        assert pregated_peak_memory(config) < 80e9
        assert gpu_only_peak_memory(config) > 80e9


class TestDispatch:
    def test_peak_memory_by_name(self, base_128):
        for design in ("gpu_only", "pregated", "ondemand", "prefetch_all"):
            assert peak_memory(design, base_128) > 0

    def test_unknown_design(self, base_128):
        with pytest.raises(ValueError):
            peak_memory("dram_only", base_128)

    def test_comparison_keys(self, base_128):
        assert set(peak_memory_comparison(base_128)) == {
            "gpu_only", "pregated", "ondemand", "prefetch_all"}


class TestActivationReserve:
    def test_scales_with_batch(self, base_128):
        small = ActivationReserve(batch_size=1).bytes_for(base_128)
        large = ActivationReserve(batch_size=8).bytes_for(base_128)
        assert large == 8 * small

    def test_reserve_is_small_relative_to_params(self, base_128):
        reserve = ActivationReserve(batch_size=1).bytes_for(base_128)
        assert reserve < 0.01 * base_128.total_bytes()
