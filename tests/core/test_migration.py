"""Tests for the preemptive expert-migration planner."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.migration import (
    MigrationKind,
    plan_for_design,
    plan_gpu_only,
    plan_on_demand,
    plan_prefetch_all,
    plan_pregated,
)

EXPERT_BYTES = 1000


@pytest.fixture
def activations():
    # Four MoE blocks, top-1 routing of a single token.
    return [[3], [7], [1], [5]]


class TestOnDemand:
    def test_transfers_issue_at_own_block(self, activations):
        plan = plan_on_demand(activations, EXPERT_BYTES)
        assert plan.total_experts() == 4
        for transfer in plan.transfers:
            assert transfer.issue_block == transfer.block_index
            assert transfer.kind == MigrationKind.ON_DEMAND
            assert not transfer.is_overlappable

    def test_resident_experts_skipped(self, activations):
        resident = [set(), {7}, set(), set()]
        plan = plan_on_demand(activations, EXPERT_BYTES, resident=resident)
        assert plan.total_experts() == 3
        assert not plan.transfers_for_block(1)

    def test_total_bytes(self, activations):
        assert plan_on_demand(activations, EXPERT_BYTES).total_bytes() == 4 * EXPERT_BYTES


class TestPrefetchAll:
    def test_all_experts_of_every_block_moved(self, activations):
        plan = plan_prefetch_all(activations, EXPERT_BYTES, num_experts=16)
        assert plan.total_experts() == 4 * 16
        assert plan.bytes_for_block(2) == 16 * EXPERT_BYTES

    def test_blocks_after_first_are_overlappable(self, activations):
        plan = plan_prefetch_all(activations, EXPERT_BYTES, num_experts=4)
        assert all(not t.is_overlappable for t in plan.transfers_for_block(0))
        for block in (1, 2, 3):
            transfers = plan.transfers_for_block(block)
            assert all(t.issue_block == block - 1 for t in transfers)
            assert all(t.kind == MigrationKind.PREFETCH_ALL for t in transfers)


class TestPreGated:
    def test_only_activated_experts_moved(self, activations):
        plan = plan_pregated(activations, EXPERT_BYTES)
        assert plan.total_experts() == 4
        assert plan.total_bytes() == 4 * EXPERT_BYTES

    def test_transfers_issued_one_block_early(self, activations):
        plan = plan_pregated(activations, EXPERT_BYTES, activation_level=1)
        for transfer in plan.transfers:
            if transfer.block_index == 0:
                assert transfer.issue_block == 0
            else:
                assert transfer.issue_block == transfer.block_index - 1
                assert transfer.is_overlappable
                assert transfer.kind == MigrationKind.PREFETCH_ACTIVE

    def test_activation_level_two(self, activations):
        plan = plan_pregated(activations, EXPERT_BYTES, activation_level=2)
        for transfer in plan.transfers:
            if transfer.block_index < 2:
                assert transfer.issue_block == 0
            else:
                assert transfer.issue_block == transfer.block_index - 2

    def test_resident_experts_skipped(self, activations):
        plan = plan_pregated(activations, EXPERT_BYTES, resident=[set(), set(), {1}, set()])
        assert plan.total_experts() == 3

    def test_invalid_level(self, activations):
        with pytest.raises(ValueError):
            plan_pregated(activations, EXPERT_BYTES, activation_level=0)

    def test_issued_during_block_lists_overlappable_only(self, activations):
        plan = plan_pregated(activations, EXPERT_BYTES)
        issued0 = plan.issued_during_block(0)
        # Block 1's expert is prefetched during block 0; block 0's own is not overlappable.
        assert {t.block_index for t in issued0} == {1}


class TestGpuOnlyAndDispatch:
    def test_gpu_only_plan_is_empty(self, activations):
        plan = plan_gpu_only(activations)
        assert plan.total_experts() == 0
        assert plan.total_bytes() == 0

    def test_dispatch_by_name(self, activations):
        for design in ("gpu_only", "ondemand", "prefetch_all", "pregated"):
            plan = plan_for_design(design, activations, EXPERT_BYTES, num_experts=8)
            assert plan.design == design

    def test_unknown_design(self, activations):
        with pytest.raises(ValueError):
            plan_for_design("magic", activations, EXPERT_BYTES, num_experts=8)


class TestSourceTier:
    def test_default_source_is_dram(self, activations):
        for design in ("ondemand", "prefetch_all", "pregated"):
            plan = plan_for_design(design, activations, EXPERT_BYTES, num_experts=8)
            assert all(t.source_tier == "dram" for t in plan.transfers)

    def test_source_tier_stamped_on_every_transfer(self, activations):
        for design in ("ondemand", "prefetch_all", "pregated"):
            plan = plan_for_design(design, activations, EXPERT_BYTES,
                                   num_experts=8, source_tier="ssd")
            assert plan.transfers
            assert all(t.source_tier == "ssd" for t in plan.transfers)

    def test_hop_breakdown_follows_tier_path(self, activations):
        from repro.system import SSD_SYSTEM

        plan = plan_on_demand(activations, EXPERT_BYTES, source_tier="ssd")
        path = SSD_SYSTEM.tier_path("ssd")
        hops = plan.transfers[0].hop_breakdown(path)
        assert [(h.source, h.dest) for h in hops] == [("ssd", "dram"), ("dram", "hbm")]
        assert all(h.bytes == EXPERT_BYTES for h in hops)

    def test_hop_breakdown_rejects_mismatched_path(self, activations):
        from repro.system import SSD_SYSTEM

        plan = plan_on_demand(activations, EXPERT_BYTES)  # dram-sourced
        with pytest.raises(ValueError):
            plan.transfers[0].hop_breakdown(SSD_SYSTEM.tier_path("ssd"))


@settings(max_examples=40, deadline=None)
@given(
    num_blocks=st.integers(min_value=1, max_value=12),
    num_experts=st.integers(min_value=1, max_value=32),
    seed=st.integers(min_value=0, max_value=999),
)
def test_property_pregated_never_moves_more_than_prefetch_all(num_blocks, num_experts, seed):
    """Invariant behind the paper's bandwidth argument: the pre-gated plan moves a
    subset of what prefetch-all moves, and exactly what on-demand moves."""
    import numpy as np
    rng = np.random.default_rng(seed)
    activations = [sorted(set(int(e) for e in rng.integers(0, num_experts, size=rng.integers(1, 4))))
                   for _ in range(num_blocks)]
    pregated = plan_for_design("pregated", activations, EXPERT_BYTES, num_experts)
    ondemand = plan_for_design("ondemand", activations, EXPERT_BYTES, num_experts)
    prefetch = plan_for_design("prefetch_all", activations, EXPERT_BYTES, num_experts)
    assert pregated.total_bytes() == ondemand.total_bytes()
    assert pregated.total_bytes() <= prefetch.total_bytes()
    # Per-block, the pre-gated plan fetches exactly the activated experts.
    for block, acts in enumerate(activations):
        fetched = sorted(t.expert_id for t in pregated.transfers_for_block(block))
        assert fetched == sorted(acts)


@settings(max_examples=30, deadline=None)
@given(num_blocks=st.integers(min_value=2, max_value=12),
       level=st.integers(min_value=1, max_value=4))
def test_property_pregated_overlappable_fraction(num_blocks, level):
    """Every transfer except the very first block's can overlap with compute:
    the leading blocks' selections all happen at block 0 (first gates), so only
    block 0's own transfer is exposed (the paper's footnote 1)."""
    activations = [[0] for _ in range(num_blocks)]
    plan = plan_pregated(activations, EXPERT_BYTES, activation_level=level)
    for transfer in plan.transfers:
        assert transfer.is_overlappable == (transfer.block_index >= 1)
