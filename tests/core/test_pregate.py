"""Tests for the pre-gate schedule, pre-gate function and pre-gated MoE block."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pregate import PreGate, PreGateSchedule, PreGatedMoEBlock
from repro.moe.gating import Router
from repro.tensor import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestPreGateSchedule:
    def test_default_paper_schedule(self):
        """N=1: first block carries one first gate; every block but the last a pre-gate."""
        schedule = PreGateSchedule(num_blocks=6, activation_level=1)
        assert schedule.num_first_gates() == 1
        assert schedule.selector_of(0) == "first_gate"
        assert all(schedule.selector_of(i) == "pre_gate" for i in range(1, 6))
        assert schedule.has_pre_gate(0)
        assert not schedule.has_pre_gate(5)
        assert schedule.selecting_block(3) == 2

    def test_activation_level_two(self):
        schedule = PreGateSchedule(num_blocks=6, activation_level=2)
        assert schedule.num_first_gates() == 2
        assert schedule.selector_of(1) == "first_gate"
        assert schedule.selecting_block(1) == 0
        assert schedule.selecting_block(4) == 2
        assert not schedule.has_pre_gate(4)
        assert not schedule.has_pre_gate(5)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PreGateSchedule(num_blocks=0, activation_level=1)
        with pytest.raises(ValueError):
            PreGateSchedule(num_blocks=3, activation_level=0)

    def test_out_of_range_block(self):
        schedule = PreGateSchedule(num_blocks=3, activation_level=1)
        with pytest.raises(IndexError):
            schedule.selector_of(3)
        with pytest.raises(IndexError):
            schedule.has_pre_gate(-1)

    @settings(max_examples=40, deadline=None)
    @given(num_blocks=st.integers(min_value=1, max_value=24),
           level=st.integers(min_value=1, max_value=6))
    def test_property_every_block_has_exactly_one_selector(self, num_blocks, level):
        """Invariant: each MoE block's experts are selected by exactly one gate,
        and that gate always runs at an earlier-or-equal block position."""
        schedule = PreGateSchedule(num_blocks=num_blocks, activation_level=level)
        for block in range(num_blocks):
            selector = schedule.selector_of(block)
            selecting = schedule.selecting_block(block)
            assert selector in ("first_gate", "pre_gate")
            assert 0 <= selecting <= block
            if selector == "pre_gate":
                assert selecting == block - level
                assert schedule.has_pre_gate(selecting)

    @settings(max_examples=40, deadline=None)
    @given(num_blocks=st.integers(min_value=1, max_value=24),
           level=st.integers(min_value=1, max_value=6))
    def test_property_gate_count_conservation(self, num_blocks, level):
        """Total gate functions (first gates + pre-gates) equals the block count."""
        schedule = PreGateSchedule(num_blocks=num_blocks, activation_level=level)
        pre_gates = sum(schedule.has_pre_gate(i) for i in range(num_blocks))
        assert schedule.num_first_gates() + pre_gates == num_blocks


class TestPreGate:
    def test_is_a_router_with_target_offset(self, rng):
        pre_gate = PreGate(d_model=16, num_experts=8, target_offset=2, rng=rng)
        assert isinstance(pre_gate, Router)
        assert pre_gate.target_offset == 2
        decision = pre_gate(Tensor(rng.standard_normal((4, 16))))
        assert decision.expert_indices.shape == (4, 1)

    def test_invalid_offset(self):
        with pytest.raises(ValueError):
            PreGate(16, 8, target_offset=0)


class TestPreGatedMoEBlock:
    def test_first_block_has_first_gates_and_pregate(self, rng):
        schedule = PreGateSchedule(num_blocks=4, activation_level=1)
        block = PreGatedMoEBlock(16, 32, num_experts=4, block_index=0,
                                 schedule=schedule, rng=rng)
        assert len(block.first_gates) == 1
        assert block.pre_gate is not None

    def test_last_block_has_no_pregate(self, rng):
        schedule = PreGateSchedule(num_blocks=4, activation_level=1)
        block = PreGatedMoEBlock(16, 32, num_experts=4, block_index=3,
                                 schedule=schedule, rng=rng)
        assert block.pre_gate is None
        assert len(block.first_gates) == 0
        assert block.select_next(Tensor(rng.standard_normal((2, 16)))) is None

    def test_middle_block_has_only_pregate(self, rng):
        schedule = PreGateSchedule(num_blocks=4, activation_level=1)
        block = PreGatedMoEBlock(16, 32, num_experts=4, block_index=1,
                                 schedule=schedule, rng=rng)
        assert block.pre_gate is not None
        assert len(block.first_gates) == 0

    def test_select_first_only_on_block_zero(self, rng):
        schedule = PreGateSchedule(num_blocks=4, activation_level=2)
        block0 = PreGatedMoEBlock(16, 32, 4, block_index=0, schedule=schedule, rng=rng)
        block1 = PreGatedMoEBlock(16, 32, 4, block_index=1, schedule=schedule, rng=rng)
        hidden = Tensor(rng.standard_normal((3, 16)))
        assert block0.select_first(hidden, 0).expert_indices.shape == (3, 1)
        assert block0.select_first(hidden, 1).expert_indices.shape == (3, 1)
        with pytest.raises(IndexError):
            block0.select_first(hidden, 2)
        with pytest.raises(RuntimeError):
            block1.select_first(hidden, 0)

    def test_execute_uses_external_routing(self, rng):
        schedule = PreGateSchedule(num_blocks=2, activation_level=1)
        block = PreGatedMoEBlock(8, 16, num_experts=4, block_index=0,
                                 schedule=schedule, rng=rng)
        hidden = Tensor(rng.standard_normal((5, 8)))
        routing = block.select_next(hidden)
        out = block.execute(hidden, routing)
        assert out.shape == (5, 8)
        assert np.allclose(out.numpy(), block(hidden, routing).numpy())

    def test_decoupling_selection_from_execution(self, rng):
        """The defining property: the routing a block executes with can be computed
        from a *different* (earlier) representation than the one it executes on."""
        schedule = PreGateSchedule(num_blocks=3, activation_level=1)
        block0 = PreGatedMoEBlock(8, 16, 4, block_index=0, schedule=schedule, rng=rng)
        block1 = PreGatedMoEBlock(8, 16, 4, block_index=1, schedule=schedule, rng=rng)
        early_hidden = Tensor(rng.standard_normal((4, 8)))
        later_hidden = Tensor(rng.standard_normal((4, 8)))
        routing_for_block1 = block0.select_next(early_hidden)
        out = block1.execute(later_hidden, routing_for_block1)
        assert out.shape == (4, 8)
