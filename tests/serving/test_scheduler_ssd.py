"""SSD offloading through the serving stack: scheduler parity and DRAM staging.

Covers the tiered-memory acceptance contracts:

* ``serve_load``/``ContinuousBatchingScheduler`` accept ``SSD_SYSTEM`` and a
  single request through the scheduler matches ``engine.run_request`` on the
  SSD system exactly;
* a zero-capacity DRAM stage reproduces the unstaged multi-hop SSD timeline
  to 1e-9 (no buffer space means the links stay one cut-through queue);
* a warm DRAM stage strictly reduces SSD bytes read under repeated expert
  activation, reports a positive stage hit rate, and schedules its SSD reads
  on the dedicated stage stream;
* randomized invariant: staged bytes are always bounded by the stage's
  retention capacity plus the in-flight pinned working set, and never
  overflow the DRAM pool.
"""

import random

import pytest

from repro.moe import get_config
from repro.serving import make_engine, make_scheduler, serve_load
from repro.system import SSD_SYSTEM, Stream
from repro.workloads import POISSON_QA_LOAD, TimedRequest, TraceGenerator, WorkloadSpec

CONFIG = get_config("switch_base_64")
DESIGNS = ("pregated", "ondemand", "prefetch_all")

#: Skewed routing so repeat activations actually revisit experts.
WORKLOAD = WorkloadSpec(name="ssd_hot_experts", num_requests=5, input_length=8,
                        output_length=6, routing_skew=1.5, seed=0)


def hot_requests(n=4, gap=0.2, seed=3):
    traces = TraceGenerator(CONFIG, skew=1.5, seed=seed).workload(
        n, input_length=8, output_length=6)
    return [TimedRequest(request_id=i, arrival_time=gap * i, trace=t)
            for i, t in enumerate(traces)]


@pytest.fixture(scope="module")
def trace():
    return TraceGenerator(CONFIG, seed=0).request_trace(input_length=16, output_length=8)


class TestSchedulerSsdParity:
    """Single-request-through-scheduler parity with the engine on SSD."""

    @pytest.mark.parametrize("design", DESIGNS)
    def test_single_request_latency_parity(self, design, trace):
        reference = make_engine(design, CONFIG, system=SSD_SYSTEM).run_request(trace)
        served = make_scheduler(design, CONFIG, system=SSD_SYSTEM).serve([trace])
        assert served.requests[0].completion_time == pytest.approx(
            reference.total_time, abs=1e-9)

    @pytest.mark.parametrize("design", DESIGNS)
    def test_single_request_peak_memory_parity(self, design, trace):
        engine = make_engine(design, CONFIG, system=SSD_SYSTEM)
        reference = engine.run_request(trace)
        result = make_scheduler(design, CONFIG, system=SSD_SYSTEM).serve([trace])
        assert result.peak_gpu_bytes == reference.peak_gpu_bytes

    def test_serve_load_accepts_ssd_system(self):
        load = POISSON_QA_LOAD.with_overrides(request_rate=8.0)
        result = serve_load("pregated", CONFIG, load, workload=WORKLOAD,
                            system=SSD_SYSTEM, max_batch_size=4)
        assert result.num_requests == WORKLOAD.num_requests
        assert not result.oom
        assert result.tier_stats is not None
        assert result.tier_stats.source_tier == "ssd"
        assert result.ssd_bytes_read > 0
        assert result.stage_hit_rate is None      # no stage configured


class TestZeroCapacityStageParity:
    """A zero-capacity DRAM stage is time-identical to no stage at all."""

    @pytest.mark.parametrize("design", DESIGNS)
    def test_timeline_and_bytes_parity(self, design):
        requests = hot_requests()
        base = make_scheduler(design, CONFIG, system=SSD_SYSTEM,
                              max_batch_size=4).serve(requests)
        zero = make_scheduler(design, CONFIG, system=SSD_SYSTEM, max_batch_size=4,
                              stage_policy="lru", stage_capacity=0).serve(requests)
        assert zero.makespan == pytest.approx(base.makespan, abs=1e-9)
        assert zero.expert_bytes_transferred == base.expert_bytes_transferred
        assert zero.peak_gpu_bytes == base.peak_gpu_bytes
        assert zero.ssd_bytes_read == base.ssd_bytes_read
        for a, b in zip(base.requests, zero.requests):
            assert b.completion_time == pytest.approx(a.completion_time, abs=1e-9)
            assert b.first_token_time == pytest.approx(a.first_token_time, abs=1e-9)

    def test_zero_capacity_still_counts_stage_misses(self):
        requests = hot_requests()
        zero = make_scheduler("pregated", CONFIG, system=SSD_SYSTEM, max_batch_size=4,
                              stage_policy="lru", stage_capacity=0).serve(requests)
        stats = zero.tier_stats
        assert stats.stage_misses == stats.fetches > 0
        assert stats.stage_hits == 0


class TestWarmStage:
    @pytest.mark.parametrize("design", ("pregated", "ondemand"))
    def test_warm_stage_cuts_ssd_reads(self, design):
        requests = hot_requests()
        base = make_scheduler(design, CONFIG, system=SSD_SYSTEM,
                              max_batch_size=4).serve(requests)
        warm = make_scheduler(design, CONFIG, system=SSD_SYSTEM, max_batch_size=4,
                              stage_policy="lru", stage_capacity=256).serve(requests)
        assert warm.ssd_bytes_read < base.ssd_bytes_read
        assert warm.stage_hit_rate > 0.0
        assert warm.tier_stats.ssd_bytes_saved > 0
        # Conservation: every fetch either read the SSD or was staged.
        stats = warm.tier_stats
        assert stats.ssd_bytes_read + stats.ssd_bytes_saved == \
            stats.fetches * CONFIG.expert_bytes()

    def test_stage_ops_land_on_stage_stream(self):
        scheduler = make_scheduler("pregated", CONFIG, system=SSD_SYSTEM,
                                   max_batch_size=4, stage_policy="lru",
                                   stage_capacity=256, record_trace=True)
        scheduler.serve(hot_requests())
        timeline = scheduler.last_timeline
        stage_ops = timeline.stream_ops(Stream.STAGE)
        assert stage_ops, "stage misses must schedule SSD reads on the stage stream"
        assert all(op.category == "stage_in" for op in stage_ops)
        # Stage reads and PCIe copies are different queues: they may overlap.
        copy_busy = timeline.stream_busy_time(Stream.COPY)
        stage_busy = timeline.stream_busy_time(Stream.STAGE)
        assert stage_busy > 0 and copy_busy > 0

    def test_warm_stage_never_slower(self):
        requests = hot_requests()
        base = make_scheduler("pregated", CONFIG, system=SSD_SYSTEM,
                              max_batch_size=4).serve(requests)
        warm = make_scheduler("pregated", CONFIG, system=SSD_SYSTEM, max_batch_size=4,
                              stage_policy="lru", stage_capacity=256).serve(requests)
        assert warm.makespan <= base.makespan + 1e-9

    def test_stage_rejected_on_dram_system(self):
        with pytest.raises(ValueError, match="SSD offload"):
            make_scheduler("pregated", CONFIG, stage_policy="lru", stage_capacity=8)

    def test_stage_policy_requires_capacity(self):
        with pytest.raises(ValueError, match="stage_capacity"):
            make_scheduler("pregated", CONFIG, system=SSD_SYSTEM, stage_policy="lru")


class TestStageInvariants:
    """Randomized invariant: staged bytes stay within the stage pool bounds."""

    @pytest.mark.parametrize("seed", range(4))
    def test_staged_bytes_bounded(self, seed):
        rng = random.Random(seed)
        capacity = rng.choice([0, 4, 16, 64])
        n = rng.randint(2, 5)
        requests = hot_requests(n=n, gap=rng.choice([0.0, 0.1, 0.3]), seed=seed)
        scheduler = make_scheduler(
            rng.choice(["pregated", "ondemand"]), CONFIG, system=SSD_SYSTEM,
            max_batch_size=rng.choice([2, 4]),
            stage_policy=rng.choice(["lifo", "lru", "lfu"]),
            stage_capacity=capacity)
        stage = scheduler.placement.stage
        dram_pool = scheduler.placement.memory.pool("dram")
        expert_bytes = CONFIG.expert_bytes()

        observed_peaks = []
        original_pin = stage.pin

        def watched_pin(key):
            result = original_pin(key)
            observed_peaks.append(stage.resident_bytes)
            return result

        stage.pin = watched_pin
        result = scheduler.serve(requests)
        assert not result.oom

        # Retained entries never exceed the configured stage capacity, and
        # the DRAM pool honours its byte accounting at every pin.
        assert stage.retained_count <= capacity
        assert stage.pinned_count == 0                  # all pins handed back
        # The fetch path pins one expert at a time (pin → release around
        # routing), so residency can never exceed retention + one in-flight.
        assert max(observed_peaks) <= (capacity + 1) * expert_bytes
        assert dram_pool.in_use <= dram_pool.capacity
        assert dram_pool.category_peak("staged_experts") <= \
            (capacity + 1) * expert_bytes
        assert dram_pool.category_usage("staged_experts") == \
            stage.retained_count * expert_bytes
