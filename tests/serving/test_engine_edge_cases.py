"""Edge-case tests for the serving engines: dense models, deeper pre-gating,
engine configuration knobs and memory accounting details."""

import pytest

from repro.moe import get_config
from repro.serving import EngineConfig, make_engine
from repro.system import ExecutionTimeline, Stream
from repro.system.hardware import PAPER_SYSTEM
from repro.workloads import TraceGenerator, expected_distinct_experts


class TestDenseModelServing:
    """A dense (non-MoE) configuration has no experts to migrate at all."""

    def test_dense_model_has_no_moe_blocks_or_copies(self):
        config = get_config("t5_base")
        engine = make_engine("pregated", config)
        timeline = ExecutionTimeline()
        result = engine.run_decoder_iteration([], timeline=timeline)
        assert result.block_latencies == []
        assert timeline.stream_busy_time(Stream.COPY) == 0.0

    def test_dense_request_round_trip(self):
        config = get_config("t5_base")
        engine = make_engine("gpu_only", config)
        trace = TraceGenerator(get_config("switch_base_8"), seed=0).request_trace(8, 4)
        # Reuse the trace shape; a dense model simply ignores the activations.
        trace.encoder_activations = []
        trace.decode_activations = [[] for _ in range(4)]
        result = engine.run_request(trace)
        assert result.tokens_per_second > 0


class TestActivationLevelTwoEngine:
    def test_level2_issues_transfers_two_blocks_early(self):
        config = get_config("switch_base_64")
        activations = TraceGenerator(config, seed=0).iteration_activations(
            1, config.num_moe_blocks("decoder"))
        timeline = ExecutionTimeline()
        engine = make_engine("pregated", config,
                             engine_config=EngineConfig(activation_level=2))
        result = engine.run_decoder_iteration(activations, timeline=timeline)
        assert len(result.block_latencies) == config.num_moe_blocks("decoder")
        # With a deeper look-ahead the prefetch window is even larger, so the
        # per-block latency cannot be worse than the N=1 configuration.
        baseline = make_engine("pregated", config).run_decoder_iteration(activations)
        assert result.mean_block_latency <= baseline.mean_block_latency * 1.05


class TestEngineConfigKnobs:
    def test_workspace_bytes_counted_in_peak(self):
        config = get_config("switch_base_8")
        small = make_engine("ondemand", config,
                            engine_config=EngineConfig(runtime_workspace_bytes=0))
        big = make_engine("ondemand", config,
                          engine_config=EngineConfig(runtime_workspace_bytes=int(4e9)))
        small.load_model()
        big.load_model()
        assert big.gpu_pool.peak - small.gpu_pool.peak == pytest.approx(4e9, rel=0.01)

    def test_offload_pool_untouched_by_gpu_only(self):
        engine = make_engine("gpu_only", get_config("switch_base_8"))
        engine.load_model()
        assert engine.memory.cpu.in_use == 0


class TestEncoderPass:
    def test_encoder_activates_many_experts(self):
        """Encoder MoE blocks route many tokens, so many distinct experts are
        migrated — the reason the encoder phase is expensive for offloading."""
        config = get_config("switch_base_128")
        gen = TraceGenerator(config, seed=0)
        trace = gen.request_trace(input_length=64, output_length=1)
        mean_active = sum(len(b) for b in trace.encoder_activations) / len(trace.encoder_activations)
        expected = expected_distinct_experts(64, config.num_experts)
        assert mean_active == pytest.approx(expected, rel=0.35)

        timeline = ExecutionTimeline()
        engine = make_engine("pregated", config)
        result = engine.run_encoder_pass(trace.encoder_activations, 64, timeline=timeline)
        copies = timeline.ops_by_category("expert_transfer")
        assert len(copies) == sum(len(b) for b in trace.encoder_activations)
        assert len(result.block_latencies) == config.num_moe_blocks("encoder")

    def test_decode_faster_than_encoder_for_long_inputs(self):
        config = get_config("switch_base_64")
        gen = TraceGenerator(config, seed=1)
        trace = gen.request_trace(input_length=64, output_length=1)
        engine = make_engine("pregated", config)
        result = engine.run_request(trace)
        assert result.encoder_time > result.decode_time


class TestCrossDesignInvariants:
    def test_all_offload_designs_move_identical_bytes_for_pregated_and_ondemand(self):
        """Pre-gated and OnDemand migrate exactly the same experts per iteration —
        only the timing differs.  Their copy-stream busy times must match."""
        config = get_config("switch_base_64")
        activations = TraceGenerator(config, seed=2).iteration_activations(
            1, config.num_moe_blocks("decoder"))
        busy = {}
        for design in ("pregated", "ondemand"):
            timeline = ExecutionTimeline()
            make_engine(design, config).run_decoder_iteration(activations, timeline=timeline)
            busy[design] = timeline.stream_busy_time(Stream.COPY)
        assert busy["pregated"] == pytest.approx(busy["ondemand"], rel=1e-9)

    def test_iteration_duration_consistent_with_block_latencies(self):
        config = get_config("switch_base_64")
        activations = TraceGenerator(config, seed=3).iteration_activations(
            1, config.num_moe_blocks("decoder"))
        for design in ("gpu_only", "pregated", "ondemand", "prefetch_all"):
            result = make_engine(design, config).run_decoder_iteration(activations)
            assert result.duration >= sum(0.0 for _ in result.block_latencies)
            assert result.duration > max(r.latency for r in result.block_latencies) * 0.9

    def test_transfer_time_matches_link_model(self):
        config = get_config("switch_base_64")
        activations = [[5]] * config.num_moe_blocks("decoder")
        timeline = ExecutionTimeline()
        make_engine("ondemand", config).run_decoder_iteration(activations, timeline=timeline)
        expected = PAPER_SYSTEM.expert_transfer_time(config.expert_bytes())
        for op in timeline.ops_by_category("expert_transfer"):
            assert op.duration == pytest.approx(expected)
