"""Tests for the multi-replica router and cluster aggregation."""

import pytest

from repro.moe import get_config
from repro.serving import ReplicaCluster, make_scheduler
from repro.workloads import TimedRequest, TraceGenerator

CONFIG = get_config("switch_base_64")


def timed(traces, times):
    return [TimedRequest(request_id=i, arrival_time=t, trace=trace)
            for i, (t, trace) in enumerate(zip(times, traces))]


@pytest.fixture(scope="module")
def requests():
    traces = TraceGenerator(CONFIG, seed=0).workload(6, input_length=8, output_length=6)
    return timed(traces, [0.1 * i for i in range(len(traces))])


class TestRouting:
    def test_round_robin_assignment(self, requests):
        cluster = ReplicaCluster("pregated", CONFIG, num_replicas=3, policy="round_robin")
        assignments = cluster.route(requests)
        assert [len(a) for a in assignments] == [2, 2, 2]
        assert [r.request_id for r in assignments[0]] == [0, 3]

    def test_least_loaded_spreads_simultaneous_arrivals(self, requests):
        cluster = ReplicaCluster("pregated", CONFIG, num_replicas=2, policy="least_loaded")
        simultaneous = timed([r.trace for r in requests], [0.0] * len(requests))
        assignments = cluster.route(simultaneous)
        assert [len(a) for a in assignments] == [3, 3]

    def test_least_loaded_balances_heterogeneous_lengths(self):
        """One giant request must not drag three short ones onto its replica."""
        gen = TraceGenerator(CONFIG, seed=2)
        big = gen.request_trace(input_length=8, output_length=48)
        small = [gen.request_trace(input_length=8, output_length=4) for _ in range(3)]
        reqs = timed([big] + small, [0.0, 0.0, 0.0, 0.0])
        cluster = ReplicaCluster("pregated", CONFIG, num_replicas=2, policy="least_loaded")
        assignments = cluster.route(reqs)
        big_replica = next(i for i, a in enumerate(assignments)
                           if any(r.request_id == 0 for r in a))
        # All three short requests land on the other replica.
        assert len(assignments[1 - big_replica]) == 3

    def test_invalid_policy_and_replica_count(self):
        with pytest.raises(ValueError):
            ReplicaCluster("pregated", CONFIG, policy="random")
        with pytest.raises(ValueError):
            ReplicaCluster("pregated", CONFIG, num_replicas=0)


class TestClusterServe:
    def test_all_requests_served_exactly_once(self, requests):
        cluster = ReplicaCluster("pregated", CONFIG, num_replicas=2)
        result = cluster.serve(requests)
        combined = result.combined()
        assert combined.num_requests == len(requests)
        assert sorted(r.request_id for r in combined.requests) == list(range(len(requests)))
        replicas = {r.replica for r in combined.requests}
        assert replicas == {0, 1}

    def test_more_replicas_cut_latency_under_load(self, requests):
        single = make_scheduler("pregated", CONFIG).serve(requests)
        cluster = ReplicaCluster("pregated", CONFIG, num_replicas=3)
        combined = cluster.serve(requests).combined()
        assert combined.makespan <= single.makespan + 1e-12
        assert combined.e2e_stats.p99 <= single.e2e_stats.p99 + 1e-12
        assert combined.sustained_tokens_per_second >= single.sustained_tokens_per_second

    def test_combined_peak_memory_sums_replicas(self, requests):
        cluster = ReplicaCluster("pregated", CONFIG, num_replicas=2)
        result = cluster.serve(requests)
        combined = result.combined()
        assert combined.peak_gpu_bytes == sum(
            r.peak_gpu_bytes for r in result.replica_results)
        assert combined.num_replicas == 2

    def test_summary_includes_policy(self, requests):
        cluster = ReplicaCluster("pregated", CONFIG, num_replicas=2,
                                 policy="least_loaded")
        summary = cluster.serve(requests).summary()
        assert summary["policy"] == "least_loaded"
        assert summary["replicas"] == 2
        assert summary["sustained_tokens_per_second"] > 0

    def test_single_replica_cluster_matches_scheduler(self, requests):
        cluster = ReplicaCluster("pregated", CONFIG, num_replicas=1)
        combined = cluster.serve(requests).combined()
        direct = make_scheduler("pregated", CONFIG).serve(requests)
        assert combined.makespan == pytest.approx(direct.makespan, abs=1e-9)
        for a, b in zip(combined.requests, direct.requests):
            assert a.completion_time == pytest.approx(b.completion_time, abs=1e-9)
