"""Tests for expert-parallel replicas: sharding, parity and all-to-all."""

import pytest

from repro.moe import get_config
from repro.serving import (
    ModelPlacement,
    ReplicaCluster,
    ShardAssignment,
    ShardedResidency,
    make_engine,
    serve_load,
)
from repro.system import PAPER_SYSTEM
from repro.workloads import POISSON_QA_LOAD, WorkloadSpec, generate_timed_requests

CONFIG = get_config("switch_base_64")
WORKLOAD = WorkloadSpec(name="ep_test", num_requests=3, input_length=6,
                        output_length=4, routing_skew=1.5, seed=0)
LOAD = POISSON_QA_LOAD.with_overrides(request_rate=4.0)
DESIGNS = ("pregated", "ondemand", "prefetch_all")


def serve(design, **kwargs):
    return serve_load(design, CONFIG, LOAD, workload=WORKLOAD,
                      max_batch_size=3, **kwargs)


class TestShardAssignment:
    def test_contiguous_slices_the_id_space(self):
        assignment = ShardAssignment(8, 2, policy="contiguous")
        assert [assignment.device_of(e) for e in range(8)] == [0] * 4 + [1] * 4

    def test_round_robin_interleaves(self):
        assignment = ShardAssignment(6, 3, policy="round_robin")
        assert [assignment.device_of(e) for e in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_load_balanced_spreads_hot_experts(self):
        # Two hot experts (ids 0, 1) under contiguous land on device 0;
        # load-balanced separates them.
        weights = [10.0, 10.0, 1.0, 1.0]
        contiguous = ShardAssignment(4, 2, policy="contiguous",
                                     expert_weights=weights)
        balanced = ShardAssignment(4, 2, policy="load_balanced",
                                   expert_weights=weights)
        assert contiguous.imbalance() > 1.5
        assert balanced.imbalance() == pytest.approx(1.0)
        assert balanced.device_of(0) != balanced.device_of(1)

    def test_load_balanced_uniform_weights_split_evenly(self):
        assignment = ShardAssignment(8, 4, policy="load_balanced")
        assert sorted(len(assignment.experts_on(d)) for d in range(4)) == [2, 2, 2, 2]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="shard policy"):
            ShardAssignment(8, 2, policy="alphabetical")

    def test_weight_validation(self):
        with pytest.raises(ValueError, match="entries"):
            ShardAssignment(4, 2, expert_weights=[1.0, 2.0])
        with pytest.raises(ValueError, match="non-negative"):
            ShardAssignment(2, 2, expert_weights=[1.0, -2.0])
        with pytest.raises(ValueError, match="all zero"):
            ShardAssignment(2, 2, policy="load_balanced",
                            expert_weights=[0.0, 0.0])

    def test_device_of_bounds(self):
        assignment = ShardAssignment(4, 2)
        with pytest.raises(ValueError):
            assignment.device_of(4)


class TestShardedPlacement:
    def test_one_shard_per_device(self):
        system = PAPER_SYSTEM.with_num_gpus(4)
        placement = ModelPlacement(CONFIG, system, offload_experts=True)
        assert placement.num_devices == 4
        assert len(placement.shards) == 4
        assert placement.gpu_pool is placement.shards[0].pool

    def test_load_model_replicates_dense_layers(self):
        system = PAPER_SYSTEM.with_num_gpus(2)
        placement = ModelPlacement(CONFIG, system, offload_experts=True)
        placement.load_model()
        for shard in placement.shards:
            assert shard.pool.has("non_moe_params")
            assert shard.pool.has("runtime_workspace")
        assert placement.peak_gpu_bytes == sum(s.pool.peak for s in placement.shards)

    def test_gpu_only_shards_the_expert_pool(self):
        system = PAPER_SYSTEM.with_num_gpus(2)
        placement = ModelPlacement(CONFIG, system, offload_experts=False)
        placement.load_model()
        total_moe = sum(shard.pool.category_usage("moe")
                        for shard in placement.shards)
        assert total_moe == CONFIG.moe_bytes()

    def test_expert_allocations_land_on_the_owner(self):
        system = PAPER_SYSTEM.with_num_gpus(2)
        placement = ModelPlacement(CONFIG, system, offload_experts=True)
        placement.load_model()
        hot = 0                               # contiguous: device 0
        cold = CONFIG.num_experts - 1         # contiguous: device 1
        tag_hot = placement.allocate_expert("decoder", 0, hot)
        tag_cold = placement.allocate_expert("decoder", 0, cold)
        assert placement.shards[0].pool.has(tag_hot)
        assert not placement.shards[1].pool.has(tag_hot)
        assert placement.shards[1].pool.has(tag_cold)
        placement.free_expert(tag_hot)
        placement.free_expert(tag_cold)
        assert placement.shards[0].pool.category_usage("experts") == 0
        assert placement.shards[1].pool.category_usage("experts") == 0

    def test_multi_gpu_residency_is_routed_and_split(self):
        system = PAPER_SYSTEM.with_num_gpus(2)
        placement = ModelPlacement(CONFIG, system, offload_experts=True,
                                   cache_policy="lru", cache_capacity=9)
        assert isinstance(placement.residency, ShardedResidency)
        assert placement.residency.capacity == 9
        # A pin charges the owning shard's pool.
        cold = CONFIG.num_experts - 1
        assert placement.residency.pin((0, cold)) is False
        assert placement.shards[1].pool.category_usage("experts") == CONFIG.expert_bytes()
        assert placement.shards[0].pool.category_usage("experts") == 0
        placement.residency.release((0, cold))


class TestSingleGpuParity:
    """num_gpus=1 is the degenerate topology: bit-parity with today's path."""

    @pytest.mark.parametrize("design", DESIGNS)
    def test_scheduler_parity(self, design):
        legacy = serve(design)
        topo = serve(design, num_gpus=1)
        assert topo.makespan == pytest.approx(legacy.makespan, abs=1e-9)
        assert topo.expert_bytes_transferred == legacy.expert_bytes_transferred
        assert topo.peak_gpu_bytes == legacy.peak_gpu_bytes
        assert topo.alltoall_bytes == 0
        assert topo.shard_imbalance is None
        for a, b in zip(topo.requests, legacy.requests):
            assert a.ttft == pytest.approx(b.ttft, abs=1e-9)
            assert a.completion_time == pytest.approx(b.completion_time, abs=1e-9)

    def test_scheduler_parity_with_cache(self):
        legacy = serve("pregated", cache_policy="lru", cache_capacity=16)
        topo = serve("pregated", cache_policy="lru", cache_capacity=16,
                     num_gpus=1)
        assert topo.makespan == pytest.approx(legacy.makespan, abs=1e-9)
        assert topo.expert_bytes_transferred == legacy.expert_bytes_transferred
        assert topo.cache_stats.hits == legacy.cache_stats.hits

    def test_engine_parity(self):
        requests = generate_timed_requests(CONFIG, LOAD, workload=WORKLOAD)
        legacy = make_engine("pregated", CONFIG).run_request(requests[0].trace)
        topo = make_engine("pregated", CONFIG, num_gpus=1).run_request(
            requests[0].trace)
        assert topo.total_time == pytest.approx(legacy.total_time, abs=1e-9)
        assert topo.peak_gpu_bytes == legacy.peak_gpu_bytes


class TestExpertParallelServing:
    @pytest.mark.parametrize("num_gpus", (2, 4))
    def test_multi_gpu_run_completes_and_reports(self, num_gpus):
        result = serve("pregated", num_gpus=num_gpus)
        assert result.num_requests == WORKLOAD.num_requests
        assert result.num_gpus == num_gpus
        assert result.alltoall_bytes > 0
        assert len(result.device_utilisation) == num_gpus
        assert result.shard_imbalance is not None
        summary = result.summary()
        assert summary["num_gpus"] == num_gpus
        assert summary["alltoall_mb"] > 0
        # Device 0 runs the dense layers, so it dominates utilisation.
        assert result.device_utilisation[0] == max(result.device_utilisation)

    def test_ordering_survives_expert_parallelism(self):
        pregated = serve("pregated", num_gpus=2)
        ondemand = serve("ondemand", num_gpus=2)
        prefetch = serve("prefetch_all", num_gpus=2)
        assert (pregated.sustained_tokens_per_second
                >= ondemand.sustained_tokens_per_second)
        assert (ondemand.sustained_tokens_per_second
                > prefetch.sustained_tokens_per_second)

    def test_load_balanced_never_loses_under_skew(self):
        import numpy as np

        ranks = np.arange(1, CONFIG.num_experts + 1, dtype=float)
        weights = (ranks ** -1.5).tolist()
        contiguous = serve("pregated", num_gpus=2, shard_policy="contiguous")
        balanced = serve("pregated", num_gpus=2, shard_policy="load_balanced",
                         expert_weights=weights)
        assert (balanced.sustained_tokens_per_second
                >= contiguous.sustained_tokens_per_second - 1e-9)
        assert balanced.shard_imbalance <= contiguous.shard_imbalance + 1e-9

    def test_exposed_transfer_time_zero_without_migrations(self):
        # gpu_only never migrates experts, so even a multi-device block
        # (dispatch → sharded exec → combine) exposes no transfer time;
        # the all-to-all cost must not leak into the migration-stall metric.
        requests = generate_timed_requests(CONFIG, LOAD, workload=WORKLOAD)
        engine = make_engine("gpu_only", CONFIG, num_gpus=2)
        result = engine.run_request(requests[0].trace)
        records = result.block_latencies()
        assert records
        assert all(r.exposed_transfer_time == pytest.approx(0.0, abs=1e-12)
                   for r in records)

    def test_single_gpu_summary_dashes_expert_parallel_columns(self):
        summary = serve("pregated").summary()
        assert summary["alltoall_mb"] is None
        assert summary["shard_imbalance"] is None

    def test_multi_gpu_with_cache_runs(self):
        result = serve("pregated", num_gpus=2, cache_policy="lru",
                       cache_capacity=32)
        assert result.cache_stats is not None
        assert result.cache_stats.misses > 0
        assert result.num_gpus == 2

    def test_engine_multi_gpu_request(self):
        requests = generate_timed_requests(CONFIG, LOAD, workload=WORKLOAD)
        engine = make_engine("pregated", CONFIG, num_gpus=2)
        single = make_engine("pregated", CONFIG)
        multi_result = engine.run_request(requests[0].trace)
        single_result = single.run_request(requests[0].trace)
        assert multi_result.output_length == single_result.output_length
        # Replicated dense layers cost HBM: the two-device peak exceeds one.
        assert multi_result.peak_gpu_bytes > single_result.peak_gpu_bytes
        assert engine.placement.alltoall_bytes > 0

    def test_cluster_threads_num_gpus(self):
        cluster = ReplicaCluster("pregated", CONFIG, num_replicas=2,
                                 num_gpus=2, max_batch_size=3)
        requests = generate_timed_requests(CONFIG, LOAD, workload=WORKLOAD)
        result = cluster.serve(requests)
        combined = result.combined()
        assert combined.num_gpus == 2
        assert combined.summary()["num_gpus"] == 2
        assert all(r.num_gpus == 2 for r in result.replica_results)
