"""Parity and scaling tests for the simulator's own performance rebuild.

Two contracts:

* **Mode parity** — serving with ``record_trace=False`` (incremental
  aggregates + op retirement, the production default) reports *exactly* the
  same load metrics as trace mode, across designs, multi-GPU replicas and
  SSD staging, and under every timeline engine (scalar reference, array
  kernel, kernel + round replay); and in trace mode, the incremental
  aggregates agree with the first-principles trace scans to 1e-9.
* **Scaling regression** — on every engine, total op work grows ~linearly
  with request count while the resident-op window stays bounded (the fix
  for the accidental O(n²) makespan scans).
"""

import numpy as np
import pytest

from repro.serving.metrics import LatencyStats
from repro.serving.scheduler import make_scheduler
from repro.system.hardware import SSD_SYSTEM
from repro.system.timeline import Stream
from repro.workloads.arrivals import TimedRequest
from repro.workloads.traces import TraceGenerator

from repro.moe.configs import get_config

CONFIG = get_config("switch_base_64")


def poisson_requests(num_requests: int, seed: int = 0, rate: float = 8.0,
                     skew: float = 1.2):
    """Timestamped requests with a Poisson arrival process."""
    rng = np.random.default_rng(seed + 1000)
    generator = TraceGenerator(CONFIG, skew=skew, seed=seed)
    arrival = 0.0
    requests = []
    for i in range(num_requests):
        arrival += float(rng.exponential(1.0 / rate))
        requests.append(TimedRequest(
            request_id=i, arrival_time=arrival,
            trace=generator.request_trace(input_length=6, output_length=4)))
    return requests


def stats_tuple(stats: LatencyStats):
    return (stats.count, stats.mean, stats.p50, stats.p90, stats.p99, stats.max)


#: scenario name → (design, scheduler kwargs)
SCENARIOS = {
    "pregated": ("pregated", {}),
    "ondemand": ("ondemand", {}),
    "prefetch_all": ("prefetch_all", {}),
    "gpu_only": ("gpu_only", {}),
    "pregated_2gpu": ("pregated", {"num_gpus": 2}),
    "ondemand_4gpu": ("ondemand", {"num_gpus": 4, "shard_policy": "round_robin"}),
    "pregated_ssd_staged": ("pregated", {"system": SSD_SYSTEM,
                                         "stage_policy": "lru",
                                         "stage_capacity": 64}),
    "ondemand_ssd": ("ondemand", {"system": SSD_SYSTEM}),
    "pregated_cached": ("pregated", {"cache_policy": "lru",
                                     "cache_capacity": 32}),
}


#: (timeline_engine, round_replay) combinations the no-trace side serves
#: under — the scalar reference, the array kernel, and the kernel with
#: steady-state round replay.  All must report identical load metrics.
ENGINES = (("scalar", False), ("array", False), ("array", True))


class TestTraceNoTraceParity:
    @pytest.mark.parametrize("engine,replay", ENGINES,
                             ids=["scalar", "kernel", "kernel_replay"])
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    @pytest.mark.parametrize("seed", (0, 1))
    def test_load_metrics_identical(self, scenario, seed, engine, replay):
        design, kwargs = SCENARIOS[scenario]
        requests = poisson_requests(8, seed=seed)
        traced = make_scheduler(design, CONFIG, max_batch_size=4,
                                timeline_engine="scalar",
                                record_trace=True, **kwargs).serve(requests)
        bare = make_scheduler(design, CONFIG, max_batch_size=4,
                              timeline_engine=engine, round_replay=replay,
                              record_trace=False, **kwargs).serve(requests)
        assert bare.makespan == pytest.approx(traced.makespan, abs=1e-9)
        assert bare.expert_bytes_transferred == traced.expert_bytes_transferred
        assert bare.peak_gpu_bytes == traced.peak_gpu_bytes
        assert bare.alltoall_bytes == traced.alltoall_bytes
        assert bare.timeline_total_ops == traced.timeline_total_ops
        assert stats_tuple(bare.ttft_stats) == pytest.approx(
            stats_tuple(traced.ttft_stats), abs=1e-9)
        assert stats_tuple(bare.tbt_stats) == pytest.approx(
            stats_tuple(traced.tbt_stats), abs=1e-9)
        assert stats_tuple(bare.queueing_stats) == pytest.approx(
            stats_tuple(traced.queueing_stats), abs=1e-9)
        assert bare.device_utilisation == pytest.approx(
            traced.device_utilisation, abs=1e-9)
        if traced.tier_stats is not None:
            assert bare.tier_stats.as_dict() == traced.tier_stats.as_dict()

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_timeline_aggregates_identical(self, scenario):
        design, kwargs = SCENARIOS[scenario]
        requests = poisson_requests(6, seed=2)
        traced_sched = make_scheduler(design, CONFIG, max_batch_size=4,
                                      record_trace=True, **kwargs)
        bare_sched = make_scheduler(design, CONFIG, max_batch_size=4,
                                    record_trace=False, **kwargs)
        traced_sched.serve(requests)
        bare_sched.serve(requests)
        traced, bare = traced_sched.last_timeline, bare_sched.last_timeline
        assert bare.makespan == pytest.approx(traced.makespan, abs=1e-9)
        assert bare.exposed_copy_time() == pytest.approx(
            traced.exposed_copy_time(), abs=1e-9)
        for stream in Stream:
            assert bare.stream_busy_time(stream) == pytest.approx(
                traced.stream_busy_time(stream), abs=1e-9)
        for category in ("expert_transfer", "expert_execution", "gate",
                         "non_moe", "stage_in", "alltoall"):
            assert bare.category_count(category) == traced.category_count(category)
            assert bare.category_bytes(category) == pytest.approx(
                traced.category_bytes(category), abs=1e-9)
        # Trace mode's incremental aggregates agree with full trace scans.
        assert traced.makespan == pytest.approx(traced.scan_makespan(), abs=1e-9)
        assert traced.exposed_copy_time() == pytest.approx(
            traced.scan_exposed_copy_time(), abs=1e-9)
        for stream in Stream:
            assert traced.stream_busy_time(stream) == pytest.approx(
                traced.scan_stream_busy_time(stream), abs=1e-9)


class TestScalingRegression:
    @pytest.mark.parametrize("engine,replay", ENGINES,
                             ids=["scalar", "kernel", "kernel_replay"])
    def test_op_work_linear_and_window_bounded(self, engine, replay):
        """Total op count grows ~linearly; the live window does not grow."""
        small = make_scheduler("pregated", CONFIG, max_batch_size=4,
                               timeline_engine=engine, round_replay=replay)
        large = make_scheduler("pregated", CONFIG, max_batch_size=4,
                               timeline_engine=engine, round_replay=replay)
        small_result = small.serve(poisson_requests(10, seed=3))
        large_result = large.serve(poisson_requests(40, seed=3))
        ratio = large_result.timeline_total_ops / small_result.timeline_total_ops
        assert 3.0 <= ratio <= 5.0, (
            f"op work grew {ratio:.2f}x for 4x the requests — super-linear "
            "op scheduling has crept back in")
        # The resident window tracks the active batch, not the load length.
        assert large_result.timeline_peak_live_ops <= \
            2 * small_result.timeline_peak_live_ops
        assert large_result.timeline_peak_live_ops < \
            large_result.timeline_total_ops / 5

    def test_trace_mode_keeps_everything(self):
        sched = make_scheduler("pregated", CONFIG, max_batch_size=4,
                               record_trace=True)
        result = sched.serve(poisson_requests(10, seed=4))
        assert result.timeline_peak_live_ops == result.timeline_total_ops
        assert sched.last_timeline.live_op_count == result.timeline_total_ops
