"""Tests for the cross-request prefetcher over shared expert residency."""

import pytest

from repro.moe import get_config
from repro.serving import CrossRequestPrefetcher, IterationSimulator, ModelPlacement
from repro.system.hardware import PAPER_SYSTEM
from repro.system.performance import GpuLatencyModel
from repro.system.timeline import ExecutionTimeline
from repro.workloads import TraceGenerator

CONFIG = get_config("switch_base_64")


def make_stack(design="ondemand", capacity=64, policy="lru"):
    placement = ModelPlacement(CONFIG, PAPER_SYSTEM, offload_experts=True,
                               cache_policy=policy, cache_capacity=capacity)
    placement.load_model()
    simulator = IterationSimulator(CONFIG, PAPER_SYSTEM,
                                   GpuLatencyModel(PAPER_SYSTEM.gpu),
                                   design, placement)
    prefetcher = CrossRequestPrefetcher(placement.residency)
    return placement, simulator, prefetcher


def activations_for(seed=6):
    return TraceGenerator(CONFIG, seed=seed).iteration_activations(
        1, CONFIG.num_moe_blocks("decoder"))


class TestPrefetchRound:
    def test_identical_requests_share_one_fetch(self):
        placement, simulator, prefetcher = make_stack()
        activations = activations_for()
        plan = simulator.make_plan("decoder", activations)

        timeline = ExecutionTimeline()
        batch_round = prefetcher.begin_round()
        for _ in range(3):
            batch_round.register_plan(placement, "decoder", plan, activations)
        for request_id in range(3):
            simulator.decoder_iteration(timeline, activations,
                                        batch_round=batch_round,
                                        label=f"r{request_id}.")
        copies = timeline.ops_by_category("expert_transfer")
        unique = sum(len(block) for block in activations)
        assert len(copies) == unique               # one migration per expert
        assert placement.residency.stats.misses == unique
        # All experts released to refcount zero and retained for later rounds.
        assert placement.residency.retained_count == unique
        assert placement.gpu_pool.category_usage("experts") == unique * CONFIG.expert_bytes()

    def test_second_round_hits_retained_experts(self):
        placement, simulator, prefetcher = make_stack()
        activations = activations_for()
        timeline = ExecutionTimeline()
        for round_index in range(2):
            batch_round = prefetcher.begin_round()
            plan = simulator.make_plan("decoder", activations)
            batch_round.register_plan(placement, "decoder", plan, activations)
            simulator.decoder_iteration(timeline, activations,
                                        batch_round=batch_round,
                                        label=f"it{round_index}.", plan=plan)
            batch_round.drain(placement)
        unique = sum(len(block) for block in activations)
        copies = timeline.ops_by_category("expert_transfer")
        assert len(copies) == unique               # round 2 re-fetched nothing
        assert placement.residency.stats.hits == unique
        assert placement.residency.stats.bytes_saved == unique * CONFIG.expert_bytes()
        assert prefetcher.rounds == 2

    def test_registration_pins_resident_experts(self):
        """A plan that assumes residency pins those experts for the round."""
        placement, _, prefetcher = make_stack(capacity=2)
        residency = placement.residency
        residency.pin((0, 5))
        residency.release((0, 5))                  # retained, unpinned
        batch_round = prefetcher.begin_round()

        from repro.core.migration import MigrationPlan
        plan = MigrationPlan(design="ondemand")    # nothing to transfer...
        batch_round.register_plan(placement, "encoder", plan, [[5]])
        assert residency.pins((0, 5)) == 1         # ...but block 0 relies on expert 5
        assert batch_round.is_fetched((0, 5))
        assert batch_round.copy_op((0, 5)) is None  # resident: no dependency

        for key in batch_round.release_keys(placement, "encoder", plan, [[5]], 0):
            batch_round.release(placement, key)
        assert residency.pins((0, 5)) == 0
        assert residency.is_resident((0, 5))       # back to retained

    def test_zero_capacity_round_frees_everything(self):
        placement, simulator, prefetcher = make_stack(capacity=0)
        activations = activations_for()
        plan = simulator.make_plan("decoder", activations)
        timeline = ExecutionTimeline()
        batch_round = prefetcher.begin_round()
        batch_round.register_plan(placement, "decoder", plan, activations)
        simulator.decoder_iteration(timeline, activations,
                                    batch_round=batch_round, plan=plan)
        batch_round.drain(placement)
        assert len(placement.residency) == 0
        assert placement.gpu_pool.category_usage("experts") == 0

    def test_drain_hands_back_held_pins(self):
        placement, _, prefetcher = make_stack(capacity=8)
        residency = placement.residency
        residency.pin((0, 3))
        residency.release((0, 3))
        batch_round = prefetcher.begin_round()
        from repro.core.migration import MigrationPlan
        batch_round.register_plan(placement, "encoder", MigrationPlan(design="ondemand"),
                                  [[3]])
        assert residency.pins((0, 3)) == 1
        batch_round.drain(placement)               # abnormal exit: round abandoned
        assert residency.pins((0, 3)) == 0
        assert residency.is_resident((0, 3))

    def test_prefetcher_requires_residency(self):
        with pytest.raises(ValueError):
            CrossRequestPrefetcher(None)


class TestPlanIntegration:
    def test_make_plan_skips_retained_experts(self):
        placement, simulator, _ = make_stack(design="pregated", capacity=16)
        residency = placement.residency
        activations = [[1, 2]] + [[0]] * (CONFIG.num_moe_blocks("decoder") - 1)
        full_plan = simulator.make_plan("decoder", activations)
        # Make expert 1 of decoder block 0 resident (global index offset by
        # the encoder blocks) and re-plan: one transfer disappears.
        gb = placement.global_block_index("decoder", 0)
        residency.pin((gb, 1))
        residency.release((gb, 1))
        lean_plan = simulator.make_plan("decoder", activations)
        assert lean_plan.total_experts() == full_plan.total_experts() - 1
        assert all(not (t.block_index == 0 and t.expert_id == 1)
                   for t in lean_plan.transfers)
