"""Tests for the serving metrics records and aggregation."""

import pytest

from repro.serving.metrics import (
    BlockLatencyRecord,
    IterationResult,
    RequestResult,
    WorkloadResult,
    normalise,
)


def make_request(output_length=10, encoder_time=0.1, decode_time=0.4):
    records = [BlockLatencyRecord(part="decoder", iteration=0, block_index=i,
                                  latency=0.001 * (i + 1), num_active_experts=1)
               for i in range(3)]
    iteration = IterationResult(part="decoder", iteration=0, duration=0.05,
                                block_latencies=records)
    return RequestResult(design="pregated", config_name="switch_base_8",
                         input_length=16, output_length=output_length,
                         encoder_time=encoder_time, decode_time=decode_time,
                         iterations=[iteration], peak_gpu_bytes=int(3e9))


class TestRequestResult:
    def test_total_time_and_throughput(self):
        result = make_request(output_length=10, encoder_time=0.1, decode_time=0.4)
        assert result.total_time == pytest.approx(0.5)
        assert result.tokens_per_second == pytest.approx(20.0)
        assert result.decode_tokens_per_second == pytest.approx(25.0)

    def test_mean_block_latency(self):
        result = make_request()
        assert result.mean_block_latency("decoder") == pytest.approx(0.002)
        assert result.mean_block_latency("encoder") == 0.0

    def test_block_latency_filtering(self):
        result = make_request()
        assert len(result.block_latencies()) == 3
        assert len(result.block_latencies("encoder")) == 0

    def test_zero_time_guard(self):
        result = make_request(encoder_time=0.0, decode_time=0.0)
        assert result.tokens_per_second == 0.0
        assert result.decode_tokens_per_second == 0.0


class TestWorkloadResult:
    def test_aggregates(self):
        workload = WorkloadResult(design="pregated", config_name="switch_base_8",
                                  requests=[make_request(), make_request()],
                                  peak_gpu_bytes=int(4e9))
        assert workload.num_requests == 2
        assert workload.total_generated_tokens == 20
        assert workload.aggregate_tokens_per_second == pytest.approx(20.0)
        assert workload.mean_block_latency == pytest.approx(0.002)
        summary = workload.summary()
        assert summary["peak_gpu_gb"] == pytest.approx(4.0)
        assert not summary["oom"]

    def test_empty_workload(self):
        workload = WorkloadResult(design="gpu_only", config_name="switch_large_128", oom=True)
        assert workload.mean_tokens_per_second == 0.0
        assert workload.mean_block_latency == 0.0
        assert workload.aggregate_tokens_per_second == 0.0

    def test_iteration_mean(self):
        iteration = IterationResult(part="decoder", iteration=0, duration=1.0)
        assert iteration.mean_block_latency == 0.0


class TestNormalise:
    def test_normalise_to_reference(self):
        out = normalise({"a": 2.0, "b": 4.0}, reference="a")
        assert out == {"a": 1.0, "b": 2.0}

    def test_missing_reference(self):
        with pytest.raises(KeyError):
            normalise({"a": 1.0}, reference="z")

    def test_zero_reference(self):
        with pytest.raises(ZeroDivisionError):
            normalise({"a": 0.0, "b": 1.0}, reference="a")
