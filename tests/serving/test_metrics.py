"""Tests for the serving metrics records and aggregation."""

import pytest

from repro.serving.metrics import (
    BlockLatencyRecord,
    IterationResult,
    LatencyStats,
    LoadTestResult,
    RequestResult,
    ServedRequestResult,
    WorkloadResult,
    merge_load_results,
    normalise,
    percentile,
)


def make_request(output_length=10, encoder_time=0.1, decode_time=0.4):
    records = [BlockLatencyRecord(part="decoder", iteration=0, block_index=i,
                                  latency=0.001 * (i + 1), num_active_experts=1)
               for i in range(3)]
    iteration = IterationResult(part="decoder", iteration=0, duration=0.05,
                                block_latencies=records)
    return RequestResult(design="pregated", config_name="switch_base_8",
                         input_length=16, output_length=output_length,
                         encoder_time=encoder_time, decode_time=decode_time,
                         iterations=[iteration], peak_gpu_bytes=int(3e9))


class TestRequestResult:
    def test_total_time_and_throughput(self):
        result = make_request(output_length=10, encoder_time=0.1, decode_time=0.4)
        assert result.total_time == pytest.approx(0.5)
        assert result.tokens_per_second == pytest.approx(20.0)
        assert result.decode_tokens_per_second == pytest.approx(25.0)

    def test_mean_block_latency(self):
        result = make_request()
        assert result.mean_block_latency("decoder") == pytest.approx(0.002)
        assert result.mean_block_latency("encoder") == 0.0

    def test_block_latency_filtering(self):
        result = make_request()
        assert len(result.block_latencies()) == 3
        assert len(result.block_latencies("encoder")) == 0

    def test_zero_time_guard(self):
        result = make_request(encoder_time=0.0, decode_time=0.0)
        assert result.tokens_per_second == 0.0
        assert result.decode_tokens_per_second == 0.0


class TestWorkloadResult:
    def test_aggregates(self):
        workload = WorkloadResult(design="pregated", config_name="switch_base_8",
                                  requests=[make_request(), make_request()],
                                  peak_gpu_bytes=int(4e9))
        assert workload.num_requests == 2
        assert workload.total_generated_tokens == 20
        assert workload.aggregate_tokens_per_second == pytest.approx(20.0)
        assert workload.mean_block_latency == pytest.approx(0.002)
        summary = workload.summary()
        assert summary["peak_gpu_gb"] == pytest.approx(4.0)
        assert not summary["oom"]

    def test_empty_workload(self):
        workload = WorkloadResult(design="gpu_only", config_name="switch_large_128", oom=True)
        assert workload.mean_tokens_per_second == 0.0
        assert workload.mean_block_latency == 0.0
        assert workload.aggregate_tokens_per_second == 0.0

    def test_iteration_mean(self):
        iteration = IterationResult(part="decoder", iteration=0, duration=1.0)
        assert iteration.mean_block_latency == 0.0


def make_served(request_id=0, arrival=0.0, first_sched=0.1, tokens=(0.2, 0.3, 0.45),
                replica=0):
    return ServedRequestResult(
        request_id=request_id, design="pregated", config_name="switch_base_8",
        input_length=16, output_length=len(tokens), arrival_time=arrival,
        first_scheduled_time=first_sched, first_token_time=tokens[0],
        completion_time=tokens[-1], token_times=list(tokens), replica=replica)


class TestPercentile:
    def test_median_and_extremes(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(values, 50) == pytest.approx(3.0)
        assert percentile(values, 0) == pytest.approx(1.0)
        assert percentile(values, 100) == pytest.approx(5.0)

    def test_interpolates(self):
        assert percentile([1.0, 2.0], 50) == pytest.approx(1.5)
        assert percentile([0.0, 10.0], 90) == pytest.approx(9.0)

    def test_order_independent(self):
        assert percentile([5.0, 1.0, 3.0], 50) == pytest.approx(3.0)

    def test_errors(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -0.5)

    def test_single_sample_is_every_percentile(self):
        for p in (0, 1, 37.5, 50, 99, 100):
            assert percentile([42.0], p) == pytest.approx(42.0)

    def test_p0_and_p100_are_min_and_max_of_unsorted_input(self):
        values = [7.0, -1.0, 3.5, 10.0, 0.0]
        assert percentile(values, 0) == pytest.approx(-1.0)
        assert percentile(values, 100) == pytest.approx(10.0)

    def test_unsorted_input_matches_sorted(self):
        values = [9.0, 1.0, 5.0, 3.0, 7.0]
        for p in (0, 25, 50, 90, 100):
            assert percentile(values, p) == pytest.approx(
                percentile(sorted(values), p))
        assert percentile(values, 90) == pytest.approx(8.2)


class TestLatencyStats:
    def test_from_values(self):
        stats = LatencyStats.from_values([0.1, 0.2, 0.3, 0.4])
        assert stats.count == 4
        assert stats.mean == pytest.approx(0.25)
        assert stats.p50 == pytest.approx(0.25)
        assert stats.max == pytest.approx(0.4)
        assert stats.p50 <= stats.p90 <= stats.p99 <= stats.max

    def test_empty_is_zeroed(self):
        stats = LatencyStats.from_values([])
        assert stats.count == 0 and stats.p99 == 0.0

    def test_as_dict_scaling(self):
        stats = LatencyStats.from_values([0.5])
        assert stats.as_dict(scale=1e3)["p50"] == pytest.approx(500.0)


class TestServedRequestResult:
    def test_latency_properties(self):
        served = make_served(arrival=0.05, first_sched=0.1, tokens=(0.2, 0.3, 0.45))
        assert served.queueing_delay == pytest.approx(0.05)
        assert served.ttft == pytest.approx(0.15)
        assert served.e2e_latency == pytest.approx(0.4)
        assert served.time_between_tokens == pytest.approx([0.1, 0.15])

    def test_single_token_has_no_tbt(self):
        served = make_served(tokens=(0.2,))
        assert served.time_between_tokens == []


class TestLoadTestResult:
    def make_result(self):
        return LoadTestResult(
            design="pregated", config_name="switch_base_8", offered_load=4.0,
            requests=[make_served(0, tokens=(0.2, 0.3, 0.45)),
                      make_served(1, arrival=0.5, first_sched=0.6,
                                  tokens=(0.7, 0.9, 1.0))],
            makespan=1.0, peak_gpu_bytes=int(3e9))

    def test_throughput_uses_wall_clock(self):
        result = self.make_result()
        assert result.total_generated_tokens == 6
        assert result.sustained_tokens_per_second == pytest.approx(6.0)
        assert result.completed_requests_per_second == pytest.approx(2.0)

    def test_stat_properties(self):
        result = self.make_result()
        assert result.ttft_stats.count == 2
        assert result.tbt_stats.count == 4
        assert result.queueing_stats.mean == pytest.approx(0.1)

    def test_summary_keys(self):
        summary = self.make_result().summary()
        for key in ("design", "sustained_tokens_per_second", "p50_ttft_ms",
                    "p99_ttft_ms", "p50_tbt_ms", "p99_tbt_ms",
                    "mean_queueing_ms", "peak_gpu_gb"):
            assert key in summary
        assert summary["p50_ttft_ms"] == pytest.approx(200.0)

    def test_empty_result(self):
        result = LoadTestResult(design="gpu_only", config_name="switch_large_128",
                                oom=True)
        assert result.sustained_tokens_per_second == 0.0
        assert result.ttft_stats.count == 0


class TestMergeLoadResults:
    def test_merge_pools_requests_and_maxes_makespan(self):
        a = LoadTestResult(design="pregated", config_name="c", makespan=1.0,
                           peak_gpu_bytes=10, requests=[make_served(0, replica=0)])
        b = LoadTestResult(design="pregated", config_name="c", makespan=2.0,
                           peak_gpu_bytes=20, requests=[make_served(1, replica=1)])
        merged = merge_load_results([a, b])
        assert merged.num_requests == 2
        assert merged.makespan == pytest.approx(2.0)
        assert merged.peak_gpu_bytes == 30
        assert merged.num_replicas == 2

    def test_merge_empty_raises(self):
        with pytest.raises(ValueError):
            merge_load_results([])

    def test_merge_mixed_cached_and_cache_free_replicas(self):
        """A fleet may mix cached, capacity-0 and cache-free replicas."""
        from repro.system import ResidencyStats

        cached = LoadTestResult(
            design="pregated", config_name="c", makespan=1.0,
            cache_stats=ResidencyStats(hits=3, misses=1, bytes_saved=300,
                                       bytes_transferred=100))
        zero_capacity = LoadTestResult(
            design="pregated", config_name="c", makespan=1.0,
            cache_stats=ResidencyStats())          # capacity 0: stats, no hits
        cache_free = LoadTestResult(design="pregated", config_name="c",
                                    makespan=1.0)  # no cache at all: None
        merged = merge_load_results([cached, zero_capacity, cache_free])
        assert merged.cache_stats is not None
        assert merged.cache_stats.hits == 3
        assert merged.cache_stats.misses == 1
        assert merged.cache_hit_rate == pytest.approx(0.75)

        all_free = merge_load_results([cache_free, cache_free])
        assert all_free.cache_stats is None
        assert all_free.cache_hit_rate is None
        # The report renders these rows with placeholder cache cells.
        assert all_free.summary()["cache_hit_rate"] is None

    def test_merge_mixed_source_tiers_marked(self):
        from repro.system import ResidencyStats

        dram = LoadTestResult(design="pregated", config_name="c", makespan=1.0,
                              cache_stats=ResidencyStats(source_tier="dram"))
        ssd = LoadTestResult(design="pregated", config_name="c", makespan=1.0,
                             cache_stats=ResidencyStats(source_tier="ssd"))
        merged = merge_load_results([dram, ssd])
        assert merged.cache_stats.source_tier == "mixed"

    def test_merge_mixed_num_gpus_marked(self):
        """A fleet mixing replica GPU counts merges with num_gpus marked mixed."""
        wide = LoadTestResult(design="pregated", config_name="c", makespan=1.0,
                              num_gpus=2, device_utilisation=[0.5, 0.25],
                              alltoall_bytes=100, shard_imbalance=1.5)
        narrow = LoadTestResult(design="pregated", config_name="c", makespan=2.0,
                                num_gpus=1, device_utilisation=[0.6])
        merged = merge_load_results([wide, narrow])
        assert merged.num_gpus is None
        assert merged.summary()["num_gpus"] == "mixed"
        # Device indices no longer line up: the breakdown is dropped.
        assert merged.device_utilisation == []
        assert merged.summary()["device_util"] is None
        assert merged.alltoall_bytes == 100
        assert merged.shard_imbalance == pytest.approx(1.5)

    def test_merge_homogeneous_num_gpus_averages_utilisation(self):
        a = LoadTestResult(design="pregated", config_name="c", makespan=1.0,
                           num_gpus=2, device_utilisation=[0.4, 0.2],
                           alltoall_bytes=100, shard_imbalance=1.2)
        b = LoadTestResult(design="pregated", config_name="c", makespan=1.0,
                           num_gpus=2, device_utilisation=[0.6, 0.4],
                           alltoall_bytes=50, shard_imbalance=2.0)
        merged = merge_load_results([a, b])
        assert merged.num_gpus == 2
        assert merged.device_utilisation == pytest.approx([0.5, 0.3])
        assert merged.alltoall_bytes == 150
        # The worst replica's imbalance is the fleet's headline.
        assert merged.shard_imbalance == pytest.approx(2.0)

    def test_merge_single_gpu_fleet_keeps_defaults(self):
        a = LoadTestResult(design="pregated", config_name="c", makespan=1.0,
                           device_utilisation=[0.8])
        b = LoadTestResult(design="pregated", config_name="c", makespan=1.0,
                           device_utilisation=[0.4])
        merged = merge_load_results([a, b])
        assert merged.num_gpus == 1
        assert merged.device_utilisation == pytest.approx([0.6])
        assert merged.shard_imbalance is None
        assert merged.summary()["shard_imbalance"] is None

    def test_merge_tier_stats_tolerates_missing(self):
        from repro.system import TierTransferStats

        offloaded = LoadTestResult(
            design="pregated", config_name="c", makespan=1.0,
            tier_stats=TierTransferStats(fetches=2, pcie_bytes=200,
                                         ssd_bytes_read=200, source_tier="ssd"))
        gpu_only = LoadTestResult(design="gpu_only", config_name="c", makespan=1.0)
        merged = merge_load_results([offloaded, gpu_only])
        assert merged.tier_stats is not None
        assert merged.tier_stats.ssd_bytes_read == 200
        assert merged.ssd_bytes_read == 200
        assert merge_load_results([gpu_only, gpu_only]).tier_stats is None


class TestNormalise:
    def test_normalise_to_reference(self):
        out = normalise({"a": 2.0, "b": 4.0}, reference="a")
        assert out == {"a": 1.0, "b": 2.0}

    def test_missing_reference(self):
        with pytest.raises(KeyError):
            normalise({"a": 1.0}, reference="z")

    def test_zero_reference(self):
        with pytest.raises(ZeroDivisionError):
            normalise({"a": 0.0, "b": 1.0}, reference="a")
