"""Tests for the continuous-batching request scheduler."""

import pytest

from repro.moe import get_config
from repro.serving import (
    ContinuousBatchingScheduler,
    EngineConfig,
    make_engine,
    make_scheduler,
    serve_load,
)
from repro.system import ExpertCache
from repro.system.timeline import ExecutionTimeline
from repro.workloads import (
    CLOSED_LOOP_QA_LOAD,
    DeterministicArrivals,
    POISSON_QA_LOAD,
    TimedRequest,
    TraceGenerator,
    WorkloadSpec,
)

CONFIG = get_config("switch_base_64")
DESIGNS = ("gpu_only", "pregated", "ondemand", "prefetch_all")


def timed(traces, times):
    return [TimedRequest(request_id=i, arrival_time=t, trace=trace)
            for i, (t, trace) in enumerate(zip(times, traces))]


@pytest.fixture(scope="module")
def trace():
    return TraceGenerator(CONFIG, seed=0).request_trace(input_length=16, output_length=8)


@pytest.fixture(scope="module")
def traces():
    return TraceGenerator(CONFIG, seed=1).workload(4, input_length=8, output_length=6)


class TestBackwardCompatibility:
    """A single request through the scheduler must match ``run_request``."""

    @pytest.mark.parametrize("design", DESIGNS)
    def test_single_request_latency_parity(self, design, trace):
        reference = make_engine(design, CONFIG).run_request(trace)
        served = make_scheduler(design, CONFIG).serve([trace]).requests[0]
        assert served.completion_time == pytest.approx(reference.total_time, abs=1e-9)
        assert served.arrival_time == 0.0
        assert served.e2e_latency == pytest.approx(reference.total_time, abs=1e-9)

    @pytest.mark.parametrize("design", DESIGNS)
    def test_single_request_peak_memory_parity(self, design, trace):
        engine = make_engine(design, CONFIG)
        reference = engine.run_request(trace)
        result = make_scheduler(design, CONFIG).serve([trace])
        assert result.peak_gpu_bytes == reference.peak_gpu_bytes

    def test_parity_with_activation_level_two(self, trace):
        engine_config = EngineConfig(activation_level=2)
        reference = make_engine("pregated", CONFIG,
                                engine_config=engine_config).run_request(trace)
        scheduler = make_scheduler("pregated", CONFIG, engine_config=engine_config)
        served = scheduler.serve([trace]).requests[0]
        assert served.completion_time == pytest.approx(reference.total_time, abs=1e-9)


class TestLifecycle:
    def test_all_requests_complete_with_metrics(self, traces):
        scheduler = make_scheduler("pregated", CONFIG, max_batch_size=2)
        result = scheduler.serve(traces, offered_load=None)
        assert result.num_requests == len(traces)
        for request in result.requests:
            assert request.queueing_delay >= 0.0
            assert 0.0 < request.ttft <= request.e2e_latency
            assert len(request.token_times) == request.output_length
            assert len(request.time_between_tokens) == request.output_length - 1
            assert all(gap > 0 for gap in request.time_between_tokens)

    def test_arrival_gating(self, traces):
        """No work for a request may start before the request arrives."""
        arrivals = [0.0, 10.0, 20.0, 30.0]  # far apart: replica idles between
        scheduler = make_scheduler("pregated", CONFIG)
        result = scheduler.serve(timed(traces, arrivals))
        for request, arrival in zip(result.requests, arrivals):
            assert request.first_scheduled_time >= arrival
            assert request.queueing_delay == pytest.approx(0.0, abs=1e-9)

    def test_continuous_batching_interleaves(self, traces):
        """Concurrent requests finish earlier than back-to-back serving."""
        scheduler = make_scheduler("pregated", CONFIG, max_batch_size=4)
        concurrent = scheduler.serve(timed(traces, [0.0] * len(traces)))
        sequential = make_scheduler("pregated", CONFIG, max_batch_size=1)
        one_by_one = sequential.serve(timed(traces, [0.0] * len(traces)))
        # Same total work on one GPU: identical makespan is allowed, but the
        # *first tokens* of later requests must come earlier when interleaved.
        late_ttft_batched = concurrent.requests[-1].ttft
        late_ttft_serial = one_by_one.requests[-1].ttft
        assert late_ttft_batched < late_ttft_serial

    def test_max_batch_size_bounds_concurrency(self, traces):
        scheduler = make_scheduler("pregated", CONFIG, max_batch_size=1)
        result = scheduler.serve(timed(traces, [0.0] * len(traces)))
        # With concurrency 1 the requests must not overlap at all.
        ordered = sorted(result.requests, key=lambda r: r.first_scheduled_time)
        for earlier, later in zip(ordered, ordered[1:]):
            assert later.first_scheduled_time >= earlier.completion_time - 1e-12

    def test_burst_admission_is_shift_invariant(self, traces):
        """A burst arriving at t=T behaves exactly like the burst at t=0.

        Regression: the idle-replica path used to admit only one request of
        a simultaneous burst, serialising the rest into later rounds and
        losing the round's transfer dedup.
        """
        pair = traces[:2]
        at_zero = make_scheduler("pregated", CONFIG).serve(timed(pair, [0.0, 0.0]))
        shifted = make_scheduler("pregated", CONFIG).serve(timed(pair, [5.0, 5.0]))
        for base, late in zip(at_zero.requests, shifted.requests):
            assert late.ttft == pytest.approx(base.ttft, abs=1e-9)
            assert late.e2e_latency == pytest.approx(base.e2e_latency, abs=1e-9)

    def test_negative_arrival_rejected(self, trace):
        with pytest.raises(ValueError, match="arrival_time"):
            make_scheduler("pregated", CONFIG).serve([TimedRequest(0, -1.0, trace)])

    def test_oom_reported_not_raised(self):
        scheduler = make_scheduler("gpu_only", "switch_large_128")
        result = scheduler.serve([])
        assert result.oom
        assert "out of memory" in result.oom_reason.lower()

    def test_legacy_cache_configures_residency(self):
        """An ExpertCache argument is adopted into the shared residency map
        (the scheduler used to reject caches outright)."""
        scheduler = ContinuousBatchingScheduler(
            "pregated", CONFIG, cache=ExpertCache(capacity_experts=8, policy="lifo"))
        assert scheduler.residency is not None
        assert scheduler.residency.capacity == 8
        assert scheduler.residency.policy.name == "lifo"

    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError):
            make_scheduler("multi_gpu", CONFIG)


class TestTransferDedup:
    """Concurrent requests activating the same experts share one migration."""

    def test_identical_concurrent_requests_share_transfers(self):
        gen = TraceGenerator(CONFIG, seed=5)
        trace = gen.request_trace(input_length=8, output_length=4)
        shared = timed([trace, trace], [0.0, 0.0])  # identical activations

        solo = make_scheduler("ondemand", CONFIG, max_batch_size=1)
        solo_result = solo.serve(timed([trace], [0.0]))
        duo = make_scheduler("ondemand", CONFIG, max_batch_size=2)
        duo_result = duo.serve(shared)

        # The second request re-executes every block but re-fetches nothing,
        # so the two-request makespan must be far below twice the solo one.
        assert duo_result.makespan < 1.8 * solo_result.makespan

    def test_dedup_counts_copy_ops(self):
        """Op-level check through the simulator: one fetch per shared expert."""
        from repro.serving import IterationSimulator, ModelPlacement, SharedExpertRound
        from repro.system.hardware import PAPER_SYSTEM
        from repro.system.performance import GpuLatencyModel

        placement = ModelPlacement(CONFIG, PAPER_SYSTEM, offload_experts=True)
        placement.load_model()
        simulator = IterationSimulator(CONFIG, PAPER_SYSTEM,
                                       GpuLatencyModel(PAPER_SYSTEM.gpu),
                                       "ondemand", placement)
        activations = TraceGenerator(CONFIG, seed=6).iteration_activations(
            1, CONFIG.num_moe_blocks("decoder"))

        timeline = ExecutionTimeline()
        batch_round = SharedExpertRound()
        plan = simulator.make_plan("decoder", activations)
        for _ in range(3):  # three requests with identical activations
            batch_round.register_plan(placement, "decoder", plan)
        for request_id in range(3):
            simulator.decoder_iteration(timeline, activations,
                                        batch_round=batch_round,
                                        label=f"r{request_id}.")
        copies = timeline.ops_by_category("expert_transfer")
        assert len(copies) == sum(len(block) for block in activations)
        # All shared slots were refcounted down to zero and freed.
        assert placement.gpu_pool.category_usage("experts") == 0

    def test_disjoint_requests_do_not_dedup(self):
        """Requests activating disjoint experts migrate their own experts."""
        blocks = CONFIG.num_moe_blocks("decoder")
        trace_a = TraceGenerator(CONFIG, seed=7).request_trace(1, 2)
        trace_b = TraceGenerator(CONFIG, seed=8).request_trace(1, 2)
        # Force disjoint expert ids.
        trace_a.decode_activations = [[[0]] * blocks, [[1]] * blocks]
        trace_b.decode_activations = [[[2]] * blocks, [[3]] * blocks]
        trace_a.encoder_activations = [[0]] * CONFIG.num_moe_blocks("encoder")
        trace_b.encoder_activations = [[2]] * CONFIG.num_moe_blocks("encoder")

        solo = make_scheduler("ondemand", CONFIG, max_batch_size=1)
        solo_result = solo.serve(timed([trace_a], [0.0]))
        duo = make_scheduler("ondemand", CONFIG, max_batch_size=2)
        duo_result = duo.serve(timed([trace_a, trace_b], [0.0, 0.0]))
        # Disjoint experts: the pair costs about twice the solo makespan.
        assert duo_result.makespan > 1.6 * solo_result.makespan


class TestServeLoad:
    """``serve_load``: LoadSpec in, LoadTestResult out."""

    SHAPE = WorkloadSpec(name="tiny_load", num_requests=3,
                         input_length=8, output_length=4)

    def test_open_loop_records_offered_load(self):
        load = POISSON_QA_LOAD.with_overrides(request_rate=6.0)
        result = serve_load("pregated", CONFIG, load, workload=self.SHAPE)
        assert result.offered_load == 6.0
        assert result.num_requests == 3

    def test_closed_loop_uses_spec_concurrency(self):
        """A closed-loop spec's client count caps in-flight requests."""
        load = CLOSED_LOOP_QA_LOAD.with_overrides(concurrency=1)
        result = serve_load("pregated", CONFIG, load, workload=self.SHAPE)
        assert result.offered_load is None
        # Concurrency 1: requests must be fully serialised.
        ordered = sorted(result.requests, key=lambda r: r.first_scheduled_time)
        for earlier, later in zip(ordered, ordered[1:]):
            assert later.first_scheduled_time >= earlier.completion_time - 1e-12
        # The same load with more clients overlaps them (earlier last-TTFT).
        wide = serve_load("pregated", CONFIG,
                          CLOSED_LOOP_QA_LOAD.with_overrides(concurrency=3),
                          workload=self.SHAPE)
        assert max(r.ttft for r in wide.requests) < max(r.ttft for r in result.requests)


class TestLoadMetricsIntegration:
    def test_sustained_throughput_accounts_for_idle(self, traces):
        """Widely spaced arrivals drag wall-clock throughput down."""
        scheduler = make_scheduler("pregated", CONFIG)
        spaced = scheduler.serve(timed(traces, [0.0, 30.0, 60.0, 90.0]))
        packed = make_scheduler("pregated", CONFIG).serve(
            timed(traces, [0.0] * len(traces)))
        assert spaced.sustained_tokens_per_second < packed.sustained_tokens_per_second

    def test_deterministic_arrivals_queue_when_overloaded(self, traces):
        """Offered load far above capacity must build queueing delay."""
        process = DeterministicArrivals(rate=1000.0)
        requests = timed(traces, process.arrival_times(len(traces)))
        result = make_scheduler("ondemand", CONFIG, max_batch_size=1).serve(requests)
        delays = [r.queueing_delay for r in result.requests]
        assert max(delays) > 0.0
        assert result.queueing_stats.max == pytest.approx(max(delays))
