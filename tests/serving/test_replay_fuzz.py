"""Adversarial / randomized fuzzing of the round-replay controller.

Replay is only allowed to fast-forward windows of *structurally
identical* rounds.  These tests attack that precondition directly with
hand-crafted traces whose adjacent rounds differ in exactly one aspect —
expert-collision sets, cache hit/miss outcomes, or shard (owner-device)
maps — and with randomized workloads across regimes.  The invariants:

* a window never forms across rounds that differ in any signature-bearing
  aspect (``replay_windows == 0`` on the alternating traces);
* anonymised expert identities are used only where they are sound: a
  plain placement replays rounds that rotate through equivalent experts,
  but the same rotation over a retentive cache or a multi-GPU shard map
  must stand down (identity feeds policy state / owner devices);
* whatever the controller decides, serving output matches the
  replay-disabled kernel exactly (parity is unconditional).
"""

import pytest

from repro.moe import get_config
from repro.serving import make_scheduler
from repro.system import SSD_SYSTEM
from repro.workloads import RequestTrace, TimedRequest, TraceGenerator

from .test_round_replay import assert_replay_parity

CONFIG = get_config("switch_base_64")
ENC_BLOCKS = CONFIG.num_moe_blocks("encoder")
DEC_BLOCKS = CONFIG.num_moe_blocks("decoder")


def crafted_request(request_id, per_round_experts, input_length=4):
    """A request whose decode round *i* activates ``per_round_experts[i]``.

    Every decoder MoE block of an iteration activates the same expert
    list, and the encoder pass activates expert 0 — the adversarial
    structure lives purely in the decode rounds.
    """
    decode = [[sorted(experts) for _ in range(DEC_BLOCKS)]
              for experts in per_round_experts]
    trace = RequestTrace(input_length=input_length,
                         output_length=len(per_round_experts),
                         encoder_activations=[[0] for _ in range(ENC_BLOCKS)],
                         decode_activations=decode)
    return TimedRequest(request_id=request_id, arrival_time=0.0, trace=trace)


def serve_pair(design, kwargs, requests, max_batch_size=2):
    """(kernel, replayed) results for the same workload."""
    results = []
    for replay in (False, True):
        scheduler = make_scheduler(design, CONFIG,
                                   max_batch_size=max_batch_size,
                                   timeline_engine="array",
                                   round_replay=replay, **kwargs)
        results.append(scheduler.serve(list(requests)))
    return results


class TestAlternatingRoundsNeverReplay:
    """Adjacent rounds differ in one signature aspect -> no window, parity."""

    def test_differing_collision_sets(self):
        """Two-request batch alternating collide/diverge rounds.

        Odd rounds route both requests to expert 0 (full collision, one
        distinct expert per block); even rounds split them across experts
        0 and 1.  The round DAG differs every step, so no 4-round history
        can chain.
        """
        out = 32
        a = crafted_request(0, [[0]] * out)
        b = crafted_request(1, [[0] if i % 2 else [1] for i in range(out)])
        kernel, replayed = serve_pair("pregated", {}, [a, b])
        assert_replay_parity(kernel, replayed, "collision_sets")
        assert replayed.replay_windows == 0
        assert replayed.replay_ops == 0

    def test_differing_cache_outcomes(self):
        """A capacity-1 cache thrashed by two alternating experts.

        Every round misses and evicts the other expert, so the resident
        set alternates {0} / {1}: the residency fixed-point check (and the
        raw-key signatures) must keep replay out.
        """
        out = 32
        req = crafted_request(0, [[i % 2] for i in range(out)])
        kernel, replayed = serve_pair(
            "pregated", {"cache_policy": "lru", "cache_capacity": 1}, [req],
            max_batch_size=1)
        assert_replay_parity(kernel, replayed, "cache_outcomes")
        assert replayed.replay_windows == 0
        assert kernel.cache_stats.misses > 0

    def test_differing_stage_outcomes(self):
        """DRAM-stage thrash: alternating stage hit/miss rounds stand down."""
        out = 32
        req = crafted_request(0, [[i % 2] for i in range(out)])
        kernel, replayed = serve_pair(
            "pregated", {"system": SSD_SYSTEM, "stage_policy": "lru",
                         "stage_capacity": 1}, [req], max_batch_size=1)
        assert_replay_parity(kernel, replayed, "stage_outcomes")
        assert replayed.replay_windows == 0

    def test_differing_shard_maps(self):
        """Rounds alternate between experts owned by different devices.

        Round-robin sharding over 2 GPUs puts experts 0 and 1 on
        different devices; alternating between them flips which device
        hosts the round's compute, so owner-aware signatures differ.
        """
        out = 32
        req = crafted_request(0, [[i % 2] for i in range(out)])
        kernel, replayed = serve_pair(
            "pregated", {"num_gpus": 2, "shard_policy": "round_robin"},
            [req], max_batch_size=1)
        assert_replay_parity(kernel, replayed, "shard_maps")
        assert replayed.replay_windows == 0


class TestAnonymisationBoundary:
    """Expert identity is abstracted away exactly where that is sound."""

    def test_rotating_experts_replay_on_plain_placement(self):
        """No cache, one GPU: rounds rotating through experts 0..7 are
        structurally interchangeable, so anonymised signatures chain and
        replay engages."""
        out = 48
        req = crafted_request(0, [[i % 8] for i in range(out)])
        kernel, replayed = serve_pair("pregated", {}, [req], max_batch_size=1)
        assert_replay_parity(kernel, replayed, "rotating_plain")
        assert replayed.replay_windows > 0

    def test_rotating_experts_stand_down_on_retentive_cache(self):
        """Same rotation over an LRU cache big enough to hold every
        (block, expert) key: every round hits after warmup and the round
        *structure* repeats, but the LRU order keeps mutating with
        different keys.  Anonymised matching would wrongly skip those
        policy updates, so the controller must use raw identities and
        stand down."""
        out = 48
        req = crafted_request(0, [[i % 8] for i in range(out)])
        kernel, replayed = serve_pair(
            "pregated", {"cache_policy": "lru", "cache_capacity": 64},
            [req], max_batch_size=1)
        assert_replay_parity(kernel, replayed, "rotating_cached")
        assert replayed.replay_windows == 0
        # The workload really was all-hits after warmup (the dangerous case:
        # outcome-identical rounds with different keys).
        assert kernel.cache_stats.hits > kernel.cache_stats.misses

    def test_rotating_experts_stand_down_across_shards(self):
        """Rotating experts across a 2-GPU round-robin shard map bounce
        between owner devices; the owner-aware signature must not let an
        anonymised match replay device-0 rounds as device-1 rounds."""
        out = 48
        req = crafted_request(0, [[i % 8] for i in range(out)])
        kernel, replayed = serve_pair(
            "pregated", {"num_gpus": 2, "shard_policy": "round_robin"},
            [req], max_batch_size=1)
        assert_replay_parity(kernel, replayed, "rotating_sharded")
        assert replayed.replay_windows == 0

    def test_constant_expert_replays_everywhere(self):
        """Control: a truly constant round replays on every placement."""
        out = 48
        req = crafted_request(0, [[3]] * out)
        for label, kwargs in [
                ("plain", {}),
                ("cached", {"cache_policy": "lru", "cache_capacity": 16}),
                ("sharded", {"num_gpus": 2, "shard_policy": "round_robin"}),
                ("staged", {"system": SSD_SYSTEM, "stage_policy": "lru",
                            "stage_capacity": 16})]:
            kernel, replayed = serve_pair("pregated", kwargs, [req],
                                          max_batch_size=1)
            assert_replay_parity(kernel, replayed, f"constant_{label}")
            assert replayed.replay_windows > 0, label


class TestRandomizedParityFuzz:
    """Randomized workloads: parity is unconditional, engagement honest."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    @pytest.mark.parametrize("scenario", [
        ("pregated", {"cache_policy": "lru", "cache_capacity": 24}),
        ("ondemand", {"num_gpus": 2}),
        ("pregated", {"system": SSD_SYSTEM, "stage_policy": "lru",
                      "stage_capacity": 24}),
    ])
    def test_random_traces_hold_parity(self, seed, scenario):
        design, kwargs = scenario
        # Random regime per seed: skew spans churny to hot, so some runs
        # replay and some stand down — parity must hold either way.
        skew = [0.0, 1.2, 3.0, 6.0, 9.0][seed % 5]
        gen = TraceGenerator(CONFIG, skew=skew, seed=seed * 101)
        requests = [TimedRequest(request_id=i, arrival_time=0.04 * i,
                                 trace=gen.request_trace(input_length=5,
                                                         output_length=24))
                    for i in range(4)]
        kernel, replayed = serve_pair(design, kwargs, requests)
        assert_replay_parity(kernel, replayed, f"{design}-{kwargs}-s{seed}")
        if replayed.replay_windows == 0:
            assert replayed.replay_ops == 0

    def test_random_alternating_structures_never_replay(self):
        """Randomly shuffled two-class rounds: whenever the 4-round history
        mixes classes no window forms; with classes this finely interleaved
        the controller should never fire."""
        import random
        rng = random.Random(2024)
        for trial in range(4):
            # Two structural classes: single-expert round vs two-expert
            # round.  A random interleaving with both classes present in
            # every 3-round span leaves no replayable window.
            pattern = []
            while len(pattern) < 28:
                pattern.extend([[0]] * rng.randint(1, 2))
                pattern.extend([[0, 1]] * rng.randint(1, 2))
            req = crafted_request(0, pattern[:28])
            kernel, replayed = serve_pair("pregated", {}, [req],
                                          max_batch_size=1)
            assert_replay_parity(kernel, replayed, f"shuffled_{trial}")
            assert replayed.replay_windows == 0, trial
