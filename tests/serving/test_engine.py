"""Tests for the four serving engines and their interaction with the simulator."""

import pytest

from repro.moe import get_config
from repro.serving import (
    DESIGN_LABELS,
    EngineConfig,
    GPUOnlyEngine,
    OnDemandEngine,
    PreGatedEngine,
    PrefetchAllEngine,
    compare_designs,
    make_engine,
)
from repro.system import ExpertCache, PAPER_SYSTEM, SSD_SYSTEM, Stream
from repro.system.timeline import ExecutionTimeline
from repro.workloads import TraceGenerator


CONFIG = get_config("switch_base_64")
DESIGNS = ("gpu_only", "pregated", "ondemand", "prefetch_all")


@pytest.fixture(scope="module")
def traces():
    return TraceGenerator(CONFIG, seed=0).workload(2, input_length=16, output_length=8)


@pytest.fixture(scope="module")
def single_iteration():
    return TraceGenerator(CONFIG, seed=1).iteration_activations(
        num_tokens=1, num_moe_blocks=CONFIG.num_moe_blocks("decoder"))


class TestFactory:
    def test_make_engine_by_name(self):
        assert isinstance(make_engine("gpu_only", CONFIG), GPUOnlyEngine)
        assert isinstance(make_engine("pregated", CONFIG), PreGatedEngine)
        assert isinstance(make_engine("ondemand", CONFIG), OnDemandEngine)
        assert isinstance(make_engine("prefetch_all", CONFIG), PrefetchAllEngine)

    def test_unknown_design(self):
        with pytest.raises(ValueError):
            make_engine("multi_gpu", CONFIG)

    def test_config_by_name(self):
        engine = make_engine("pregated", "switch_base_8")
        assert engine.config.name == "switch_base_8"

    def test_labels_cover_all_designs(self):
        assert set(DESIGN_LABELS) == set(DESIGNS)


class TestModelLoading:
    def test_offload_designs_place_experts_in_dram(self):
        engine = make_engine("pregated", CONFIG)
        engine.load_model()
        assert engine.memory.cpu.in_use >= CONFIG.moe_bytes()
        assert engine.gpu_pool.category_usage("moe") == 0

    def test_gpu_only_places_everything_on_gpu(self):
        engine = make_engine("gpu_only", CONFIG)
        engine.load_model()
        assert engine.gpu_pool.category_usage("moe") == CONFIG.moe_bytes()

    def test_gpu_only_oom_for_switch_large(self):
        """Figures 10-12: GPU-only cannot hold Switch-Large on an 80GB A100."""
        engine = make_engine("gpu_only", "switch_large_128")
        result = engine.run_workload([])
        assert result.oom
        assert "out of memory" in result.oom_reason.lower()

    def test_pregated_loads_switch_large(self):
        engine = make_engine("pregated", "switch_large_128")
        engine.load_model()  # must not raise

    def test_load_is_idempotent(self):
        engine = make_engine("ondemand", CONFIG)
        engine.load_model()
        engine.load_model()
        assert engine.gpu_pool.has("non_moe_params")

    def test_ssd_offload_places_experts_on_ssd(self):
        engine = make_engine("pregated", "switch_xxl", system=SSD_SYSTEM)
        engine.load_model()
        assert engine.memory.ssd.in_use >= engine.config.moe_bytes()


class TestDecoderIteration:
    def test_block_latency_records(self, single_iteration):
        engine = make_engine("pregated", CONFIG)
        result = engine.run_decoder_iteration(single_iteration)
        assert len(result.block_latencies) == CONFIG.num_moe_blocks("decoder")
        assert all(r.latency > 0 for r in result.block_latencies)
        assert result.duration > 0

    def test_gpu_only_has_no_copy_ops(self, single_iteration):
        engine = make_engine("gpu_only", CONFIG)
        timeline = ExecutionTimeline()
        engine.run_decoder_iteration(single_iteration, timeline=timeline)
        assert timeline.stream_busy_time(Stream.COPY) == 0.0

    def test_offload_designs_issue_copies(self, single_iteration):
        for design in ("pregated", "ondemand", "prefetch_all"):
            timeline = ExecutionTimeline()
            make_engine(design, CONFIG).run_decoder_iteration(single_iteration, timeline=timeline)
            assert timeline.stream_busy_time(Stream.COPY) > 0.0

    def test_prefetch_all_moves_every_expert(self, single_iteration):
        timeline = ExecutionTimeline()
        make_engine("prefetch_all", CONFIG).run_decoder_iteration(single_iteration,
                                                                  timeline=timeline)
        copies = timeline.ops_by_category("expert_transfer")
        assert len(copies) == CONFIG.num_moe_blocks("decoder") * CONFIG.num_experts

    def test_pregated_moves_only_activated_experts(self, single_iteration):
        timeline = ExecutionTimeline()
        make_engine("pregated", CONFIG).run_decoder_iteration(single_iteration, timeline=timeline)
        copies = timeline.ops_by_category("expert_transfer")
        assert len(copies) == sum(len(block) for block in single_iteration)

    def test_block_latency_ordering_matches_figure_10(self, single_iteration):
        """GPU-only < Pre-gated < OnDemand << Prefetch-all, per MoE block."""
        latencies = {}
        for design in DESIGNS:
            engine = make_engine(design, CONFIG)
            result = engine.run_decoder_iteration(single_iteration)
            latencies[design] = result.mean_block_latency
        assert latencies["gpu_only"] < latencies["pregated"]
        assert latencies["pregated"] < latencies["ondemand"]
        assert latencies["ondemand"] < latencies["prefetch_all"]

    def test_pregated_overhead_is_modest(self, single_iteration):
        """Pre-gated MoE stays within ~2x of GPU-only per-block latency
        (the paper reports ~1.2x)."""
        gpu = make_engine("gpu_only", CONFIG).run_decoder_iteration(single_iteration)
        pre = make_engine("pregated", CONFIG).run_decoder_iteration(single_iteration)
        ratio = pre.mean_block_latency / gpu.mean_block_latency
        assert 1.0 < ratio < 2.0

    def test_ondemand_serialises_transfer(self, single_iteration):
        """MoE-OnDemand's exposed transfer time is close to the full migration time."""
        engine = make_engine("ondemand", CONFIG)
        result = engine.run_decoder_iteration(single_iteration)
        transfer = PAPER_SYSTEM.expert_transfer_time(CONFIG.expert_bytes())
        for record in result.block_latencies:
            assert record.exposed_transfer_time >= 0.8 * transfer

    def test_pregated_hides_most_transfer(self, single_iteration):
        """Pre-gated MoE hides (nearly) all migration latency for non-first blocks."""
        engine = make_engine("pregated", CONFIG)
        result = engine.run_decoder_iteration(single_iteration)
        transfer = PAPER_SYSTEM.expert_transfer_time(CONFIG.expert_bytes())
        hidden_blocks = result.block_latencies[1:]
        assert all(r.exposed_transfer_time < 0.5 * transfer for r in hidden_blocks)


class TestEndToEnd:
    def test_request_result_fields(self, traces):
        engine = make_engine("pregated", CONFIG)
        result = engine.run_request(traces[0])
        assert result.total_time == pytest.approx(result.encoder_time + result.decode_time)
        assert result.tokens_per_second > 0
        assert result.peak_gpu_bytes > CONFIG.non_moe_bytes()

    def test_throughput_ordering_matches_figure_11(self, traces):
        results = compare_designs(CONFIG, traces)
        tput = {d: r.aggregate_tokens_per_second for d, r in results.items() if not r.oom}
        assert tput["gpu_only"] > tput["pregated"]
        assert tput["pregated"] > tput["ondemand"]
        assert tput["ondemand"] > tput["prefetch_all"]

    def test_peak_memory_ordering_matches_figure_12(self, traces):
        results = compare_designs(CONFIG, traces)
        peaks = {d: r.peak_gpu_bytes for d, r in results.items() if not r.oom}
        assert peaks["ondemand"] <= peaks["pregated"]
        assert peaks["pregated"] < peaks["prefetch_all"]
        assert peaks["prefetch_all"] < peaks["gpu_only"]

    def test_workload_aggregation(self, traces):
        engine = make_engine("pregated", CONFIG)
        result = engine.run_workload(traces)
        assert result.num_requests == len(traces)
        assert result.total_generated_tokens == sum(t.output_length for t in traces)
        summary = result.summary()
        assert summary["design"] == "pregated"
        assert summary["tokens_per_second"] > 0

    def test_oversubscription_mode_reports_instead_of_raising(self):
        engine = make_engine("gpu_only", "switch_large_128",
                             engine_config=EngineConfig(allow_oversubscription=True))
        engine.load_model()
        assert engine.gpu_pool.peak > engine.gpu_pool.capacity


class TestCachingIntegration:
    def test_cache_reduces_transfers_under_skewed_routing(self):
        """Figure 15: caching hot experts removes repeat migrations."""
        config = get_config("switch_base_64")
        gen = TraceGenerator(config, skew=1.5, seed=3)
        traces = gen.workload(3, input_length=8, output_length=8)

        def total_copies(cache):
            engine = make_engine("ondemand", config, cache=cache)
            engine.load_model()
            timeline = ExecutionTimeline()
            for trace in traces:
                for step, acts in enumerate(trace.decode_activations):
                    engine.run_decoder_iteration(acts, self_kv_tokens=step + 1,
                                                 timeline=timeline)
            return len(timeline.ops_by_category("expert_transfer"))

        uncached = total_copies(None)
        cached = total_copies(ExpertCache(capacity_experts=100, policy="lru"))
        assert cached < uncached

    def test_cache_hits_recorded(self):
        config = get_config("switch_base_8")
        cache = ExpertCache(capacity_experts=50, policy="lfu")
        engine = make_engine("pregated", config, cache=cache)
        gen = TraceGenerator(config, skew=1.0, seed=4)
        trace = gen.request_trace(input_length=8, output_length=8)
        engine.run_request(trace)
        assert cache.stats.accesses > 0
