"""Steady-state round replay: fast-forwarded serving equals step-by-step.

The replay controller (:class:`repro.serving.scheduler._RoundReplay`)
detects structurally identical decode rounds and advances them in closed
form instead of re-simulating each one.  These tests pin its contract:

* serve-level parity — for every single-replica scenario in the matrix,
  replay-enabled serving matches the replay-disabled kernel engine to
  1e-9 on the makespan, every request's token clock, device utilisation
  and the byte/op counters (which must be *exactly* equal: replay may
  only skip rounds it can reproduce, never approximate counters);
* the scalar engine and the array kernel are bit-identical (replay's
  baseline is itself exact);
* replay engages across the whole placement matrix — plain single-GPU,
  multi-GPU shards, DRAM staging and expert caches under every eviction
  policy — whenever the workload reaches a steady state whose rounds are
  structurally identical (for shards and retentive caches that is the
  hot-expert regime: stable activations, identical hit/miss outcomes);
* it stands down, with exact parity preserved, when the steady state
  genuinely churns (low-skew routing over a retentive cache: the
  resident set / policy order drifts every round) or when trace
  recording needs every op materialised;
* boundary behaviour — staggered arrivals and completions land on the
  same timestamps with and without replay, i.e. fast-forward windows
  never cross an admission or completion event;
* the scheduler validates its engine/replay knobs.
"""

import pytest

from repro.moe import get_config
from repro.serving import make_scheduler
from repro.serving.scheduler import ContinuousBatchingScheduler
from repro.system import SSD_SYSTEM
from repro.workloads import TimedRequest, TraceGenerator

CONFIG = get_config("switch_base_64")

#: Routing skew of the "mixed" regime: enough of a hot set for the plain
#: scenarios' anonymised signatures to chain, but retentive caches and
#: shard maps see churning keys and must stand down.
MIXED_SKEW = 1.2
#: Routing skew of the hot-expert steady state: decode rounds activate a
#: stable expert set, so device patterns and hit/miss outcomes repeat and
#: replay engages on every placement feature.
HOT_SKEW = 8.0

#: Single-replica serving matrix: design + scheduler knobs + whether replay
#: must engage + the routing skew that produces the scenario's regime.
SCENARIOS = {
    "pregated": ("pregated", {}, True, MIXED_SKEW),
    "ondemand": ("ondemand", {}, True, MIXED_SKEW),
    "prefetch_all": ("prefetch_all", {}, True, MIXED_SKEW),
    "gpu_only": ("gpu_only", {}, True, MIXED_SKEW),
    "ondemand_ssd": ("ondemand", {"system": SSD_SYSTEM}, True, MIXED_SKEW),
    # Multi-GPU shards: the emitted round (dispatch/combine all-to-alls,
    # per-device exec ops) follows the experts' owner devices, so replay
    # engages once the hot expert set — and with it the device pattern —
    # is stable.
    "pregated_2gpu": ("pregated", {"num_gpus": 2}, True, HOT_SKEW),
    "ondemand_4gpu": ("ondemand", {"num_gpus": 4,
                                   "shard_policy": "round_robin"}, True,
                      HOT_SKEW),
    # DRAM stage / expert caches: hit/miss outcomes join the signature and
    # the resident set plus eviction-policy state must be exactly
    # replayable across the window — the warm steady state.
    "pregated_ssd_staged": ("pregated", {"system": SSD_SYSTEM,
                                         "stage_policy": "lru",
                                         "stage_capacity": 64}, True,
                            HOT_SKEW),
    "pregated_cached": ("pregated", {"cache_policy": "lru",
                                     "cache_capacity": 32}, True, HOT_SKEW),
    "pregated_cached_lifo": ("pregated", {"cache_policy": "lifo",
                                          "cache_capacity": 32}, True,
                             HOT_SKEW),
    # LFU counts grow every round; the controller fast-forwards them as
    # exact n*delta bumps, so eviction decisions after the window match.
    "pregated_cached_lfu": ("pregated", {"cache_policy": "lfu",
                                         "cache_capacity": 32}, True,
                            HOT_SKEW),
    # Zero-capacity maps retain nothing between rounds (the parity
    # scenarios): every round misses identically, so replay engages even
    # in the mixed regime.
    "pregated_cached_cap0": ("pregated", {"cache_policy": "lru",
                                          "cache_capacity": 0}, True,
                             MIXED_SKEW),
    "pregated_staged_cap0": ("pregated", {"system": SSD_SYSTEM,
                                          "stage_policy": "lru",
                                          "stage_capacity": 0}, True,
                             MIXED_SKEW),
    # Cached multi-GPU: shard ownership and residency outcomes both in play.
    "pregated_cached_2gpu": ("pregated", {"num_gpus": 2,
                                          "cache_policy": "lru",
                                          "cache_capacity": 32}, True,
                             HOT_SKEW),
    # Honest stand-downs: churning keys over retentive maps drift the
    # resident set / policy order every round, so no window is ever exactly
    # replayable — the controller must keep out of the way.
    "pregated_cached_churn": ("pregated", {"cache_policy": "lru",
                                           "cache_capacity": 32}, False,
                              MIXED_SKEW),
    "pregated_2gpu_churn": ("pregated", {"num_gpus": 2}, False, MIXED_SKEW),
}


def steady_requests(n=5, out=40, gap=0.05, skew=MIXED_SKEW, seed=11):
    gen = TraceGenerator(CONFIG, skew=skew, seed=seed)
    return [TimedRequest(request_id=i, arrival_time=gap * i,
                         trace=gen.request_trace(input_length=6,
                                                 output_length=out))
            for i in range(n)]


def serve(design, kwargs, engine, replay, requests):
    scheduler = make_scheduler(design, CONFIG, max_batch_size=2,
                               timeline_engine=engine, round_replay=replay,
                               **kwargs)
    return scheduler.serve(requests)


def rel(a, b):
    return abs(a - b) / max(abs(a), abs(b), 1e-12)


def assert_replay_parity(kernel, replayed, label):
    """Replay-enabled result vs the step-by-step kernel result."""
    assert rel(kernel.makespan, replayed.makespan) < 1e-9, label
    # Structural and byte counters are exact: replay only skips rounds whose
    # counter deltas it reproduced bit-for-bit.
    assert replayed.timeline_total_ops == kernel.timeline_total_ops, label
    assert replayed.expert_bytes_transferred == \
        kernel.expert_bytes_transferred, label
    assert replayed.peak_gpu_bytes == kernel.peak_gpu_bytes, label
    assert replayed.alltoall_bytes == kernel.alltoall_bytes, label
    if kernel.tier_stats is not None:
        assert replayed.tier_stats.as_dict() == \
            kernel.tier_stats.as_dict(), label
    if kernel.cache_stats is not None:
        assert replayed.cache_stats.as_dict() == \
            kernel.cache_stats.as_dict(), label
    # Every request's every token lands on the same clock (1e-9: token
    # clocks inside a window are extrapolated quadratics).
    for a, b in zip(kernel.requests, replayed.requests):
        assert len(a.token_times) == len(b.token_times), label
        for x, y in zip(a.token_times, b.token_times):
            assert rel(x, y) < 1e-9, (label, a.request_id)
        assert rel(a.completion_time, b.completion_time) < 1e-9, label
        assert rel(a.first_token_time, b.first_token_time) < 1e-9, label
    for u_k, u_r in zip(kernel.device_utilisation, replayed.device_utilisation):
        assert rel(u_k, u_r) < 1e-9, label


class TestServeParityMatrix:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_replay_matches_step_by_step(self, name):
        design, kwargs, expect_replay, skew = SCENARIOS[name]
        requests = steady_requests(skew=skew)
        scalar = serve(design, kwargs, "scalar", False, requests)
        kernel = serve(design, kwargs, "array", False, requests)
        replayed = serve(design, kwargs, "array", True, requests)
        # Scalar and kernel are the same simulator, bit for bit.
        assert kernel.makespan == scalar.makespan
        assert kernel.timeline_total_ops == scalar.timeline_total_ops
        for a, b in zip(scalar.requests, kernel.requests):
            assert a.token_times == b.token_times
        assert_replay_parity(kernel, replayed, name)
        if expect_replay:
            assert replayed.replay_windows > 0, name
            assert replayed.replay_rounds >= replayed.replay_windows
            assert replayed.replay_ops > 0
        else:
            # The steady state churns the maps: the controller must never
            # fire — correctness over speed.
            assert replayed.replay_windows == 0, name
            assert replayed.replay_ops == 0, name


class TestReplayEngagement:
    def test_replay_skips_most_steady_decode_rounds(self):
        """Batch-1 decode (the paper's serving mode) replays almost fully.

        A solo top-1 request's decode rounds all share one structural
        signature, so after the 4-round history warms up the controller
        should fast-forward nearly the whole generation.
        """
        requests = steady_requests(n=2, out=96, gap=0.0)
        scheduler = make_scheduler("pregated", CONFIG, max_batch_size=1,
                                   timeline_engine="array", round_replay=True)
        replayed = scheduler.serve(requests)
        kernel = make_scheduler("pregated", CONFIG, max_batch_size=1,
                                timeline_engine="array",
                                round_replay=False).serve(requests)
        assert_replay_parity(kernel, replayed, "steady_decode")
        # Long identical decode tails: replay should cover over half the ops.
        assert replayed.replay_ops > replayed.timeline_total_ops / 2
        assert replayed.replay_rounds > 0

    @pytest.mark.parametrize("name", ["pregated_cached", "pregated_2gpu",
                                      "pregated_ssd_staged"])
    def test_hot_steady_state_replays_meaningful_share(self, name):
        """The newly covered placements replay a real share of the rounds."""
        design, kwargs, _, skew = SCENARIOS[name]
        requests = steady_requests(skew=skew)
        scheduler = make_scheduler(design, CONFIG, max_batch_size=2,
                                   timeline_engine="array", round_replay=True,
                                   **kwargs)
        replayed = scheduler.serve(requests)
        assert replayed.replay_windows > 0, name
        assert replayed.replay_ops > replayed.timeline_total_ops / 4, name

    def test_trace_recording_disables_replay(self):
        requests = steady_requests(n=2, out=24)
        scheduler = make_scheduler("pregated", CONFIG, max_batch_size=2,
                                   timeline_engine="array", round_replay=True,
                                   record_trace=True)
        result = scheduler.serve(requests)
        assert result.replay_windows == 0
        # The trace really contains every op it claims to cover.
        assert len(scheduler.last_timeline.ops) == result.timeline_total_ops

    def test_replay_respects_arrival_boundaries(self):
        """Late arrivals are admitted at the same round with replay on.

        Request 0 decodes solo with a free batch slot while the later
        arrivals are still pending, so every replay window is clipped by
        the arrival bound; parity on every token/completion clock proves
        no window ever skipped past an admission.
        """
        gen = TraceGenerator(CONFIG, skew=1.2, seed=7)
        requests = [TimedRequest(request_id=i, arrival_time=arrival,
                                 trace=gen.request_trace(input_length=6,
                                                         output_length=48))
                    for i, arrival in enumerate([0.0, 0.35, 0.9, 1.3])]
        kernel = serve("pregated", {}, "array", False, requests)
        replayed = serve("pregated", {}, "array", True, requests)
        assert_replay_parity(kernel, replayed, "arrivals")
        assert replayed.replay_windows > 0

    def test_scalar_engine_ignores_replay_knob(self):
        requests = steady_requests(n=2, out=24)
        result = serve("pregated", {}, "scalar", True, requests)
        assert result.replay_windows == 0


class TestKnobValidation:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown timeline_engine"):
            ContinuousBatchingScheduler("pregated", CONFIG,
                                        timeline_engine="vectorised")

    def test_defaults_are_array_with_replay(self):
        scheduler = ContinuousBatchingScheduler("pregated", CONFIG)
        assert scheduler.timeline_engine == "array"
        assert scheduler.round_replay is True
