"""Dedicated coverage for ``compare_designs`` (including the OOM path)."""

import pytest

from repro.moe import get_config
from repro.serving import EngineConfig, compare_designs
from repro.workloads import TraceGenerator

CONFIG = get_config("switch_base_64")
DESIGNS = ("gpu_only", "pregated", "ondemand", "prefetch_all")


@pytest.fixture(scope="module")
def traces():
    return TraceGenerator(CONFIG, seed=0).workload(2, input_length=8, output_length=4)


class TestCompareDesigns:
    def test_runs_every_requested_design(self, traces):
        results = compare_designs(CONFIG, traces)
        assert set(results) == set(DESIGNS)
        for design, result in results.items():
            assert result.design == design
            assert result.config_name == CONFIG.name
            assert result.num_requests == len(traces)

    def test_design_subset(self, traces):
        results = compare_designs(CONFIG, traces, designs=("pregated", "ondemand"))
        assert set(results) == {"pregated", "ondemand"}

    def test_accepts_config_by_name(self, traces):
        results = compare_designs("switch_base_64", traces, designs=("pregated",))
        assert results["pregated"].config_name == "switch_base_64"

    def test_unknown_design_raises(self, traces):
        with pytest.raises(ValueError):
            compare_designs(CONFIG, traces, designs=("pregated", "multi_gpu"))

    def test_engines_do_not_share_state(self, traces):
        """Each design gets a fresh engine: peaks must reflect its own policy."""
        results = compare_designs(CONFIG, traces)
        assert results["gpu_only"].peak_gpu_bytes > results["pregated"].peak_gpu_bytes

    def test_engine_config_forwarded(self, traces):
        small = compare_designs(CONFIG, traces, designs=("ondemand",),
                                engine_config=EngineConfig(runtime_workspace_bytes=0))
        big = compare_designs(CONFIG, traces, designs=("ondemand",),
                              engine_config=EngineConfig(runtime_workspace_bytes=int(4e9)))
        delta = big["ondemand"].peak_gpu_bytes - small["ondemand"].peak_gpu_bytes
        assert delta == pytest.approx(4e9, rel=0.01)


class TestGpuOnlyOomPath:
    """Figures 10-12: GPU-only on Switch-Large OOMs, others keep serving."""

    def test_switch_large_gpu_only_oom(self):
        config = get_config("switch_large_128")
        traces = TraceGenerator(config, seed=1).workload(1, input_length=4, output_length=2)
        results = compare_designs(config, traces)
        assert results["gpu_only"].oom
        assert "out of memory" in results["gpu_only"].oom_reason.lower()
        assert results["gpu_only"].requests == []
        assert results["gpu_only"].aggregate_tokens_per_second == 0.0
        for design in ("pregated", "ondemand", "prefetch_all"):
            assert not results[design].oom
            assert results[design].num_requests == 1
            assert results[design].aggregate_tokens_per_second > 0

    def test_oom_engine_leaves_no_partial_results(self):
        config = get_config("switch_large_128")
        traces = TraceGenerator(config, seed=1).workload(2, input_length=4, output_length=2)
        results = compare_designs(config, traces, designs=("gpu_only",))
        result = results["gpu_only"]
        assert result.oom and result.num_requests == 0
        assert result.peak_gpu_bytes == 0

    def test_oversubscription_disables_oom(self):
        config = get_config("switch_large_128")
        traces = TraceGenerator(config, seed=1).workload(1, input_length=4, output_length=2)
        results = compare_designs(config, traces, designs=("gpu_only",),
                                  engine_config=EngineConfig(allow_oversubscription=True))
        result = results["gpu_only"]
        assert not result.oom
        assert result.peak_gpu_bytes > config.non_moe_bytes()
