"""Scheduler + cluster tests for shared expert caching under load.

Pins the two contracts of the residency subsystem:

* a zero-capacity (or absent) cache leaves the continuous-batching
  scheduler byte- and time-identical to the uncached implementation;
* a warm cache strictly reduces CPU→GPU transfer volume and reports a
  positive hit rate for both Pre-gated MoE and MoE-OnDemand (the Figure 15
  result, under continuous batching).
"""

import pytest

from repro.moe import get_config
from repro.serving import ReplicaCluster, make_scheduler, serve_load
from repro.system import ExpertCache
from repro.workloads import CLOSED_LOOP_QA_LOAD, TimedRequest, TraceGenerator, WorkloadSpec

CONFIG = get_config("switch_base_64")
DESIGNS = ("gpu_only", "pregated", "ondemand", "prefetch_all")
CACHED_DESIGNS = ("pregated", "ondemand")


def timed(traces, times):
    return [TimedRequest(request_id=i, arrival_time=t, trace=trace)
            for i, (t, trace) in enumerate(zip(times, traces))]


@pytest.fixture(scope="module")
def requests():
    """Skewed (hot-expert) traffic with overlapping in-flight requests."""
    traces = TraceGenerator(CONFIG, skew=1.5, seed=1).workload(
        4, input_length=8, output_length=6)
    return timed(traces, [0.0, 0.0, 0.1, 0.2])


class TestZeroCapacityParity:
    """Capacity 0 runs the full residency machinery but retains nothing —
    the timelines must match the uncached scheduler to 1e-9."""

    @pytest.mark.parametrize("design", DESIGNS)
    def test_timeline_and_byte_parity(self, design, requests):
        base = make_scheduler(design, CONFIG, max_batch_size=3).serve(requests)
        zero = make_scheduler(design, CONFIG, max_batch_size=3,
                              cache_capacity=0).serve(requests)
        assert zero.makespan == pytest.approx(base.makespan, abs=1e-9)
        assert zero.peak_gpu_bytes == base.peak_gpu_bytes
        assert zero.expert_bytes_transferred == base.expert_bytes_transferred
        for a, b in zip(base.requests, zero.requests):
            assert b.ttft == pytest.approx(a.ttft, abs=1e-9)
            assert b.completion_time == pytest.approx(a.completion_time, abs=1e-9)
            assert b.token_times == pytest.approx(a.token_times, abs=1e-9)

    def test_zero_capacity_still_reports_stats(self, requests):
        zero = make_scheduler("pregated", CONFIG, cache_capacity=0).serve(requests)
        assert zero.cache_stats is not None
        assert zero.cache_stats.bytes_transferred == zero.expert_bytes_transferred

    def test_gpu_only_ignores_cache(self, requests):
        result = make_scheduler("gpu_only", CONFIG, cache_policy="lru",
                                cache_capacity=64).serve(requests)
        assert result.cache_stats is None
        assert result.expert_bytes_transferred == 0


class TestWarmCache:
    @pytest.mark.parametrize("design", CACHED_DESIGNS)
    def test_lru_cache_cuts_transfers(self, design, requests):
        base = make_scheduler(design, CONFIG, max_batch_size=3).serve(requests)
        warm = make_scheduler(design, CONFIG, max_batch_size=3,
                              cache_policy="lru", cache_capacity=128).serve(requests)
        assert warm.expert_bytes_transferred < base.expert_bytes_transferred
        assert warm.cache_stats.hit_rate > 0.0
        assert warm.cache_stats.bytes_saved > 0
        # Conservation: transferred + saved covers exactly the uncached volume.
        assert (warm.expert_bytes_transferred + warm.cache_stats.bytes_saved
                == base.expert_bytes_transferred)
        assert warm.makespan <= base.makespan + 1e-9

    @pytest.mark.parametrize("policy", ("lifo", "lru", "lfu"))
    def test_all_policies_serve_correctly(self, policy, requests):
        result = make_scheduler("pregated", CONFIG, cache_policy=policy,
                                cache_capacity=32).serve(requests)
        assert result.num_requests == len(requests)
        for request in result.requests:
            assert len(request.token_times) == request.output_length

    def test_small_cache_evicts_and_stays_bounded(self, requests):
        scheduler = make_scheduler("ondemand", CONFIG, cache_policy="lru",
                                   cache_capacity=4)
        result = scheduler.serve(requests)
        assert result.cache_stats.evictions > 0
        assert scheduler.residency.retained_count <= 4

    def test_second_serve_starts_warm(self, requests):
        """Residency persists across serve() calls on one scheduler."""
        scheduler = make_scheduler("pregated", CONFIG, cache_policy="lru",
                                   cache_capacity=256)
        cold = scheduler.serve(requests)
        warm = scheduler.serve(requests)
        assert warm.expert_bytes_transferred < cold.expert_bytes_transferred
        assert warm.cache_stats.hit_rate > cold.cache_stats.hit_rate

    def test_summary_surfaces_cache_columns(self, requests):
        summary = make_scheduler("pregated", CONFIG, cache_policy="lru",
                                 cache_capacity=64).serve(requests).summary()
        assert summary["cache_hit_rate"] > 0.0
        assert summary["gb_transferred"] > 0.0
        assert summary["gb_saved"] > 0.0
        uncached = make_scheduler("pregated", CONFIG).serve(requests).summary()
        assert uncached["cache_hit_rate"] is None
        assert uncached["gb_saved"] == 0.0


class TestKnobs:
    def test_legacy_expert_cache_adopted(self):
        """An ExpertCache argument now configures the shared residency map."""
        scheduler = make_scheduler("pregated", CONFIG)
        assert scheduler.residency is None
        from repro.serving import ContinuousBatchingScheduler
        adopted = ContinuousBatchingScheduler(
            "pregated", CONFIG, cache=ExpertCache(capacity_experts=8, policy="lfu"))
        assert adopted.residency is not None
        assert adopted.residency.capacity == 8
        assert adopted.residency.policy.name == "lfu"

    def test_cache_and_knobs_conflict(self):
        from repro.serving import ContinuousBatchingScheduler
        with pytest.raises(ValueError, match="not both"):
            ContinuousBatchingScheduler("pregated", CONFIG,
                                        cache=ExpertCache(capacity_experts=8),
                                        cache_capacity=16)

    def test_policy_without_capacity_rejected(self):
        """cache_policy alone must not silently run uncached."""
        from repro.serving import make_engine
        with pytest.raises(ValueError, match="cache_capacity"):
            make_scheduler("pregated", CONFIG, cache_policy="lru")
        with pytest.raises(ValueError, match="cache_capacity"):
            ReplicaCluster("pregated", CONFIG, cache_policy="lru")
        with pytest.raises(ValueError, match="cache_capacity"):
            make_engine("pregated", CONFIG, cache_policy="lru")

    def test_serve_load_accepts_cache_knobs(self):
        shape = WorkloadSpec(name="tiny_cached", num_requests=3, input_length=8,
                             output_length=4, routing_skew=1.5, seed=0)
        load = CLOSED_LOOP_QA_LOAD.with_overrides(concurrency=2)
        cached = serve_load("ondemand", CONFIG, load, workload=shape,
                            cache_policy="lru", cache_capacity=128)
        plain = serve_load("ondemand", CONFIG, load, workload=shape)
        assert cached.cache_stats is not None
        assert plain.cache_stats is None
        assert cached.expert_bytes_transferred < plain.expert_bytes_transferred


class TestClusterCaching:
    def test_per_replica_caches_and_merged_stats(self, requests):
        cluster = ReplicaCluster("pregated", CONFIG, num_replicas=2,
                                 cache_policy="lru", cache_capacity=64)
        assert all(r.residency is not None for r in cluster.replicas)
        assert cluster.replicas[0].residency is not cluster.replicas[1].residency
        result = cluster.serve(requests)
        combined = result.combined()
        assert combined.cache_stats is not None
        assert combined.expert_bytes_transferred == sum(
            r.expert_bytes_transferred for r in result.replica_results)
        assert combined.cache_stats.hits == sum(
            r.cache_stats.hits for r in result.replica_results)
        assert combined.num_requests == len(requests)

    def test_cache_aware_routing_groups_identical_requests(self):
        """Requests with identical activations should co-locate for hits."""
        gen = TraceGenerator(CONFIG, seed=3)
        blocks_enc = CONFIG.num_moe_blocks("encoder")
        blocks_dec = CONFIG.num_moe_blocks("decoder")
        hot = gen.request_trace(input_length=8, output_length=4)
        cold = gen.request_trace(input_length=8, output_length=4)
        # Force disjoint expert sets so affinity is unambiguous.
        hot.encoder_activations = [[0]] * blocks_enc
        hot.decode_activations = [[[1]] * blocks_dec] * hot.output_length
        cold.encoder_activations = [[2]] * blocks_enc
        cold.decode_activations = [[[3]] * blocks_dec] * cold.output_length
        reqs = timed([hot, cold, hot, cold], [0.0, 0.0, 0.0, 0.0])
        cluster = ReplicaCluster("pregated", CONFIG, num_replicas=2,
                                 policy="cache_aware",
                                 cache_policy="lru", cache_capacity=512)
        assignments = cluster.route(reqs)
        for assigned in assignments:
            traces = {id(r.trace) for r in assigned}
            assert len(traces) == 1          # each replica saw one trace shape
        assert all(len(a) == 2 for a in assignments)

    def test_cache_aware_works_without_cache(self, requests):
        """Affinity routing degrades gracefully when caching is off."""
        cluster = ReplicaCluster("pregated", CONFIG, num_replicas=2,
                                 policy="cache_aware")
        combined = cluster.serve(requests).combined()
        assert combined.num_requests == len(requests)
