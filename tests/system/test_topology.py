"""Tests for the device topology and the per-device timeline lanes."""

import pytest

from repro.system.hardware import (
    A100_80GB,
    NVLINK3,
    PAPER_SYSTEM,
    PCIE_P2P,
    DeviceTopology,
    GpuSpec,
    LinkSpec,
)
from repro.system.timeline import ExecutionTimeline, Stream


class TestSpecValidation:
    def test_gpu_spec_rejects_non_positive_memory(self):
        with pytest.raises(ValueError, match="memory_bytes"):
            GpuSpec(name="bad", memory_bytes=0, hbm_bandwidth=1e12,
                    fp16_tflops=100.0)

    def test_gpu_spec_rejects_non_positive_bandwidth(self):
        with pytest.raises(ValueError, match="hbm_bandwidth"):
            GpuSpec(name="bad", memory_bytes=int(1e9), hbm_bandwidth=-1.0,
                    fp16_tflops=100.0)

    def test_gpu_spec_rejects_non_positive_tflops(self):
        with pytest.raises(ValueError, match="fp16_tflops"):
            GpuSpec(name="bad", memory_bytes=int(1e9), hbm_bandwidth=1e12,
                    fp16_tflops=0.0)

    def test_gpu_spec_rejects_negative_overheads(self):
        with pytest.raises(ValueError, match="overheads"):
            GpuSpec(name="bad", memory_bytes=int(1e9), hbm_bandwidth=1e12,
                    fp16_tflops=100.0, kernel_launch_overhead=-1e-6)

    def test_link_spec_rejects_non_positive_bandwidth(self):
        with pytest.raises(ValueError, match="bandwidth"):
            LinkSpec(name="bad", bandwidth=0.0)

    def test_link_spec_rejects_negative_latency(self):
        with pytest.raises(ValueError, match="latency"):
            LinkSpec(name="bad", bandwidth=1e9, latency=-1e-6)


class TestDeviceTopology:
    def test_needs_at_least_one_device(self):
        with pytest.raises(ValueError):
            DeviceTopology(devices=())

    def test_single_is_degenerate(self):
        topology = DeviceTopology.single(A100_80GB)
        assert topology.num_devices == 1
        assert topology.device(0) is A100_80GB
        assert topology.all_to_all_time(int(1e9)) == 0.0

    def test_homogeneous_replicates_the_device(self):
        topology = DeviceTopology.homogeneous(A100_80GB, 4, interconnect=PCIE_P2P)
        assert topology.num_devices == 4
        assert topology.total_memory_bytes == 4 * A100_80GB.memory_bytes
        assert topology.interconnect is PCIE_P2P
        with pytest.raises(ValueError):
            DeviceTopology.homogeneous(A100_80GB, 0)

    def test_all_to_all_time_uses_the_interconnect(self):
        topology = DeviceTopology.homogeneous(A100_80GB, 2)
        expected = NVLINK3.latency + 1e9 / NVLINK3.bandwidth
        assert topology.all_to_all_time(1e9) == pytest.approx(expected)
        assert topology.all_to_all_time(0) == 0.0


class TestSystemTopology:
    def test_default_system_is_single_gpu(self):
        assert PAPER_SYSTEM.topology is None
        assert PAPER_SYSTEM.num_gpus == 1
        assert PAPER_SYSTEM.device_topology.num_devices == 1

    def test_with_num_gpus_scales_the_machine(self):
        wide = PAPER_SYSTEM.with_num_gpus(4)
        assert wide.num_gpus == 4
        assert wide.device_topology.interconnect is NVLINK3
        assert all(gpu is PAPER_SYSTEM.gpu for gpu in wide.topology.devices)

    def test_with_one_gpu_clears_the_topology(self):
        assert PAPER_SYSTEM.with_num_gpus(4).with_num_gpus(1).topology is None

    def test_with_num_gpus_rejects_non_positive(self):
        with pytest.raises(ValueError):
            PAPER_SYSTEM.with_num_gpus(0)

    def test_explicit_interconnect_kept_for_one_gpu(self):
        one = PAPER_SYSTEM.with_num_gpus(1, interconnect=PCIE_P2P)
        assert one.num_gpus == 1
        assert one.device_topology.interconnect is PCIE_P2P


class TestTimelineDeviceLanes:
    def test_same_lane_serialises(self):
        timeline = ExecutionTimeline()
        a = timeline.add_compute("a", 1.0, device=0)
        b = timeline.add_compute("b", 1.0, device=0)
        assert b.start == pytest.approx(a.end)

    def test_different_devices_run_concurrently(self):
        timeline = ExecutionTimeline()
        a = timeline.add_compute("a", 1.0, device=0)
        b = timeline.add_compute("b", 1.0, device=1)
        assert a.start == b.start == 0.0
        assert timeline.makespan == pytest.approx(1.0)

    def test_per_device_copy_lanes_parallelise_fetches(self):
        timeline = ExecutionTimeline()
        a = timeline.add_copy("fetch0", 1.0, device=0)
        b = timeline.add_copy("fetch1", 1.0, device=1)
        c = timeline.add_copy("fetch2", 1.0, device=0)
        assert a.start == b.start == 0.0
        assert c.start == pytest.approx(a.end)

    def test_dependencies_cross_lanes(self):
        timeline = ExecutionTimeline()
        copy = timeline.add_copy("fetch", 2.0, device=1)
        exec_op = timeline.add_compute("exec", 1.0, depends_on=[copy.op_id],
                                       device=1)
        combine = timeline.add_interconnect("combine", 0.5,
                                            depends_on=[exec_op.op_id])
        assert exec_op.start == pytest.approx(copy.end)
        assert combine.start == pytest.approx(exec_op.end)
        assert combine.stream is Stream.INTERCONNECT

    def test_per_device_queries(self):
        timeline = ExecutionTimeline()
        timeline.add_compute("a", 1.0, device=0)
        timeline.add_compute("b", 3.0, device=1)
        assert timeline.devices() == [0, 1]
        assert timeline.stream_busy_time(Stream.COMPUTE) == pytest.approx(4.0)
        assert timeline.stream_busy_time(Stream.COMPUTE, 1) == pytest.approx(3.0)
        assert timeline.stream_free_time(Stream.COMPUTE, 0) == pytest.approx(1.0)
        # Replica-wide free time is the latest lane.
        assert timeline.stream_free_time(Stream.COMPUTE) == pytest.approx(3.0)
        assert timeline.device_utilisation(0) == pytest.approx(1.0 / 3.0)
        assert timeline.device_utilisation(1) == pytest.approx(1.0)

    def test_negative_device_rejected(self):
        timeline = ExecutionTimeline()
        with pytest.raises(ValueError):
            timeline.add_compute("a", 1.0, device=-1)

    def test_records_carry_the_device(self):
        timeline = ExecutionTimeline()
        timeline.add_compute("a", 1.0, device=2)
        assert timeline.to_records()[0]["device"] == 2

    def test_exposed_copy_time_is_per_lane(self):
        timeline = ExecutionTimeline()
        # Device 0: exec stalls 2s on its copy; device 1: stalls 1s.
        copy0 = timeline.add_copy("c0", 2.0, device=0)
        timeline.add_compute("e0", 1.0, depends_on=[copy0.op_id], device=0)
        copy1 = timeline.add_copy("c1", 1.0, device=1)
        timeline.add_compute("e1", 1.0, depends_on=[copy1.op_id], device=1)
        assert timeline.exposed_copy_time() == pytest.approx(3.0)

    def test_render_labels_lanes_when_multi_device(self):
        timeline = ExecutionTimeline()
        timeline.add_compute("a", 1.0, device=0)
        timeline.add_compute("b", 1.0, device=1)
        rendered = timeline.render_ascii()
        assert "compute[0]" in rendered
        assert "compute[1]" in rendered

    def test_render_keeps_plain_labels_single_device(self):
        timeline = ExecutionTimeline()
        timeline.add_compute("a", 1.0)
        rendered = timeline.render_ascii()
        assert "compute " in rendered
        assert "compute[0]" not in rendered
