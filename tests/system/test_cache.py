"""Tests for the expert caches (LIFO / LFU / LRU) of the Figure 15 study."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.system.cache import (
    ExpertCache,
    LFUPolicy,
    LIFOPolicy,
    LRUPolicy,
    cache_capacity_from_fraction,
    make_policy,
)


class TestPolicyFactory:
    @pytest.mark.parametrize("name,cls", [("lifo", LIFOPolicy), ("lru", LRUPolicy),
                                          ("lfu", LFUPolicy)])
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name), cls)
        assert isinstance(make_policy(name.upper()), cls)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_policy("random")


class TestExpertCacheBasics:
    def test_miss_then_hit(self):
        cache = ExpertCache(capacity_experts=4, policy="lru")
        key = (0, 3)
        assert not cache.lookup(key)
        cache.insert(key)
        assert cache.lookup(key)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_capacity_zero_disables_cache(self):
        cache = ExpertCache(capacity_experts=0)
        assert not cache.enabled
        assert cache.insert((0, 1)) is None
        assert not cache.lookup((0, 1))

    def test_eviction_at_capacity(self):
        cache = ExpertCache(capacity_experts=2, policy="lru")
        cache.insert((0, 1))
        cache.insert((0, 2))
        evicted = cache.insert((0, 3))
        assert evicted is not None
        assert len(cache) == 2
        assert cache.stats.evictions == 1

    def test_duplicate_insert_is_noop(self):
        cache = ExpertCache(capacity_experts=2)
        cache.insert((0, 1))
        assert cache.insert((0, 1)) is None
        assert len(cache) == 1

    def test_resident_for_block(self):
        cache = ExpertCache(capacity_experts=4)
        cache.insert((0, 1))
        cache.insert((0, 5))
        cache.insert((1, 2))
        assert sorted(cache.resident_for_block(0)) == [1, 5]
        assert cache.resident_for_block(1) == [2]
        assert cache.resident_for_block(2) == []

    def test_clear(self):
        cache = ExpertCache(capacity_experts=4)
        cache.insert((0, 1))
        cache.clear()
        assert len(cache) == 0

    def test_negative_capacity(self):
        with pytest.raises(ValueError):
            ExpertCache(capacity_experts=-1)

    def test_contains(self):
        cache = ExpertCache(capacity_experts=2)
        cache.insert((3, 4))
        assert (3, 4) in cache
        assert (3, 5) not in cache


class TestReplacementPolicies:
    def test_lru_evicts_least_recently_used(self):
        cache = ExpertCache(capacity_experts=2, policy="lru")
        cache.insert((0, 1))
        cache.insert((0, 2))
        cache.lookup((0, 1))          # refresh key 1
        evicted = cache.insert((0, 3))
        assert evicted == (0, 2)

    def test_lfu_evicts_least_frequently_used(self):
        cache = ExpertCache(capacity_experts=2, policy="lfu")
        cache.insert((0, 1))
        cache.insert((0, 2))
        for _ in range(3):
            cache.lookup((0, 1))
        evicted = cache.insert((0, 3))
        assert evicted == (0, 2)

    def test_lifo_evicts_most_recently_inserted(self):
        cache = ExpertCache(capacity_experts=2, policy="lifo")
        cache.insert((0, 1))
        cache.insert((0, 2))
        evicted = cache.insert((0, 3))
        assert evicted == (0, 2)   # last in, first out
        assert (0, 1) in cache


class TestCapacityHelper:
    def test_fraction_of_total_experts(self):
        # Switch-Large: 24 MoE blocks x 128 experts, 10% => ~307 experts.
        assert cache_capacity_from_fraction(24, 128, 0.10) == 307
        assert cache_capacity_from_fraction(24, 128, 0.0) == 0
        assert cache_capacity_from_fraction(24, 128, 1.0) == 24 * 128

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            cache_capacity_from_fraction(4, 8, 1.5)


@settings(max_examples=40, deadline=None)
@given(capacity=st.integers(min_value=1, max_value=16),
       accesses=st.lists(st.tuples(st.integers(0, 3), st.integers(0, 15)),
                         min_size=1, max_size=100),
       policy=st.sampled_from(["lru", "lfu", "lifo"]))
def test_property_cache_never_exceeds_capacity(capacity, accesses, policy):
    """Invariant: residency never exceeds the configured capacity, for any policy."""
    cache = ExpertCache(capacity_experts=capacity, policy=policy)
    for key in accesses:
        if not cache.lookup(key):
            cache.insert(key)
        assert len(cache) <= capacity
    assert cache.stats.accesses == len(accesses)
