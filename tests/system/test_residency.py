"""Tests for the shared refcounted expert-residency map."""

import pytest

from repro.system import ExpertResidency, MemoryPool, OutOfMemoryError, ResidencyStats

EXPERT = 10  # bytes per expert: tiny numbers keep the arithmetic obvious


def make_residency(capacity=4, policy="lru", pool_experts=100, **kwargs):
    pool = MemoryPool("gpu", pool_experts * EXPERT)
    return ExpertResidency(pool, EXPERT, capacity_experts=capacity,
                           policy=policy, **kwargs)


class TestPinRelease:
    def test_miss_allocates_hit_does_not(self):
        res = make_residency()
        assert res.pin((0, 1)) is False           # miss: caller must transfer
        assert res.pool.in_use == EXPERT
        assert res.pin((0, 1)) is True            # hit: already resident
        assert res.pool.in_use == EXPERT
        assert res.pins((0, 1)) == 2

    def test_refcount_keeps_entry_resident(self):
        res = make_residency()
        res.pin((0, 1))
        res.pin((0, 1))
        res.release((0, 1))
        assert res.is_resident((0, 1))
        assert res.pins((0, 1)) == 1

    def test_zero_capacity_frees_on_last_release(self):
        res = make_residency(capacity=0)
        res.pin((0, 1))
        res.release((0, 1))
        assert not res.is_resident((0, 1))
        assert res.pool.in_use == 0

    def test_capacity_retains_unpinned(self):
        res = make_residency(capacity=2)
        res.pin((0, 1))
        res.release((0, 1))
        assert res.is_resident((0, 1))
        assert res.retained_count == 1
        assert res.pool.in_use == EXPERT          # bytes stay charged

    def test_release_unknown_or_unpinned_rejected(self):
        res = make_residency()
        with pytest.raises(KeyError):
            res.release((9, 9))
        res.pin((0, 1))
        res.release((0, 1))
        with pytest.raises(ValueError):
            res.release((0, 1))                   # retained but not pinned

    def test_resident_for_block(self):
        res = make_residency()
        res.pin((0, 1))
        res.pin((0, 2))
        res.pin((3, 1))
        assert sorted(res.resident_for_block(0)) == [1, 2]
        assert res.resident_for_block(3) == [1]
        assert res.resident_for_block(7) == []

    def test_validation(self):
        pool = MemoryPool("gpu", 100)
        with pytest.raises(ValueError):
            ExpertResidency(pool, 0)
        with pytest.raises(ValueError):
            ExpertResidency(pool, 10, capacity_experts=-1)


class TestEviction:
    def test_retained_count_never_exceeds_capacity(self):
        res = make_residency(capacity=2, policy="lru")
        for i in range(5):
            res.pin((0, i))
            res.release((0, i))
            assert res.retained_count <= 2

    def test_lru_evicts_least_recent(self):
        res = make_residency(capacity=2, policy="lru")
        for i in (0, 1):
            res.pin((0, i))
            res.release((0, i))
        res.pin((0, 0))                           # touch 0: now 1 is LRU
        res.release((0, 0))
        res.pin((0, 2))
        res.release((0, 2))                       # over capacity: evict 1
        assert res.is_resident((0, 0)) and res.is_resident((0, 2))
        assert not res.is_resident((0, 1))

    def test_lifo_evicts_last_inserted(self):
        res = make_residency(capacity=2, policy="lifo")
        for i in (0, 1, 2):
            res.pin((0, i))
            res.release((0, i))
        # Inserting 2 overflows; LIFO victimises the most recent unpinned
        # insertion (2 itself once unpinned, per Huang et al.'s stack).
        assert res.retained_count == 2
        assert res.is_resident((0, 0))

    def test_lfu_evicts_least_frequent(self):
        res = make_residency(capacity=2, policy="lfu")
        res.pin((0, 0))
        res.release((0, 0))
        for _ in range(3):                        # heat up expert 1
            res.pin((0, 1))
            res.release((0, 1))
        res.pin((0, 2))
        res.release((0, 2))
        assert res.is_resident((0, 1))
        assert not res.is_resident((0, 0))        # cold entry went first

    @pytest.mark.parametrize("policy", ["lifo", "lru", "lfu"])
    def test_pinned_entries_never_evicted(self, policy):
        res = make_residency(capacity=1, policy=policy, pool_experts=2)
        res.pin((0, 0))                           # pinned: must survive everything
        res.pin((0, 1))
        res.release((0, 1))                       # retained
        res.pin((0, 2))                           # pool full: must evict (0,1) not (0,0)
        assert res.is_resident((0, 0))
        assert res.pins((0, 0)) == 1
        assert not res.is_resident((0, 1))
        assert res.stats.evictions == 1

    def test_pool_pressure_evicts_unpinned(self):
        res = make_residency(capacity=10, policy="lru", pool_experts=2)
        res.pin((0, 0))
        res.release((0, 0))
        res.pin((0, 1))
        res.release((0, 1))
        assert res.pool.free_bytes == 0
        res.pin((0, 2))                           # evicts LRU (0,0) for room
        assert not res.is_resident((0, 0))
        assert res.is_resident((0, 1)) and res.is_resident((0, 2))

    def test_oom_when_pinned_working_set_fills_pool(self):
        res = make_residency(capacity=4, pool_experts=2)
        res.pin((0, 0))
        res.pin((0, 1))
        with pytest.raises(OutOfMemoryError):
            res.pin((0, 2))

    def test_evict_unpinned_cold_starts(self):
        res = make_residency(capacity=4)
        for i in range(3):
            res.pin((0, i))
            res.release((0, i))
        res.pin((0, 99))
        assert res.evict_unpinned() == 3
        assert res.resident_keys() == [(0, 99)]   # pinned entry survives


class TestStats:
    def test_counters(self):
        res = make_residency(capacity=1)
        res.pin((0, 0))          # miss
        res.pin((0, 0))          # hit
        res.release((0, 0))
        res.release((0, 0))      # retained
        res.pin((0, 0))          # hit from retention
        res.release((0, 0))
        assert res.stats.misses == 1
        assert res.stats.hits == 2
        assert res.stats.hit_rate == pytest.approx(2 / 3)
        assert res.stats.bytes_transferred == EXPERT
        assert res.stats.bytes_saved == 2 * EXPERT
        assert res.stats.peak_resident_experts == 1

    def test_snapshot_and_since(self):
        res = make_residency(capacity=1)
        res.pin((0, 0))
        before = res.stats.snapshot()
        res.pin((0, 0))
        delta = res.stats.since(before)
        assert delta.hits == 1 and delta.misses == 0
        assert delta.bytes_saved == EXPERT

    def test_merged_with_pools_counters(self):
        a = ResidencyStats(hits=2, misses=2, evictions=1, bytes_transferred=20,
                           bytes_saved=20, peak_resident_experts=3)
        b = ResidencyStats(hits=1, misses=3, evictions=0, bytes_transferred=30,
                           bytes_saved=10, peak_resident_experts=5)
        merged = a.merged_with(b)
        assert merged.hits == 3 and merged.misses == 5
        assert merged.hit_rate == pytest.approx(3 / 8)
        assert merged.peak_resident_experts == 5   # per-GPU peak: max, not sum

    def test_as_dict(self):
        stats = make_residency().stats
        d = stats.as_dict()
        assert set(d) >= {"hits", "misses", "hit_rate", "evictions",
                          "bytes_transferred", "bytes_saved"}


@pytest.mark.parametrize("policy", ["lifo", "lru", "lfu"])
def test_random_workload_invariants(policy):
    """Property-style check: under random pin/release traffic the map never
    evicts a pinned entry, never retains more than its capacity, and its
    pool charge always equals resident-count × expert-size."""
    import random

    rng = random.Random(1234 + hash(policy) % 1000)
    capacity = 3
    res = make_residency(capacity=capacity, policy=policy, pool_experts=8)
    live_pins = {}  # key -> our own refcount mirror

    for step in range(2000):
        key = (rng.randrange(3), rng.randrange(6))
        if key in live_pins and rng.random() < 0.55:
            res.release(key)
            live_pins[key] -= 1
            if live_pins[key] == 0:
                del live_pins[key]
        else:
            try:
                res.pin(key)
            except OutOfMemoryError:
                continue  # pinned working set filled the pool: legal outcome
            live_pins[key] = live_pins.get(key, 0) + 1

        # Invariants after every step.
        for pinned_key, count in live_pins.items():
            assert res.is_resident(pinned_key), (step, pinned_key)
            assert res.pins(pinned_key) == count
        assert res.retained_count <= capacity
        assert res.pool.in_use == len(res) * EXPERT
        assert res.pool.in_use <= res.pool.capacity
