"""Tests for the tiered memory hierarchy (multi-hop transfer paths)."""

import pytest

from repro.system.hardware import GB, PAPER_SYSTEM, SSD_SYSTEM, LinkSpec
from repro.system.tiers import (
    FetchRoute,
    TierPath,
    TierTransferStats,
    TransferHop,
    merge_tier_stats,
)

MB = int(1e6)


def two_hop_path(ssd_bw=3 * GB, pcie_bw=32 * GB, ssd_lat=1e-4, pcie_lat=1e-5):
    ssd = TransferHop("ssd", "dram", LinkSpec("ssd-read", ssd_bw, latency=ssd_lat))
    pcie = TransferHop("dram", "hbm", LinkSpec("pcie", pcie_bw, latency=pcie_lat))
    return TierPath(source="ssd", hops=(ssd, pcie))


class TestTierPath:
    def test_single_hop_matches_link(self):
        link = LinkSpec("pcie", 32 * GB, latency=1e-5)
        path = TierPath(source="dram", hops=(TransferHop("dram", "hbm", link),))
        for size in (0, 1, 37 * MB, int(1e9)):
            assert path.transfer_time(size) == pytest.approx(
                link.transfer_time(size), abs=0)

    def test_pipelined_two_hop_closed_form(self):
        path = two_hop_path()
        size = 50 * MB
        expected = (1e-4 + 1e-5) + size / (3 * GB)   # summed latency, slow link bw
        assert path.transfer_time(size) == pytest.approx(expected, rel=1e-12)
        assert path.bottleneck_bandwidth == 3 * GB
        assert path.total_latency == pytest.approx(1.1e-4)

    def test_zero_bytes_are_free(self):
        path = two_hop_path()
        assert path.transfer_time(0) == 0.0
        assert path.cut_through_tail(0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            two_hop_path().transfer_time(-1)

    def test_cut_through_decomposition(self):
        """first hop + tail == the full pipelined time, and the tail is the
        remaining hops' latency when the first hop is the bottleneck."""
        path = two_hop_path()
        size = 64 * MB
        total = path.transfer_time(size)
        assert path.first_hop_time(size) + path.cut_through_tail(size) == \
            pytest.approx(total, rel=1e-12)
        assert path.cut_through_tail(size) == pytest.approx(1e-5)  # pcie latency

    def test_cut_through_tail_positive_when_upper_link_slower(self):
        path = two_hop_path(ssd_bw=32 * GB, pcie_bw=3 * GB)
        size = 64 * MB
        assert path.cut_through_tail(size) > 0.0
        assert path.first_hop_time(size) + path.cut_through_tail(size) == \
            pytest.approx(path.transfer_time(size), rel=1e-12)

    def test_breakdown_per_hop(self):
        path = two_hop_path()
        hops = path.breakdown(10 * MB)
        assert [(h.source, h.dest) for h in hops] == [("ssd", "dram"), ("dram", "hbm")]
        assert all(h.bytes == 10 * MB for h in hops)
        assert hops[0].serial_time == pytest.approx(1e-4 + 10 * MB / (3 * GB))
        assert hops[1].serial_time == pytest.approx(1e-5 + 10 * MB / (32 * GB))

    def test_disconnected_hops_rejected(self):
        ssd = TransferHop("ssd", "dram", LinkSpec("a", GB))
        bad = TransferHop("hbm", "hbm", LinkSpec("b", GB))
        with pytest.raises(ValueError):
            TierPath(source="ssd", hops=(ssd, bad))
        with pytest.raises(ValueError):
            TierPath(source="dram", hops=(ssd,))
        with pytest.raises(ValueError):
            TierPath(source="ssd", hops=())

    def test_as_link_collapse(self):
        path = two_hop_path()
        link = path.as_link()
        assert link.bandwidth == path.bottleneck_bandwidth
        assert link.latency == pytest.approx(path.total_latency)


class TestSystemTierPaths:
    def test_dram_path_is_pcie(self):
        path = PAPER_SYSTEM.tier_path("dram")
        assert path.num_hops == 1
        for size in (0, MB, 37 * MB):
            assert path.transfer_time(size) == pytest.approx(
                PAPER_SYSTEM.pcie.transfer_time(size), abs=0)

    def test_ssd_path_matches_legacy_offload_link(self):
        """The 1e-9 parity contract: the pipelined multi-hop model equals the
        legacy min-bandwidth/summed-latency single link."""
        path = SSD_SYSTEM.tier_path("ssd")
        assert path.num_hops == 2
        legacy = SSD_SYSTEM.offload_link
        for size in (0, MB, 37 * MB, int(1e9)):
            assert path.transfer_time(size) == pytest.approx(
                legacy.transfer_time(size), abs=1e-12)

    def test_default_tier_follows_offload_tier(self):
        assert PAPER_SYSTEM.tier_path().source == "dram"
        assert SSD_SYSTEM.tier_path().source == "ssd"

    def test_expert_transfer_time_delegates(self):
        for system in (PAPER_SYSTEM, SSD_SYSTEM):
            assert system.expert_transfer_time(37 * MB) == pytest.approx(
                system.tier_path().transfer_time(37 * MB), abs=0)

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="no transfer path"):
            PAPER_SYSTEM.tier_path("floppy")


class TestTierTransferStats:
    def test_record_dram_fetch(self):
        stats = TierTransferStats()
        stats.record_fetch(FetchRoute(source_tier="dram", copy_duration=1.0), 100)
        assert stats.fetches == 1
        assert stats.pcie_bytes == 100
        assert stats.ssd_bytes_read == 0
        assert stats.stage_accesses == 0

    def test_record_ssd_fetch_without_stage(self):
        stats = TierTransferStats(source_tier="ssd")
        stats.record_fetch(FetchRoute(source_tier="ssd", copy_duration=1.0), 100)
        assert stats.ssd_bytes_read == 100
        assert stats.pcie_bytes == 100
        assert stats.stage_accesses == 0     # no stage configured: no hit/miss

    def test_record_stage_hit_and_miss(self):
        stats = TierTransferStats(source_tier="ssd")
        stats.record_fetch(FetchRoute(source_tier="ssd", copy_duration=1.0,
                                      stage_hit=False), 100)
        stats.record_fetch(FetchRoute(source_tier="ssd", copy_duration=1.0,
                                      stage_hit=True), 100)
        assert stats.stage_hits == 1 and stats.stage_misses == 1
        assert stats.stage_hit_rate == pytest.approx(0.5)
        assert stats.ssd_bytes_read == 100       # only the miss read the SSD
        assert stats.ssd_bytes_saved == 100      # the hit skipped an SSD read
        assert stats.pcie_bytes == 200           # both crossed PCIe

    def test_snapshot_and_since(self):
        stats = TierTransferStats(source_tier="ssd")
        stats.record_fetch(FetchRoute(source_tier="ssd", copy_duration=1.0,
                                      stage_hit=False), 100)
        before = stats.snapshot()
        stats.record_fetch(FetchRoute(source_tier="ssd", copy_duration=1.0,
                                      stage_hit=True), 100)
        delta = stats.since(before)
        assert delta.fetches == 1
        assert delta.stage_hits == 1 and delta.stage_misses == 0
        assert delta.ssd_bytes_read == 0 and delta.ssd_bytes_saved == 100

    def test_merge_tolerates_missing_replicas(self):
        a = TierTransferStats(fetches=2, pcie_bytes=200, ssd_bytes_read=100,
                              stage_hits=1, stage_misses=1, source_tier="ssd")
        merged = merge_tier_stats([None, a, None])
        assert merged is not None and merged.fetches == 2
        assert merge_tier_stats([None, None]) is None

    def test_merge_mixed_tiers(self):
        a = TierTransferStats(fetches=1, pcie_bytes=10, source_tier="dram")
        b = TierTransferStats(fetches=2, pcie_bytes=20, ssd_bytes_read=20,
                              source_tier="ssd")
        merged = merge_tier_stats([a, b])
        assert merged.fetches == 3
        assert merged.pcie_bytes == 30
        assert merged.ssd_bytes_read == 20
        assert merged.source_tier == "mixed"

    def test_as_dict_round_trip(self):
        stats = TierTransferStats(fetches=1, pcie_bytes=10, source_tier="ssd")
        d = stats.as_dict()
        assert d["fetches"] == 1 and d["source_tier"] == "ssd"
        assert d["stage_hit_rate"] == 0.0
