"""Tests for the dual-stream execution timeline (compute/copy overlap)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.system.timeline import ExecutionTimeline, Stream


class TestScheduling:
    def test_compute_stream_is_fifo(self):
        tl = ExecutionTimeline()
        a = tl.add_compute("a", 1.0)
        b = tl.add_compute("b", 2.0)
        assert a.start == 0.0 and a.end == 1.0
        assert b.start == 1.0 and b.end == 3.0

    def test_streams_run_concurrently(self):
        tl = ExecutionTimeline()
        tl.add_compute("compute", 5.0)
        copy = tl.add_copy("copy", 3.0)
        assert copy.start == 0.0
        assert tl.makespan == 5.0

    def test_dependency_across_streams(self):
        tl = ExecutionTimeline()
        gate = tl.add_compute("gate", 1.0)
        copy = tl.add_copy("fetch", 2.0, depends_on=[gate.op_id])
        execute = tl.add_compute("exec", 1.0, depends_on=[copy.op_id])
        assert copy.start == pytest.approx(1.0)
        assert execute.start == pytest.approx(3.0)
        assert tl.makespan == pytest.approx(4.0)

    def test_overlap_hides_copy(self):
        """A copy issued early finishes under a long compute op (the pre-gated case)."""
        tl = ExecutionTimeline()
        tl.add_copy("prefetch", 2.0)
        tl.add_compute("block_n", 3.0)
        execute = tl.add_compute("block_n_plus_1", 1.0, depends_on=[0])
        assert execute.start == pytest.approx(3.0)  # no stall
        assert tl.exposed_copy_time() == pytest.approx(0.0)
        assert tl.overlap_efficiency() == pytest.approx(1.0)

    def test_serialised_copy_is_exposed(self):
        """A copy that must follow the same block's gate stalls execution (on-demand)."""
        tl = ExecutionTimeline()
        gate = tl.add_compute("gate", 0.5)
        copy = tl.add_copy("fetch", 2.0, depends_on=[gate.op_id])
        tl.add_compute("exec", 1.0, depends_on=[copy.op_id])
        assert tl.makespan == pytest.approx(3.5)
        assert tl.exposed_copy_time() == pytest.approx(2.0)
        assert tl.overlap_efficiency() == pytest.approx(0.0)

    def test_earliest_start_gates_ops(self):
        """An op may not start before its earliest_start (request arrival)."""
        tl = ExecutionTimeline()
        a = tl.add_compute("a", 1.0)
        b = tl.add_compute("b", 1.0, earliest_start=5.0)
        assert a.end == pytest.approx(1.0)
        assert b.start == pytest.approx(5.0)
        assert tl.makespan == pytest.approx(6.0)

    def test_earliest_start_in_past_is_ignored(self):
        tl = ExecutionTimeline()
        tl.add_compute("a", 3.0)
        b = tl.add_compute("b", 1.0, earliest_start=1.0)
        assert b.start == pytest.approx(3.0)

    def test_negative_earliest_start_rejected(self):
        with pytest.raises(ValueError):
            ExecutionTimeline().add_compute("x", 1.0, earliest_start=-1.0)

    def test_invalid_dependency_rejected(self):
        tl = ExecutionTimeline()
        with pytest.raises(ValueError):
            tl.add_compute("x", 1.0, depends_on=[5])

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            ExecutionTimeline().add_compute("x", -1.0)


class TestQueries:
    def make_timeline(self):
        tl = ExecutionTimeline()
        tl.add_compute("a", 1.0, category="non_moe")
        tl.add_copy("b", 2.0, category="expert_transfer")
        tl.add_compute("c", 3.0, category="expert_execution", depends_on=[1])
        return tl

    def test_stream_busy_time(self):
        tl = self.make_timeline()
        assert tl.stream_busy_time(Stream.COMPUTE) == pytest.approx(4.0)
        assert tl.stream_busy_time(Stream.COPY) == pytest.approx(2.0)

    def test_category_time(self):
        tl = self.make_timeline()
        assert tl.category_time("expert_transfer") == pytest.approx(2.0)
        assert len(tl.ops_by_category("expert_execution")) == 1

    def test_op_lookup_and_records(self):
        tl = self.make_timeline()
        assert tl.op(0).name == "a"
        records = tl.to_records()
        assert len(records) == 3
        assert records[2]["stream"] == "compute"
        assert records[2]["start"] >= records[1]["end"] - 1e-12

    def test_empty_timeline(self):
        tl = ExecutionTimeline()
        assert tl.makespan == 0.0
        assert tl.overlap_efficiency() == 1.0
        assert tl.render_ascii() == "(empty timeline)"

    def test_render_ascii_has_both_streams(self):
        text = self.make_timeline().render_ascii(width=40)
        assert "compute" in text and "copy" in text
        assert "ms" in text


class TestExposedCopyTime:
    """``exposed_copy_time`` counts only copy-induced compute stalls.

    Regression tests for the old ``makespan - compute_busy`` formula, which
    wrongly counted compute-stream idle caused by compute-side dependencies,
    trailing copies and arrival gaps as "exposed copy time".
    """

    def test_trailing_copy_not_counted(self):
        """A copy extending past the last compute op stalls nothing."""
        tl = ExecutionTimeline()
        tl.add_compute("a", 1.0)
        tl.add_copy("background", 5.0)
        # Old formula: makespan(5) - compute_busy(1) = 4.  No compute op
        # ever waited on the copy, so nothing is exposed.
        assert tl.exposed_copy_time() == pytest.approx(0.0)

    def test_arrival_gap_not_counted(self):
        """Idle time waiting for a request arrival is not a copy stall."""
        tl = ExecutionTimeline()
        tl.add_compute("req0", 1.0)
        tl.add_copy("fetch", 1.5)
        tl.add_compute("req1", 1.0, earliest_start=10.0)
        assert tl.exposed_copy_time() == pytest.approx(0.0)

    def test_partial_stall_counted_exactly(self):
        """Only the portion of the copy outlasting compute is exposed."""
        tl = ExecutionTimeline()
        copy = tl.add_copy("prefetch", 3.0)
        tl.add_compute("block_n", 2.0)
        execute = tl.add_compute("block_n1", 1.0, depends_on=[copy.op_id])
        assert execute.start == pytest.approx(3.0)
        assert tl.exposed_copy_time() == pytest.approx(1.0)

    def test_stall_after_arrival_gap_counted(self):
        """A copy stall following an arrival gap is still attributed to the copy."""
        tl = ExecutionTimeline()
        gate = tl.add_compute("gate", 1.0, earliest_start=5.0)
        copy = tl.add_copy("fetch", 2.0, depends_on=[gate.op_id])
        tl.add_compute("exec", 1.0, depends_on=[copy.op_id])
        assert tl.exposed_copy_time() == pytest.approx(2.0)

    def test_multiple_stalls_accumulate(self):
        tl = ExecutionTimeline()
        g1 = tl.add_compute("gate1", 0.5)
        c1 = tl.add_copy("fetch1", 2.0, depends_on=[g1.op_id])
        tl.add_compute("exec1", 1.0, depends_on=[c1.op_id])   # stalls 2.0
        g2 = tl.add_compute("gate2", 0.5)
        c2 = tl.add_copy("fetch2", 2.0, depends_on=[g2.op_id])
        tl.add_compute("exec2", 1.0, depends_on=[c2.op_id])   # stalls 2.0
        assert tl.exposed_copy_time() == pytest.approx(4.0)


@settings(max_examples=40, deadline=None)
@given(durations=st.lists(st.floats(min_value=0.001, max_value=5.0), min_size=1, max_size=10))
def test_property_makespan_at_least_each_stream_busy_time(durations):
    """The makespan can never be shorter than either stream's total busy time."""
    tl = ExecutionTimeline()
    for i, duration in enumerate(durations):
        if i % 2 == 0:
            tl.add_compute(f"c{i}", duration)
        else:
            tl.add_copy(f"x{i}", duration)
    assert tl.makespan >= tl.stream_busy_time(Stream.COMPUTE) - 1e-9
    assert tl.makespan >= tl.stream_busy_time(Stream.COPY) - 1e-9


@settings(max_examples=40, deadline=None)
@given(durations=st.lists(st.floats(min_value=0.001, max_value=5.0), min_size=2, max_size=10),
       seed=st.integers(min_value=0, max_value=99))
def test_property_dependencies_respected(durations, seed):
    """No op ever starts before all of its dependencies have finished."""
    import numpy as np
    rng = np.random.default_rng(seed)
    tl = ExecutionTimeline()
    for i, duration in enumerate(durations):
        deps = list(rng.choice(i, size=min(i, int(rng.integers(0, 3))), replace=False)) if i else []
        if rng.random() < 0.5:
            tl.add_compute(f"c{i}", duration, depends_on=[int(d) for d in deps])
        else:
            tl.add_copy(f"x{i}", duration, depends_on=[int(d) for d in deps])
    for op in tl.ops:
        for dep in op.depends_on:
            assert op.start >= tl.op(dep).end - 1e-12
