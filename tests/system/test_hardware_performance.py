"""Tests for hardware specs and the GPU latency model."""

import pytest

from repro.moe.configs import get_config
from repro.system.hardware import (
    A100_80GB,
    NVME_SSD,
    PAPER_SYSTEM,
    PCIE_GEN4,
    SSD_SYSTEM,
    LinkSpec,
    SystemSpec,
    get_system,
)
from repro.system.performance import GpuLatencyModel, LayerCost


class TestLinkSpec:
    def test_transfer_time_linear_in_bytes(self):
        link = LinkSpec("test", bandwidth=1e9, latency=1e-5)
        t1 = link.transfer_time(1e9)
        t2 = link.transfer_time(2e9)
        assert t2 - t1 == pytest.approx(1.0)

    def test_zero_bytes_is_free(self):
        assert PCIE_GEN4.transfer_time(0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            PCIE_GEN4.transfer_time(-1)

    def test_pcie_gen4_bandwidth(self):
        """The paper's PCIe gen4 channel: 32 GB/s."""
        assert PCIE_GEN4.bandwidth == pytest.approx(32e9)
        # One Switch-Base expert (~19 MB fp32) takes ~0.6 ms.
        expert_bytes = get_config("switch_base_128").expert_bytes()
        assert 4e-4 < PCIE_GEN4.transfer_time(expert_bytes) < 8e-4


class TestSystemSpec:
    def test_paper_system_matches_section_v(self):
        assert PAPER_SYSTEM.gpu.memory_bytes == int(80e9)
        assert PAPER_SYSTEM.host.dram_bytes == int(1.8e12)
        assert PAPER_SYSTEM.offload_tier == "dram"

    def test_ssd_system_is_slower_offload(self):
        expert_bytes = get_config("switch_large_128").expert_bytes()
        dram_time = PAPER_SYSTEM.expert_transfer_time(expert_bytes)
        ssd_time = SSD_SYSTEM.expert_transfer_time(expert_bytes)
        assert ssd_time > 5 * dram_time

    def test_invalid_offload_tier(self):
        with pytest.raises(ValueError):
            SystemSpec(name="bad", gpu=A100_80GB, host=PAPER_SYSTEM.host,
                       pcie=PCIE_GEN4, ssd=NVME_SSD, offload_tier="tape")

    def test_get_system_by_name(self):
        assert get_system("paper") is PAPER_SYSTEM
        assert get_system("ssd").offload_tier == "ssd"

    def test_get_system_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match=r"'paper'.*'ssd'"):
            get_system("tpu")

    def test_with_offload_tier_returns_copy(self):
        ssd = PAPER_SYSTEM.with_offload_tier("ssd")
        assert ssd.offload_tier == "ssd"
        assert PAPER_SYSTEM.offload_tier == "dram"


class TestGpuLatencyModel:
    @pytest.fixture
    def model(self):
        return GpuLatencyModel(A100_80GB)

    @pytest.fixture
    def config(self):
        return get_config("switch_base_128")

    def test_layer_time_includes_overhead(self, model):
        cost = LayerCost(flops=0.0, weight_bytes=0.0, num_kernels=3)
        assert model.layer_time(cost) == pytest.approx(3 * A100_80GB.kernel_launch_overhead)

    def test_roofline_uses_max_of_compute_and_memory(self, model):
        compute_bound = LayerCost(flops=1e12, weight_bytes=1.0, num_kernels=0)
        memory_bound = LayerCost(flops=1.0, weight_bytes=1e10, num_kernels=0)
        assert model.layer_time(compute_bound) == pytest.approx(1e12 / A100_80GB.flops_per_second)
        assert model.layer_time(memory_bound) == pytest.approx(1e10 / A100_80GB.hbm_bandwidth)

    def test_single_token_layers_are_overhead_bound(self, model, config):
        """At batch-1 decoding, attention time is dominated by fixed overheads."""
        attn = model.attention_time(config, query_tokens=1, kv_tokens=32)
        assert attn < 10 * 4 * A100_80GB.kernel_launch_overhead

    def test_expert_execution_grows_with_active_experts(self, model, config):
        one = model.expert_execution_time(config, tokens=1, num_active_experts=1)
        many = model.expert_execution_time(config, tokens=64, num_active_experts=64)
        assert many > 5 * one

    def test_expert_execution_requires_positive_experts(self, model, config):
        with pytest.raises(ValueError):
            model.expert_execution_time(config, tokens=1, num_active_experts=0)

    def test_moe_block_time_includes_gate(self, model, config):
        total = model.moe_block_compute_time(config, tokens=1, num_active_experts=1)
        exec_only = model.expert_execution_time(config, tokens=1, num_active_experts=1)
        assert total > exec_only

    def test_calibration_transfer_vs_block_compute(self, model, config):
        """The central tension the paper exploits: migrating one expert over PCIe
        takes on the same order as (or longer than) executing the MoE block."""
        block = model.moe_block_compute_time(config, tokens=1, num_active_experts=1)
        transfer = PAPER_SYSTEM.expert_transfer_time(config.expert_bytes())
        assert 0.3 < transfer / block < 3.0

    def test_larger_model_has_larger_layer_times(self, model):
        base = get_config("switch_base_128")
        large = get_config("switch_large_128")
        assert model.ffn_time(large, 32) > model.ffn_time(base, 32)
        assert model.lm_head_time(large, 1) > model.lm_head_time(base, 1)

    def test_decoder_nonmoe_includes_two_attentions(self, model, config):
        enc = model.encoder_layer_nonmoe_time(config, 1)
        dec = model.decoder_layer_nonmoe_time(config, 1, 1, 32)
        assert dec > enc
