"""Tests for memory pools, peak tracking and the memory hierarchy."""

import pytest

from repro.system.hardware import PAPER_SYSTEM
from repro.system.memory import MemoryHierarchy, MemoryPool, OutOfMemoryError, TieredMemory


class TestMemoryPool:
    def test_allocate_and_free(self):
        pool = MemoryPool("gpu", 100)
        pool.allocate("a", 40)
        assert pool.in_use == 40
        pool.free("a")
        assert pool.in_use == 0
        assert pool.free_bytes == 100

    def test_peak_tracks_high_water_mark(self):
        pool = MemoryPool("gpu", 100)
        pool.allocate("a", 60)
        pool.free("a")
        pool.allocate("b", 30)
        assert pool.peak == 60
        assert pool.in_use == 30

    def test_oom_raised_with_details(self):
        pool = MemoryPool("gpu", 100)
        pool.allocate("a", 90)
        with pytest.raises(OutOfMemoryError) as excinfo:
            pool.allocate("b", 20)
        assert excinfo.value.requested == 20
        assert excinfo.value.capacity == 100

    def test_oversubscription_allowed_when_requested(self):
        pool = MemoryPool("gpu", 100)
        pool.allocate("a", 150, allow_oversubscribe=True)
        assert pool.peak == 150

    def test_duplicate_tag_rejected(self):
        pool = MemoryPool("gpu", 100)
        pool.allocate("a", 10)
        with pytest.raises(ValueError):
            pool.allocate("a", 10)

    def test_free_unknown_tag(self):
        with pytest.raises(KeyError):
            MemoryPool("gpu", 100).free("nope")

    def test_category_usage_and_peak(self):
        pool = MemoryPool("gpu", 1000)
        pool.allocate("w1", 100, category="weights")
        pool.allocate("e1", 200, category="experts")
        pool.allocate("e2", 300, category="experts")
        assert pool.category_usage("experts") == 500
        pool.free("e2")
        assert pool.category_usage("experts") == 200
        assert pool.category_peak("experts") == 500

    def test_free_category(self):
        pool = MemoryPool("gpu", 1000)
        pool.allocate("e1", 100, category="experts")
        pool.allocate("e2", 100, category="experts")
        pool.allocate("w", 100, category="weights")
        freed = pool.free_category("experts")
        assert freed == 200
        assert pool.in_use == 100

    def test_has_and_allocations(self):
        pool = MemoryPool("gpu", 100)
        pool.allocate("a", 10)
        assert pool.has("a")
        assert not pool.has("b")
        assert [a.tag for a in pool.allocations()] == ["a"]

    def test_utilisation(self):
        pool = MemoryPool("gpu", 200)
        pool.allocate("a", 50)
        assert pool.utilisation() == pytest.approx(0.25)
        assert pool.peak_utilisation() == pytest.approx(0.25)

    def test_reset_peak(self):
        pool = MemoryPool("gpu", 100)
        pool.allocate("a", 80)
        pool.free("a")
        pool.reset_peak()
        assert pool.peak == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MemoryPool("gpu", 0)

    def test_negative_allocation(self):
        with pytest.raises(ValueError):
            MemoryPool("gpu", 10).allocate("a", -1)


class TestMemoryHierarchy:
    def test_from_system_capacities(self):
        hierarchy = MemoryHierarchy.from_system(PAPER_SYSTEM)
        assert hierarchy.gpu.capacity == PAPER_SYSTEM.gpu.memory_bytes
        assert hierarchy.cpu.capacity == PAPER_SYSTEM.host.dram_bytes
        assert hierarchy.ssd.capacity == PAPER_SYSTEM.ssd.capacity_bytes

    def test_offload_pool_selection(self):
        hierarchy = MemoryHierarchy.from_system(PAPER_SYSTEM)
        assert hierarchy.offload_pool("dram") is hierarchy.cpu
        assert hierarchy.offload_pool("ssd") is hierarchy.ssd
        with pytest.raises(ValueError):
            hierarchy.offload_pool("floppy")

    def test_missing_ssd_tier(self):
        hierarchy = MemoryHierarchy(gpu=MemoryPool("g", 10), cpu=MemoryPool("c", 10), ssd=None)
        with pytest.raises(ValueError):
            hierarchy.offload_pool("ssd")


class TestTieredMemoryAccessor:
    def test_pool_by_tier_name(self):
        memory = TieredMemory.from_system(PAPER_SYSTEM)
        assert memory.pool("hbm") is memory.gpu
        assert memory.pool("dram") is memory.cpu
        assert memory.pool("ssd") is memory.ssd

    def test_pools_carry_tier_names(self):
        memory = TieredMemory.from_system(PAPER_SYSTEM)
        assert memory.pool("hbm").tier == "hbm"
        assert memory.pool("dram").tier == "dram"
        assert memory.pool("ssd").tier == "ssd"

    def test_unknown_tier_lists_available(self):
        memory = TieredMemory.from_system(PAPER_SYSTEM)
        with pytest.raises(ValueError) as err:
            memory.pool("floppy")
        message = str(err.value)
        for tier in ("hbm", "dram", "ssd"):
            assert tier in message

    def test_missing_ssd_not_listed(self):
        memory = TieredMemory(gpu=MemoryPool("g", 10), cpu=MemoryPool("c", 10), ssd=None)
        assert memory.available_tiers() == ["hbm", "dram"]
        with pytest.raises(ValueError) as err:
            memory.pool("ssd")
        assert "['hbm', 'dram']" in str(err.value)

    def test_alias_is_same_class(self):
        assert MemoryHierarchy is TieredMemory

    def test_oom_message_names_tier(self):
        memory = TieredMemory.from_system(PAPER_SYSTEM)
        pool = memory.pool("hbm")
        with pytest.raises(OutOfMemoryError) as err:
            pool.allocate("too_big", pool.capacity + 1)
        assert "[hbm tier]" in str(err.value)
        assert err.value.tier == "hbm"

    def test_oom_message_without_tier_unchanged(self):
        pool = MemoryPool("scratch", 10)
        with pytest.raises(OutOfMemoryError) as err:
            pool.allocate("x", 11)
        assert "tier" not in str(err.value)
        assert err.value.tier == ""
