"""Array-kernel timeline parity: ``ArrayTimeline`` vs the scalar engine.

The batched columnar engine must be *the same simulator* as the scalar
reference, not an approximation of it:

* randomized op streams (mixed streams/devices/deps/arrival gates, emitted
  through both scalar adds and multi-op batches) produce bit-identical
  start/end times on both engines, and every summed aggregate matches to
  1e-9 (the kernel folds sums with vectorized reductions, which may
  reassociate float additions);
* the trace-recording array engine reconstructs the full per-op trace
  (``ops``/``to_records``/``stream_ops``) identically to the scalar one;
* ``make_timeline`` maps the engine names onto the right classes;
* batch validation points at the offending op and lane, exactly like the
  scalar validation (same message, either engine);
* ``fast_forward`` applies absolute aggregate values and refuses trace
  mode and makespan rewinds on both engines.
"""

import random

import pytest

from repro.system.timeline import (STREAM_CODE, TIMELINE_ENGINES,
                                   ArrayTimeline, ExecutionTimeline, Stream,
                                   category_code, make_timeline)

STREAMS = (Stream.COMPUTE, Stream.COPY, Stream.STAGE, Stream.INTERCONNECT)
CATEGORIES = ("compute", "copy", "stage_in", "alltoall", "generic")


def random_program(rng, num_rounds=12, max_round_ops=9):
    """A random schedule as (round) -> [(stream, device, dur, deps, ...)].

    Dependencies reach both backward across rounds and forward *within* a
    round (to earlier ops of the same round), mirroring how the scheduler
    emits one round as one batch with intra-batch deps.
    """
    program = []
    next_id = 0
    for _ in range(num_rounds):
        round_ops = []
        for _ in range(rng.randint(1, max_round_ops)):
            candidates = range(max(0, next_id - 12), next_id)
            deps = rng.sample(list(candidates), k=min(rng.randint(0, 3),
                                                      next_id))
            round_ops.append({
                "stream": rng.choice(STREAMS),
                "device": rng.choice([0, 0, 0, 1]),
                "duration": rng.choice([0.0, rng.uniform(0.0, 2.0)]),
                "earliest": rng.choice([0.0, 0.0, rng.uniform(0.0, 5.0)]),
                "bytes": rng.choice([0.0, float(rng.randint(1, 9) * 1024)]),
                "category": rng.choice(CATEGORIES),
                "deps": deps,
            })
            next_id += 1
        program.append(round_ops)
    return program


def run_scalar(program, record_trace):
    timeline = ExecutionTimeline(record_trace=record_trace)
    times = []
    for round_ops in program:
        for spec in program_round(timeline, round_ops):
            times.append(spec)
    return timeline, times


def program_round(timeline, round_ops):
    for spec in round_ops:
        op = timeline.add(f"op{timeline.num_ops}", spec["stream"],
                          spec["duration"], depends_on=spec["deps"],
                          category=spec["category"],
                          earliest_start=spec["earliest"],
                          device=spec["device"], num_bytes=spec["bytes"])
        yield (op.start, op.end)


def run_array(program, record_trace):
    timeline = ArrayTimeline(record_trace=record_trace)
    times = []
    for round_ops in program:
        batch = timeline.begin_batch()
        for spec in round_ops:
            batch.add(STREAM_CODE[spec["stream"]],
                      spec["duration"], deps=spec["deps"],
                      category=category_code(spec["category"]),
                      device=spec["device"], earliest_start=spec["earliest"],
                      num_bytes=spec["bytes"],
                      name=f"op{batch.base_id + len(batch)}")
        starts, ends = timeline.commit_batch(batch)
        times.extend(zip(starts.tolist(), ends.tolist()))
    return timeline, times


def assert_aggregate_parity(scalar, array):
    # Time-like maxima are bit-identical; summed aggregates may be folded in
    # a different association order, so 1e-9.
    assert array.makespan == scalar.makespan
    assert array.num_ops == scalar.num_ops
    for stream in STREAMS:
        for device in (None, 0, 1):
            assert array.stream_busy_time(stream, device) == pytest.approx(
                scalar.stream_busy_time(stream, device), abs=1e-9)
            assert array.stream_free_time(stream, device) == \
                scalar.stream_free_time(stream, device)
    assert array.devices() == scalar.devices()
    for device in scalar.devices():
        assert array.device_utilisation(device) == pytest.approx(
            scalar.device_utilisation(device), abs=1e-9)
        assert array.exposed_copy_time(device) == pytest.approx(
            scalar.exposed_copy_time(device), abs=1e-9)
    for category in CATEGORIES:
        assert array.category_count(category) == scalar.category_count(category)
        assert array.category_time(category) == pytest.approx(
            scalar.category_time(category), abs=1e-9)
        assert array.category_bytes(category) == pytest.approx(
            scalar.category_bytes(category), abs=1e-9)
    assert array.overlap_efficiency() == pytest.approx(
        scalar.overlap_efficiency(), abs=1e-9)


class TestRandomizedParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_batched_kernel_matches_scalar_engine(self, seed):
        program = random_program(random.Random(seed))
        scalar, scalar_times = run_scalar(program, record_trace=False)
        array, array_times = run_array(program, record_trace=False)
        # Start/end chains are max() compositions — bit-identical.
        assert array_times == scalar_times
        assert_aggregate_parity(scalar, array)

    @pytest.mark.parametrize("seed", range(4))
    def test_scalar_adds_on_array_engine_match(self, seed):
        """ArrayTimeline.add (one-op batches) is the same kernel."""
        program = random_program(random.Random(seed), num_rounds=6)
        scalar, scalar_times = run_scalar(program, record_trace=False)
        array = ArrayTimeline(record_trace=False)
        array_times = []
        for round_ops in program:
            array_times.extend(program_round(array, round_ops))
        assert array_times == scalar_times
        assert_aggregate_parity(scalar, array)

    @pytest.mark.parametrize("seed", range(4))
    def test_trace_reconstruction_matches_scalar_trace(self, seed):
        program = random_program(random.Random(seed), num_rounds=6)
        scalar, _ = run_scalar(program, record_trace=True)
        array, _ = run_array(program, record_trace=True)
        assert array.to_records() == scalar.to_records()
        for stream in STREAMS:
            scalar_ops = scalar.stream_ops(stream)
            array_ops = array.stream_ops(stream)
            assert [op.op_id for op in array_ops] == \
                [op.op_id for op in scalar_ops]
            for a, b in zip(array_ops, scalar_ops):
                assert (a.start, a.end, a.duration, a.device) == \
                    (b.start, b.end, b.duration, b.device)
                assert a.depends_on == b.depends_on
        assert array.scan_makespan() == scalar.scan_makespan()
        assert array.scan_exposed_copy_time() == pytest.approx(
            scalar.scan_exposed_copy_time(), abs=1e-9)


class TestEngineSelection:
    def test_make_timeline_maps_names(self):
        assert set(TIMELINE_ENGINES) == {"scalar", "array"}
        assert type(make_timeline("scalar")) is ExecutionTimeline
        assert type(make_timeline("array")) is ArrayTimeline
        assert make_timeline("array", record_trace=True).record_trace

    def test_make_timeline_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown timeline engine"):
            make_timeline("vectorised")


class TestBatchValidation:
    @pytest.mark.parametrize("engine", sorted(TIMELINE_ENGINES))
    def test_negative_duration_names_op_and_lane(self, engine):
        timeline = make_timeline(engine, record_trace=True)
        batch = timeline.begin_batch()
        batch.add(0, 1.0, name="warmup")
        batch.add(1, -0.5, device=2, name="bad_copy")
        with pytest.raises(ValueError, match=r"'bad_copy'.*copy, device 2"):
            timeline.commit_batch(batch)

    @pytest.mark.parametrize("engine", sorted(TIMELINE_ENGINES))
    def test_unknown_dependency_names_op(self, engine):
        timeline = make_timeline(engine, record_trace=True)
        batch = timeline.begin_batch()
        batch.add(0, 1.0, deps=[41], name="orphan")
        with pytest.raises(ValueError, match=r"'orphan'.*41"):
            timeline.commit_batch(batch)

    @pytest.mark.parametrize("engine", sorted(TIMELINE_ENGINES))
    def test_batches_may_not_interleave(self, engine):
        timeline = make_timeline(engine)
        batch = timeline.begin_batch()
        batch.add(0, 1.0)
        timeline.add("sneaky", Stream.COMPUTE, 1.0)
        with pytest.raises(RuntimeError, match="interleave"):
            timeline.commit_batch(batch)


class TestFastForward:
    @pytest.mark.parametrize("engine", sorted(TIMELINE_ENGINES))
    def test_fast_forward_applies_absolute_aggregates(self, engine):
        timeline = make_timeline(engine, record_trace=False)
        timeline.add("seed", Stream.COMPUTE, 1.0, category="compute")
        snapshot = timeline.replay_snapshot()
        snapshot["makespan"] = 5.0
        snapshot["lane_free"][(Stream.COMPUTE, 0)] = 5.0
        snapshot["lane_busy"][(Stream.COMPUTE, 0)] = 5.0
        snapshot["category_count"]["compute"] = 5
        snapshot["category_duration"]["compute"] = 5.0
        timeline.fast_forward(num_ops=4, **snapshot)
        assert timeline.num_ops == 5
        assert timeline.makespan == 5.0
        assert timeline.stream_free_time(Stream.COMPUTE, 0) == 5.0
        assert timeline.category_count("compute") == 5
        assert timeline.category_time("compute") == 5.0
        assert timeline.live_op_count == 1          # no per-op state created
        # The next op queues behind the fast-forwarded lane clock.
        op = timeline.add("next", Stream.COMPUTE, 1.0, category="compute")
        assert op.start == 5.0

    @pytest.mark.parametrize("engine", sorted(TIMELINE_ENGINES))
    def test_fast_forward_refuses_trace_mode_and_rewinds(self, engine):
        traced = make_timeline(engine, record_trace=True)
        traced.add("seed", Stream.COMPUTE, 1.0)
        with pytest.raises(RuntimeError, match="record_trace"):
            traced.fast_forward(num_ops=1, **traced.replay_snapshot())
        plain = make_timeline(engine, record_trace=False)
        plain.add("seed", Stream.COMPUTE, 1.0)
        snapshot = plain.replay_snapshot()
        snapshot["makespan"] = 0.5
        with pytest.raises(ValueError, match="rewind"):
            plain.fast_forward(num_ops=1, **snapshot)
