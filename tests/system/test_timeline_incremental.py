"""Incremental-aggregate and op-retirement tests for the execution timeline.

The timeline maintains makespan / per-lane busy time / exposed copy time /
per-category counters online inside ``add()`` (O(1) queries); the
``scan_*`` methods recompute them from the recorded trace exactly as the
original O(n) queries did.  These tests pin the two against each other on
randomized op soups, and pin the retirement semantics of the bounded-memory
``record_trace=False`` mode.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.system.timeline import ExecutionTimeline, Stream

STREAMS = (Stream.COMPUTE, Stream.COPY, Stream.STAGE, Stream.INTERCONNECT)
CATEGORIES = ("non_moe", "gate", "expert_execution", "expert_transfer", "stage_in")


def random_timeline(seed: int, num_ops: int = 60,
                    record_trace: bool = True) -> ExecutionTimeline:
    """A random but structurally valid op soup over 2 devices / 4 streams."""
    rng = np.random.default_rng(seed)
    tl = ExecutionTimeline(record_trace=record_trace)
    for i in range(num_ops):
        stream = STREAMS[int(rng.integers(len(STREAMS)))]
        num_deps = int(rng.integers(0, min(i, 3) + 1)) if i else 0
        deps = [int(d) for d in rng.choice(i, size=num_deps, replace=False)] if num_deps else []
        tl.add(f"op{i}", stream, float(rng.uniform(0.0, 2.0)),
               depends_on=deps,
               category=CATEGORIES[int(rng.integers(len(CATEGORIES)))],
               earliest_start=float(rng.uniform(0.0, 3.0)) if rng.random() < 0.3 else 0.0,
               device=int(rng.integers(0, 2)),
               num_bytes=float(rng.integers(0, 10)) * 1e6)
    return tl


class TestIncrementalParity:
    """Incremental aggregates == first-principles scans, to 1e-9."""

    @pytest.mark.parametrize("seed", range(12))
    def test_all_aggregates_match_scans(self, seed):
        tl = random_timeline(seed)
        assert tl.makespan == pytest.approx(tl.scan_makespan(), abs=1e-9)
        for stream in STREAMS:
            assert tl.stream_busy_time(stream) == pytest.approx(
                tl.scan_stream_busy_time(stream), abs=1e-9)
            for device in tl.devices():
                assert tl.stream_busy_time(stream, device) == pytest.approx(
                    tl.scan_stream_busy_time(stream, device), abs=1e-9)
        for category in CATEGORIES:
            assert tl.category_time(category) == pytest.approx(
                tl.scan_category_time(category), abs=1e-9)
            assert tl.category_count(category) == len(tl.ops_by_category(category))
            assert tl.category_bytes(category) == pytest.approx(
                sum(op.num_bytes for op in tl.ops_by_category(category)), abs=1e-9)
        assert tl.exposed_copy_time() == pytest.approx(
            tl.scan_exposed_copy_time(), abs=1e-9)

    @pytest.mark.parametrize("seed", range(6))
    def test_per_device_exposed_sums_to_total(self, seed):
        tl = random_timeline(seed)
        per_device = sum(tl.exposed_copy_time(device=d) for d in tl.devices())
        assert per_device == pytest.approx(tl.exposed_copy_time(), abs=1e-9)

    def test_device_utilisation_matches_definition(self):
        tl = random_timeline(3)
        for device in tl.devices():
            expected = tl.scan_stream_busy_time(Stream.COMPUTE, device) / tl.scan_makespan()
            assert tl.device_utilisation(device) == pytest.approx(expected, abs=1e-9)

    def test_op_count_telemetry(self):
        tl = random_timeline(4, num_ops=25)
        assert tl.num_ops == 25
        assert tl.live_op_count == 25
        assert tl.peak_live_ops == 25


class TestNoTraceMode:
    def test_aggregates_identical_to_trace_mode(self):
        trace = random_timeline(7, record_trace=True)
        bare = random_timeline(7, record_trace=False)
        assert bare.makespan == trace.makespan
        assert bare.exposed_copy_time() == trace.exposed_copy_time()
        for stream in STREAMS:
            assert bare.stream_busy_time(stream) == trace.stream_busy_time(stream)
        for category in CATEGORIES:
            assert bare.category_count(category) == trace.category_count(category)
            assert bare.category_bytes(category) == trace.category_bytes(category)

    def test_trace_only_queries_raise(self):
        tl = random_timeline(0, num_ops=5, record_trace=False)
        for query in (lambda: tl.ops, tl.to_records, tl.render_ascii,
                      lambda: tl.ops_by_category("gate"),
                      lambda: tl.stream_ops(Stream.COMPUTE),
                      tl.scan_makespan, tl.scan_exposed_copy_time):
            with pytest.raises(RuntimeError):
                query()

    def test_retirement_bounds_memory_and_keeps_aggregates(self):
        tl = ExecutionTimeline(record_trace=False)
        for i in range(50):
            tl.add_compute(f"c{i}", 1.0)
            retired = tl.retire_completed()
            assert retired == 1
            assert tl.live_op_count == 0
        assert tl.num_ops == 50
        assert tl.peak_live_ops == 1
        assert tl.makespan == pytest.approx(50.0)
        assert tl.stream_busy_time(Stream.COMPUTE) == pytest.approx(50.0)
        # Lane clocks survive retirement: the next op still queues FIFO.
        op = tl.add_compute("tail", 2.0)
        assert op.start == pytest.approx(50.0)

    def test_keep_preserves_named_ops(self):
        tl = ExecutionTimeline(record_trace=False)
        a = tl.add_compute("a", 1.0)
        b = tl.add_copy("b", 1.0)
        tl.retire_completed(keep=[b.op_id])
        assert tl.live_op_count == 1
        # A kept op remains a valid dependency; a retired one does not.
        tl.add_compute("c", 1.0, depends_on=[b.op_id])
        with pytest.raises(ValueError):
            tl.add_compute("d", 1.0, depends_on=[a.op_id])

    def test_retire_is_noop_in_trace_mode(self):
        tl = random_timeline(1, num_ops=10, record_trace=True)
        assert tl.retire_completed() == 0
        assert tl.live_op_count == 10

    def test_op_lookup_after_retirement_raises(self):
        tl = ExecutionTimeline(record_trace=False)
        op = tl.add_compute("a", 1.0)
        tl.retire_completed()
        with pytest.raises(KeyError):
            tl.op(op.op_id)


@settings(max_examples=30, deadline=None)
@given(durations=st.lists(st.floats(min_value=0.001, max_value=5.0),
                          min_size=1, max_size=16),
       seed=st.integers(min_value=0, max_value=99))
def test_property_incremental_exposed_matches_scan(durations, seed):
    """Property: online exposed-copy accounting equals the trace scan."""
    rng = np.random.default_rng(seed)
    tl = ExecutionTimeline()
    for i, duration in enumerate(durations):
        deps = ([int(d) for d in rng.choice(i, size=int(rng.integers(0, min(i, 2) + 1)),
                                            replace=False)] if i else [])
        if rng.random() < 0.6:
            tl.add_compute(f"c{i}", duration, depends_on=deps,
                           device=int(rng.integers(0, 2)))
        else:
            tl.add_copy(f"x{i}", duration, depends_on=deps,
                        device=int(rng.integers(0, 2)))
    assert tl.exposed_copy_time() == pytest.approx(tl.scan_exposed_copy_time(), abs=1e-9)
    assert tl.makespan == pytest.approx(tl.scan_makespan(), abs=1e-9)
