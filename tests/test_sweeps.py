"""Tests for the shared sweep grid and its process-pool execution path."""

import pytest

import repro.serving.cluster as cluster_module
from repro.serving.cluster import ReplicaCluster
from repro.sweeps import open_loop, ordered_pool_map, run_grid
from repro.workloads.arrivals import POISSON_QA_LOAD, generate_timed_requests
from repro.workloads.generator import WorkloadSpec

WORKLOAD = WorkloadSpec(name="sweep_test", num_requests=6, input_length=6,
                        output_length=3, routing_skew=1.2, seed=0)


def combo_cell(a, b):
    """Deterministic top-level cell (picklable for the process pool)."""
    return (a, b, a * 10 + b)


def failing_cell(a, b):
    raise RuntimeError(f"boom {a}{b}")


#: Set by :func:`_install_shared` in each pool worker (or the test process
#: on the serial path) to exercise the one-time-payload initializer hook.
_SHARED = None


def _install_shared(value):
    global _SHARED
    _SHARED = value


def _read_shared(_item):
    return _SHARED


class TestRunGrid:
    def test_row_major_order_and_keys(self):
        results = run_grid(combo_cell, a=[1, 2], b=[3, 4])
        assert list(results) == [(1, 3), (1, 4), (2, 3), (2, 4)]
        assert results[(2, 3)] == (2, 3, 23)

    def test_no_axes_rejected(self):
        with pytest.raises(ValueError):
            run_grid(combo_cell)

    def test_parallel_matches_serial(self):
        serial = run_grid(combo_cell, a=[1, 2, 3], b=[4, 5])
        parallel = run_grid(combo_cell, max_workers=3, a=[1, 2, 3], b=[4, 5])
        assert serial == parallel
        assert list(serial) == list(parallel)  # same declaration order

    def test_single_cell_stays_serial(self):
        # One combination never pays the pool spin-up.
        assert run_grid(combo_cell, max_workers=8, a=[1], b=[2]) == {(1, 2): (1, 2, 12)}

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError):
            run_grid(failing_cell, max_workers=2, a=[1, 2], b=[3])

    def test_open_loop_override(self):
        load = open_loop(12.5)
        assert load.request_rate == 12.5
        assert load.mode == POISSON_QA_LOAD.mode

    def test_pool_initializer_ships_payload_once_per_worker(self):
        # Every pooled call sees the payload installed by the initializer;
        # the items themselves never carry it.
        results = ordered_pool_map(_read_shared, [1, 2, 3, 4], max_workers=2,
                                   initializer=_install_shared,
                                   initargs=("payload",))
        assert results == ["payload"] * 4

    def test_serial_path_ignores_initializer(self):
        # Serially the caller's process state is already in scope; the
        # initializer must not clobber it.
        _install_shared("parent-state")
        try:
            results = ordered_pool_map(_read_shared, [1], max_workers=4,
                                       initializer=_install_shared,
                                       initargs=("pool-only",))
            assert results == ["parent-state"]
        finally:
            _install_shared(None)


class TestParallelCluster:
    def _requests(self):
        load = POISSON_QA_LOAD.with_overrides(request_rate=12.0)
        return generate_timed_requests("switch_base_64", load, workload=WORKLOAD)

    @pytest.mark.parametrize("policy", ("round_robin", "least_loaded"))
    def test_parallel_serve_matches_serial(self, policy):
        requests = self._requests()
        serial = ReplicaCluster("pregated", "switch_base_64", num_replicas=3,
                                policy=policy).serve(requests, offered_load=12.0)
        parallel = ReplicaCluster("pregated", "switch_base_64", num_replicas=3,
                                  policy=policy, max_workers=3).serve(
                                      requests, offered_load=12.0)
        assert serial.combined().summary() == parallel.combined().summary()
        # Per-replica results line up in replica-id order in both modes.
        for left, right in zip(serial.replica_results, parallel.replica_results):
            assert left.makespan == pytest.approx(right.makespan, abs=1e-9)
            assert [r.request_id for r in left.requests] == \
                [r.request_id for r in right.requests]

    def test_serve_override_beats_constructor(self):
        requests = self._requests()
        cluster = ReplicaCluster("ondemand", "switch_base_64", num_replicas=2,
                                 max_workers=2)
        serial = cluster.serve(requests, max_workers=1)
        parallel = cluster.serve(requests)  # constructor's pool width
        assert serial.combined().summary() == parallel.combined().summary()

    def test_invalid_max_workers_rejected(self):
        with pytest.raises(ValueError):
            ReplicaCluster("pregated", "switch_base_64", num_replicas=2,
                           max_workers=0)

    def test_serve_clears_shared_payload(self):
        # The one-time payload is scoped to the serve call: holding the
        # schedulers and request stream alive afterwards would leak them.
        requests = self._requests()
        cluster = ReplicaCluster("pregated", "switch_base_64", num_replicas=2,
                                 max_workers=2)
        cluster.serve(requests)
        assert cluster_module._WORKER_PAYLOAD is None

    def test_single_replica_never_pools(self):
        requests = self._requests()
        result = ReplicaCluster("pregated", "switch_base_64", num_replicas=1,
                                max_workers=4).serve(requests)
        assert result.num_replicas == 1
        assert len(result.replica_results) == 1
