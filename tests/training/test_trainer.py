"""Tests for the fine-tuning trainer."""

import numpy as np
import pytest

from repro.core import PreGatedSwitchTransformer
from repro.data import ExtractiveQATask, default_vocabulary, train_eval_split
from repro.moe import SwitchTransformer, get_config
from repro.training import Trainer, TrainingConfig


@pytest.fixture(scope="module")
def tokenizer():
    return default_vocabulary(60)


@pytest.fixture(scope="module")
def datasets(tokenizer):
    task = ExtractiveQATask(tokenizer=tokenizer, seed=0)
    return train_eval_split(task, train_size=48, eval_size=12, tokenizer=tokenizer)


class TestTrainStep:
    def test_step_returns_loss_components(self, datasets):
        train_set, _ = datasets
        model = SwitchTransformer(get_config("tiny_moe_4"), seed=0)
        trainer = Trainer(model, TrainingConfig(steps=1, batch_size=8, learning_rate=1e-3))
        batch = next(train_set.batches(8))
        stats = trainer.train_step(batch)
        assert set(stats) == {"loss", "task_loss", "aux_loss"}
        assert stats["loss"] > 0
        assert stats["aux_loss"] > 0

    def test_step_changes_parameters(self, datasets):
        train_set, _ = datasets
        model = SwitchTransformer(get_config("tiny_moe_4"), seed=1)
        before = {k: v.copy() for k, v in model.state_dict().items()}
        trainer = Trainer(model, TrainingConfig(steps=1, batch_size=8, learning_rate=1e-3))
        trainer.train_step(next(train_set.batches(8)))
        after = model.state_dict()
        changed = [k for k in before if not np.allclose(before[k], after[k])]
        assert changed


class TestFit:
    def test_loss_decreases(self, datasets):
        train_set, _ = datasets
        model = SwitchTransformer(get_config("tiny_moe_4"), seed=2)
        trainer = Trainer(model, TrainingConfig(steps=30, batch_size=8, learning_rate=3e-3))
        result = trainer.fit(train_set)
        assert len(result.losses) == 30
        assert result.mean_loss(last_n=5) < np.mean(result.losses[:5])

    def test_callback_invoked(self, datasets):
        train_set, _ = datasets
        model = SwitchTransformer(get_config("tiny_moe_4"), seed=3)
        calls = []
        trainer = Trainer(model, TrainingConfig(steps=10, batch_size=8, log_every=5))
        trainer.fit(train_set, callback=lambda step, stats: calls.append(step))
        assert calls == [5, 10]

    def test_pregated_model_trains_too(self, datasets):
        train_set, _ = datasets
        model = PreGatedSwitchTransformer(get_config("tiny_moe_4"), seed=4)
        trainer = Trainer(model, TrainingConfig(steps=10, batch_size=8, learning_rate=3e-3))
        result = trainer.fit(train_set)
        assert result.final_loss < result.losses[0] * 1.5


class TestEvaluate:
    def test_evaluation_scores_in_range(self, datasets, tokenizer):
        _, eval_set = datasets
        model = SwitchTransformer(get_config("tiny_moe_4"), seed=5)
        trainer = Trainer(model, TrainingConfig(steps=1, batch_size=8))
        scores = trainer.evaluate(eval_set, tokenizer, max_new_tokens=3)
        assert 0.0 <= scores.exact_match <= 100.0
        assert 0.0 <= scores.f1 <= 100.0
        assert scores.num_examples == len(eval_set)

    def test_training_improves_eval_score(self, tokenizer):
        """A short fine-tune on the closed-book task lifts ExactMatch well above chance."""
        from repro.data import ClosedBookQATask
        task = ClosedBookQATask(tokenizer=tokenizer, seed=1)
        train_set, eval_set = train_eval_split(task, train_size=64, eval_size=16,
                                               tokenizer=tokenizer)
        model = SwitchTransformer(get_config("tiny_moe_4"), seed=6)
        trainer = Trainer(model, TrainingConfig(steps=50, batch_size=16, learning_rate=3e-3))
        before = trainer.evaluate(eval_set, tokenizer, max_new_tokens=2)
        trainer.fit(train_set)
        after = trainer.evaluate(eval_set, tokenizer, max_new_tokens=2)
        assert after.exact_match >= before.exact_match
        assert after.exact_match > 50.0

    def test_training_result_empty_loss_handling(self):
        from repro.training.trainer import TrainingResult
        result = TrainingResult(steps=0)
        assert np.isnan(result.final_loss)
        assert np.isnan(result.mean_loss())
