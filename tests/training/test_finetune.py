"""Tests for the Table II / Figure 13 fine-tuning experiment harness."""

import pytest

from repro.training import (
    TrainingConfig,
    activation_level_sweep,
    compare_architectures,
)

FAST = TrainingConfig(steps=25, batch_size=8, learning_rate=3e-3, seed=0)


@pytest.fixture(scope="module")
def comparison():
    return compare_architectures("tiny_moe_4", "webqa_like", training=FAST,
                                 train_size=48, eval_size=16, seed=0)


class TestCompareArchitectures:
    def test_both_architectures_evaluated(self, comparison):
        assert comparison.conventional.architecture == "conventional"
        assert comparison.pregated.architecture.startswith("pregated")
        assert comparison.conventional.scores.num_examples == 16
        assert comparison.pregated.scores.num_examples == 16

    def test_same_task_and_config(self, comparison):
        assert comparison.conventional.task == comparison.pregated.task == "webqa_like"
        assert comparison.conventional.config_name == "tiny_moe_4"

    def test_pregated_accuracy_comparable(self, comparison):
        """Table II's claim: the pre-gate does not meaningfully hurt accuracy.

        On the synthetic task we require the pre-gated model to stay within
        20 accuracy points of the conventional model (the paper observes
        differences of a couple of points at most; the tolerance here absorbs
        small-model noise)."""
        gap = comparison.gap("exact_match")
        assert gap > -20.0

    def test_both_models_learn_something(self, comparison):
        assert comparison.conventional.metric("exact_match") > 25.0
        assert comparison.pregated.metric("exact_match") > 25.0

    def test_training_curves_recorded(self, comparison):
        assert len(comparison.conventional.training.losses) == FAST.steps
        assert len(comparison.pregated.training.losses) == FAST.steps

    def test_metric_accessor(self, comparison):
        for name in ("rouge1", "rouge2", "exact_match", "f1"):
            assert 0.0 <= comparison.pregated.metric(name) <= 100.0


class TestActivationLevelSweep:
    def test_sweep_includes_conventional_and_levels(self):
        outcomes = activation_level_sweep("tiny_moe_4", "squad_like", levels=(1, 2),
                                          training=TrainingConfig(steps=15, batch_size=8,
                                                                  learning_rate=3e-3, seed=1),
                                          train_size=32, eval_size=8, seed=1)
        assert "conventional" in outcomes
        assert "N=1" in outcomes
        assert "N=2" in outcomes
        for outcome in outcomes.values():
            assert 0.0 <= outcome.scores.exact_match <= 100.0

    def test_levels_beyond_block_count_skipped(self):
        outcomes = activation_level_sweep("tiny_moe_4", "squad_like", levels=(10,),
                                          training=TrainingConfig(steps=5, batch_size=8, seed=2),
                                          train_size=16, eval_size=8, seed=2)
        assert set(outcomes) == {"conventional"}
