"""Tests for the synthetic task generators and the dataset/batching layer."""

import numpy as np
import pytest

from repro.data.tasks import (
    ClosedBookQATask,
    ExtractiveQATask,
    PAPER_TASK_SUBSTITUTIONS,
    Seq2SeqDataset,
    Seq2SeqExample,
    SummarizationTask,
    list_tasks,
    make_task,
    train_eval_split,
)
from repro.data.tokenizer import default_vocabulary


class TestTaskRegistry:
    def test_all_paper_datasets_have_substitutes(self):
        assert set(PAPER_TASK_SUBSTITUTIONS) == {"Xsum", "CB Web QA", "SQuAD"}
        for task_name in PAPER_TASK_SUBSTITUTIONS.values():
            assert task_name in list_tasks()

    def test_make_task(self):
        assert isinstance(make_task("xsum_like"), SummarizationTask)
        assert isinstance(make_task("squad_like"), ExtractiveQATask)
        assert isinstance(make_task("webqa_like"), ClosedBookQATask)

    def test_unknown_task(self):
        with pytest.raises(ValueError):
            make_task("translation")


class TestSummarizationTask:
    def test_examples_have_compression_structure(self):
        task = SummarizationTask(seed=0)
        for example in task.generate(20):
            source_tokens = example.source.split()
            target_tokens = example.target.split()
            assert len(source_tokens) == task.doc_length
            assert len(target_tokens) == task.summary_length
            assert len(target_tokens) < len(source_tokens)

    def test_summary_is_dominant_cluster_keywords(self):
        task = SummarizationTask(seed=1)
        example = task.generate(1)[0]
        target_tokens = example.target.split()
        cluster = next(c for c in task.clusters if target_tokens[0] in c)
        assert target_tokens == cluster[:task.summary_length]
        # The dominant cluster contributes the majority of the document tokens.
        in_cluster = sum(1 for t in example.source.split() if t in cluster)
        assert in_cluster >= len(example.source.split()) // 2

    def test_determinism_per_seed(self):
        a = SummarizationTask(seed=5).generate(5)
        b = SummarizationTask(seed=5).generate(5)
        assert a == b

    def test_vocab_too_small_rejected(self):
        with pytest.raises(ValueError):
            SummarizationTask(tokenizer=default_vocabulary(5), num_clusters=6, summary_length=3)


class TestExtractiveQATask:
    def test_answer_is_extractable_from_context(self):
        task = ExtractiveQATask(seed=2)
        for example in task.generate(30):
            tokens = example.source.split()
            question_key = tokens[-1]
            context = tokens[:-1]
            key_position = context.index(question_key)
            assert context[key_position + 1] == example.target

    def test_answer_in_value_vocabulary(self):
        task = ExtractiveQATask(seed=3)
        for example in task.generate(10):
            assert example.target in task.values

    def test_vocab_too_small_rejected(self):
        with pytest.raises(ValueError):
            ExtractiveQATask(tokenizer=default_vocabulary(5), num_keys=10, num_values=10)


class TestClosedBookQATask:
    def test_answers_follow_fixed_knowledge_base(self):
        task = ClosedBookQATask(seed=4)
        for example in task.generate(30):
            assert task.knowledge_base[example.source] == example.target

    def test_knowledge_base_is_stable_across_generators_with_same_seed(self):
        a = ClosedBookQATask(seed=7)
        b = ClosedBookQATask(seed=7)
        assert a.knowledge_base == b.knowledge_base

    def test_different_seed_changes_kb(self):
        a = ClosedBookQATask(seed=1)
        b = ClosedBookQATask(seed=2)
        assert a.knowledge_base != b.knowledge_base


class TestDatasetAndBatching:
    @pytest.fixture
    def dataset(self):
        tok = default_vocabulary(60)
        task = ExtractiveQATask(tokenizer=tok, seed=0)
        return Seq2SeqDataset(task.generate(17), tok)

    def test_len_and_getitem(self, dataset):
        assert len(dataset) == 17
        assert isinstance(dataset[0], Seq2SeqExample)

    def test_batch_shapes_and_alignment(self, dataset):
        batch = next(dataset.batches(4))
        assert batch.size == 4
        assert batch.encoder_ids.shape[0] == 4
        assert batch.decoder_input_ids.shape == batch.decoder_target_ids.shape
        # Decoder input starts with BOS and is the target shifted right.
        assert (batch.decoder_input_ids[:, 0] == dataset.tokenizer.bos_id).all()
        assert np.array_equal(batch.decoder_input_ids[:, 1:], batch.decoder_target_ids[:, :-1])

    def test_targets_end_with_eos(self, dataset):
        batch = next(dataset.batches(4))
        eos = dataset.tokenizer.eos_id
        for row in batch.decoder_target_ids:
            non_pad = row[row != dataset.tokenizer.pad_id]
            assert non_pad[-1] == eos

    def test_padding_mask_matches_pad_positions(self, dataset):
        batch = next(dataset.batches(8))
        assert np.array_equal(batch.encoder_padding_mask,
                              batch.encoder_ids == dataset.tokenizer.pad_id)

    def test_batches_cover_all_examples(self, dataset):
        total = sum(batch.size for batch in dataset.batches(4))
        assert total == len(dataset)

    def test_shuffle_changes_order_but_not_content(self, dataset):
        plain = [tuple(b.sources) for b in dataset.batches(4)]
        rng = np.random.default_rng(0)
        shuffled = [tuple(b.sources) for b in dataset.batches(4, shuffle=True, rng=rng)]
        assert sorted(s for batch in plain for s in batch) == \
            sorted(s for batch in shuffled for s in batch)

    def test_invalid_batch_size(self, dataset):
        with pytest.raises(ValueError):
            next(dataset.batches(0))

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            Seq2SeqDataset([], default_vocabulary(5))

    def test_train_eval_split_disjoint_sizes(self):
        task = ClosedBookQATask(seed=0)
        train, evaluation = train_eval_split(task, train_size=20, eval_size=5)
        assert len(train) == 20
        assert len(evaluation) == 5
