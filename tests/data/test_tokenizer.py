"""Tests for the word-level tokenizer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.tokenizer import Tokenizer, default_vocabulary


class TestTokenizer:
    def test_special_token_ids_are_stable(self):
        tok = default_vocabulary(10)
        assert tok.pad_id == 0
        assert tok.bos_id == 1
        assert tok.eos_id == 2
        assert tok.unk_id == 3

    def test_vocab_size(self):
        tok = default_vocabulary(10)
        assert tok.vocab_size == 14
        assert len(tok) == 14

    def test_encode_decode_roundtrip(self):
        tok = default_vocabulary(20)
        text = "w3 w7 w0"
        assert tok.decode(tok.encode(text)) == text

    def test_unknown_words_map_to_unk(self):
        tok = default_vocabulary(5)
        ids = tok.encode("w0 unicorn")
        assert ids[1] == tok.unk_id

    def test_bos_eos_flags(self):
        tok = default_vocabulary(5)
        ids = tok.encode("w1", add_bos=True, add_eos=True)
        assert ids[0] == tok.bos_id and ids[-1] == tok.eos_id

    def test_decode_skips_special_by_default(self):
        tok = default_vocabulary(5)
        assert tok.decode([tok.bos_id, tok.encode("w2")[0], tok.eos_id]) == "w2"
        assert "<bos>" in tok.decode([tok.bos_id], skip_special=False)

    def test_decode_out_of_range(self):
        tok = default_vocabulary(5)
        with pytest.raises(IndexError):
            tok.decode([999])

    def test_pad_batch(self):
        tok = default_vocabulary(5)
        batch = tok.pad_batch([[4, 5], [4]])
        assert batch == [[4, 5], [4, tok.pad_id]]

    def test_pad_batch_with_max_length_truncates(self):
        tok = default_vocabulary(5)
        batch = tok.pad_batch([[4, 5, 6, 7]], max_length=2)
        assert batch == [[4, 5]]

    def test_pad_batch_empty(self):
        assert default_vocabulary(5).pad_batch([]) == []

    def test_duplicate_vocab_rejected(self):
        with pytest.raises(ValueError):
            Tokenizer(["a", "a"])

    def test_invalid_vocab_size(self):
        with pytest.raises(ValueError):
            default_vocabulary(0)

    def test_encode_accepts_token_list(self):
        tok = default_vocabulary(5)
        assert tok.encode(["w0", "w1"]) == tok.encode("w0 w1")


@settings(max_examples=30, deadline=None)
@given(indices=st.lists(st.integers(min_value=0, max_value=29), min_size=1, max_size=20))
def test_property_roundtrip_for_any_word_sequence(indices):
    tok = default_vocabulary(30)
    text = " ".join(f"w{i}" for i in indices)
    assert tok.decode(tok.encode(text)) == text
