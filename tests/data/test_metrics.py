"""Tests for the Rouge / ExactMatch / F1 evaluation metrics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.metrics import (
    evaluate_predictions,
    exact_match,
    rouge1,
    rouge2,
    rouge_n,
    token_f1,
)


class TestRouge:
    def test_identical_strings_score_one(self):
        assert rouge1("a b c", "a b c") == pytest.approx(1.0)
        assert rouge2("a b c", "a b c") == pytest.approx(1.0)

    def test_disjoint_strings_score_zero(self):
        assert rouge1("a b", "c d") == 0.0
        assert rouge2("a b c", "d e f") == 0.0

    def test_partial_overlap(self):
        # prediction "a b", reference "a c": unigram overlap 1, P=R=0.5 -> F1 0.5
        assert rouge1("a b", "a c") == pytest.approx(0.5)

    def test_rouge2_needs_shared_bigrams(self):
        assert rouge2("a b c", "b c d") > 0.0
        assert rouge2("a c b", "a b c") == pytest.approx(0.0, abs=1e-9)

    def test_empty_inputs(self):
        assert rouge1("", "a") == 0.0
        assert rouge2("a", "") == 0.0

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            rouge_n("a", "a", n=0)

    def test_accepts_token_lists(self):
        assert rouge1(["a", "b"], ["a", "b"]) == pytest.approx(1.0)


class TestExactMatchAndF1:
    def test_exact_match(self):
        assert exact_match("paris", "paris") == 1.0
        assert exact_match("paris", "london") == 0.0
        assert exact_match("new york", "new york city") == 0.0

    def test_f1_partial_credit(self):
        assert token_f1("new york", "new york city") == pytest.approx(0.8)
        assert token_f1("a", "b") == 0.0

    def test_f1_empty_edge_cases(self):
        assert token_f1("", "") == 1.0
        assert token_f1("", "a") == 0.0

    def test_f1_at_least_exact_match(self):
        pairs = [("a b", "a b"), ("a b", "a c"), ("x", "y")]
        for pred, ref in pairs:
            assert token_f1(pred, ref) >= exact_match(pred, ref)


class TestEvaluatePredictions:
    def test_perfect_predictions(self):
        scores = evaluate_predictions(["a b", "c"], ["a b", "c"])
        assert scores.exact_match == 100.0
        assert scores.f1 == 100.0
        assert scores.rouge1 == 100.0
        assert scores.num_examples == 2

    def test_mixed_predictions(self):
        scores = evaluate_predictions(["a", "x"], ["a", "b"])
        assert scores.exact_match == pytest.approx(50.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            evaluate_predictions(["a"], ["a", "b"])

    def test_empty_set(self):
        with pytest.raises(ValueError):
            evaluate_predictions([], [])

    def test_as_dict_keys(self):
        scores = evaluate_predictions(["a"], ["a"])
        assert set(scores.as_dict()) == {"rouge1", "rouge2", "exact_match", "f1", "num_examples"}


@settings(max_examples=40, deadline=None)
@given(tokens=st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=10))
def test_property_metrics_are_maximal_on_identity(tokens):
    text = " ".join(tokens)
    assert exact_match(text, text) == 1.0
    assert token_f1(text, text) == pytest.approx(1.0)
    assert rouge1(text, text) == pytest.approx(1.0)


@settings(max_examples=40, deadline=None)
@given(pred=st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=8),
       ref=st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=8))
def test_property_scores_bounded_and_symmetric_f1(pred, ref):
    p, r = " ".join(pred), " ".join(ref)
    for metric in (rouge1, rouge2, token_f1):
        value = metric(p, r)
        assert 0.0 <= value <= 1.0
    assert token_f1(p, r) == pytest.approx(token_f1(r, p))
