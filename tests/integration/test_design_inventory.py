"""Consistency checks between the documentation and the code.

DESIGN.md promises a module for every subsystem and a benchmark for every
table/figure; these tests keep the repository honest about that inventory.
"""

import os
import re


import repro

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


class TestPackageInventory:
    def test_all_documented_subpackages_importable(self):
        for name in ("tensor", "moe", "core", "system", "serving", "training",
                     "data", "workloads", "analysis"):
            assert hasattr(repro, name), f"missing subpackage repro.{name}"

    def test_public_api_exports_resolve(self):
        import repro.core as core
        import repro.moe as moe
        import repro.serving as serving
        import repro.system as system
        for module in (core, moe, serving, system):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name} missing"

    def test_version_string(self):
        assert re.match(r"^\d+\.\d+\.\d+$", repro.__version__)


class TestExperimentIndexCoverage:
    """Every experiment listed in DESIGN.md's index has a benchmark file."""

    EXPECTED_BENCHES = [
        "bench_fig02_flops.py",
        "bench_fig03_capacity.py",
        "bench_table1_configs.py",
        "bench_fig09_timeline.py",
        "bench_fig10_block_latency.py",
        "bench_fig11_throughput.py",
        "bench_fig12_peak_memory.py",
        "bench_table2_accuracy.py",
        "bench_fig13_activation_level.py",
        "bench_fig14_active_experts.py",
        "bench_fig15_caching.py",
        "bench_fig16_ssd.py",
        "bench_headline_claims.py",
    ]

    def test_benchmark_files_exist(self):
        bench_dir = os.path.join(REPO_ROOT, "benchmarks")
        existing = set(os.listdir(bench_dir))
        for name in self.EXPECTED_BENCHES:
            assert name in existing, f"missing benchmark {name}"

    def test_design_doc_references_every_bench(self):
        design = open(os.path.join(REPO_ROOT, "DESIGN.md")).read()
        for name in self.EXPECTED_BENCHES:
            if name == "bench_headline_claims.py":
                continue  # aggregated claims row references it separately
            assert name in design, f"DESIGN.md does not reference {name}"

    def test_examples_exist_and_use_public_api(self):
        examples_dir = os.path.join(REPO_ROOT, "examples")
        examples = [f for f in os.listdir(examples_dir) if f.endswith(".py")]
        assert len(examples) >= 3
        assert "quickstart.py" in examples
        for name in examples:
            source = open(os.path.join(examples_dir, name)).read()
            assert "from repro" in source, f"{name} does not exercise the repro API"

    def test_docs_exist(self):
        for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            path = os.path.join(REPO_ROOT, doc)
            assert os.path.exists(path)
            assert len(open(path).read()) > 1000
