"""Integration tests spanning multiple subsystems.

These tests exercise the full pipelines the examples and benchmarks rely on:
functional model -> routing trace -> serving simulator, and the paper's
headline qualitative claims across all four system designs.
"""

import numpy as np
import pytest

from repro.core import PreGatedSwitchTransformer, peak_memory_comparison
from repro.moe import get_config
from repro.serving import compare_designs, make_engine
from repro.system import ExpertCache, PAPER_SYSTEM, SSD_SYSTEM
from repro.workloads import TraceGenerator, trace_from_routing


class TestFunctionalModelDrivesSimulator:
    """The tiny functional model's real routing decisions feed the serving simulator."""

    def test_tiny_model_trace_through_engines(self):
        config = get_config("tiny_moe_8")
        model = PreGatedSwitchTransformer(config, seed=0)
        src = np.random.default_rng(0).integers(4, config.vocab_size, (1, 8))
        _, traces = model.greedy_decode(src, bos_id=1, eos_id=2, max_new_tokens=4,
                                        collect_trace=True)
        request = trace_from_routing(traces, input_length=8)
        # Scale the architecture up to paper dimensions but keep the real routing.
        paper_config = get_config("switch_base_8").scaled(
            name="switch_base_8_like_tiny",
            num_encoder_layers=config.num_encoder_layers,
            num_decoder_layers=config.num_decoder_layers,
            moe_layer_frequency=config.moe_layer_frequency,
            num_experts=config.num_experts)
        results = {}
        for design in ("gpu_only", "pregated", "ondemand"):
            engine = make_engine(design, paper_config)
            results[design] = engine.run_request(request)
        assert results["gpu_only"].total_time < results["pregated"].total_time
        assert results["pregated"].total_time < results["ondemand"].total_time


class TestHeadlineClaims:
    """Section VI-A's quantitative claims, checked as qualitative/loose bounds."""

    @pytest.fixture(scope="class")
    def results(self):
        config = get_config("switch_base_128")
        traces = TraceGenerator(config, seed=0).workload(2, input_length=16, output_length=12)
        return compare_designs(config, traces)

    def test_pregated_faster_than_ondemand(self, results):
        """Paper: ~1.5-1.7x lower MoE block latency than MoE-OnDemand."""
        ratio = results["ondemand"].mean_block_latency / results["pregated"].mean_block_latency
        assert ratio > 1.3

    def test_pregated_orders_of_magnitude_faster_than_prefetch(self, results):
        """Paper: ~42x (up to 125x) lower block latency than MoE-Prefetch at 128 experts."""
        ratio = results["prefetch_all"].mean_block_latency / results["pregated"].mean_block_latency
        assert ratio > 20

    def test_pregated_close_to_gpu_only(self, results):
        """Paper: only ~19-23% block-latency overhead over the oracular GPU-only."""
        ratio = results["pregated"].mean_block_latency / results["gpu_only"].mean_block_latency
        assert ratio < 1.6

    def test_pregated_reduces_peak_memory_severalfold(self, results):
        """Paper: ~4.2x lower peak GPU memory than GPU-only (we require >2x)."""
        ratio = results["gpu_only"].peak_gpu_bytes / results["pregated"].peak_gpu_bytes
        assert ratio > 2.0

    def test_pregated_close_to_memory_optimal_ondemand(self, results):
        overhead = (results["pregated"].peak_gpu_bytes - results["ondemand"].peak_gpu_bytes)
        assert overhead / results["ondemand"].peak_gpu_bytes < 0.25

    def test_throughput_fraction_of_gpu_only(self, results):
        """Paper: Pre-gated MoE reaches ~81% of GPU-only throughput (we require >50%)."""
        fraction = (results["pregated"].aggregate_tokens_per_second
                    / results["gpu_only"].aggregate_tokens_per_second)
        assert fraction > 0.5


class TestSingleGpuDeployment:
    def test_switch_large_deployable_only_with_offloading(self):
        """The scalability story: Switch-Large fits on one A100 only when experts
        are offloaded (Pre-gated / OnDemand / Prefetch), not with GPU-only."""
        config = get_config("switch_large_128")
        traces = TraceGenerator(config, seed=1).workload(1, input_length=8, output_length=4)
        results = compare_designs(config, traces)
        assert results["gpu_only"].oom
        for design in ("pregated", "ondemand", "prefetch_all"):
            assert not results[design].oom
            assert results[design].aggregate_tokens_per_second > 0

    def test_equation_one_consistent_with_engine_measurement(self):
        """The analytic Equation-1 model and the engine's measured peak agree on ordering."""
        config = get_config("switch_base_64")
        analytic = peak_memory_comparison(config)
        traces = TraceGenerator(config, seed=2).workload(1, input_length=8, output_length=4)
        measured = {d: r.peak_gpu_bytes for d, r in compare_designs(config, traces).items()
                    if not r.oom}
        analytic_order = sorted(measured, key=lambda d: analytic[d])
        measured_order = sorted(measured, key=lambda d: measured[d])
        assert analytic_order == measured_order


class TestSsdOffloading:
    def test_figure16_pregated_still_best_but_gap_shrinks(self):
        """Figure 16: on SSD offloading every design slows down massively, but
        Pre-gated MoE remains the fastest CPU-GPU design."""
        config = get_config("switch_large_128")
        traces = TraceGenerator(config, seed=3).workload(1, input_length=8, output_length=4)
        dram = compare_designs(config, traces, designs=("pregated", "ondemand"),
                               system=PAPER_SYSTEM)
        ssd = compare_designs(config, traces, designs=("pregated", "ondemand"), system=SSD_SYSTEM)
        assert ssd["pregated"].aggregate_tokens_per_second < dram["pregated"].aggregate_tokens_per_second
        assert ssd["pregated"].aggregate_tokens_per_second >= ssd["ondemand"].aggregate_tokens_per_second
        dram_gap = (dram["pregated"].aggregate_tokens_per_second
                    / dram["ondemand"].aggregate_tokens_per_second)
        ssd_gap = (ssd["pregated"].aggregate_tokens_per_second
                   / ssd["ondemand"].aggregate_tokens_per_second)
        assert ssd_gap <= dram_gap + 0.1


class TestCachingAcrossDesigns:
    def test_caching_helps_ondemand_more_than_pregated(self):
        """Figure 15's second-order finding: caching benefits MoE-OnDemand more,
        because Pre-gated MoE already hides most migration latency."""
        config = get_config("switch_base_64")
        traces = TraceGenerator(config, skew=1.5, seed=4).workload(3, input_length=8,
                                                                   output_length=10)

        def throughput(design, cached):
            cache = ExpertCache(capacity_experts=150, policy="lru") if cached else None
            engine = make_engine(design, config, cache=cache)
            return engine.run_workload(traces).aggregate_tokens_per_second

        pre_gain = throughput("pregated", True) / throughput("pregated", False)
        ondemand_gain = throughput("ondemand", True) / throughput("ondemand", False)
        assert ondemand_gain >= pre_gain * 0.95
        assert ondemand_gain > 1.0
