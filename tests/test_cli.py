"""Tests for the ``python -m repro`` sweep CLI."""

import pytest

from repro.cli import SWEEPS, main


class TestCli:
    def test_list_names_every_sweep(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in SWEEPS:
            assert name in out

    def test_unknown_sweep_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_serving_load_quick_prints_report(self, capsys):
        assert main(["serving_load", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "serving_load sweep" in out
        assert "sustained_tokens_per_second" in out
        assert "pregated" in out

    def test_expert_parallel_quick_writes_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "sweep.csv"
        assert main(["expert_parallel", "--quick", "--csv", str(csv_path)]) == 0
        text = csv_path.read_text()
        header = text.splitlines()[0]
        assert "num_gpus" in header
        assert "alltoall_mb" in header
        # One row per design × gpu-count cell of the quick grid.
        assert len(text.strip().splitlines()) == 1 + 4
