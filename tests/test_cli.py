"""Tests for the ``python -m repro`` sweep CLI."""

import os

import pytest

from repro.cli import SWEEPS, main


class TestCli:
    def test_list_names_every_sweep(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in SWEEPS:
            assert name in out

    def test_unknown_sweep_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_serving_load_quick_prints_report(self, capsys):
        assert main(["serving_load", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "serving_load sweep" in out
        assert "sustained_tokens_per_second" in out
        assert "pregated" in out

    def test_expert_parallel_quick_writes_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "sweep.csv"
        assert main(["expert_parallel", "--quick", "--csv", str(csv_path)]) == 0
        text = csv_path.read_text()
        header = text.splitlines()[0]
        assert "num_gpus" in header
        assert "alltoall_mb" in header
        # One row per design × gpu-count cell of the quick grid.
        assert len(text.strip().splitlines()) == 1 + 4

    def test_workers_flag_matches_serial(self, tmp_path, capsys):
        serial_csv = tmp_path / "serial.csv"
        parallel_csv = tmp_path / "parallel.csv"
        assert main(["serving_load", "--quick", "--csv", str(serial_csv)]) == 0
        assert main(["serving_load", "--quick", "--workers", "2",
                     "--csv", str(parallel_csv)]) == 0
        assert serial_csv.read_text() == parallel_csv.read_text()

    def test_invalid_workers_rejected(self):
        with pytest.raises(SystemExit):
            main(["serving_load", "--quick", "--workers", "0"])

    def test_simperf_quick_smokes_without_writing_json(self, tmp_path,
                                                       monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["simperf", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "peak resident ops" in out
        for mode in ("no_trace", "kernel", "kernel_replay"):
            assert mode in out
        # Only --full (the recorded scaling ladder) writes the artifact —
        # a smoke shape must never overwrite the committed trajectory.
        assert not os.path.exists(tmp_path / "BENCH_simperf.json")

    def test_simperf_rejects_workers_and_full_needs_simperf(self):
        with pytest.raises(SystemExit):
            main(["simperf", "--quick", "--workers", "2"])
        with pytest.raises(SystemExit):
            main(["serving_load", "--full"])
        with pytest.raises(SystemExit):
            main(["simperf", "--full", "--quick"])

    def test_profile_flag_prints_cprofile_table(self, capsys):
        assert main(["serving_load", "--quick", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "cumulative" in out          # pstats header
        assert "serving_load sweep" in out  # the report still renders

    def test_profile_rejected_with_worker_pool(self):
        with pytest.raises(SystemExit):
            main(["serving_load", "--quick", "--profile", "--workers", "2"])
