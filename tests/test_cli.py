"""Tests for the ``python -m repro`` sweep CLI."""

import csv
import json
import os

import pytest

from repro.cli import SWEEPS, main


class TestCli:
    def test_list_names_every_sweep(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in SWEEPS:
            assert name in out

    def test_unknown_sweep_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_serving_load_quick_prints_report(self, capsys):
        assert main(["serving_load", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "serving_load sweep" in out
        assert "sustained_tokens_per_second" in out
        assert "pregated" in out

    def test_expert_parallel_quick_writes_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "sweep.csv"
        assert main(["expert_parallel", "--quick", "--csv", str(csv_path)]) == 0
        text = csv_path.read_text()
        header = text.splitlines()[0]
        assert "num_gpus" in header
        assert "alltoall_mb" in header
        # One row per design × gpu-count cell of the quick grid.
        assert len(text.strip().splitlines()) == 1 + 4

    def test_workers_flag_matches_serial(self, tmp_path, capsys):
        serial_csv = tmp_path / "serial.csv"
        parallel_csv = tmp_path / "parallel.csv"
        assert main(["serving_load", "--quick", "--csv", str(serial_csv)]) == 0
        assert main(["serving_load", "--quick", "--workers", "2",
                     "--csv", str(parallel_csv)]) == 0
        assert serial_csv.read_text() == parallel_csv.read_text()

    def test_invalid_workers_rejected(self):
        with pytest.raises(SystemExit):
            main(["serving_load", "--quick", "--workers", "0"])

    def test_simperf_quick_smokes_without_writing_json(self, tmp_path,
                                                       monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["simperf", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "peak resident ops" in out
        for mode in ("no_trace", "kernel", "kernel_replay"):
            assert mode in out
        # Only --full (the recorded scaling ladder) writes the artifact —
        # a smoke shape must never overwrite the committed trajectory.
        assert not os.path.exists(tmp_path / "BENCH_simperf.json")

    def test_simperf_rejects_workers_and_full_needs_simperf(self):
        with pytest.raises(SystemExit):
            main(["simperf", "--quick", "--workers", "2"])
        with pytest.raises(SystemExit):
            main(["serving_load", "--full"])
        with pytest.raises(SystemExit):
            main(["simperf", "--full", "--quick"])

    def test_profile_flag_prints_cprofile_table(self, capsys):
        assert main(["serving_load", "--quick", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "cumulative" in out          # pstats header
        assert "serving_load sweep" in out  # the report still renders

    def test_profile_rejected_with_worker_pool(self):
        with pytest.raises(SystemExit):
            main(["serving_load", "--quick", "--profile", "--workers", "2"])

    def test_seed_changes_report_but_is_reproducible(self, tmp_path):
        seed0a = tmp_path / "s0a.csv"
        seed0b = tmp_path / "s0b.csv"
        seed7 = tmp_path / "s7.csv"
        assert main(["serving_load", "--quick", "--seed", "0",
                     "--csv", str(seed0a)]) == 0
        assert main(["serving_load", "--quick",
                     "--csv", str(seed0b)]) == 0
        assert main(["serving_load", "--quick", "--seed", "7",
                     "--csv", str(seed7)]) == 0
        assert seed0a.read_text() == seed0b.read_text()  # default seed is 0
        assert seed0a.read_text() != seed7.read_text()

    def test_seed_rejected_for_simperf(self):
        with pytest.raises(SystemExit):
            main(["simperf", "--quick", "--seed", "1"])

    def test_tensorperf_quick_smokes_without_writing_json(self, tmp_path,
                                                          monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["tensorperf", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "train steps/s" in out
        for token in ("tiny", "mini", "eager", "lazy"):
            assert token in out
        # Only --full (which adds the serving-scale rung) writes the
        # artifact — a smoke shape must never overwrite the trajectory.
        assert not os.path.exists(tmp_path / "BENCH_tensorperf.json")

    def test_tensorperf_rejects_workers_and_seed(self):
        with pytest.raises(SystemExit):
            main(["tensorperf", "--quick", "--workers", "2"])
        with pytest.raises(SystemExit):
            main(["tensorperf", "--quick", "--seed", "1"])
        with pytest.raises(SystemExit):
            main(["tensorperf", "--full", "--quick"])


class TestTraceCommand:
    def test_trace_quick_writes_perfetto_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "--quick", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "perfetto" in stdout.lower()
        payload = json.loads(out.read_text())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert events
        phases = {event["ph"] for event in events}
        assert {"X", "M"} <= phases
        assert {"s", "f"} <= phases  # request flow arrows
        # Both devices of the 2-GPU scenario render as processes, and the
        # request-span track process rides along.
        pids = {event["pid"] for event in events}
        assert {0, 1} <= pids and len(pids) == 3

    def test_trace_metrics_out_csv(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.csv"
        assert main(["trace", "--quick", "--out", str(out),
                     "--metrics-out", str(metrics)]) == 0
        with open(metrics) as handle:
            rows = list(csv.DictReader(handle))
        assert rows
        names = {row["name"] for row in rows if row["kind"] == "gauge"}
        assert {"queue_depth", "timeline_ops"} <= names

    def test_trace_rejects_workers(self):
        with pytest.raises(SystemExit):
            main(["trace", "--quick", "--workers", "2"])

    def test_out_rejected_for_other_sweeps(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["serving_load", "--quick", "--out",
                  str(tmp_path / "x.json")])


class TestMetricsOut:
    def test_sweep_metrics_jsonl_tagged_with_axes(self, tmp_path, capsys):
        path = tmp_path / "metrics.jsonl"
        assert main(["serving_load", "--quick",
                     "--metrics-out", str(path)]) == 0
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows
        assert all({"design", "rate", "kind", "name"} <= set(row)
                   for row in rows)
        assert {row["design"] for row in rows} == {"pregated", "ondemand"}

    def test_metrics_out_rejected_for_simperf(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["simperf", "--quick",
                  "--metrics-out", str(tmp_path / "m.jsonl")])

    def test_no_metrics_out_means_no_probe_columns(self, tmp_path, capsys):
        csv_path = tmp_path / "sweep.csv"
        assert main(["serving_load", "--quick", "--csv", str(csv_path)]) == 0
        with open(csv_path) as handle:
            rows = list(csv.DictReader(handle))
        assert all(row["probe_samples"] == "-" for row in rows)


class TestSimperfProbedMode:
    def test_quick_run_measures_probed_mode(self, tmp_path, monkeypatch,
                                            capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["simperf", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "no_trace_probed" in out
