"""repro — reproduction of *Pre-gated MoE* (Hwang et al., ISCA 2024).

The package is organised as an algorithm/system co-design, mirroring the
paper:

* :mod:`repro.tensor` — numpy autograd + NN substrate.
* :mod:`repro.moe` — conventional Switch-Transformer MoE substrate
  (routers, experts, model, FLOPs and capacity models).
* :mod:`repro.core` — the Pre-gated MoE contribution: pre-gate function,
  pre-gated model, preemptive migration planning, peak-memory model.
* :mod:`repro.system` — hardware performance model, memory pools, the
  dual-stream execution timeline and expert caches.
* :mod:`repro.serving` — the four serving engines (GPU-only, MoE-OnDemand,
  MoE-Prefetch, Pre-gated MoE) and their metrics.
* :mod:`repro.training` — fine-tuning harness for the accuracy experiments.
* :mod:`repro.data` — synthetic tasks, tokenizer and Rouge/EM/F1 metrics.
* :mod:`repro.workloads` — inference workloads and expert-activation traces.
* :mod:`repro.analysis` — reporting utilities used by the benchmark harness.
"""

__version__ = "1.0.0"

from . import analysis, core, data, moe, serving, system, tensor, training, workloads

__all__ = [
    "analysis",
    "core",
    "data",
    "moe",
    "serving",
    "system",
    "tensor",
    "training",
    "workloads",
    "__version__",
]
