"""Reporting helpers: tables, normalised series and CSV emission.

The benchmark harness uses these utilities to print paper-style rows (each
figure's series, normalised the same way the paper normalises them) and to
emit the same CSV files the paper's artifact produces
(``block_lats.csv``, ``throughputs.csv``, ``peak_mems.csv``).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 float_format: str = "{:.3f}") -> str:
    """Render a fixed-width text table."""
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def normalise_series(values: Mapping[str, float], reference: str,
                     oom_keys: Iterable[str] = ()) -> Dict[str, Optional[float]]:
    """Normalise a metric mapping to one entry, propagating OOM entries as None.

    Mirrors the paper's figures: values are plotted relative to GPU-only,
    except when GPU-only is OOM, in which case the series is normalised to
    Pre-gated MoE (Figure 10/12 captions).
    """
    oom = set(oom_keys)
    if reference in oom or reference not in values:
        raise KeyError(f"reference {reference!r} unavailable for normalisation")
    ref = values[reference]
    if ref == 0:
        raise ZeroDivisionError("reference value is zero")
    out: Dict[str, Optional[float]] = {}
    for key, value in values.items():
        out[key] = None if key in oom else value / ref
    return out


def pick_reference(preferred: Sequence[str], oom_keys: Iterable[str]) -> str:
    """First non-OOM design in ``preferred`` (paper's normalisation fallback)."""
    oom = set(oom_keys)
    for key in preferred:
        if key not in oom:
            return key
    raise ValueError("all candidate reference designs are OOM")


def to_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Serialise rows to CSV text (the artifact's output format)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    return buffer.getvalue()


def write_csv(path: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    """Write rows to a CSV file on disk."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))


#: Column order of load-test report rows; keys into
#: :meth:`repro.serving.metrics.LoadTestResult.summary`.
LOAD_REPORT_COLUMNS = [
    "design", "config", "replicas", "num_gpus", "offered_load_rps", "requests",
    "sustained_tokens_per_second", "p50_ttft_ms", "p99_ttft_ms",
    "p50_tbt_ms", "p99_tbt_ms", "mean_queueing_ms", "peak_gpu_gb",
    "cache_hit_rate", "cache_evictions", "gb_transferred", "gb_saved",
    "offload_tier", "ssd_gb_read", "stage_hit_rate",
    "device_util", "alltoall_mb", "shard_imbalance",
    "replay_windows", "replay_rounds", "replay_ops",
    "probe_samples", "max_queue_depth",
]

#: Load-report cells rendered as "-" when the run had no expert cache (or,
#: for the tier columns, no offloading / no DRAM staging cache; for
#: alltoall_mb/shard_imbalance, a single-GPU replica — device_util stays
#: populated there, since one device's compute utilisation is still
#: meaningful; for probe_samples/max_queue_depth, a run without sampled
#: probes enabled).
_CACHE_COLUMNS = ("cache_hit_rate", "cache_evictions",
                  "offload_tier", "ssd_gb_read", "stage_hit_rate",
                  "device_util", "alltoall_mb", "shard_imbalance",
                  "probe_samples", "max_queue_depth")


def load_test_report(results: Sequence, figure: str = "Serving load test",
                     description: str = "Sustained throughput and tail latency under load",
                     paper_reference: str = "", notes: str = "") -> "FigureReport":
    """Build a :class:`FigureReport` from load-test results.

    ``results`` is any sequence of objects exposing ``summary()`` in the
    shape of :class:`repro.serving.metrics.LoadTestResult` (single-replica
    schedulers and multi-replica clusters both qualify).  OOM runs render
    their metric cells as ``"OOM"``, mirroring the paper's figure style.
    """
    report = FigureReport(figure=figure, description=description,
                          headers=list(LOAD_REPORT_COLUMNS),
                          paper_reference=paper_reference, notes=notes)
    for result in results:
        summary = result.summary()
        row = []
        for column in LOAD_REPORT_COLUMNS:
            value = summary.get(column)
            if summary.get("oom") and column not in ("design", "config", "replicas",
                                                     "num_gpus", "offered_load_rps",
                                                     "requests"):
                row.append("OOM")
            elif column in _CACHE_COLUMNS and value is None:
                row.append("-")
            elif isinstance(value, float):
                row.append(round(value, 3))
            else:
                row.append(value)
        report.add_row(*row)
    return report


@dataclass
class FigureReport:
    """A reproduced figure/table: labelled series plus provenance notes.

    ``paper_reference`` records what the paper reports for the same series so
    EXPERIMENTS.md can show paper-vs-measured side by side.
    """

    figure: str
    description: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    paper_reference: str = ""
    notes: str = ""

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells but the report has {len(self.headers)} columns")
        self.rows.append(list(values))

    def render(self) -> str:
        parts = [f"== {self.figure}: {self.description} =="]
        parts.append(format_table(self.headers, self.rows))
        if self.paper_reference:
            parts.append(f"Paper reference: {self.paper_reference}")
        if self.notes:
            parts.append(f"Notes: {self.notes}")
        return "\n".join(parts)

    def as_csv(self) -> str:
        return to_csv(self.headers, self.rows)
