"""Reporting and figure/table reconstruction helpers."""

from .report import (
    FigureReport,
    format_table,
    normalise_series,
    pick_reference,
    to_csv,
    write_csv,
)

__all__ = [
    "FigureReport",
    "format_table",
    "normalise_series",
    "pick_reference",
    "to_csv",
    "write_csv",
]
