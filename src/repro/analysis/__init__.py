"""Reporting and figure/table reconstruction helpers."""

from .simperf import run_simperf, write_simperf
from .report import (
    FigureReport,
    LOAD_REPORT_COLUMNS,
    format_table,
    load_test_report,
    normalise_series,
    pick_reference,
    to_csv,
    write_csv,
)

__all__ = [
    "FigureReport",
    "LOAD_REPORT_COLUMNS",
    "format_table",
    "load_test_report",
    "normalise_series",
    "pick_reference",
    "run_simperf",
    "to_csv",
    "write_csv",
    "write_simperf",
]
