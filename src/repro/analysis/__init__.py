"""Reporting and figure/table reconstruction helpers."""

from .simperf import run_simperf, write_simperf
from .tensorperf import run_tensorperf, write_tensorperf
from .report import (
    FigureReport,
    LOAD_REPORT_COLUMNS,
    format_table,
    load_test_report,
    normalise_series,
    pick_reference,
    to_csv,
    write_csv,
)

__all__ = [
    "FigureReport",
    "LOAD_REPORT_COLUMNS",
    "format_table",
    "load_test_report",
    "normalise_series",
    "pick_reference",
    "run_simperf",
    "run_tensorperf",
    "to_csv",
    "write_csv",
    "write_simperf",
    "write_tensorperf",
]
