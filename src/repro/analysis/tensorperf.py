"""Real-model tensor-path performance benchmark (the model perf trajectory).

Where ``simperf`` measures the discrete-event *simulator*, this benchmark
measures the *real-model* path: the numpy tensor engine that the Table-2
accuracy and fine-tuning benches run on.  It times three workloads on a
ladder of model/batch shapes, for both tensor backends:

* ``forward``  — a full encoder–decoder forward pass under ``no_grad``
  (tokens per wall-clock second);
* ``train``    — one fine-tuning step: forward, fused softmax–cross-entropy
  loss, backward, gradient clipping, Adam update (steps/s and tokens/s);
* ``generate`` — batched greedy decoding with the KV cache (new tokens per
  second).

The ladder (:data:`RUNGS`) spans the shapes the functional benches actually
use — ``tiny`` is the Table-2 seed shape, ``mini`` the promoted ≥4×-larger
Table-2 config — plus a serving-scale rung (``tiny_serving``, ~30k tokens
per step) where the *pre-optimisation* engine's quadratic expert-combine
and KV-cache behaviour dominated.  :data:`RECORDED_EAGER_BASELINE` pins
that pre-optimisation engine's throughput, measured at the commit before
the lazy/fused backend landed with this module's exact protocol, so every
run reports an honest speedup trajectory against it (the tentpole claim —
≥10× train-step throughput at the serving rung — is asserted by
``benchmarks/bench_tensorperf.py`` and recorded in
``BENCH_tensorperf.json``).

Timing protocol: every metric is the best (minimum wall time) of ``reps``
repetitions after one untimed warmup, which is the standard estimator on a
shared/noisy host — the minimum approaches the true cost while means drift
with co-tenant load.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..moe.configs import get_config
from ..moe.transformer import SwitchTransformer
from ..tensor import Adam, clip_grad_norm, no_grad, use_backend
from ..tensor import functional as F

#: Decoding ids shared by every rung (vocab ids 0/1 are pad/bos in the
#: synthetic tasks).
BOS_ID = 1
EOS_ID = 0
SEED = 0

#: The measurement ladder.  ``reps`` is the per-metric repetition count
#: (the minimum is reported); ``full_only`` rungs run only with ``full``
#: (they take tens of seconds per repetition on the pre-optimisation
#: baseline and are the artifact-regeneration path, not a CI job).
RUNGS: Sequence[Dict[str, object]] = (
    {"name": "tiny", "config": "tiny_moe_8", "batch": 16,
     "input_length": 12, "output_length": 8, "reps": 8, "full_only": False},
    {"name": "mini", "config": "switch_mini_8", "batch": 16,
     "input_length": 12, "output_length": 8, "reps": 6, "full_only": False},
    {"name": "tiny_serving", "config": "tiny_moe_8", "batch": 768,
     "input_length": 24, "output_length": 16, "reps": 3, "full_only": True},
)

#: Tensor backends compared at every rung.
BACKENDS = ("eager", "lazy")

#: Pre-optimisation eager-engine throughput, measured at the commit before
#: the lazy/fused backend landed (per-op graph, per-expert Python-loop
#: dispatch, O(T²) scatter-matmul combine, re-concatenating KV cache) on
#: the recording machine with this module's protocol (min over reps).
#: These are the denominators of every reported speedup.
RECORDED_EAGER_BASELINE: Dict[str, Dict[str, float]] = {
    "tiny": {
        "train_steps_per_s": 25.77,
        "train_tokens_per_s": 8246.0,
        "forward_tokens_per_s": 21635.0,
        "generate_tokens_per_s": 2789.0,
    },
    "mini": {
        "train_steps_per_s": 9.58,
        "train_tokens_per_s": 3065.0,
        "forward_tokens_per_s": 12321.0,
        "generate_tokens_per_s": 2127.0,
    },
    "tiny_serving": {
        "train_steps_per_s": 0.0442,
        "train_tokens_per_s": 1356.0,
        "forward_tokens_per_s": 5617.0,
        "generate_tokens_per_s": 3412.0,
    },
}

#: CI floors: a quick run's *eager* train throughput below these fails the
#: perf smoke job.  Values are ~0.25x the measurement on the recording
#: machine, so honest regressions trip them but CI-runner jitter does not.
EAGER_TRAIN_FLOOR_STEPS_PER_S: Dict[str, float] = {
    "tiny": 9.0,
    "mini": 3.0,
}

#: Parity budget between the two backends (they share one primitive
#: registry, so the observed difference is exactly zero; the budget is the
#: acceptance bar).
PARITY_BUDGET = 1e-9

#: Canonical artifact filename (committed at the repo root).
TENSORPERF_FILENAME = "BENCH_tensorperf.json"


def _best(fn: Callable[[], object], reps: int) -> float:
    """Minimum wall time of ``reps`` calls after one untimed warmup."""
    fn()
    times = []
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return min(times)


def _rung_data(rung: Dict[str, object]):
    config = get_config(rung["config"])
    rng = np.random.default_rng(SEED)
    batch, in_len, out_len = rung["batch"], rung["input_length"], rung["output_length"]
    enc = rng.integers(1, config.vocab_size, size=(batch, in_len))
    dec = rng.integers(1, config.vocab_size, size=(batch, out_len))
    tgt = rng.integers(1, config.vocab_size, size=(batch, out_len))
    return config, enc, dec, tgt


def measure_rung(rung: Dict[str, object], backend: str,
                 reps: Optional[int] = None) -> Dict[str, float]:
    """Measure forward / train / generate throughput at one ladder rung.

    Only the workload itself is inside the timed region; model
    construction and input generation are shared setup.  The backend is
    active for the whole measurement via :func:`repro.tensor.use_backend`.
    """
    config, enc, dec, tgt = _rung_data(rung)
    reps = int(rung["reps"]) if reps is None else reps
    tokens = enc.size + dec.size
    with use_backend(backend):
        model = SwitchTransformer(config, seed=SEED)
        model.train()
        opt = Adam(model.parameters(), lr=1e-4)

        def train_step():
            out = model(enc, dec)
            loss = F.cross_entropy(out.logits, tgt, ignore_index=0)
            loss = loss + out.aux_loss * 1e-2
            model.zero_grad()
            loss.backward()
            clip_grad_norm(model.parameters(), 1.0)
            opt.step()

        t_train = _best(train_step, reps)

        model.eval()

        def forward():
            with no_grad():
                model(enc, dec)

        t_forward = _best(forward, reps)

        def generate():
            return model.greedy_decode(enc, bos_id=BOS_ID, eos_id=EOS_ID,
                                       max_new_tokens=rung["output_length"])

        generated, _ = generate()
        gen_tokens = enc.shape[0] * (generated.shape[1] - 1)
        t_generate = _best(generate, max(2, reps // 2))

    return {
        "backend": backend,
        "train_steps_per_s": 1.0 / t_train,
        "train_tokens_per_s": tokens / t_train,
        "forward_tokens_per_s": tokens / t_forward,
        "generate_tokens_per_s": gen_tokens / t_generate,
        "train_wall_seconds": t_train,
    }


def measure_parity(config_name: str = "switch_mini_8", batch: int = 4,
                   input_length: int = 6, output_length: int = 5) -> Dict[str, float]:
    """Max |eager − lazy| difference of the loss and every parameter grad.

    Runs the identical train-step computation (same seeds, same inputs)
    once per backend and compares the loss value and all gradients.  The
    backends share one primitive registry, so the difference is exactly
    0.0; the recorded numbers make the parity claim auditable from the
    artifact alone.
    """
    rung = {"config": config_name, "batch": batch, "input_length": input_length,
            "output_length": output_length}
    config, enc, dec, tgt = _rung_data(rung)
    results = {}
    for backend in BACKENDS:
        with use_backend(backend):
            model = SwitchTransformer(config, seed=SEED)
            model.train()
            out = model(enc, dec)
            loss = F.cross_entropy(out.logits, tgt, ignore_index=0)
            loss = loss + out.aux_loss * 1e-2
            model.zero_grad()
            loss.backward()
            results[backend] = (
                float(loss.item()),
                [None if p.grad is None else np.array(p.grad)
                 for p in model.parameters()],
            )
    loss_e, grads_e = results["eager"]
    loss_l, grads_l = results["lazy"]
    grad_diff = 0.0
    for ge, gl in zip(grads_e, grads_l):
        assert (ge is None) == (gl is None)
        if ge is not None:
            grad_diff = max(grad_diff, float(np.max(np.abs(ge - gl))))
    return {
        "loss_abs_diff": abs(loss_e - loss_l),
        "grad_max_abs_diff": grad_diff,
        "budget": PARITY_BUDGET,
    }


def run_tensorperf(quick: bool = False, full: bool = False) -> Dict[str, object]:
    """Measure the ladder; returns the ``BENCH_tensorperf.json`` payload.

    ``quick`` measures the always-on rungs with fewer repetitions (the CI
    smoke shape); the default measures them at full repetitions; ``full``
    adds the serving-scale rung and is the artifact-regeneration path
    (minutes of wall time on the recording machine).
    """
    ladder: Dict[str, Dict[str, object]] = {}
    for rung in RUNGS:
        if rung["full_only"] and not full:
            continue
        reps = max(2, int(rung["reps"]) // 2) if quick else None
        by_backend = {backend: measure_rung(rung, backend, reps=reps)
                      for backend in BACKENDS}
        ladder[str(rung["name"])] = {
            "config": rung["config"],
            "batch": rung["batch"],
            "input_length": rung["input_length"],
            "output_length": rung["output_length"],
            "tokens_per_step": rung["batch"] * (
                rung["input_length"] + rung["output_length"]),
            "backends": by_backend,
        }
    speedups: Dict[str, Dict[str, float]] = {}
    for name, row in ladder.items():
        base = RECORDED_EAGER_BASELINE.get(name)
        if base is None:
            continue
        eager = row["backends"]["eager"]
        speedups[name] = {
            metric: eager[metric] / base[metric]
            for metric in ("train_steps_per_s", "forward_tokens_per_s",
                           "generate_tokens_per_s")
            if base.get(metric)
        }
    payload: Dict[str, object] = {
        "benchmark": "tensorperf",
        "python": platform.python_version(),
        "seed": SEED,
        "recorded_eager_baseline": RECORDED_EAGER_BASELINE,
        "floors": {"eager_train_steps_per_s": EAGER_TRAIN_FLOOR_STEPS_PER_S},
        "ladder": ladder,
        "parity": measure_parity(),
        "speedup_over_recorded_baseline": speedups,
    }
    return payload


def write_tensorperf(payload: Dict[str, object], path: str) -> None:
    """Persist a :func:`run_tensorperf` payload as pretty-printed JSON."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
