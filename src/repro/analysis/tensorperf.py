"""Real-model tensor-path performance benchmark (the model perf trajectory).

Where ``simperf`` measures the discrete-event *simulator*, this benchmark
measures the *real-model* path: the numpy tensor engine that the Table-2
accuracy and fine-tuning benches run on.  It times three workloads on a
ladder of model/batch shapes, for both tensor backends:

* ``forward``  — a full encoder–decoder forward pass under ``no_grad``
  (tokens per wall-clock second);
* ``train``    — one fine-tuning step: forward, fused softmax–cross-entropy
  loss, backward, gradient clipping, Adam update (steps/s and tokens/s);
* ``generate`` — batched greedy decoding with the KV cache (new tokens per
  second).

The ladder (:data:`RUNGS`) spans the shapes the functional benches actually
use — ``tiny`` is the Table-2 seed shape, ``mini`` the promoted ≥4×-larger
Table-2 config — plus a serving-scale rung (``tiny_serving``, ~30k tokens
per step) where the *pre-optimisation* engine's quadratic expert-combine
and KV-cache behaviour dominated.  :data:`RECORDED_EAGER_BASELINE` pins
that pre-optimisation engine's throughput, measured at the commit before
the lazy/fused backend landed with this module's exact protocol, so every
run reports an honest speedup trajectory against it (the tentpole claim —
≥10× train-step throughput at the serving rung — is asserted by
``benchmarks/bench_tensorperf.py`` and recorded in
``BENCH_tensorperf.json``).

Timing protocol: every metric is the best (minimum wall time) of ``reps``
repetitions after one untimed warmup, which is the standard estimator on a
shared/noisy host — the minimum approaches the true cost while means drift
with co-tenant load.
"""

from __future__ import annotations

import gc
import json
import platform
import time
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..moe.configs import get_config
from ..moe.transformer import SwitchTransformer
from ..tensor import Adam, clip_grad_norm, no_grad, use_backend, use_precision
from ..tensor import functional as F

#: Decoding ids shared by every rung (vocab ids 0/1 are pad/bos in the
#: synthetic tasks).
BOS_ID = 1
EOS_ID = 0
SEED = 0

#: The measurement ladder.  ``reps`` is the per-metric repetition count
#: (the minimum is reported); ``full_only`` rungs run only with ``full``
#: (they take tens of seconds per repetition on the pre-optimisation
#: baseline and are the artifact-regeneration path, not a CI job).
RUNGS: Sequence[Dict[str, object]] = (
    {"name": "tiny", "config": "tiny_moe_8", "batch": 16,
     "input_length": 12, "output_length": 8, "reps": 8, "full_only": False},
    {"name": "mini", "config": "switch_mini_8", "batch": 16,
     "input_length": 12, "output_length": 8, "reps": 6, "full_only": False},
    {"name": "tiny_serving", "config": "tiny_moe_8", "batch": 768,
     "input_length": 24, "output_length": 16, "reps": 4, "full_only": True},
)

#: Tensor backends compared at every rung.
BACKENDS = ("eager", "lazy")

#: Precision policies measured at every rung (the precision axis): the
#: bit-identical default, pure fp32, and the mixed recipe (fp32 compute,
#: fp64 master weights and fp64 softmax/LayerNorm/loss reductions).
PRECISIONS = ("pure_fp64", "pure_fp32", "mixed")

#: Pre-optimisation eager-engine throughput, measured at the commit before
#: the lazy/fused backend landed (per-op graph, per-expert Python-loop
#: dispatch, O(T²) scatter-matmul combine, re-concatenating KV cache) on
#: the recording machine with this module's protocol (min over reps).
#: These are the denominators of every reported speedup.
RECORDED_EAGER_BASELINE: Dict[str, Dict[str, float]] = {
    "tiny": {
        "train_steps_per_s": 25.77,
        "train_tokens_per_s": 8246.0,
        "forward_tokens_per_s": 21635.0,
        "generate_tokens_per_s": 2789.0,
    },
    "mini": {
        "train_steps_per_s": 9.58,
        "train_tokens_per_s": 3065.0,
        "forward_tokens_per_s": 12321.0,
        "generate_tokens_per_s": 2127.0,
    },
    "tiny_serving": {
        "train_steps_per_s": 0.0442,
        "train_tokens_per_s": 1356.0,
        "forward_tokens_per_s": 5617.0,
        "generate_tokens_per_s": 3412.0,
    },
}

#: CI floors per precision policy: a quick run's *eager* train throughput
#: below these fails the perf smoke job.  Values are ~0.4x the measurement
#: on the recording machine (see the committed artifact), so honest
#: regressions trip them but CI-runner jitter does not.  The fp64 floors
#: were tightened from the pre-precision values (tiny 9.0 / mini 3.0,
#: ~5x slack against the measured 46.5 / 16.9).
TRAIN_FLOOR_STEPS_PER_S: Dict[str, Dict[str, float]] = {
    "pure_fp64": {"tiny": 18.0, "mini": 6.0},
    "pure_fp32": {"tiny": 22.0, "mini": 8.0},
    "mixed": {"tiny": 20.0, "mini": 7.0},
}

#: Legacy alias (pre-precision name) for the fp64 floors.
EAGER_TRAIN_FLOOR_STEPS_PER_S = TRAIN_FLOOR_STEPS_PER_S["pure_fp64"]

#: Parity budget between the two backends (they share one primitive
#: registry, so the observed difference is exactly zero at every precision;
#: the budget is the acceptance bar).
PARITY_BUDGET = 1e-9

#: Budgets for each precision policy's loss / gradient deviation from
#: ``pure_fp64`` on the parity protocol (documented in DESIGN.md).  The
#: measured deviations are ~2.5e-7 (loss) and ~1e-6 (grads); the budgets
#: keep two orders of magnitude of headroom.  ``pure_fp64`` is exact.
PRECISION_LOSS_BUDGET: Dict[str, float] = {
    "pure_fp64": 0.0, "pure_fp32": 5e-5, "mixed": 5e-5,
}
PRECISION_GRAD_BUDGET: Dict[str, float] = {
    "pure_fp64": 0.0, "pure_fp32": 5e-4, "mixed": 5e-4,
}

#: The precision tentpole bar: ``mixed`` eager train-step throughput over
#: the same run's ``pure_fp64`` eager value at the serving-scale rung.
MIXED_TRAIN_SPEEDUP_BAR = 1.8

#: Floor on the lazy/eager decode-minimum ratio recorded per rung and
#: precision.  Batched greedy decode stands the lazy graph down to the
#: eager engine, so both backends run *identical* code and the interleaved
#: measurement's min ratio sits at ~1.0; a broken stand-down reinstates
#: per-token graph build + materialise overhead and collapses it to ~0.5
#: (0.43 observed).  0.75 clears quick-mode scheduler jitter on the
#: millisecond-scale tiny rung while still tripping on the real failure.
GENERATE_STANDDOWN_FLOOR = 0.75

#: Maximum absolute Table-II-style metric difference (per metric) between a
#: ``mixed`` and a ``pure_fp64`` fine-tuning run of the accuracy-parity
#: protocol.  Discrete metrics over a 32-example eval set move in quanta of
#: 1/32 ≈ 0.031 when a single argmax flips, so the tolerance admits a
#: handful of flips but not a systematic accuracy loss.
ACCURACY_PARITY_TOLERANCE = 0.1

#: Canonical artifact filename (committed at the repo root).
TENSORPERF_FILENAME = "BENCH_tensorperf.json"


def _best(fn: Callable[[], object], reps: int) -> float:
    """Minimum wall time of ``reps`` calls after one untimed warmup."""
    fn()
    times = []
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return min(times)


def _rung_data(rung: Dict[str, object]):
    config = get_config(rung["config"])
    rng = np.random.default_rng(SEED)
    batch, in_len, out_len = rung["batch"], rung["input_length"], rung["output_length"]
    enc = rng.integers(1, config.vocab_size, size=(batch, in_len))
    dec = rng.integers(1, config.vocab_size, size=(batch, out_len))
    tgt = rng.integers(1, config.vocab_size, size=(batch, out_len))
    return config, enc, dec, tgt


def measure_rung(rung: Dict[str, object], backend: str,
                 reps: Optional[int] = None,
                 precision: str = "pure_fp64",
                 generate: bool = True) -> Dict[str, float]:
    """Measure one ``backend/precision`` cell of a rung in isolation.

    Only the workload itself is inside the timed region; model
    construction and input generation are shared setup.  The backend and
    precision policy are active for the whole measurement via
    :func:`repro.tensor.use_backend` / :func:`repro.tensor.use_precision`.
    ``generate=False`` skips the decode metric.

    This is the standalone single-cell probe; ``run_tensorperf`` instead
    measures all of a rung's cells with the timing rounds *interleaved*
    (:func:`measure_rung_cells`), which is what makes the recorded
    cross-cell ratios robust to host drift.
    """
    config, enc, dec, tgt = _rung_data(rung)
    reps = int(rung["reps"]) if reps is None else reps
    tokens = enc.size + dec.size
    # Dead graphs from earlier cells otherwise linger into this cell's
    # timed region and skew big-rung allocations (measured ~10% on the
    # serving rung when it runs last in a full ladder).
    gc.collect()
    with use_backend(backend), use_precision(precision):
        model = SwitchTransformer(config, seed=SEED)
        model.train()
        opt = Adam(model.parameters(), lr=1e-4)

        def train_step():
            out = model(enc, dec)
            loss = F.cross_entropy(out.logits, tgt, ignore_index=0)
            loss = loss + out.aux_loss * 1e-2
            model.zero_grad()
            loss.backward()
            clip_grad_norm(model.parameters(), 1.0)
            opt.step()

        t_train = _best(train_step, reps)

        model.eval()

        def forward():
            with no_grad():
                model(enc, dec)

        t_forward = _best(forward, reps)

        result = {
            "backend": backend,
            "precision": precision,
            "train_steps_per_s": 1.0 / t_train,
            "train_tokens_per_s": tokens / t_train,
            "forward_tokens_per_s": tokens / t_forward,
            "train_wall_seconds": t_train,
        }
        if generate:
            def decode():
                return model.greedy_decode(enc, bos_id=BOS_ID, eos_id=EOS_ID,
                                           max_new_tokens=rung["output_length"])

            generated, _ = decode()
            gen_tokens = enc.shape[0] * (generated.shape[1] - 1)
            result["generate_tokens_per_s"] = gen_tokens / _best(
                decode, max(2, reps // 2))
    return result


def _interleaved_best(fn: Callable[[str], object],
                      keys: Sequence[str], reps: int) -> Dict[str, float]:
    """Per-key minimum wall time over ``reps`` interleaved timing rounds.

    Each round times every key back-to-back, so slow monotonic host and
    allocator drift lands on all keys equally instead of flattering
    whichever key happens to be measured earlier — cross-key *ratios*
    (mixed vs fp64, lazy vs eager) are what the acceptance bars compare,
    and serial per-key timing was measurably biasing them by 10–20% on a
    shared host.  One untimed warmup call per key precedes the rounds.
    """
    for key in keys:
        fn(key)
    times: Dict[str, list] = {key: [] for key in keys}
    for _ in range(reps):
        for key in keys:
            started = time.perf_counter()
            fn(key)
            times[key].append(time.perf_counter() - started)
    return {key: min(samples) for key, samples in times.items()}


def measure_train_speedups(rung: Dict[str, object],
                           reps: Optional[int] = None) -> Dict[str, float]:
    """Eager train-step speedup of each policy over ``pure_fp64``, paired.

    The precision tentpole bar compares policies *against each other*, so
    it must not inherit the host drift that separates two serially-timed
    cells: one model + optimiser per policy is built up front and the
    timing rounds are interleaved (:func:`_interleaved_best`).  The
    per-cell absolute numbers in the ladder deliberately stay serial —
    that is the protocol :data:`RECORDED_EAGER_BASELINE` and the CI
    floors were recorded with — while every recorded cross-policy ratio
    comes from this paired measurement.
    """
    config, enc, dec, tgt = _rung_data(rung)
    reps = int(rung["reps"]) if reps is None else reps
    gc.collect()
    setups: Dict[str, tuple] = {}
    for precision in PRECISIONS:
        with use_precision(precision):
            model = SwitchTransformer(config, seed=SEED)
            model.train()
            opt = Adam(model.parameters(), lr=1e-4)
        setups[precision] = (model, opt)

    def train_step(precision):
        model, opt = setups[precision]
        with use_precision(precision):
            out = model(enc, dec)
            loss = F.cross_entropy(out.logits, tgt, ignore_index=0)
            loss = loss + out.aux_loss * 1e-2
            model.zero_grad()
            loss.backward()
            clip_grad_norm(model.parameters(), 1.0)
            opt.step()

    t_train = _interleaved_best(train_step, list(setups), reps)
    return {precision: t_train["pure_fp64"] / t_train[precision]
            for precision in PRECISIONS}


def measure_generate(rung: Dict[str, object],
                     reps: Optional[int] = None) -> Dict[str, Dict[str, float]]:
    """Batched greedy-decode throughput per precision, backends interleaved.

    Decode stands the lazy graph down to the eager engine, so for a given
    precision both backends execute *identical* code: there is one decode
    throughput per (rung, precision), not one per backend.  Timing the
    backends serially (as :func:`measure_rung` does for its other metrics)
    systematically favours whichever cell runs earlier in the process's
    life — allocator and host drift are monotonic — which showed up as a
    phantom 5–15% lazy deficit.  Here each repetition times every backend
    back-to-back under the same host conditions; the recorded throughput
    is the best over the pooled samples, and the lazy/eager minimum ratio
    is kept as the stand-down regression signal (~1.0 when healthy, ~0.5
    if decode ever starts building per-token lazy graphs again —
    :data:`GENERATE_STANDDOWN_FLOOR` polices it).
    """
    config, enc, _, _ = _rung_data(rung)
    reps = int(rung["reps"]) if reps is None else reps
    reps = max(2, reps // 2)
    out: Dict[str, Dict[str, float]] = {}
    for precision in PRECISIONS:
        gc.collect()
        models = {}
        for backend in BACKENDS:
            with use_backend(backend), use_precision(precision):
                models[backend] = SwitchTransformer(config, seed=SEED).eval()

        def decode(backend):
            with use_backend(backend), use_precision(precision):
                return models[backend].greedy_decode(
                    enc, bos_id=BOS_ID, eos_id=EOS_ID,
                    max_new_tokens=rung["output_length"])

        gen_tokens = None
        times: Dict[str, list] = {backend: [] for backend in BACKENDS}
        for backend in BACKENDS:                      # untimed warmup
            generated, _ = decode(backend)
            gen_tokens = enc.shape[0] * (generated.shape[1] - 1)
        for _ in range(reps):
            for backend in BACKENDS:
                started = time.perf_counter()
                decode(backend)
                times[backend].append(time.perf_counter() - started)
        floor = min(min(samples) for samples in times.values())
        out[precision] = {
            "tokens_per_s": gen_tokens / floor,
            "lazy_over_eager": min(times["eager"]) / min(times["lazy"]),
        }
    return out


def _parity_train_step(config, enc, dec, tgt):
    """Loss value and fp64 copies of every grad for one deterministic step."""
    model = SwitchTransformer(config, seed=SEED)
    model.train()
    out = model(enc, dec)
    loss = F.cross_entropy(out.logits, tgt, ignore_index=0)
    loss = loss + out.aux_loss * 1e-2
    model.zero_grad()
    loss.backward()
    return (
        float(loss.item()),
        [None if p.grad is None else np.asarray(p.grad, dtype=np.float64)
         for p in model.parameters()],
    )


def _max_grad_diff(grads_a, grads_b) -> float:
    diff = 0.0
    for ga, gb in zip(grads_a, grads_b):
        assert (ga is None) == (gb is None)
        if ga is not None:
            diff = max(diff, float(np.max(np.abs(ga - gb))))
    return diff


def measure_parity(config_name: str = "switch_mini_8", batch: int = 4,
                   input_length: int = 6, output_length: int = 5,
                   precision: str = "pure_fp64") -> Dict[str, float]:
    """Max |eager − lazy| difference of the loss and every parameter grad.

    Runs the identical train-step computation (same seeds, same inputs)
    once per backend under ``precision`` and compares the loss value and
    all gradients.  The backends share one primitive registry, so the
    difference is exactly 0.0 at every precision; the recorded numbers
    make the parity claim auditable from the artifact alone.
    """
    rung = {"config": config_name, "batch": batch, "input_length": input_length,
            "output_length": output_length}
    config, enc, dec, tgt = _rung_data(rung)
    results = {}
    for backend in BACKENDS:
        with use_backend(backend), use_precision(precision):
            results[backend] = _parity_train_step(config, enc, dec, tgt)
    loss_e, grads_e = results["eager"]
    loss_l, grads_l = results["lazy"]
    return {
        "precision": precision,
        "loss_abs_diff": abs(loss_e - loss_l),
        "grad_max_abs_diff": _max_grad_diff(grads_e, grads_l),
        "budget": PARITY_BUDGET,
    }


def measure_precision_parity(config_name: str = "switch_mini_8", batch: int = 4,
                             input_length: int = 6,
                             output_length: int = 5) -> Dict[str, Dict[str, float]]:
    """Loss / grad deviation of every precision policy from ``pure_fp64``.

    The ``pure_fp64`` entry compares an explicit ``use_precision
    ("pure_fp64")`` run against the ambient-default run — it must be exactly
    0.0 (the default policy *is* pure_fp64 and the engine is deterministic).
    ``pure_fp32`` and ``mixed`` must stay within the documented budgets
    (:data:`PRECISION_LOSS_BUDGET` / :data:`PRECISION_GRAD_BUDGET`).
    """
    rung = {"config": config_name, "batch": batch, "input_length": input_length,
            "output_length": output_length}
    config, enc, dec, tgt = _rung_data(rung)
    loss_ref, grads_ref = _parity_train_step(config, enc, dec, tgt)
    out: Dict[str, Dict[str, float]] = {}
    for precision in PRECISIONS:
        with use_precision(precision):
            loss_p, grads_p = _parity_train_step(config, enc, dec, tgt)
        out[precision] = {
            "loss_abs_diff": abs(loss_p - loss_ref),
            "grad_max_abs_diff": _max_grad_diff(grads_p, grads_ref),
            "loss_budget": PRECISION_LOSS_BUDGET[precision],
            "grad_budget": PRECISION_GRAD_BUDGET[precision],
        }
    return out


def measure_accuracy_parity(config_name: str = "tiny_moe_8",
                            task_name: str = "squad_like",
                            steps: int = 40) -> Dict[str, object]:
    """Table-II-style task accuracy under ``mixed`` vs ``pure_fp64``.

    Runs the fine-tuning protocol (shared pre-trained weights, identical
    recipe) once per policy and reports the absolute metric differences.
    Discrete metrics over a small eval set move in quanta of 1/num_examples,
    so the documented tolerance is generous relative to the float drift
    that causes the flips.
    """
    from ..training.finetune import finetune_conventional, pretrain_conventional
    from ..training.trainer import TrainingConfig
    from ..data.tasks import make_task
    from ..data.tokenizer import default_vocabulary

    config = get_config(config_name)
    tokenizer = default_vocabulary(num_content_words=config.vocab_size - 4)
    scores: Dict[str, Dict[str, float]] = {}
    for precision in ("pure_fp64", "mixed"):
        training = TrainingConfig(steps=steps, batch_size=16, seed=SEED,
                                  precision=precision)
        task = make_task(task_name, tokenizer=tokenizer, seed=SEED)
        pretrained = pretrain_conventional(config, task, seed=SEED,
                                           training=TrainingConfig(
                                               steps=60, batch_size=16,
                                               seed=SEED, precision=precision))
        outcome = finetune_conventional(pretrained, task, training,
                                        train_size=128, eval_size=32)
        scores[precision] = outcome.scores.as_dict()
    diffs = {metric: abs(scores["mixed"][metric] - scores["pure_fp64"][metric])
             for metric in ("rouge1", "rouge2", "exact_match", "f1")}
    return {
        "config": config_name,
        "task": task_name,
        "steps": steps,
        "scores": scores,
        "abs_diffs": diffs,
        "tolerance": ACCURACY_PARITY_TOLERANCE,
    }


def run_tensorperf(quick: bool = False, full: bool = False) -> Dict[str, object]:
    """Measure the ladder; returns the ``BENCH_tensorperf.json`` payload.

    ``quick`` measures the always-on rungs with fewer repetitions (the CI
    smoke shape); the default measures them at full repetitions; ``full``
    adds the serving-scale rung and is the artifact-regeneration path
    (minutes of wall time on the recording machine).
    """
    ladder: Dict[str, Dict[str, object]] = {}
    train_speedups: Dict[str, Dict[str, float]] = {}
    for rung in RUNGS:
        if rung["full_only"] and not full:
            continue
        reps = max(2, int(rung["reps"]) // 2) if quick else None
        cells = {}
        for precision in PRECISIONS:
            for backend in BACKENDS:
                cells[f"{backend}/{precision}"] = measure_rung(
                    rung, backend, reps=reps, precision=precision,
                    generate=False)
        # Decode is timed once per precision with the backends interleaved
        # (identical stood-down code — see measure_generate); both cells
        # record the pooled best plus the lazy/eager stand-down ratio.
        for precision, decode in measure_generate(rung, reps=reps).items():
            for backend in BACKENDS:
                cell = cells[f"{backend}/{precision}"]
                cell["generate_tokens_per_s"] = decode["tokens_per_s"]
                cell["generate_lazy_over_eager"] = decode["lazy_over_eager"]
        # Cross-policy train ratios come from a paired interleaved
        # measurement, not from dividing two serially-timed cells.
        train_speedups[str(rung["name"])] = measure_train_speedups(
            rung, reps=reps)
        ladder[str(rung["name"])] = {
            "config": rung["config"],
            "batch": rung["batch"],
            "input_length": rung["input_length"],
            "output_length": rung["output_length"],
            "tokens_per_step": rung["batch"] * (
                rung["input_length"] + rung["output_length"]),
            # Legacy view: the pure_fp64 cells keyed by backend only.
            "backends": {backend: cells[f"{backend}/pure_fp64"]
                         for backend in BACKENDS},
            "cells": cells,
        }
    speedups: Dict[str, Dict[str, float]] = {}
    mixed_speedups: Dict[str, float] = {
        name: ratios["mixed"] for name, ratios in train_speedups.items()}
    for name, row in ladder.items():
        eager = row["backends"]["eager"]
        base = RECORDED_EAGER_BASELINE.get(name)
        if base is None:
            continue
        speedups[name] = {
            metric: eager[metric] / base[metric]
            for metric in ("train_steps_per_s", "forward_tokens_per_s",
                           "generate_tokens_per_s")
            if base.get(metric)
        }
    payload: Dict[str, object] = {
        "benchmark": "tensorperf",
        "python": platform.python_version(),
        "seed": SEED,
        "precisions": list(PRECISIONS),
        "recorded_eager_baseline": RECORDED_EAGER_BASELINE,
        "floors": {"eager_train_steps_per_s": EAGER_TRAIN_FLOOR_STEPS_PER_S,
                   "train_steps_per_s": TRAIN_FLOOR_STEPS_PER_S},
        "ladder": ladder,
        "parity": {
            "backend": {precision: measure_parity(precision=precision)
                        for precision in PRECISIONS},
            "precision": measure_precision_parity(),
        },
        "speedup_over_recorded_baseline": speedups,
        "train_speedup_over_fp64": train_speedups,
        "mixed_train_speedup_over_fp64": mixed_speedups,
        "mixed_train_speedup_bar": MIXED_TRAIN_SPEEDUP_BAR,
    }
    if full:
        # Table-II-style accuracy parity of the mixed policy; a fine-tune
        # protocol run, so only on artifact-regeneration (full) runs.
        payload["accuracy_parity"] = measure_accuracy_parity()
    return payload


def write_tensorperf(payload: Dict[str, object], path: str) -> None:
    """Persist a :func:`run_tensorperf` payload as pretty-printed JSON."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
