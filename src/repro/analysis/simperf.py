"""Simulator self-performance benchmark (the perf trajectory seed).

Where every other benchmark measures the *simulated* systems, this one
measures the simulator: how many simulated requests per wall-clock second
the continuous-batching scheduler sustains at growing request counts, and
how many timeline ops stay resident while it runs.  Four serving modes are
compared on one decode-heavy scenario (the paper's per-request batch-size-1
serving mode, long generations):

* ``trace`` — the Figure 9 mode: scalar op-at-a-time timeline, every op
  kept for rendering/export (memory O(total ops));
* ``no_trace`` — the scalar production path of earlier revisions:
  incremental aggregates only, ops retired round by round (memory O(active
  window));
* ``kernel`` — the batched columnar timeline engine
  (:class:`~repro.system.timeline.ArrayTimeline`): each round emitted as
  one op batch and committed in a single kernel call;
* ``kernel_replay`` — the kernel plus steady-state round replay
  (:class:`~repro.serving.scheduler._RoundReplay`): structurally identical
  decode rounds are fast-forwarded in closed form instead of re-simulated;
* ``no_trace_probed`` — ``no_trace`` with the sampled observability probes
  (:class:`~repro.obs.probes.ServingProbes`) enabled, pinning the probe
  layer's overhead against the same throughput floor.

All the modes simulate the *same* execution: trace/no-trace/kernel are
bit-identical, and replay matches them to 1e-9 on every load metric (the
parity tests pin both).  The benchmark records throughput and peak-resident
ops for each mode into ``BENCH_simperf.json`` so regressions in either
dimension show up in review.

Requests are timed from one pre-generated trace pool (tiled for the larger
counts) so every mode serves the identical workload and the wall clock
measures the serving loop, not the trace generator.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..moe.configs import get_config
from ..serving.scheduler import ContinuousBatchingScheduler
from ..workloads.arrivals import TimedRequest
from ..workloads.traces import TraceGenerator

#: The measurement scenario: pregated Switch-Base-128 serving one request
#: at a time (the paper's systems are optimised for per-request batch size
#: 1) with decode-heavy generations — the regime a million-request
#: simulation lives in, and the one where steady-state rounds dominate.
DEFAULT_CONFIG = "switch_base_128"
DEFAULT_DESIGN = "pregated"
INPUT_LENGTH = 8
OUTPUT_LENGTH = 96
MAX_BATCH_SIZE = 1
REQUEST_RATE = 8.0
ROUTING_SKEW = 1.2
SEED = 0

#: Unique traces generated per run; larger request counts tile the pool
#: (every request is still fully simulated — only generation is shared).
TRACE_POOL = 400

#: Request counts of the recorded scaling sweep.  The trace mode only runs
#: at the smallest count (it keeps every op in memory); the scalar modes
#: stop at 16k (they are the slow baselines being replaced); the kernel +
#: replay engine runs the full ladder up to the million-request rung.
FULL_SIZES: Dict[int, Sequence[str]] = {
    1_600: ("trace", "no_trace", "kernel", "kernel_replay"),
    16_000: ("no_trace", "no_trace_probed", "kernel", "kernel_replay"),
    100_000: ("kernel_replay",),
    1_000_000: ("kernel_replay",),
}
DEFAULT_REQUESTS = 400
QUICK_REQUESTS = 120

#: Placement rungs: kernel vs kernel+replay on the placements replay
#: newly covers — expert caches and multi-GPU shards.  Replay needs the
#: hit/miss outcomes and owner-device patterns to repeat, so these rungs
#: route with a strongly skewed (hot-expert) distribution and longer
#: generations: the cache-effective steady state of the Figure 15 study.
PLACEMENT_SKEW = 12.0
PLACEMENT_OUTPUT_LENGTH = 192
PLACEMENTS: Dict[str, Dict[str, object]] = {
    "cached_hot": {"cache_policy": "lru", "cache_capacity": 256},
    "multi_gpu_hot": {"num_gpus": 2, "shard_policy": "round_robin"},
    "cached_2gpu": {"cache_policy": "lru", "cache_capacity": 256,
                    "num_gpus": 2, "shard_policy": "round_robin"},
}
PLACEMENT_REQUESTS_FULL = 400
PLACEMENT_REQUESTS_DEFAULT = 200
PLACEMENT_REQUESTS_QUICK = 80

#: Serving-mode knobs, keyed by mode name.
MODES: Dict[str, Dict[str, object]] = {
    "trace": {"timeline_engine": "scalar", "round_replay": False,
              "record_trace": True},
    "no_trace": {"timeline_engine": "scalar", "round_replay": False,
                 "record_trace": False},
    "kernel": {"timeline_engine": "array", "round_replay": False,
               "record_trace": False},
    "kernel_replay": {"timeline_engine": "array", "round_replay": True,
                      "record_trace": False},
    # no_trace with the sampled probe layer on — measured so the
    # observability overhead is pinned against the same floor as no_trace
    # (the probes must stay within ~10% of it).
    "no_trace_probed": {"timeline_engine": "scalar", "round_replay": False,
                        "record_trace": False, "probe_interval": 1.0},
}

#: CI floors: a quick run's throughput below these fails the perf smoke
#: job (values are ~0.25x the measurements on the recording machine, so
#: honest slowdowns trip them but CI-runner jitter does not).
NO_TRACE_FLOOR_REQ_PER_S = 4.0
KERNEL_FLOOR_REQ_PER_S = 8.0
KERNEL_REPLAY_FLOOR_REQ_PER_S = 80.0

#: Canonical artifact filename (committed at the repo root; the CLI writes
#: it to the current directory, the benchmark anchors it to the repo root).
SIMPERF_FILENAME = "BENCH_simperf.json"


def build_requests(num_requests: int,
                   pool_size: int = TRACE_POOL,
                   skew: float = ROUTING_SKEW,
                   output_length: int = OUTPUT_LENGTH) -> List[TimedRequest]:
    """The scenario's request stream, from a tiled pre-generated pool.

    Poisson arrivals at :data:`REQUEST_RATE` (seeded, vectorised); traces
    come from a pool of ``min(pool_size, num_requests)`` unique generations
    reused round-robin, so building a 100k-request stream costs seconds,
    not the minutes a fresh 100k-trace generation would.
    """
    pool = TraceGenerator(get_config(DEFAULT_CONFIG), skew=skew,
                          seed=SEED).workload(
        min(pool_size, num_requests), input_length=INPUT_LENGTH,
        output_length=output_length)
    gaps = np.random.default_rng(SEED).exponential(
        1.0 / REQUEST_RATE, size=num_requests)
    arrivals = np.cumsum(gaps)
    return [TimedRequest(request_id=i, arrival_time=float(arrivals[i]),
                         trace=pool[i % len(pool)])
            for i in range(num_requests)]


def measure_mode(mode: str, requests: Sequence[TimedRequest],
                 config: str = DEFAULT_CONFIG,
                 design: str = DEFAULT_DESIGN,
                 **scheduler_kwargs: object) -> Dict[str, float]:
    """Serve the request stream in one mode; report the simulator's cost.

    Only :meth:`~repro.serving.scheduler.ContinuousBatchingScheduler.serve`
    is inside the timed region — scheduler construction and request
    generation are shared setup, identical across modes.
    ``scheduler_kwargs`` layers placement knobs (cache, shards) on top of
    the mode's engine knobs for the placement rungs.
    """
    knobs = MODES[mode]
    scheduler = ContinuousBatchingScheduler(
        design, config, max_batch_size=MAX_BATCH_SIZE, **knobs,
        **scheduler_kwargs)
    num_requests = len(requests)
    started = time.perf_counter()
    result = scheduler.serve(requests, offered_load=REQUEST_RATE)
    wall = time.perf_counter() - started
    tokens = sum(req.trace.output_length for req in requests)
    return {
        "mode": mode,
        "wall_seconds": wall,
        "simulated_requests_per_second": num_requests / wall if wall > 0 else 0.0,
        "simulated_tokens_per_second": tokens / wall if wall > 0 else 0.0,
        "simulated_seconds_per_wall_second": result.makespan / wall if wall > 0 else 0.0,
        "total_ops": result.timeline_total_ops,
        "peak_resident_ops": result.timeline_peak_live_ops,
        "makespan_seconds": result.makespan,
        "sustained_tokens_per_second": result.sustained_tokens_per_second,
        "mean_e2e_latency_seconds": result.e2e_stats.mean,
        "replay_windows": result.replay_windows,
        "replay_rounds": result.replay_rounds,
        "replay_ops": result.replay_ops,
    }


def run_simperf(quick: bool = False, full: bool = False,
                num_requests: Optional[int] = None) -> Dict[str, object]:
    """Measure the serving modes; returns the ``BENCH_simperf.json`` payload.

    ``quick`` serves :data:`QUICK_REQUESTS` requests through the no-trace,
    kernel and kernel+replay modes (the CI smoke shape); the default serves
    :data:`DEFAULT_REQUESTS` through all four; ``full`` runs the recorded
    1.6k/16k/100k/1M scaling ladder of :data:`FULL_SIZES` (minutes of wall
    time — the artifact-regeneration path, not a CI job).  Every shape also
    runs the :data:`PLACEMENTS` rungs (kernel vs kernel+replay on cached /
    multi-GPU placements in the hot-expert regime).
    """
    if full:
        sizes = dict(FULL_SIZES)
        placement_requests = PLACEMENT_REQUESTS_FULL
    else:
        requests = num_requests if num_requests is not None else (
            QUICK_REQUESTS if quick else DEFAULT_REQUESTS)
        modes = (("no_trace", "no_trace_probed", "kernel", "kernel_replay")
                 if quick else tuple(MODES))
        sizes = {requests: modes}
        placement_requests = (PLACEMENT_REQUESTS_QUICK if quick
                              else PLACEMENT_REQUESTS_DEFAULT)
    scaling: Dict[str, Dict[str, Dict[str, float]]] = {}
    for size, modes in sizes.items():
        stream = build_requests(size)
        scaling[str(size)] = {mode: measure_mode(mode, stream)
                              for mode in modes}
    placement_stream = build_requests(placement_requests,
                                      skew=PLACEMENT_SKEW,
                                      output_length=PLACEMENT_OUTPUT_LENGTH)
    placements: Dict[str, Dict[str, object]] = {}
    for name, knobs in PLACEMENTS.items():
        placements[name] = {
            "knobs": dict(knobs),
            "requests": placement_requests,
            "kernel": measure_mode("kernel", placement_stream, **knobs),
            "kernel_replay": measure_mode("kernel_replay", placement_stream,
                                          **knobs),
        }
    payload: Dict[str, object] = {
        "benchmark": "simperf",
        "config": DEFAULT_CONFIG,
        "design": DEFAULT_DESIGN,
        "scenario": {
            "input_length": INPUT_LENGTH,
            "output_length": OUTPUT_LENGTH,
            "max_batch_size": MAX_BATCH_SIZE,
            "request_rate": REQUEST_RATE,
            "routing_skew": ROUTING_SKEW,
            "trace_pool": TRACE_POOL,
            "seed": SEED,
        },
        "placement_scenario": {
            "routing_skew": PLACEMENT_SKEW,
            "output_length": PLACEMENT_OUTPUT_LENGTH,
        },
        "floors": {
            "no_trace_req_per_s": NO_TRACE_FLOOR_REQ_PER_S,
            "kernel_req_per_s": KERNEL_FLOOR_REQ_PER_S,
            "kernel_replay_req_per_s": KERNEL_REPLAY_FLOOR_REQ_PER_S,
        },
        "python": platform.python_version(),
        "scaling": scaling,
        "placements": placements,
    }
    speedups = {}
    for size, by_mode in scaling.items():
        if "no_trace" in by_mode and "kernel_replay" in by_mode:
            base = by_mode["no_trace"]["simulated_requests_per_second"]
            fast = by_mode["kernel_replay"]["simulated_requests_per_second"]
            if base > 0:
                speedups[size] = fast / base
    payload["kernel_replay_speedup_over_no_trace"] = speedups
    over_kernel: Dict[str, Dict[str, float]] = {"scaling": {},
                                                "placements": {}}
    for size, by_mode in scaling.items():
        if "kernel" in by_mode and "kernel_replay" in by_mode:
            base = by_mode["kernel"]["simulated_requests_per_second"]
            fast = by_mode["kernel_replay"]["simulated_requests_per_second"]
            if base > 0:
                over_kernel["scaling"][size] = fast / base
    for name, rung in placements.items():
        base = rung["kernel"]["simulated_requests_per_second"]
        fast = rung["kernel_replay"]["simulated_requests_per_second"]
        if base > 0:
            over_kernel["placements"][name] = fast / base
    payload["kernel_replay_speedup_over_kernel"] = over_kernel
    return payload


def write_simperf(payload: Dict[str, object], path: str) -> None:
    """Persist a :func:`run_simperf` payload as pretty-printed JSON."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
