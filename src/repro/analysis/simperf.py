"""Simulator self-performance benchmark (the perf trajectory seed).

Where every other benchmark measures the *simulated* systems, this one
measures the simulator: how many simulated requests per wall-clock second
the continuous-batching scheduler sustains, and how many timeline ops stay
resident while it runs.  The two serving modes are compared:

* ``no_trace`` — the production default: incremental aggregates only, ops
  retired once no live dependency can reference them (memory O(active
  window));
* ``trace`` — the Figure 9 mode: every op kept for rendering/export
  (memory O(total ops)).

Both modes must agree on every load metric (the parity tests pin them to
1e-9); the benchmark records the throughput and peak-resident-op cost of
each so regressions in either dimension show up in ``BENCH_simperf.json``.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Dict, Optional

from ..serving.scheduler import serve_load
from ..workloads.arrivals import POISSON_QA_LOAD
from ..workloads.generator import WorkloadSpec

#: Default measurement shape: the ISSUE's profiling scenario (pregated
#: Switch-Base-128 under Poisson load) at a request count big enough for
#: throughput to stabilise but small enough for a CI smoke job.
DEFAULT_CONFIG = "switch_base_128"
DEFAULT_DESIGN = "pregated"
DEFAULT_REQUESTS = 400
QUICK_REQUESTS = 40

#: Canonical artifact filename (committed at the repo root; the CLI writes
#: it to the current directory, the benchmark anchors it to the repo root).
SIMPERF_FILENAME = "BENCH_simperf.json"


def measure_mode(record_trace: bool, num_requests: int = DEFAULT_REQUESTS,
                 config: str = DEFAULT_CONFIG, design: str = DEFAULT_DESIGN,
                 request_rate: float = 8.0, max_batch_size: int = 8,
                 routing_skew: float = 1.2, seed: int = 0) -> Dict[str, float]:
    """Serve one load and report the simulator's own cost for that mode."""
    workload = WorkloadSpec(name="simperf", num_requests=num_requests,
                            input_length=8, output_length=8,
                            routing_skew=routing_skew, seed=seed)
    load = POISSON_QA_LOAD.with_overrides(request_rate=request_rate)
    started = time.perf_counter()
    result = serve_load(design, config, load, workload=workload,
                        max_batch_size=max_batch_size,
                        record_trace=record_trace)
    wall = time.perf_counter() - started
    return {
        "record_trace": record_trace,
        "wall_seconds": wall,
        "simulated_requests_per_second": num_requests / wall if wall > 0 else 0.0,
        "simulated_seconds_per_wall_second": result.makespan / wall if wall > 0 else 0.0,
        "total_ops": result.timeline_total_ops,
        "peak_resident_ops": result.timeline_peak_live_ops,
        "makespan_seconds": result.makespan,
        "sustained_tokens_per_second": result.sustained_tokens_per_second,
    }


def run_simperf(quick: bool = False,
                num_requests: Optional[int] = None) -> Dict[str, object]:
    """Measure both serving modes; returns the ``BENCH_simperf.json`` payload."""
    requests = num_requests if num_requests is not None else (
        QUICK_REQUESTS if quick else DEFAULT_REQUESTS)
    modes = {
        "no_trace": measure_mode(False, num_requests=requests),
        "trace": measure_mode(True, num_requests=requests),
    }
    return {
        "benchmark": "simperf",
        "config": DEFAULT_CONFIG,
        "design": DEFAULT_DESIGN,
        "num_requests": requests,
        "python": platform.python_version(),
        "modes": modes,
    }


def write_simperf(payload: Dict[str, object], path: str) -> None:
    """Persist a :func:`run_simperf` payload as pretty-printed JSON."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
