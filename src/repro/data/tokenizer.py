"""A small word-level tokenizer for the synthetic task substrate.

The paper fine-tunes on Xsum / SQuAD / CB-WebQA with a sentencepiece
vocabulary; the functional reproduction uses synthetic tasks over a compact
vocabulary, so a deterministic word-level tokenizer is sufficient and keeps
the accuracy experiments fast and fully reproducible.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

PAD_TOKEN = "<pad>"
BOS_TOKEN = "<bos>"
EOS_TOKEN = "<eos>"
UNK_TOKEN = "<unk>"

SPECIAL_TOKENS = (PAD_TOKEN, BOS_TOKEN, EOS_TOKEN, UNK_TOKEN)


class Tokenizer:
    """Word-level tokenizer with a fixed vocabulary.

    Token ids 0..3 are reserved for the special tokens (pad, bos, eos, unk)
    so model configs only need ``vocab_size >= len(words) + 4``.
    """

    def __init__(self, words: Sequence[str]) -> None:
        self._id_to_token: List[str] = list(SPECIAL_TOKENS) + list(words)
        if len(set(self._id_to_token)) != len(self._id_to_token):
            raise ValueError("vocabulary contains duplicate tokens")
        self._token_to_id: Dict[str, int] = {t: i for i, t in enumerate(self._id_to_token)}

    # ------------------------------------------------------------------
    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD_TOKEN]

    @property
    def bos_id(self) -> int:
        return self._token_to_id[BOS_TOKEN]

    @property
    def eos_id(self) -> int:
        return self._token_to_id[EOS_TOKEN]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK_TOKEN]

    @property
    def vocab_size(self) -> int:
        return len(self._id_to_token)

    def __len__(self) -> int:
        return self.vocab_size

    # ------------------------------------------------------------------
    def encode(self, text: "str | Sequence[str]", add_eos: bool = False,
               add_bos: bool = False) -> List[int]:
        """Encode a whitespace-separated string (or token list) into ids."""
        tokens = text.split() if isinstance(text, str) else list(text)
        ids = [self._token_to_id.get(token, self.unk_id) for token in tokens]
        if add_bos:
            ids = [self.bos_id] + ids
        if add_eos:
            ids = ids + [self.eos_id]
        return ids

    def decode(self, ids: Iterable[int], skip_special: bool = True) -> str:
        """Decode token ids back to a whitespace-joined string."""
        tokens = []
        for token_id in ids:
            token_id = int(token_id)
            if not 0 <= token_id < self.vocab_size:
                raise IndexError(f"token id {token_id} out of range")
            token = self._id_to_token[token_id]
            if skip_special and token in SPECIAL_TOKENS:
                continue
            tokens.append(token)
        return " ".join(tokens)

    def pad_batch(self, sequences: Sequence[Sequence[int]],
                  max_length: Optional[int] = None) -> List[List[int]]:
        """Right-pad a batch of id sequences to a common length."""
        if not sequences:
            return []
        target = max_length if max_length is not None else max(len(s) for s in sequences)
        batch = []
        for seq in sequences:
            seq = list(seq)[:target]
            batch.append(seq + [self.pad_id] * (target - len(seq)))
        return batch


def default_vocabulary(num_content_words: int = 60) -> Tokenizer:
    """Build the default synthetic vocabulary (``w0`` .. ``w{n-1}``)."""
    if num_content_words < 1:
        raise ValueError("num_content_words must be >= 1")
    return Tokenizer([f"w{i}" for i in range(num_content_words)])
