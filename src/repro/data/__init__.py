"""Synthetic datasets, tokenisation and evaluation metrics."""

from .metrics import EvalScores, evaluate_predictions, exact_match, rouge1, rouge2, rouge_n, token_f1
from .tasks import (
    Batch,
    ClosedBookQATask,
    ExtractiveQATask,
    PAPER_TASK_SUBSTITUTIONS,
    Seq2SeqDataset,
    Seq2SeqExample,
    SummarizationTask,
    SyntheticTask,
    list_tasks,
    make_task,
    train_eval_split,
)
from .tokenizer import BOS_TOKEN, EOS_TOKEN, PAD_TOKEN, UNK_TOKEN, Tokenizer, default_vocabulary

__all__ = [
    "EvalScores",
    "evaluate_predictions",
    "exact_match",
    "rouge1",
    "rouge2",
    "rouge_n",
    "token_f1",
    "Batch",
    "ClosedBookQATask",
    "ExtractiveQATask",
    "PAPER_TASK_SUBSTITUTIONS",
    "Seq2SeqDataset",
    "Seq2SeqExample",
    "SummarizationTask",
    "SyntheticTask",
    "list_tasks",
    "make_task",
    "train_eval_split",
    "BOS_TOKEN",
    "EOS_TOKEN",
    "PAD_TOKEN",
    "UNK_TOKEN",
    "Tokenizer",
    "default_vocabulary",
]
