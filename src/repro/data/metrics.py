"""Evaluation metrics: Rouge-1, Rouge-2, ExactMatch and token-level F1.

These are the metrics of Table II: Rouge-1/2 for the summarisation task and
ExactMatch / F1 for the two question-answering tasks.  The implementations
follow the standard definitions (Lin 2004 for ROUGE recall/precision/F1;
SQuAD's answer-level EM and bag-of-tokens F1).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from statistics import mean
from typing import Dict, List, Sequence


def _tokens(text: "str | Sequence[str]") -> List[str]:
    if isinstance(text, str):
        return text.split()
    return [str(t) for t in text]


def _ngrams(tokens: Sequence[str], n: int) -> Counter:
    return Counter(tuple(tokens[i:i + n]) for i in range(len(tokens) - n + 1))


def rouge_n(prediction: "str | Sequence[str]", reference: "str | Sequence[str]", n: int = 1) -> float:
    """ROUGE-N F1 score between a prediction and a reference."""
    if n < 1:
        raise ValueError("n must be >= 1")
    pred = _ngrams(_tokens(prediction), n)
    ref = _ngrams(_tokens(reference), n)
    if not pred or not ref:
        return 0.0
    overlap = sum((pred & ref).values())
    if overlap == 0:
        return 0.0
    precision = overlap / sum(pred.values())
    recall = overlap / sum(ref.values())
    return 2 * precision * recall / (precision + recall)


def rouge1(prediction, reference) -> float:
    """ROUGE-1 (unigram overlap) F1."""
    return rouge_n(prediction, reference, n=1)


def rouge2(prediction, reference) -> float:
    """ROUGE-2 (bigram overlap) F1."""
    return rouge_n(prediction, reference, n=2)


def exact_match(prediction: "str | Sequence[str]", reference: "str | Sequence[str]") -> float:
    """1.0 if the prediction exactly matches the reference, else 0.0."""
    return 1.0 if _tokens(prediction) == _tokens(reference) else 0.0


def token_f1(prediction: "str | Sequence[str]", reference: "str | Sequence[str]") -> float:
    """SQuAD-style bag-of-tokens F1 between prediction and reference."""
    pred = _tokens(prediction)
    ref = _tokens(reference)
    if not pred or not ref:
        return 1.0 if pred == ref else 0.0
    common = Counter(pred) & Counter(ref)
    overlap = sum(common.values())
    if overlap == 0:
        return 0.0
    precision = overlap / len(pred)
    recall = overlap / len(ref)
    return 2 * precision * recall / (precision + recall)


@dataclass(frozen=True)
class EvalScores:
    """Aggregate scores over a set of predictions (Table II row)."""

    rouge1: float
    rouge2: float
    exact_match: float
    f1: float
    num_examples: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "rouge1": self.rouge1,
            "rouge2": self.rouge2,
            "exact_match": self.exact_match,
            "f1": self.f1,
            "num_examples": self.num_examples,
        }


def evaluate_predictions(predictions: Sequence[str], references: Sequence[str]) -> EvalScores:
    """Compute all Table II metrics over parallel prediction/reference lists.

    Scores are reported on a 0-100 scale, matching the paper's tables.
    """
    if len(predictions) != len(references):
        raise ValueError(
            f"got {len(predictions)} predictions but {len(references)} references")
    if not predictions:
        raise ValueError("cannot evaluate an empty prediction set")
    return EvalScores(
        rouge1=100.0 * mean(rouge1(p, r) for p, r in zip(predictions, references)),
        rouge2=100.0 * mean(rouge2(p, r) for p, r in zip(predictions, references)),
        exact_match=100.0 * mean(exact_match(p, r) for p, r in zip(predictions, references)),
        f1=100.0 * mean(token_f1(p, r) for p, r in zip(predictions, references)),
        num_examples=len(predictions),
    )
