"""Synthetic downstream tasks standing in for Xsum, SQuAD and CB-WebQA.

The paper fine-tunes Switch-Transformer on one summarisation task (Xsum) and
two closed-book / extractive QA tasks (CB Web Questions, SQuAD) and shows
that replacing the gates with pre-gates does not change the achievable
accuracy.  We cannot ship those datasets (and a tiny numpy model could not
learn them anyway), so each task is replaced by a synthetic seq2seq problem
with the same *shape*:

* :class:`SummarizationTask` ("xsum_like") — the input mixes tokens from
  several topic clusters; the target is the dominant cluster's keyword
  sequence, i.e. a content-selective compression of the input.  Evaluated
  with Rouge-1/2.
* :class:`ExtractiveQATask` ("squad_like") — the input is a context
  containing ``key value`` pairs followed by a question key; the target is
  the value adjacent to that key in the context.  Evaluated with
  ExactMatch / F1.
* :class:`ClosedBookQATask` ("webqa_like") — the input is only a question
  about a fixed synthetic knowledge base; the answer must be memorised in
  the model parameters (the defining property of *closed-book* QA).
  Evaluated with ExactMatch / F1.

All three exercise the MoE routing path: different clusters / keys / entities
tend to specialise different experts, which is exactly the behaviour the
pre-gate has to predict one block early.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .tokenizer import Tokenizer, default_vocabulary


@dataclass(frozen=True)
class Seq2SeqExample:
    """One training / evaluation example."""

    source: str
    target: str


class SyntheticTask:
    """Base class for synthetic seq2seq task generators."""

    name = "base"
    metrics = ("exact_match", "f1")

    def __init__(self, tokenizer: Optional[Tokenizer] = None, seed: int = 0) -> None:
        self.tokenizer = tokenizer or default_vocabulary()
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def generate(self, num_examples: int) -> List[Seq2SeqExample]:
        """Generate ``num_examples`` examples."""
        return [self._generate_one() for _ in range(num_examples)]

    def _generate_one(self) -> Seq2SeqExample:  # pragma: no cover - abstract
        raise NotImplementedError

    def _content_words(self) -> List[str]:
        # The tokenizer's non-special vocabulary.
        return [f"w{i}" for i in range(self.tokenizer.vocab_size - 4)]


class SummarizationTask(SyntheticTask):
    """Xsum-like content-selection summarisation."""

    name = "xsum_like"
    metrics = ("rouge1", "rouge2")

    def __init__(self, tokenizer: Optional[Tokenizer] = None, seed: int = 0,
                 num_clusters: int = 6, doc_length: int = 12, summary_length: int = 3) -> None:
        super().__init__(tokenizer, seed)
        words = self._content_words()
        if num_clusters * summary_length > len(words):
            raise ValueError("vocabulary too small for the requested cluster structure")
        self.num_clusters = num_clusters
        self.doc_length = doc_length
        self.summary_length = summary_length
        # Partition the vocabulary into topic clusters; the first
        # ``summary_length`` words of a cluster are its "keywords".
        per_cluster = len(words) // num_clusters
        self.clusters = [words[i * per_cluster:(i + 1) * per_cluster] for i in range(num_clusters)]

    def _generate_one(self) -> Seq2SeqExample:
        dominant = int(self._rng.integers(self.num_clusters))
        other = int(self._rng.integers(self.num_clusters))
        dominant_share = self.doc_length * 2 // 3
        doc_tokens = list(self._rng.choice(self.clusters[dominant], size=dominant_share))
        doc_tokens += list(self._rng.choice(self.clusters[other],
                                            size=self.doc_length - dominant_share))
        self._rng.shuffle(doc_tokens)
        summary = self.clusters[dominant][:self.summary_length]
        return Seq2SeqExample(source=" ".join(doc_tokens), target=" ".join(summary))


class ExtractiveQATask(SyntheticTask):
    """SQuAD-like extractive question answering over a short context."""

    name = "squad_like"
    metrics = ("exact_match", "f1")

    def __init__(self, tokenizer: Optional[Tokenizer] = None, seed: int = 0,
                 num_keys: int = 12, num_values: int = 12, facts_per_context: int = 3) -> None:
        super().__init__(tokenizer, seed)
        words = self._content_words()
        if num_keys + num_values > len(words):
            raise ValueError("vocabulary too small for the requested key/value space")
        self.keys = words[:num_keys]
        self.values = words[num_keys:num_keys + num_values]
        self.facts_per_context = facts_per_context

    def _generate_one(self) -> Seq2SeqExample:
        key_ids = self._rng.choice(len(self.keys), size=self.facts_per_context, replace=False)
        value_ids = self._rng.choice(len(self.values), size=self.facts_per_context, replace=True)
        facts = [(self.keys[int(k)], self.values[int(v)]) for k, v in zip(key_ids, value_ids)]
        asked = facts[int(self._rng.integers(len(facts)))]
        context = " ".join(f"{k} {v}" for k, v in facts)
        source = f"{context} {asked[0]}"
        return Seq2SeqExample(source=source, target=asked[1])


class ClosedBookQATask(SyntheticTask):
    """CB-WebQA-like closed-book question answering over a fixed knowledge base."""

    name = "webqa_like"
    metrics = ("exact_match", "f1")

    def __init__(self, tokenizer: Optional[Tokenizer] = None, seed: int = 0,
                 num_entities: int = 20) -> None:
        super().__init__(tokenizer, seed)
        words = self._content_words()
        if 2 * num_entities > len(words):
            raise ValueError("vocabulary too small for the requested knowledge base")
        kb_rng = np.random.default_rng(seed + 1)
        entities = words[:num_entities]
        answers = list(kb_rng.permutation(words[num_entities:2 * num_entities]))
        #: The synthetic knowledge base: entity -> answer, fixed per task seed.
        self.knowledge_base: Dict[str, str] = dict(zip(entities, answers))

    def _generate_one(self) -> Seq2SeqExample:
        entity = list(self.knowledge_base)[int(self._rng.integers(len(self.knowledge_base)))]
        return Seq2SeqExample(source=entity, target=self.knowledge_base[entity])


_TASKS = {
    "xsum_like": SummarizationTask,
    "squad_like": ExtractiveQATask,
    "webqa_like": ClosedBookQATask,
}

#: The downstream task each paper dataset is substituted by.
PAPER_TASK_SUBSTITUTIONS = {
    "Xsum": "xsum_like",
    "CB Web QA": "webqa_like",
    "SQuAD": "squad_like",
}


def make_task(name: str, tokenizer: Optional[Tokenizer] = None, seed: int = 0, **kwargs) -> SyntheticTask:
    """Instantiate a task generator by name."""
    try:
        cls = _TASKS[name]
    except KeyError:
        raise ValueError(f"unknown task {name!r}; known: {sorted(_TASKS)}") from None
    return cls(tokenizer=tokenizer, seed=seed, **kwargs)


def list_tasks() -> List[str]:
    return sorted(_TASKS)


# ----------------------------------------------------------------------
# Batching
# ----------------------------------------------------------------------
@dataclass
class Batch:
    """A tokenised training batch for the seq2seq models."""

    encoder_ids: np.ndarray        # (batch, src_len)
    decoder_input_ids: np.ndarray  # (batch, tgt_len) — starts with BOS
    decoder_target_ids: np.ndarray  # (batch, tgt_len) — ends with EOS
    encoder_padding_mask: np.ndarray  # (batch, src_len) True at padding
    sources: List[str] = field(default_factory=list)
    targets: List[str] = field(default_factory=list)

    @property
    def size(self) -> int:
        return int(self.encoder_ids.shape[0])


class Seq2SeqDataset:
    """Tokenised dataset with deterministic batching.

    Parameters
    ----------
    examples:
        The task examples.
    tokenizer:
        Tokenizer shared with the model (its vocab must fit the model's
        ``vocab_size``).
    """

    def __init__(self, examples: Sequence[Seq2SeqExample], tokenizer: Tokenizer) -> None:
        if not examples:
            raise ValueError("dataset must contain at least one example")
        self.examples = list(examples)
        self.tokenizer = tokenizer

    def __len__(self) -> int:
        return len(self.examples)

    def __getitem__(self, index: int) -> Seq2SeqExample:
        return self.examples[index]

    def to_batch(self, examples: Sequence[Seq2SeqExample]) -> Batch:
        tok = self.tokenizer
        src = tok.pad_batch([tok.encode(e.source) for e in examples])
        tgt = [tok.encode(e.target, add_eos=True) for e in examples]
        tgt_padded = tok.pad_batch(tgt)
        decoder_in = [[tok.bos_id] + seq[:-1] for seq in tgt_padded]
        src_arr = np.asarray(src, dtype=np.int64)
        return Batch(
            encoder_ids=src_arr,
            decoder_input_ids=np.asarray(decoder_in, dtype=np.int64),
            decoder_target_ids=np.asarray(tgt_padded, dtype=np.int64),
            encoder_padding_mask=src_arr == tok.pad_id,
            sources=[e.source for e in examples],
            targets=[e.target for e in examples],
        )

    def batches(self, batch_size: int, shuffle: bool = False,
                rng: Optional[np.random.Generator] = None) -> Iterator[Batch]:
        """Iterate over the dataset in batches of ``batch_size``."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        order = np.arange(len(self.examples))
        if shuffle:
            (rng or np.random.default_rng()).shuffle(order)
        for start in range(0, len(order), batch_size):
            chunk = [self.examples[i] for i in order[start:start + batch_size]]
            yield self.to_batch(chunk)


def train_eval_split(task: SyntheticTask, train_size: int, eval_size: int,
                     tokenizer: Optional[Tokenizer] = None) -> Tuple[Seq2SeqDataset, Seq2SeqDataset]:
    """Generate disjoint train and eval datasets from one task generator."""
    tokenizer = tokenizer or task.tokenizer
    examples = task.generate(train_size + eval_size)
    return (Seq2SeqDataset(examples[:train_size], tokenizer),
            Seq2SeqDataset(examples[train_size:], tokenizer))
