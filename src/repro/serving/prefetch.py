"""Pre-gate-driven cross-request prefetching over shared expert residency.

With continuous batching, each scheduling round knows — before any kernel of
the round runs — the full expert-transfer plan of every in-flight request
(for Pre-gated MoE because the pre-gates reveal next-block experts ahead of
time, for the other designs because the simulator is trace-driven).  The
prefetcher exploits that: it merges the per-round plans of all round
members, pins every expert the round relies on in the shared
:class:`~repro.system.residency.ExpertResidency` map, and ensures each
unique expert crosses the CPU→GPU link **at most once per round** —
already-resident experts are skipped entirely (a cache hit), and experts
fetched by one request are reused by every later round member that planned
the same transfer (the fetch's copy op becomes their dependency).

Split of responsibilities with the no-cache path:

* :class:`~repro.serving.simulator.SharedExpertRound` — transfer dedup
  *within* one round only; every slot is freed when its last round user has
  executed (the behaviour of the scheduler without a cache).
* :class:`PrefetchRound` (built by :class:`CrossRequestPrefetcher`) — the
  same round protocol, but backed by the residency map: on the last release
  an expert is *retained* for future rounds if the cache capacity allows,
  and planning consults residency so retained experts never re-enter a
  migration plan.

Both implement the round protocol the
:class:`~repro.serving.simulator.IterationSimulator` speaks
(``register_plan`` / ``is_fetched`` / ``copy_op`` / ``fetch`` / ``release_keys``
/ ``release`` / ``drain``), so the simulation core is identical either way —
with a zero-capacity residency map the timelines are bit-identical to the
uncached scheduler, which the parity tests pin to 1e-9.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..core.migration import MigrationPlan
from ..system.residency import ExpertResidency
from ..workloads.traces import IterationActivations
from .placement import ModelPlacement

#: Key identifying one migratable expert: (global block index, expert id).
ExpertKey = Tuple[int, int]


def block_expert_keys(placement: ModelPlacement, part: str, plan: MigrationPlan,
                      activations: IterationActivations,
                      block: int) -> List[ExpertKey]:
    """Expert keys one request uses at ``block``: planned fetches + resident reliance.

    The planned transfers targeting ``block`` come first (in plan order, so
    refcounts stay symmetric with the fetch path); activated experts that
    the plan did *not* schedule a transfer for follow — those are the
    experts the plan assumed resident, which the round must pin so they
    cannot be evicted before this block executes.
    """
    keys = [(placement.global_block_index(part, t.block_index), t.expert_id)
            for t in plan.transfers_for_block(block)]
    seen = set(keys)
    activated = activations[block] if block < len(activations) else []
    for expert in activated:
        key = (placement.global_block_index(part, block), int(expert))
        if key not in seen:
            seen.add(key)
            keys.append(key)
    return keys


def request_round_blocks(plan: MigrationPlan,
                         activations: IterationActivations) -> List[int]:
    """All MoE block indices one request's round unit touches."""
    blocks = set(range(len(activations)))
    blocks.update(t.block_index for t in plan.transfers)
    return sorted(blocks)


class PrefetchRound:
    """Residency-backed transfer coordination for one scheduling round.

    Registration (before the round simulates) walks every member's plan and
    activations: each key gets a per-round refcount, and keys that are
    already resident are pinned immediately — recording the cache hit and
    guaranteeing no eviction can invalidate a plan that assumed residency.
    During simulation the first member to need a non-resident expert fetches
    it (pinning it as a miss, which charges the bytes to the GPU pool);
    later members depend on that fetch's copy op.  Releases decrement the
    round refcount; the last release hands the pin back to the residency
    map, which retains or frees the expert per its policy and capacity.
    """

    def __init__(self, residency: ExpertResidency) -> None:
        self.residency = residency
        self._users: Dict[ExpertKey, int] = {}
        self._copy_ops: Dict[ExpertKey, int] = {}
        self._satisfied: Set[ExpertKey] = set()
        self._pinned: Set[ExpertKey] = set()

    # -- registration (before the round is simulated) -------------------
    def register_plan(self, placement: ModelPlacement, part: str,
                      plan: MigrationPlan,
                      activations: Optional[IterationActivations] = None) -> None:
        activations = activations if activations is not None else []
        for block in request_round_blocks(plan, activations):
            for key in block_expert_keys(placement, part, plan, activations, block):
                self._users[key] = self._users.get(key, 0) + 1
                if key not in self._satisfied and self.residency.is_resident(key):
                    self.residency.pin(key)  # hit: skip this expert's migration
                    self._pinned.add(key)
                    self._satisfied.add(key)

    # -- queries during simulation --------------------------------------
    def is_fetched(self, key: ExpertKey) -> bool:
        return key in self._satisfied

    def copy_op(self, key: ExpertKey) -> Optional[int]:
        """Copy op to depend on; ``None`` for experts resident before the round."""
        return self._copy_ops.get(key)

    def fetch(self, placement: ModelPlacement, part: str, transfer,
              key: ExpertKey, copy_op_id: int) -> None:
        """Record the round's single migration of ``key`` (reserves its bytes)."""
        already_resident = self.residency.pin(key)
        self._pinned.add(key)
        self._satisfied.add(key)
        if not already_resident:
            self._copy_ops[key] = copy_op_id

    def release_keys(self, placement: ModelPlacement, part: str,
                     plan: MigrationPlan, activations: IterationActivations,
                     block: int) -> List[ExpertKey]:
        return block_expert_keys(placement, part, plan, activations, block)

    def release(self, placement: ModelPlacement, key: ExpertKey) -> None:
        remaining = self._users.get(key, 0) - 1
        if remaining > 0:
            self._users[key] = remaining
            return
        self._users.pop(key, None)
        self._copy_ops.pop(key, None)
        self._satisfied.discard(key)
        if key in self._pinned:
            self._pinned.discard(key)
            self.residency.release(key)  # retain-or-free per policy/capacity

    def drain(self, placement: ModelPlacement) -> None:
        """Hand back any pins still held (abnormal termination safety net)."""
        for key in list(self._pinned):
            self.residency.release(key)
        self._users.clear()
        self._copy_ops.clear()
        self._satisfied.clear()
        self._pinned.clear()


class CrossRequestPrefetcher:
    """Round factory tying the scheduler to one shared residency map.

    One prefetcher per replica: it owns no transfer state itself (that lives
    in the per-round :class:`PrefetchRound` handles and the residency map),
    but tracks round-level aggregates for reporting.

    With a tiered hierarchy the rounds the prefetcher builds compose with a
    *second-level* cache without any protocol change: GPU-residency hits
    drop out of migration plans here (first level), and each remaining
    fetch is then routed through the host-DRAM staging cache — when the
    system offloads to SSD — by
    :meth:`~repro.serving.placement.ModelPlacement.route_fetch` at issue
    time (second level).  First-level planning has already removed
    GPU-resident experts, so the two levels never double count.
    """

    def __init__(self, residency: ExpertResidency) -> None:
        if residency is None:
            raise ValueError("CrossRequestPrefetcher needs an ExpertResidency")
        self.residency = residency
        self.rounds = 0

    def begin_round(self) -> PrefetchRound:
        self.rounds += 1
        return PrefetchRound(self.residency)

    @property
    def stats(self):
        """First-level (GPU residency) counters."""
        return self.residency.stats
