"""Serving engines for the four MoE inference system designs.

Each engine simulates single-GPU serving of a (paper-scale) Switch-
Transformer configuration on a :class:`~repro.system.hardware.SystemSpec`,
using the dual-stream :class:`~repro.system.timeline.ExecutionTimeline` to
model the interaction between GPU compute and CPU→GPU expert migration:

* :class:`GPUOnlyEngine` — the oracular baseline: every parameter resident
  in GPU memory, no expert migration (OOMs when the model does not fit).
* :class:`OnDemandEngine` — MoE-OnDemand: experts offloaded to host memory
  and fetched after each block's gate, serialising selection, migration and
  execution.
* :class:`PrefetchAllEngine` — MoE-Prefetch (SE-MoE): the *entire* expert
  set of the next block is transferred while the current block executes.
* :class:`PreGatedEngine` — the paper's system: the pre-gate evaluated in
  block *N* identifies the activated experts of block *N+1*, so only those
  are transferred, overlapped with block *N*'s execution.

The engines consume expert-activation traces
(:class:`~repro.workloads.traces.RequestTrace`) and emit the same metrics
the paper's artifact reports: per-MoE-block latency, end-to-end throughput
in tokens/second and peak GPU memory usage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.migration import MigrationPlan, plan_for_design
from ..moe.configs import ModelConfig, get_config
from ..moe.transformer import _moe_layer_positions
from ..core.pregate import PreGateSchedule
from ..system.cache import ExpertCache
from ..system.hardware import PAPER_SYSTEM, SystemSpec
from ..system.memory import MemoryHierarchy, MemoryPool, OutOfMemoryError
from ..system.performance import GpuLatencyModel
from ..system.timeline import ExecutionTimeline, TimelineOp
from ..workloads.traces import IterationActivations, RequestTrace
from .metrics import BlockLatencyRecord, IterationResult, RequestResult, WorkloadResult

#: Fixed GPU memory consumed by the runtime itself (CUDA context, cuBLAS
#: workspaces, FasterTransformer's pre-allocated activation buffers).  The
#: paper's measured peak-memory numbers include this overhead, so the
#: simulator accounts for it explicitly.
DEFAULT_RUNTIME_WORKSPACE_BYTES = int(2e9)


@dataclass
class EngineConfig:
    """Tunable knobs shared by all engines."""

    activation_level: int = 1
    runtime_workspace_bytes: int = DEFAULT_RUNTIME_WORKSPACE_BYTES
    #: Whether to keep simulating when the GPU pool would be exceeded
    #: (used by analyses that want to measure how far over budget a design is).
    allow_oversubscription: bool = False


class ServingEngine:
    """Base class implementing the shared simulation machinery.

    Subclasses set :attr:`design` and the migration behaviour is selected
    through :func:`repro.core.migration.plan_for_design`.
    """

    design: str = "base"

    def __init__(self, config: "ModelConfig | str", system: SystemSpec = PAPER_SYSTEM,
                 latency_model: Optional[GpuLatencyModel] = None,
                 cache: Optional[ExpertCache] = None,
                 engine_config: Optional[EngineConfig] = None) -> None:
        self.config = get_config(config) if isinstance(config, str) else config
        self.system = system
        self.latency = latency_model or GpuLatencyModel(system.gpu)
        self.cache = cache
        self.engine_config = engine_config or EngineConfig()
        self.memory = MemoryHierarchy.from_system(system)
        self.gpu_pool: MemoryPool = self.memory.gpu
        self._loaded = False
        self._expert_seq = 0

        if self.config.is_moe:
            self._encoder_moe_positions = _moe_layer_positions(
                self.config.num_encoder_layers, self.config.moe_layer_frequency)
            self._decoder_moe_positions = _moe_layer_positions(
                self.config.num_decoder_layers, self.config.moe_layer_frequency)
        else:
            self._encoder_moe_positions = []
            self._decoder_moe_positions = []

    # ------------------------------------------------------------------
    # Model loading / parameter placement (Figure 4)
    # ------------------------------------------------------------------
    @property
    def offloads_experts(self) -> bool:
        return self.design != "gpu_only"

    def load_model(self) -> None:
        """Place model parameters according to the design's storage policy.

        Raises :class:`OutOfMemoryError` if the GPU cannot hold its share of
        the parameters (the GPU-only OOM case for Switch-Large in
        Figures 10-12).
        """
        if self._loaded:
            return
        allow = self.engine_config.allow_oversubscription
        self.gpu_pool.allocate("runtime_workspace", self.engine_config.runtime_workspace_bytes,
                               category="workspace", allow_oversubscribe=allow)
        self.gpu_pool.allocate("non_moe_params", self.config.non_moe_bytes(),
                               category="non_moe", allow_oversubscribe=allow)
        if self.offloads_experts:
            offload_pool = self.memory.offload_pool(self.system.offload_tier)
            offload_pool.allocate("moe_params", self.config.moe_bytes(), category="moe")
        else:
            self.gpu_pool.allocate("moe_params", self.config.moe_bytes(),
                                   category="moe", allow_oversubscribe=allow)
        self._loaded = True

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _moe_positions(self, part: str) -> List[int]:
        return self._encoder_moe_positions if part == "encoder" else self._decoder_moe_positions

    def _global_block_index(self, part: str, block_index: int) -> int:
        if part == "encoder":
            return block_index
        return len(self._encoder_moe_positions) + block_index

    def _cache_resident(self, part: str, num_blocks: int) -> List[Set[int]]:
        """Per-block sets of experts already resident in the GPU expert cache."""
        resident: List[Set[int]] = []
        for block in range(num_blocks):
            if self.cache is None or not self.cache.enabled:
                resident.append(set())
            else:
                key_block = self._global_block_index(part, block)
                resident.append(set(self.cache.resident_for_block(key_block)))
        return resident

    def _allocate_expert(self, part: str, block_index: int, expert_id: int) -> str:
        """Reserve GPU memory for one migrated expert; returns the allocation tag."""
        gb = self._global_block_index(part, block_index)
        if self.cache is not None and self.cache.enabled:
            tag = f"cached_expert:{gb}:{expert_id}"
            if self.gpu_pool.has(tag):
                return tag
        else:
            self._expert_seq += 1
            tag = f"expert:{gb}:{expert_id}:{self._expert_seq}"
        self.gpu_pool.allocate(tag, self.config.expert_bytes(), category="experts",
                               allow_oversubscribe=self.engine_config.allow_oversubscription)
        return tag

    def _release_block_experts(self, part: str, block_index: int,
                               fetched_tags: List[str], activated: Sequence[int]) -> None:
        """Free (or cache) the experts of a block after its execution."""
        gb = self._global_block_index(part, block_index)
        if self.cache is not None and self.cache.enabled:
            for expert_id in activated:
                self.cache.lookup((gb, expert_id))  # record the access for the policy
                evicted = self.cache.insert((gb, expert_id))
                if evicted is not None:
                    evicted_tag = f"cached_expert:{evicted[0]}:{evicted[1]}"
                    if self.gpu_pool.has(evicted_tag):
                        self.gpu_pool.free(evicted_tag)
            return
        for tag in fetched_tags:
            if self.gpu_pool.has(tag):
                self.gpu_pool.free(tag)

    # ------------------------------------------------------------------
    # Core simulation of one stack traversal
    # ------------------------------------------------------------------
    def _simulate_stack_pass(
        self,
        timeline: ExecutionTimeline,
        part: str,
        iteration: int,
        activations: IterationActivations,
        query_tokens: int,
        self_kv_tokens: int,
        cross_kv_tokens: Optional[int],
    ) -> List[BlockLatencyRecord]:
        """Walk one stack (encoder pass or one decoder iteration).

        Returns the per-MoE-block latency records.  Ops are appended to
        ``timeline``; the compute stream is FIFO so consecutive layers
        serialise automatically, while expert transfers land on the copy
        stream with explicit dependencies implementing each design's
        selection→migration→execution ordering.
        """
        config = self.config
        moe_positions = self._moe_positions(part)
        num_layers = (config.num_encoder_layers if part == "encoder"
                      else config.num_decoder_layers)
        num_blocks = len(moe_positions)
        records: List[BlockLatencyRecord] = []

        resident = self._cache_resident(part, num_blocks)
        plan = plan_for_design(
            self.design, activations, config.expert_bytes(), config.num_experts,
            activation_level=self.engine_config.activation_level, resident=resident)
        transfers_by_issue: Dict[int, List] = {}
        for transfer in plan.transfers:
            transfers_by_issue.setdefault(transfer.issue_block, []).append(transfer)

        schedule = None
        if self.design == "pregated" and num_blocks > 0:
            schedule = PreGateSchedule(num_blocks=num_blocks,
                                       activation_level=self.engine_config.activation_level)

        gate_time = self.latency.gate_time(config, query_tokens)
        transfer_ops_by_target: Dict[int, List[int]] = {}
        allocation_tags: Dict[int, List[str]] = {}
        last_compute_op: Optional[TimelineOp] = None
        moe_block_cursor = 0

        for layer in range(num_layers):
            # --- non-MoE portion of the transformer block -------------
            if part == "encoder":
                nonmoe = self.latency.encoder_layer_nonmoe_time(config, query_tokens)
            else:
                nonmoe = self.latency.decoder_layer_nonmoe_time(
                    config, query_tokens, self_kv_tokens, cross_kv_tokens or self_kv_tokens)
            last_compute_op = timeline.add_compute(
                f"{part}{iteration}.layer{layer}.attention", nonmoe, category="non_moe")

            if layer not in moe_positions:
                # Dense FFN layer.
                ffn = self.latency.ffn_time(config, query_tokens)
                last_compute_op = timeline.add_compute(
                    f"{part}{iteration}.layer{layer}.ffn", ffn, category="non_moe")
                continue

            # --- MoE block --------------------------------------------
            block = moe_block_cursor
            moe_block_cursor += 1
            input_ready = last_compute_op.end if last_compute_op else 0.0

            # (1) Expert-selection stage: gate / pre-gate / first-gate ops.
            num_gates = self._gates_evaluated_at(block, num_blocks, schedule)
            gate_op = None
            if num_gates > 0:
                gate_op = timeline.add_compute(
                    f"{part}{iteration}.moe{block}.gate", num_gates * gate_time,
                    category="gate")
                last_compute_op = gate_op

            # (2) Issue expert migrations whose selection happened here.
            issued = transfers_by_issue.get(block, [])
            if issued and self.offloads_experts:
                sync_op = timeline.add_compute(
                    f"{part}{iteration}.moe{block}.issue_transfers",
                    self.system.host_sync_overhead, category="sync")
                last_compute_op = sync_op
                for transfer in issued:
                    duration = self.system.expert_transfer_time(transfer.bytes)
                    copy_op = timeline.add_copy(
                        f"{part}{iteration}.moe{transfer.block_index}"
                        f".fetch_expert{transfer.expert_id}",
                        duration, depends_on=[sync_op.op_id], category="expert_transfer")
                    transfer_ops_by_target.setdefault(transfer.block_index, []).append(copy_op.op_id)
                    tag = self._allocate_expert(part, transfer.block_index, transfer.expert_id)
                    allocation_tags.setdefault(transfer.block_index, []).append(tag)

            # (3) Expert-execution stage: waits for this block's transfers.
            activated = activations[block] if block < len(activations) else []
            num_active = max(1, len(activated))
            exec_time = self.latency.expert_execution_time(config, query_tokens, num_active)
            deps = transfer_ops_by_target.get(block, [])
            ready_before_exec = last_compute_op.end if last_compute_op else 0.0
            exec_op = timeline.add_compute(
                f"{part}{iteration}.moe{block}.experts", exec_time,
                depends_on=deps, category="expert_execution")
            last_compute_op = exec_op

            exposed = max(0.0, exec_op.start - ready_before_exec)
            records.append(BlockLatencyRecord(
                part=part, iteration=iteration, block_index=block,
                latency=exec_op.end - input_ready,
                num_active_experts=len(activated),
                exposed_transfer_time=exposed))

            # (4) Release (or cache) this block's experts.
            self._release_block_experts(part, block, allocation_tags.get(block, []), activated)

        return records

    def _gates_evaluated_at(self, block: int, num_blocks: int,
                            schedule: Optional[PreGateSchedule]) -> int:
        """How many gate evaluations happen at MoE block ``block`` for this design."""
        if self.design == "pregated" and schedule is not None:
            gates = 0
            if block == 0:
                gates += schedule.num_first_gates()
            if schedule.has_pre_gate(block):
                gates += 1
            return gates
        # Conventional architectures evaluate exactly one gate per block.
        return 1

    # ------------------------------------------------------------------
    # Public simulation API
    # ------------------------------------------------------------------
    def run_decoder_iteration(self, activations: IterationActivations,
                              query_tokens: int = 1, self_kv_tokens: int = 1,
                              cross_kv_tokens: int = 32,
                              timeline: Optional[ExecutionTimeline] = None,
                              iteration: int = 0) -> IterationResult:
        """Simulate a single decoder iteration (all decoder layers, one token)."""
        self.load_model()
        timeline = timeline if timeline is not None else ExecutionTimeline()
        start = timeline.makespan
        records = self._simulate_stack_pass(
            timeline, "decoder", iteration, activations,
            query_tokens=query_tokens, self_kv_tokens=self_kv_tokens,
            cross_kv_tokens=cross_kv_tokens)
        lm_head = self.latency.lm_head_time(self.config, query_tokens)
        timeline.add_compute(f"decoder{iteration}.lm_head", lm_head, category="non_moe")
        duration = timeline.makespan - start
        return IterationResult(part="decoder", iteration=iteration,
                               duration=duration, block_latencies=records)

    def run_encoder_pass(self, activations: IterationActivations, input_tokens: int,
                         timeline: Optional[ExecutionTimeline] = None) -> IterationResult:
        """Simulate the encoder pass over ``input_tokens`` tokens."""
        self.load_model()
        timeline = timeline if timeline is not None else ExecutionTimeline()
        start = timeline.makespan
        records = self._simulate_stack_pass(
            timeline, "encoder", 0, activations,
            query_tokens=input_tokens, self_kv_tokens=input_tokens, cross_kv_tokens=None)
        duration = timeline.makespan - start
        return IterationResult(part="encoder", iteration=0, duration=duration,
                               block_latencies=records)

    def run_request(self, trace: RequestTrace) -> RequestResult:
        """Serve one request end-to-end: encoder pass + all decoder iterations."""
        self.load_model()
        timeline = ExecutionTimeline()
        iterations: List[IterationResult] = []

        encoder_result = self.run_encoder_pass(
            trace.encoder_activations, trace.input_length, timeline=timeline)
        iterations.append(encoder_result)
        encoder_time = timeline.makespan

        for step, activations in enumerate(trace.decode_activations):
            result = self.run_decoder_iteration(
                activations, query_tokens=1,
                self_kv_tokens=step + 1, cross_kv_tokens=trace.input_length,
                timeline=timeline, iteration=step)
            iterations.append(result)
        decode_time = timeline.makespan - encoder_time

        return RequestResult(
            design=self.design, config_name=self.config.name,
            input_length=trace.input_length, output_length=trace.output_length,
            encoder_time=encoder_time, decode_time=decode_time,
            iterations=iterations, peak_gpu_bytes=self.gpu_pool.peak)

    def run_workload(self, traces: Sequence[RequestTrace]) -> WorkloadResult:
        """Serve a list of requests and aggregate the metrics.

        If the model cannot be loaded (GPU-only on a model larger than HBM)
        the result records the OOM instead of raising, mirroring how the
        paper reports the Switch-Large GPU-only column.
        """
        result = WorkloadResult(design=self.design, config_name=self.config.name)
        try:
            self.load_model()
        except OutOfMemoryError as exc:
            result.oom = True
            result.oom_reason = str(exc)
            return result
        for trace in traces:
            result.requests.append(self.run_request(trace))
        result.peak_gpu_bytes = self.gpu_pool.peak
        return result


class GPUOnlyEngine(ServingEngine):
    """Oracular upper bound: the entire model resident in GPU memory."""

    design = "gpu_only"


class OnDemandEngine(ServingEngine):
    """MoE-OnDemand (HuggingFace-Accelerate-style fetch-on-demand offloading)."""

    design = "ondemand"


class PrefetchAllEngine(ServingEngine):
    """MoE-Prefetch (SE-MoE): prefetch every expert of the next block."""

    design = "prefetch_all"


class PreGatedEngine(ServingEngine):
    """The paper's Pre-gated MoE serving system."""

    design = "pregated"


_ENGINES = {
    "gpu_only": GPUOnlyEngine,
    "ondemand": OnDemandEngine,
    "prefetch_all": PrefetchAllEngine,
    "pregated": PreGatedEngine,
}

#: Display names used in reports, matching the paper's figure legends.
DESIGN_LABELS = {
    "gpu_only": "GPU-only",
    "pregated": "Pre-gated MoE",
    "ondemand": "MoE-OnDemand",
    "prefetch_all": "MoE-Prefetch",
}


def make_engine(design: str, config: "ModelConfig | str", system: SystemSpec = PAPER_SYSTEM,
                cache: Optional[ExpertCache] = None,
                engine_config: Optional[EngineConfig] = None) -> ServingEngine:
    """Factory for engines by design name."""
    if design not in _ENGINES:
        raise ValueError(f"unknown design {design!r}; known: {sorted(_ENGINES)}")
    return _ENGINES[design](config, system=system, cache=cache, engine_config=engine_config)


def compare_designs(config: "ModelConfig | str", traces: Sequence[RequestTrace],
                    designs: Sequence[str] = ("gpu_only", "pregated", "ondemand", "prefetch_all"),
                    system: SystemSpec = PAPER_SYSTEM,
                    engine_config: Optional[EngineConfig] = None) -> Dict[str, WorkloadResult]:
    """Run the same workload through several designs (one engine each)."""
    results: Dict[str, WorkloadResult] = {}
    for design in designs:
        engine = make_engine(design, config, system=system, engine_config=engine_config)
        results[design] = engine.run_workload(traces)
    return results
