"""Serving engines for the four MoE inference system designs.

Each engine simulates single-GPU serving of a (paper-scale) Switch-
Transformer configuration on a :class:`~repro.system.hardware.SystemSpec`,
using the dual-stream :class:`~repro.system.timeline.ExecutionTimeline` to
model the interaction between GPU compute and CPU→GPU expert migration:

* :class:`GPUOnlyEngine` — the oracular baseline: every parameter resident
  in GPU memory, no expert migration (OOMs when the model does not fit).
* :class:`OnDemandEngine` — MoE-OnDemand: experts offloaded to host memory
  and fetched after each block's gate, serialising selection, migration and
  execution.
* :class:`PrefetchAllEngine` — MoE-Prefetch (SE-MoE): the *entire* expert
  set of the next block is transferred while the current block executes.
* :class:`PreGatedEngine` — the paper's system: the pre-gate evaluated in
  block *N* identifies the activated experts of block *N+1*, so only those
  are transferred, overlapped with block *N*'s execution.

The engine itself is the *request-lifecycle* layer of the serving stack: it
composes a :class:`~repro.serving.placement.ModelPlacement` (parameter
storage policy) with an :class:`~repro.serving.simulator.IterationSimulator`
(per-iteration timeline simulation) and runs requests end-to-end, one at a
time.  The continuous-batching path that interleaves many in-flight requests
lives in :mod:`repro.serving.scheduler`, built from the same two layers.

The engines consume expert-activation traces
(:class:`~repro.workloads.traces.RequestTrace`) and emit the same metrics
the paper's artifact reports: per-MoE-block latency, end-to-end throughput
in tokens/second and peak GPU memory usage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..moe.configs import ModelConfig, get_config
from ..system.cache import ExpertCache
from ..system.hardware import PAPER_SYSTEM, LinkSpec, SystemSpec
from ..system.memory import MemoryHierarchy, MemoryPool, OutOfMemoryError
from ..system.performance import GpuLatencyModel
from ..system.timeline import ExecutionTimeline
from ..workloads.traces import IterationActivations, RequestTrace
from .metrics import IterationResult, RequestResult, WorkloadResult
from .placement import DEFAULT_RUNTIME_WORKSPACE_BYTES, ModelPlacement
from .simulator import IterationSimulator


@dataclass
class EngineConfig:
    """Tunable knobs shared by all engines."""

    activation_level: int = 1
    runtime_workspace_bytes: int = DEFAULT_RUNTIME_WORKSPACE_BYTES
    #: Whether to keep simulating when the GPU pool would be exceeded
    #: (used by analyses that want to measure how far over budget a design is).
    allow_oversubscription: bool = False


class ServingEngine:
    """Base class implementing the shared request-lifecycle machinery.

    Subclasses set :attr:`design` and the migration behaviour is selected
    through :func:`repro.core.migration.plan_for_design`.
    """

    design: str = "base"

    def __init__(self, config: "ModelConfig | str", system: SystemSpec = PAPER_SYSTEM,
                 latency_model: Optional[GpuLatencyModel] = None,
                 cache: Optional[ExpertCache] = None,
                 engine_config: Optional[EngineConfig] = None,
                 cache_policy: Optional[str] = None,
                 cache_capacity: Optional[int] = None,
                 stage_policy: Optional[str] = None,
                 stage_capacity: Optional[int] = None,
                 num_gpus: Optional[int] = None,
                 shard_policy: str = "contiguous",
                 expert_weights: Optional[Sequence[float]] = None,
                 interconnect: Optional[LinkSpec] = None) -> None:
        if cache is not None and (cache_policy is not None or cache_capacity is not None):
            raise ValueError(
                "pass either an ExpertCache or cache_policy/cache_capacity, not both")
        if cache_policy is not None and cache_capacity is None:
            raise ValueError("cache_policy requires cache_capacity")
        if cache is None and cache_capacity is not None:
            cache = ExpertCache(capacity_experts=cache_capacity,
                                policy=cache_policy or "lru")
        if num_gpus is not None or interconnect is not None:
            system = system.with_num_gpus(
                num_gpus if num_gpus is not None else system.num_gpus,
                interconnect=interconnect)
        self.config = get_config(config) if isinstance(config, str) else config
        self.system = system
        self.latency = latency_model or GpuLatencyModel(system.gpu)
        self.cache = cache
        self.engine_config = engine_config or EngineConfig()
        self.placement = ModelPlacement(
            self.config, system, offload_experts=self.offloads_experts, cache=cache,
            stage_policy=stage_policy, stage_capacity=stage_capacity,
            shard_policy=shard_policy, expert_weights=expert_weights,
            runtime_workspace_bytes=self.engine_config.runtime_workspace_bytes,
            allow_oversubscription=self.engine_config.allow_oversubscription)
        self.simulator = IterationSimulator(
            self.config, system, self.latency, self.design, self.placement,
            activation_level=self.engine_config.activation_level)
        # Carry-over of a trailing all-to-all combine between consecutive
        # passes on the same timeline (expert-parallel replicas only).
        self._carry: "tuple[ExecutionTimeline, List[int]] | None" = None

    # ------------------------------------------------------------------
    # Placement delegation (kept on the engine for backward compatibility)
    # ------------------------------------------------------------------
    @property
    def offloads_experts(self) -> bool:
        return self.design != "gpu_only"

    @property
    def memory(self) -> MemoryHierarchy:
        return self.placement.memory

    @property
    def gpu_pool(self) -> MemoryPool:
        return self.placement.gpu_pool

    def load_model(self) -> None:
        """Place model parameters according to the design's storage policy.

        Raises :class:`OutOfMemoryError` if the GPU cannot hold its share of
        the parameters (the GPU-only OOM case for Switch-Large in
        Figures 10-12).
        """
        self.placement.load_model()

    # ------------------------------------------------------------------
    # Public simulation API
    # ------------------------------------------------------------------
    def _consume_carry(self, timeline: ExecutionTimeline) -> List[int]:
        """Pending cross-pass deps for ``timeline`` (expert-parallel only)."""
        if self._carry is not None and self._carry[0] is timeline:
            return self._carry[1]
        return []

    def run_decoder_iteration(self, activations: IterationActivations,
                              query_tokens: int = 1, self_kv_tokens: int = 1,
                              cross_kv_tokens: int = 32,
                              timeline: Optional[ExecutionTimeline] = None,
                              iteration: int = 0) -> IterationResult:
        """Simulate a single decoder iteration (all decoder layers, one token)."""
        self.load_model()
        timeline = timeline if timeline is not None else ExecutionTimeline()
        outcome = self.simulator.decoder_iteration(
            timeline, activations, query_tokens=query_tokens,
            self_kv_tokens=self_kv_tokens, cross_kv_tokens=cross_kv_tokens,
            iteration=iteration, extra_deps=self._consume_carry(timeline))
        self._carry = (timeline, list(outcome.carry_deps))
        return outcome.result

    def run_encoder_pass(self, activations: IterationActivations, input_tokens: int,
                         timeline: Optional[ExecutionTimeline] = None) -> IterationResult:
        """Simulate the encoder pass over ``input_tokens`` tokens."""
        self.load_model()
        timeline = timeline if timeline is not None else ExecutionTimeline()
        outcome = self.simulator.encoder_pass(
            timeline, activations, input_tokens,
            extra_deps=self._consume_carry(timeline))
        self._carry = (timeline, list(outcome.carry_deps))
        return outcome.result

    def run_request(self, trace: RequestTrace) -> RequestResult:
        """Serve one request end-to-end: encoder pass + all decoder iterations."""
        self.load_model()
        timeline = ExecutionTimeline()
        iterations: List[IterationResult] = []

        encoder_result = self.run_encoder_pass(
            trace.encoder_activations, trace.input_length, timeline=timeline)
        iterations.append(encoder_result)
        encoder_time = timeline.makespan

        for step, activations in enumerate(trace.decode_activations):
            result = self.run_decoder_iteration(
                activations, query_tokens=1,
                self_kv_tokens=step + 1, cross_kv_tokens=trace.input_length,
                timeline=timeline, iteration=step)
            iterations.append(result)
        decode_time = timeline.makespan - encoder_time
        # The carry only orders passes within this request; drop it so the
        # engine does not keep the request's whole timeline alive.
        self._carry = None

        return RequestResult(
            design=self.design, config_name=self.config.name,
            input_length=trace.input_length, output_length=trace.output_length,
            encoder_time=encoder_time, decode_time=decode_time,
            iterations=iterations, peak_gpu_bytes=self.placement.peak_gpu_bytes)

    def run_workload(self, traces: Sequence[RequestTrace]) -> WorkloadResult:
        """Serve a list of requests and aggregate the metrics.

        If the model cannot be loaded (GPU-only on a model larger than HBM)
        the result records the OOM instead of raising, mirroring how the
        paper reports the Switch-Large GPU-only column.
        """
        result = WorkloadResult(design=self.design, config_name=self.config.name)
        try:
            self.load_model()
        except OutOfMemoryError as exc:
            result.oom = True
            result.oom_reason = str(exc)
            return result
        transfers_before = self.placement.transfers.snapshot()
        for trace in traces:
            result.requests.append(self.run_request(trace))
        result.peak_gpu_bytes = self.placement.peak_gpu_bytes
        if self.offloads_experts:
            result.tier_stats = self.placement.transfers.since(transfers_before)
        return result


class GPUOnlyEngine(ServingEngine):
    """Oracular upper bound: the entire model resident in GPU memory."""

    design = "gpu_only"


class OnDemandEngine(ServingEngine):
    """MoE-OnDemand (HuggingFace-Accelerate-style fetch-on-demand offloading)."""

    design = "ondemand"


class PrefetchAllEngine(ServingEngine):
    """MoE-Prefetch (SE-MoE): prefetch every expert of the next block."""

    design = "prefetch_all"


class PreGatedEngine(ServingEngine):
    """The paper's Pre-gated MoE serving system."""

    design = "pregated"


_ENGINES = {
    "gpu_only": GPUOnlyEngine,
    "ondemand": OnDemandEngine,
    "prefetch_all": PrefetchAllEngine,
    "pregated": PreGatedEngine,
}

#: Display names used in reports, matching the paper's figure legends.
DESIGN_LABELS = {
    "gpu_only": "GPU-only",
    "pregated": "Pre-gated MoE",
    "ondemand": "MoE-OnDemand",
    "prefetch_all": "MoE-Prefetch",
}


def make_engine(design: str, config: "ModelConfig | str", system: SystemSpec = PAPER_SYSTEM,
                cache: Optional[ExpertCache] = None,
                engine_config: Optional[EngineConfig] = None,
                cache_policy: Optional[str] = None,
                cache_capacity: Optional[int] = None,
                stage_policy: Optional[str] = None,
                stage_capacity: Optional[int] = None,
                num_gpus: Optional[int] = None,
                shard_policy: str = "contiguous",
                expert_weights: Optional[Sequence[float]] = None,
                interconnect: Optional[LinkSpec] = None) -> ServingEngine:
    """Factory for engines by design name.

    ``cache_policy``/``cache_capacity`` construct the per-request
    :class:`~repro.system.cache.ExpertCache` so callers can enable Figure 15
    caching without building the cache object by hand;
    ``stage_policy``/``stage_capacity`` enable the host-DRAM staging cache
    for SSD-offload systems (Figure 16's tier); ``num_gpus``/``shard_policy``
    shard the expert pool across an expert-parallel multi-GPU replica.
    """
    if design not in _ENGINES:
        raise ValueError(f"unknown design {design!r}; known: {sorted(_ENGINES)}")
    return _ENGINES[design](config, system=system, cache=cache,
                            engine_config=engine_config,
                            cache_policy=cache_policy,
                            cache_capacity=cache_capacity,
                            stage_policy=stage_policy,
                            stage_capacity=stage_capacity,
                            num_gpus=num_gpus,
                            shard_policy=shard_policy,
                            expert_weights=expert_weights,
                            interconnect=interconnect)


def compare_designs(config: "ModelConfig | str", traces: Sequence[RequestTrace],
                    designs: Sequence[str] = ("gpu_only", "pregated", "ondemand", "prefetch_all"),
                    system: SystemSpec = PAPER_SYSTEM,
                    engine_config: Optional[EngineConfig] = None) -> Dict[str, WorkloadResult]:
    """Run the same workload through several designs (one engine each)."""
    results: Dict[str, WorkloadResult] = {}
    for design in designs:
        engine = make_engine(design, config, system=system, engine_config=engine_config)
        results[design] = engine.run_workload(traces)
    return results
