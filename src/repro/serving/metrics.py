"""Result records and aggregate metrics for the serving simulator.

The quantities here cover both the paper's artifact outputs
(``block_lats.csv``, ``throughputs.csv``, ``peak_mems.csv``: per-MoE-block
latency, end-to-end inference throughput in tokens per second, peak GPU
memory usage) and the load-testing quantities production serving asks about:
time-to-first-token (TTFT), time-between-tokens (TBT), queueing delay and
their percentile aggregates under an arrival process.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from statistics import mean
from typing import Dict, List, Optional, Sequence

from ..obs.probes import MetricsRegistry, merge_metrics
from ..obs.spans import RequestSpans
from ..system.residency import ResidencyStats
from ..system.tiers import TierTransferStats, merge_optional_stats, merge_tier_stats


@dataclass(frozen=True)
class BlockLatencyRecord:
    """Latency of one MoE block evaluation.

    ``latency`` measures from the moment the block's input is ready (the
    preceding non-MoE layer finished) until the block's expert execution
    completes, i.e. it includes any stall waiting for expert parameters to
    arrive in GPU memory.
    """

    part: str                # "encoder" or "decoder"
    iteration: int           # decoder iteration index (0 for the encoder pass)
    block_index: int         # MoE block index within the stack
    latency: float           # seconds
    num_active_experts: int
    exposed_transfer_time: float = 0.0


@dataclass
class IterationResult:
    """One forward pass (encoder pass or one decoder iteration)."""

    part: str
    iteration: int
    duration: float
    block_latencies: List[BlockLatencyRecord] = field(default_factory=list)

    @property
    def mean_block_latency(self) -> float:
        if not self.block_latencies:
            return 0.0
        return mean(record.latency for record in self.block_latencies)


@dataclass
class RequestResult:
    """End-to-end result of serving one request."""

    design: str
    config_name: str
    input_length: int
    output_length: int
    encoder_time: float
    decode_time: float
    iterations: List[IterationResult] = field(default_factory=list)
    peak_gpu_bytes: int = 0

    @property
    def total_time(self) -> float:
        return self.encoder_time + self.decode_time

    @property
    def tokens_per_second(self) -> float:
        """End-to-end inference throughput: generated tokens per second."""
        if self.total_time <= 0:
            return 0.0
        return self.output_length / self.total_time

    @property
    def decode_tokens_per_second(self) -> float:
        """Throughput counting only the decode phase."""
        if self.decode_time <= 0:
            return 0.0
        return self.output_length / self.decode_time

    def block_latencies(self, part: Optional[str] = None) -> List[BlockLatencyRecord]:
        records = [r for it in self.iterations for r in it.block_latencies]
        if part is not None:
            records = [r for r in records if r.part == part]
        return records

    def mean_block_latency(self, part: Optional[str] = "decoder") -> float:
        records = self.block_latencies(part)
        if not records:
            return 0.0
        return mean(r.latency for r in records)


@dataclass
class WorkloadResult:
    """Aggregate over a list of requests served by one engine."""

    design: str
    config_name: str
    requests: List[RequestResult] = field(default_factory=list)
    peak_gpu_bytes: int = 0
    tier_stats: Optional[TierTransferStats] = None
    oom: bool = False
    oom_reason: str = ""

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def mean_tokens_per_second(self) -> float:
        if not self.requests:
            return 0.0
        return mean(r.tokens_per_second for r in self.requests)

    @property
    def mean_decode_tokens_per_second(self) -> float:
        if not self.requests:
            return 0.0
        return mean(r.decode_tokens_per_second for r in self.requests)

    @property
    def mean_block_latency(self) -> float:
        records = [r for req in self.requests for r in req.block_latencies("decoder")]
        if not records:
            return 0.0
        return mean(r.latency for r in records)

    @property
    def total_generated_tokens(self) -> int:
        return sum(r.output_length for r in self.requests)

    @property
    def total_time(self) -> float:
        return sum(r.total_time for r in self.requests)

    @property
    def aggregate_tokens_per_second(self) -> float:
        """Total generated tokens divided by total serving time."""
        total = self.total_time
        return self.total_generated_tokens / total if total > 0 else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "design": self.design,
            "config": self.config_name,
            "oom": self.oom,
            "mean_block_latency_ms": self.mean_block_latency * 1e3,
            "tokens_per_second": self.aggregate_tokens_per_second,
            "peak_gpu_gb": self.peak_gpu_bytes / 1e9,
        }


# ----------------------------------------------------------------------
# Load-testing metrics (continuous batching / multi-replica serving)
# ----------------------------------------------------------------------
def percentile(values: Sequence[float], p: float) -> float:
    """The ``p``-th percentile of ``values`` (linear interpolation).

    ``p`` is given in percent (50 = median).  Raises on an empty sequence —
    callers decide how to report "no data".
    """
    if not values:
        raise ValueError("cannot take a percentile of no values")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass(frozen=True)
class LatencyStats:
    """Percentile summary of one latency distribution (seconds)."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    max: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "LatencyStats":
        if not values:
            return cls(count=0, mean=0.0, p50=0.0, p90=0.0, p99=0.0, max=0.0)
        return cls(count=len(values), mean=mean(values),
                   p50=percentile(values, 50), p90=percentile(values, 90),
                   p99=percentile(values, 99), max=max(values))

    def as_dict(self, scale: float = 1.0) -> Dict[str, float]:
        return {"count": self.count, "mean": self.mean * scale,
                "p50": self.p50 * scale, "p90": self.p90 * scale,
                "p99": self.p99 * scale, "max": self.max * scale}


@dataclass
class ServedRequestResult:
    """Lifecycle timestamps of one request served under load.

    All times are absolute simulation times (seconds); the arrival time is
    when the request entered the system, so every latency property is
    arrival-relative — exactly what an open-loop load generator measures.
    """

    request_id: int
    design: str
    config_name: str
    input_length: int
    output_length: int
    arrival_time: float
    first_scheduled_time: float     # start of the request's first op
    first_token_time: float         # completion of the first generated token
    completion_time: float          # completion of the last generated token
    token_times: List[float] = field(default_factory=list)
    replica: int = 0

    @property
    def queueing_delay(self) -> float:
        """Time spent waiting before any of the request's work ran."""
        return self.first_scheduled_time - self.arrival_time

    @property
    def ttft(self) -> float:
        """Time to first token, measured from arrival."""
        return self.first_token_time - self.arrival_time

    @property
    def e2e_latency(self) -> float:
        """Arrival-to-completion latency."""
        return self.completion_time - self.arrival_time

    @property
    def time_between_tokens(self) -> List[float]:
        """Gaps between consecutive generated tokens (empty for 1-token outputs)."""
        return [b - a for a, b in zip(self.token_times, self.token_times[1:])]


@dataclass
class LoadTestResult:
    """Aggregate of one load test: many requests through one scheduler.

    ``offered_load`` records the arrival rate of the open-loop generator in
    requests/second (``None`` for closed-loop runs).  ``makespan`` is the
    completion time of the last request, so ``sustained_tokens_per_second``
    is a *wall-clock* throughput — queueing and idle time included — unlike
    :attr:`WorkloadResult.aggregate_tokens_per_second` which sums isolated
    per-request times.

    ``expert_bytes_transferred`` counts the CPU→GPU expert migration volume
    the run actually issued (one entry per copy op on the timeline);
    ``cache_stats`` carries the shared residency map's counters when expert
    caching was enabled (``None`` otherwise); ``tier_stats`` carries the
    per-tier transfer ledger (bytes per link, DRAM-stage hits) whenever the
    design offloads experts.

    Expert-parallel replicas additionally report ``num_gpus`` (``None`` after
    merging a fleet with mixed per-replica GPU counts), per-device compute
    ``device_utilisation``, ``alltoall_bytes`` of interconnect token traffic
    and the ``shard_imbalance`` of fetched bytes across devices
    (max-over-mean; ``None`` for single-GPU replicas).
    """

    design: str
    config_name: str
    offered_load: Optional[float] = None
    num_replicas: int = 1
    requests: List[ServedRequestResult] = field(default_factory=list)
    makespan: float = 0.0
    peak_gpu_bytes: int = 0
    expert_bytes_transferred: int = 0
    cache_stats: Optional[ResidencyStats] = None
    tier_stats: Optional[TierTransferStats] = None
    num_gpus: Optional[int] = 1
    device_utilisation: List[float] = field(default_factory=list)
    alltoall_bytes: int = 0
    shard_imbalance: Optional[float] = None
    #: Simulator-side telemetry: ops ever scheduled on the timeline and the
    #: high-water mark of ops resident in memory (== total in trace mode;
    #: O(active window) with op retirement).  Summed across a merged fleet.
    timeline_total_ops: int = 0
    timeline_peak_live_ops: int = 0
    #: Round-replay telemetry: how many steady-state windows were
    #: fast-forwarded analytically, how many scheduling rounds they covered,
    #: and how many per-op schedulings were thereby skipped.  All zero when
    #: replay is disabled or never fired; summed across a merged fleet.
    replay_windows: int = 0
    replay_rounds: int = 0
    replay_ops: int = 0
    #: Sampled time-series probes (queue depth, utilisation, residency …)
    #: when the scheduler served with ``probe_interval`` set; ``None``
    #: otherwise.  Merged across replicas by
    #: :func:`repro.obs.probes.merge_metrics`.
    probes: Optional[MetricsRegistry] = None
    #: Per-request span trees when the scheduler served with ``span_log``;
    #: ``None`` otherwise.  Pooled (sorted by request id) across a fleet.
    spans: Optional[List[RequestSpans]] = None
    oom: bool = False
    oom_reason: str = ""

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def total_generated_tokens(self) -> int:
        return sum(r.output_length for r in self.requests)

    @property
    def sustained_tokens_per_second(self) -> float:
        """Generated tokens per wall-clock second over the whole test."""
        if self.makespan <= 0:
            return 0.0
        return self.total_generated_tokens / self.makespan

    @property
    def completed_requests_per_second(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.num_requests / self.makespan

    @property
    def ttft_stats(self) -> LatencyStats:
        return LatencyStats.from_values([r.ttft for r in self.requests])

    @property
    def tbt_stats(self) -> LatencyStats:
        gaps = [g for r in self.requests for g in r.time_between_tokens]
        return LatencyStats.from_values(gaps)

    @property
    def queueing_stats(self) -> LatencyStats:
        return LatencyStats.from_values([r.queueing_delay for r in self.requests])

    @property
    def e2e_stats(self) -> LatencyStats:
        return LatencyStats.from_values([r.e2e_latency for r in self.requests])

    @property
    def cache_hit_rate(self) -> Optional[float]:
        return self.cache_stats.hit_rate if self.cache_stats is not None else None

    @property
    def expert_bytes_saved(self) -> int:
        return self.cache_stats.bytes_saved if self.cache_stats is not None else 0

    @property
    def stage_hit_rate(self) -> Optional[float]:
        """DRAM staging-cache hit rate; ``None`` without a stage."""
        if self.tier_stats is None or self.tier_stats.stage_accesses == 0:
            return None
        return self.tier_stats.stage_hit_rate

    @property
    def ssd_bytes_read(self) -> int:
        """Bytes read off the SSD tier (0 for DRAM offload / GPU-only)."""
        return self.tier_stats.ssd_bytes_read if self.tier_stats is not None else 0

    @property
    def probe_samples(self) -> Optional[int]:
        """Samples taken by the widest probe gauge; ``None`` without probes."""
        if self.probes is None or not self.probes.gauges:
            return None
        return max(len(g) for g in self.probes.gauges.values())

    @property
    def max_queue_depth(self) -> Optional[float]:
        """Peak sampled queue depth; ``None`` without probes."""
        if self.probes is None:
            return None
        gauge = self.probes.gauges.get("queue_depth")
        return gauge.max_value if gauge is not None else None

    def summary(self) -> Dict[str, object]:
        ttft = self.ttft_stats
        tbt = self.tbt_stats
        return {
            "design": self.design,
            "config": self.config_name,
            "replicas": self.num_replicas,
            "offered_load_rps": self.offered_load,
            "requests": self.num_requests,
            "oom": self.oom,
            "sustained_tokens_per_second": self.sustained_tokens_per_second,
            "p50_ttft_ms": ttft.p50 * 1e3,
            "p99_ttft_ms": ttft.p99 * 1e3,
            "p50_tbt_ms": tbt.p50 * 1e3,
            "p99_tbt_ms": tbt.p99 * 1e3,
            "mean_queueing_ms": self.queueing_stats.mean * 1e3,
            "peak_gpu_gb": self.peak_gpu_bytes / 1e9,
            "cache_hit_rate": self.cache_hit_rate,
            "cache_evictions": (self.cache_stats.evictions
                                if self.cache_stats is not None else None),
            "gb_transferred": self.expert_bytes_transferred / 1e9,
            "gb_saved": self.expert_bytes_saved / 1e9,
            "offload_tier": (self.tier_stats.source_tier
                             if self.tier_stats is not None else None),
            "ssd_gb_read": (self.tier_stats.ssd_bytes_read / 1e9
                            if self.tier_stats is not None else None),
            "stage_hit_rate": self.stage_hit_rate,
            "num_gpus": self.num_gpus if self.num_gpus is not None else "mixed",
            "device_util": ("|".join(f"{u:.2f}" for u in self.device_utilisation)
                            if self.device_utilisation else None),
            # A single-GPU replica has no interconnect: dash the cell out
            # like the other expert-parallel columns (mixed fleets keep the
            # pooled value).
            "alltoall_mb": (self.alltoall_bytes / 1e6
                            if self.num_gpus != 1 else None),
            "shard_imbalance": self.shard_imbalance,
            "replay_windows": self.replay_windows,
            "replay_rounds": self.replay_rounds,
            "replay_ops": self.replay_ops,
            "probe_samples": self.probe_samples,
            "max_queue_depth": self.max_queue_depth,
        }


def merge_cache_stats(stats: Sequence[Optional[ResidencyStats]]) -> Optional[ResidencyStats]:
    """Pool per-replica residency stats, tolerating replicas without any.

    A fleet may mix cached and cache-free replicas (capacity ``None`` gives
    no stats object at all; capacity 0 gives a stats object whose counters
    only reflect refcounted sharing).  Replicas without stats contribute
    nothing; the merge is ``None`` only when *no* replica had a cache.
    """
    return merge_optional_stats(stats)


def merge_load_results(results: Sequence[LoadTestResult],
                       num_replicas: Optional[int] = None) -> LoadTestResult:
    """Combine per-replica load results into one cluster-level result.

    Requests are pooled; the makespan is the slowest replica's (replicas run
    concurrently); the peak is summed because each replica owns its GPUs.
    ``cache_stats`` and ``tier_stats`` are pooled over the replicas that
    have them — a mixed fleet (cached next to cache-free, or offloading
    next to GPU-only) merges cleanly instead of assuming every replica
    carries stats.  A fleet mixing per-replica GPU counts merges with
    ``num_gpus=None`` (rendered "mixed") and drops the per-device
    utilisation breakdown, since device indices no longer line up; a
    homogeneous fleet averages utilisation per device index.
    """
    if not results:
        raise ValueError("no results to merge")
    first = results[0]
    gpu_counts = {r.num_gpus for r in results}
    homogeneous = len(gpu_counts) == 1
    device_util: List[float] = []
    if homogeneous:
        per_replica = [r.device_utilisation for r in results if r.device_utilisation]
        if per_replica and all(len(u) == len(per_replica[0]) for u in per_replica):
            device_util = [sum(us) / len(per_replica)
                           for us in zip(*per_replica)]
    imbalances = [r.shard_imbalance for r in results if r.shard_imbalance is not None]
    merged = LoadTestResult(
        design=first.design, config_name=first.config_name,
        offered_load=first.offered_load,
        num_replicas=num_replicas if num_replicas is not None else len(results),
        makespan=max(r.makespan for r in results),
        peak_gpu_bytes=sum(r.peak_gpu_bytes for r in results),
        expert_bytes_transferred=sum(r.expert_bytes_transferred for r in results),
        cache_stats=merge_cache_stats([r.cache_stats for r in results]),
        tier_stats=merge_tier_stats([r.tier_stats for r in results]),
        num_gpus=first.num_gpus if homogeneous else None,
        device_utilisation=device_util,
        alltoall_bytes=sum(r.alltoall_bytes for r in results),
        shard_imbalance=max(imbalances) if imbalances else None,
        timeline_total_ops=sum(r.timeline_total_ops for r in results),
        timeline_peak_live_ops=sum(r.timeline_peak_live_ops for r in results),
        replay_windows=sum(r.replay_windows for r in results),
        replay_rounds=sum(r.replay_rounds for r in results),
        replay_ops=sum(r.replay_ops for r in results),
        probes=merge_metrics([r.probes for r in results]),
        oom=any(r.oom for r in results),
        oom_reason="; ".join(r.oom_reason for r in results if r.oom_reason),
    )
    span_lists = [r.spans for r in results if r.spans is not None]
    if span_lists:
        merged.spans = sorted((tree for trees in span_lists for tree in trees),
                              key=lambda tree: tree.request_id)
    for result in results:
        merged.requests.extend(result.requests)
    merged.requests.sort(key=lambda r: (r.arrival_time, r.request_id))
    return merged


def normalise(values: Dict[str, float], reference: str) -> Dict[str, float]:
    """Normalise a metric dictionary to one of its keys (paper-style plots)."""
    if reference not in values:
        raise KeyError(f"reference {reference!r} not in {sorted(values)}")
    ref = values[reference]
    if ref == 0:
        raise ZeroDivisionError("reference value is zero")
    return {k: v / ref for k, v in values.items()}
