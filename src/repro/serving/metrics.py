"""Result records and aggregate metrics for the serving simulator.

The quantities here are exactly the ones the paper's artifact emits
(``block_lats.csv``, ``throughputs.csv``, ``peak_mems.csv``): per-MoE-block
latency, end-to-end inference throughput in tokens per second, and peak GPU
memory usage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Dict, List, Optional


@dataclass(frozen=True)
class BlockLatencyRecord:
    """Latency of one MoE block evaluation.

    ``latency`` measures from the moment the block's input is ready (the
    preceding non-MoE layer finished) until the block's expert execution
    completes, i.e. it includes any stall waiting for expert parameters to
    arrive in GPU memory.
    """

    part: str                # "encoder" or "decoder"
    iteration: int           # decoder iteration index (0 for the encoder pass)
    block_index: int         # MoE block index within the stack
    latency: float           # seconds
    num_active_experts: int
    exposed_transfer_time: float = 0.0


@dataclass
class IterationResult:
    """One forward pass (encoder pass or one decoder iteration)."""

    part: str
    iteration: int
    duration: float
    block_latencies: List[BlockLatencyRecord] = field(default_factory=list)

    @property
    def mean_block_latency(self) -> float:
        if not self.block_latencies:
            return 0.0
        return mean(record.latency for record in self.block_latencies)


@dataclass
class RequestResult:
    """End-to-end result of serving one request."""

    design: str
    config_name: str
    input_length: int
    output_length: int
    encoder_time: float
    decode_time: float
    iterations: List[IterationResult] = field(default_factory=list)
    peak_gpu_bytes: int = 0

    @property
    def total_time(self) -> float:
        return self.encoder_time + self.decode_time

    @property
    def tokens_per_second(self) -> float:
        """End-to-end inference throughput: generated tokens per second."""
        if self.total_time <= 0:
            return 0.0
        return self.output_length / self.total_time

    @property
    def decode_tokens_per_second(self) -> float:
        """Throughput counting only the decode phase."""
        if self.decode_time <= 0:
            return 0.0
        return self.output_length / self.decode_time

    def block_latencies(self, part: Optional[str] = None) -> List[BlockLatencyRecord]:
        records = [r for it in self.iterations for r in it.block_latencies]
        if part is not None:
            records = [r for r in records if r.part == part]
        return records

    def mean_block_latency(self, part: Optional[str] = "decoder") -> float:
        records = self.block_latencies(part)
        if not records:
            return 0.0
        return mean(r.latency for r in records)


@dataclass
class WorkloadResult:
    """Aggregate over a list of requests served by one engine."""

    design: str
    config_name: str
    requests: List[RequestResult] = field(default_factory=list)
    peak_gpu_bytes: int = 0
    oom: bool = False
    oom_reason: str = ""

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def mean_tokens_per_second(self) -> float:
        if not self.requests:
            return 0.0
        return mean(r.tokens_per_second for r in self.requests)

    @property
    def mean_decode_tokens_per_second(self) -> float:
        if not self.requests:
            return 0.0
        return mean(r.decode_tokens_per_second for r in self.requests)

    @property
    def mean_block_latency(self) -> float:
        records = [r for req in self.requests for r in req.block_latencies("decoder")]
        if not records:
            return 0.0
        return mean(r.latency for r in records)

    @property
    def total_generated_tokens(self) -> int:
        return sum(r.output_length for r in self.requests)

    @property
    def total_time(self) -> float:
        return sum(r.total_time for r in self.requests)

    @property
    def aggregate_tokens_per_second(self) -> float:
        """Total generated tokens divided by total serving time."""
        total = self.total_time
        return self.total_generated_tokens / total if total > 0 else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "design": self.design,
            "config": self.config_name,
            "oom": self.oom,
            "mean_block_latency_ms": self.mean_block_latency * 1e3,
            "tokens_per_second": self.aggregate_tokens_per_second,
            "peak_gpu_gb": self.peak_gpu_bytes / 1e9,
        }


def normalise(values: Dict[str, float], reference: str) -> Dict[str, float]:
    """Normalise a metric dictionary to one of its keys (paper-style plots)."""
    if reference not in values:
        raise KeyError(f"reference {reference!r} not in {sorted(values)}")
    ref = values[reference]
    if ref == 0:
        raise ZeroDivisionError("reference value is zero")
    return {k: v / ref for k, v in values.items()}
