"""Per-iteration simulation layer: one stack pass on an execution timeline.

Second of the three serving layers (placement → per-iteration simulation →
request lifecycle).  An :class:`IterationSimulator` walks one encoder pass or
one decoder iteration for a given design, appending compute and copy ops to
an :class:`~repro.system.timeline.ExecutionTimeline`.  It is deliberately
stateless across calls so that a request scheduler can interleave iterations
from *different* in-flight requests onto one shared timeline (continuous
batching) — the per-request lifecycle state lives in the caller
(:class:`~repro.serving.engine.ServingEngine` for the one-request-at-a-time
path, :class:`~repro.serving.scheduler.ContinuousBatchingScheduler` for the
batched path).

Batched rounds pass a :class:`SharedExpertRound`, which deduplicates expert
transfers across the requests of the round: when concurrent requests activate
the same expert of the same block, only the first request issues the
CPU→GPU migration and later requests execute against the already-resident
copy (their execution depends on the original copy op).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.migration import MigrationPlan, plan_for_design
from ..core.pregate import PreGateSchedule
from ..moe.configs import ModelConfig
from ..system.hardware import SystemSpec
from ..system.performance import GpuLatencyModel
from ..system.timeline import ExecutionTimeline, TimelineOp
from ..workloads.traces import IterationActivations
from .metrics import BlockLatencyRecord, IterationResult
from .placement import ModelPlacement

#: Key identifying one migratable expert: (global block index, expert id).
ExpertKey = Tuple[int, int]


class SharedExpertRound:
    """Expert-transfer dedup state for one continuous-batching round.

    The scheduler registers, up front, every expert transfer each request of
    the round *would* issue (via :meth:`register_plan`).  During simulation
    the first request to need an expert fetches it into a shared batch slot;
    subsequent requests reuse it.  Each request still "releases" its planned
    transfers after the owning block executes, and the shared slot is freed
    only when the last planned user has released it — so GPU memory
    accounting matches a real batched runtime that refcounts expert pages.

    This is the round protocol the :class:`IterationSimulator` speaks
    (``register_plan`` / ``is_fetched`` / ``copy_op`` / ``fetch`` /
    ``release_keys`` / ``release`` / ``drain``);
    :class:`~repro.serving.prefetch.PrefetchRound` implements the same
    protocol on top of the shared residency map for the cached path.
    """

    def __init__(self) -> None:
        self._users: Dict[ExpertKey, int] = {}
        self._tags: Dict[ExpertKey, str] = {}
        self._copy_ops: Dict[ExpertKey, int] = {}

    # -- registration (before the round is simulated) -------------------
    def register_plan(self, placement: ModelPlacement, part: str,
                      plan: MigrationPlan, activations=None) -> None:
        for transfer in plan.transfers:
            key = (placement.global_block_index(part, transfer.block_index),
                   transfer.expert_id)
            self._users[key] = self._users.get(key, 0) + 1

    # -- queries during simulation --------------------------------------
    def is_fetched(self, key: ExpertKey) -> bool:
        return key in self._tags

    def copy_op(self, key: ExpertKey) -> Optional[int]:
        return self._copy_ops.get(key)

    def note_fetch(self, key: ExpertKey, tag: str, copy_op_id: int) -> None:
        self._tags[key] = tag
        self._copy_ops[key] = copy_op_id

    def fetch(self, placement: ModelPlacement, part: str, transfer,
              key: ExpertKey, copy_op_id: int) -> None:
        """Allocate the shared batch slot backing one issued migration."""
        tag = placement.allocate_shared_expert(
            part, transfer.block_index, transfer.expert_id)
        self.note_fetch(key, tag, copy_op_id)

    def release_keys(self, placement: ModelPlacement, part: str,
                     plan: MigrationPlan, activations, block: int) -> List[ExpertKey]:
        """Keys to release once ``block`` has executed: its planned transfers."""
        return [(placement.global_block_index(part, t.block_index), t.expert_id)
                for t in plan.transfers_for_block(block)]

    def release(self, placement: ModelPlacement, key: ExpertKey) -> None:
        remaining = self._users.get(key, 0) - 1
        if remaining > 0:
            self._users[key] = remaining
            return
        self._users.pop(key, None)
        self._copy_ops.pop(key, None)
        tag = self._tags.pop(key, None)
        if tag is not None:
            placement.free_expert(tag)

    def drain(self, placement: ModelPlacement) -> None:
        """Free any slots still held (abnormal termination safety net)."""
        for tag in self._tags.values():
            placement.free_expert(tag)
        self._users.clear()
        self._tags.clear()
        self._copy_ops.clear()


@dataclass
class StackPassResult:
    """Outcome of simulating one stack traversal."""

    records: List[BlockLatencyRecord] = field(default_factory=list)
    first_op: Optional[TimelineOp] = None
    last_op: Optional[TimelineOp] = None

    @property
    def start(self) -> float:
        return self.first_op.start if self.first_op is not None else 0.0

    @property
    def end(self) -> float:
        return self.last_op.end if self.last_op is not None else 0.0


@dataclass
class IterationOutcome:
    """An :class:`IterationResult` plus the timeline anchors the scheduler needs."""

    result: IterationResult
    first_start: float
    end: float


class IterationSimulator:
    """Simulates single stack passes of one design on a shared timeline."""

    def __init__(self, config: ModelConfig, system: SystemSpec,
                 latency: GpuLatencyModel, design: str,
                 placement: ModelPlacement, activation_level: int = 1) -> None:
        self.config = config
        self.system = system
        self.latency = latency
        self.design = design
        self.placement = placement
        self.activation_level = activation_level

    @property
    def offloads_experts(self) -> bool:
        return self.design != "gpu_only"

    # ------------------------------------------------------------------
    # Migration planning
    # ------------------------------------------------------------------
    def make_plan(self, part: str, activations: IterationActivations) -> MigrationPlan:
        """The migration plan one stack pass over ``activations`` will follow.

        Deterministic given the placement's cache state, so a scheduler can
        pre-register a round's plans for transfer dedup before simulating it.
        """
        num_blocks = len(self.placement.moe_positions(part))
        resident = self.placement.cache_resident(part, num_blocks)
        return plan_for_design(
            self.design, activations, self.config.expert_bytes(), self.config.num_experts,
            activation_level=self.activation_level, resident=resident,
            source_tier=self.system.offload_tier)

    def _gates_evaluated_at(self, block: int,
                            schedule: Optional[PreGateSchedule]) -> int:
        """How many gate evaluations happen at MoE block ``block`` for this design."""
        if self.design == "pregated" and schedule is not None:
            gates = 0
            if block == 0:
                gates += schedule.num_first_gates()
            if schedule.has_pre_gate(block):
                gates += 1
            return gates
        # Conventional architectures evaluate exactly one gate per block.
        return 1

    # ------------------------------------------------------------------
    # Core simulation of one stack traversal
    # ------------------------------------------------------------------
    def simulate_stack_pass(
        self,
        timeline: ExecutionTimeline,
        part: str,
        iteration: int,
        activations: IterationActivations,
        query_tokens: int,
        self_kv_tokens: int,
        cross_kv_tokens: Optional[int],
        start_at: float = 0.0,
        batch_round: Optional[SharedExpertRound] = None,
        label: str = "",
        plan: Optional[MigrationPlan] = None,
    ) -> StackPassResult:
        """Walk one stack (encoder pass or one decoder iteration).

        Ops are appended to ``timeline``; the compute stream is FIFO so
        consecutive layers serialise automatically, while expert transfers
        land on the copy stream with explicit dependencies implementing each
        design's selection→migration→execution ordering.  ``start_at`` gates
        the pass on the owning request's arrival time; ``batch_round``
        enables cross-request expert-transfer dedup; ``label`` prefixes op
        names so interleaved requests stay distinguishable in traces;
        ``plan`` supplies a precomputed migration plan (the scheduler already
        planned each round member for dedup registration) instead of
        re-planning here.
        """
        config = self.config
        placement = self.placement
        moe_positions = placement.moe_positions(part)
        num_layers = (config.num_encoder_layers if part == "encoder"
                      else config.num_decoder_layers)
        num_blocks = len(moe_positions)
        outcome = StackPassResult()

        if plan is None:
            plan = self.make_plan(part, activations)
        transfers_by_issue: Dict[int, List] = {}
        for transfer in plan.transfers:
            transfers_by_issue.setdefault(transfer.issue_block, []).append(transfer)

        schedule = None
        if self.design == "pregated" and num_blocks > 0:
            schedule = PreGateSchedule(num_blocks=num_blocks,
                                       activation_level=self.activation_level)

        gate_time = self.latency.gate_time(config, query_tokens)
        transfer_ops_by_target: Dict[int, List[int]] = {}
        allocation_tags: Dict[int, List[str]] = {}
        last_compute_op: Optional[TimelineOp] = None
        moe_block_cursor = 0

        def add_compute(name: str, duration: float, depends_on=None,
                        category: str = "compute") -> TimelineOp:
            op = timeline.add_compute(
                f"{label}{name}", duration, depends_on=depends_on, category=category,
                earliest_start=start_at if outcome.first_op is None else 0.0)
            if outcome.first_op is None:
                outcome.first_op = op
            outcome.last_op = op
            return op

        for layer in range(num_layers):
            # --- non-MoE portion of the transformer block -------------
            if part == "encoder":
                nonmoe = self.latency.encoder_layer_nonmoe_time(config, query_tokens)
            else:
                nonmoe = self.latency.decoder_layer_nonmoe_time(
                    config, query_tokens, self_kv_tokens, cross_kv_tokens or self_kv_tokens)
            last_compute_op = add_compute(
                f"{part}{iteration}.layer{layer}.attention", nonmoe, category="non_moe")

            if layer not in moe_positions:
                # Dense FFN layer.
                ffn = self.latency.ffn_time(config, query_tokens)
                last_compute_op = add_compute(
                    f"{part}{iteration}.layer{layer}.ffn", ffn, category="non_moe")
                continue

            # --- MoE block --------------------------------------------
            block = moe_block_cursor
            moe_block_cursor += 1
            input_ready = last_compute_op.end if last_compute_op else 0.0

            # (1) Expert-selection stage: gate / pre-gate / first-gate ops.
            num_gates = self._gates_evaluated_at(block, schedule)
            if num_gates > 0:
                last_compute_op = add_compute(
                    f"{part}{iteration}.moe{block}.gate", num_gates * gate_time,
                    category="gate")

            # (2) Issue expert migrations whose selection happened here.
            issued = transfers_by_issue.get(block, [])
            if issued and self.offloads_experts:
                to_issue = []
                for transfer in issued:
                    key = (placement.global_block_index(part, transfer.block_index),
                           transfer.expert_id)
                    if batch_round is not None and batch_round.is_fetched(key):
                        # Already satisfied: fetched by another request of this
                        # round (share the migration, depend on its copy op) or
                        # resident in the shared cache (no dependency needed).
                        dedup_op = batch_round.copy_op(key)
                        if dedup_op is not None:
                            transfer_ops_by_target.setdefault(
                                transfer.block_index, []).append(dedup_op)
                        continue
                    to_issue.append((transfer, key))
                if to_issue:
                    sync_op = add_compute(
                        f"{part}{iteration}.moe{block}.issue_transfers",
                        self.system.host_sync_overhead, category="sync")
                    last_compute_op = sync_op
                    for transfer, key in to_issue:
                        # The placement routes the fetch through the tier
                        # path: a stage miss with a DRAM stage splits into an
                        # SSD→DRAM read on the stage stream plus a dependent
                        # PCIe op carrying the pipelined remainder.
                        route = placement.route_fetch(key, transfer)
                        base = (f"{label}{part}{iteration}"
                                f".moe{transfer.block_index}")
                        deps = [sync_op.op_id]
                        if route.stage_duration > 0.0:
                            stage_op = timeline.add_stage(
                                f"{base}.stage_expert{transfer.expert_id}",
                                route.stage_duration, depends_on=deps)
                            deps = [stage_op.op_id]
                        copy_op = timeline.add_copy(
                            f"{base}.fetch_expert{transfer.expert_id}",
                            route.copy_duration, depends_on=deps,
                            category="expert_transfer")
                        transfer_ops_by_target.setdefault(
                            transfer.block_index, []).append(copy_op.op_id)
                        if batch_round is not None:
                            batch_round.fetch(placement, part, transfer, key,
                                              copy_op.op_id)
                        else:
                            tag = placement.allocate_expert(
                                part, transfer.block_index, transfer.expert_id)
                            allocation_tags.setdefault(transfer.block_index, []).append(tag)

            # (3) Expert-execution stage: waits for this block's transfers.
            activated = activations[block] if block < len(activations) else []
            num_active = max(1, len(activated))
            exec_time = self.latency.expert_execution_time(config, query_tokens, num_active)
            deps = transfer_ops_by_target.get(block, [])
            ready_before_exec = last_compute_op.end if last_compute_op else 0.0
            exec_op = add_compute(
                f"{part}{iteration}.moe{block}.experts", exec_time,
                depends_on=deps, category="expert_execution")
            last_compute_op = exec_op

            exposed = max(0.0, exec_op.start - ready_before_exec)
            outcome.records.append(BlockLatencyRecord(
                part=part, iteration=iteration, block_index=block,
                latency=exec_op.end - input_ready,
                num_active_experts=len(activated),
                exposed_transfer_time=exposed))

            # (4) Release (or retain) this block's experts.
            if batch_round is not None:
                for key in batch_round.release_keys(placement, part, plan,
                                                    activations, block):
                    batch_round.release(placement, key)
            else:
                placement.release_block_experts(
                    part, block, allocation_tags.get(block, []), activated)

        return outcome

    # ------------------------------------------------------------------
    # Whole-iteration helpers shared by the engine and the scheduler
    # ------------------------------------------------------------------
    def decoder_iteration(self, timeline: ExecutionTimeline,
                          activations: IterationActivations,
                          query_tokens: int = 1, self_kv_tokens: int = 1,
                          cross_kv_tokens: int = 32, iteration: int = 0,
                          start_at: float = 0.0,
                          batch_round: Optional[SharedExpertRound] = None,
                          label: str = "",
                          plan: Optional[MigrationPlan] = None) -> IterationOutcome:
        """One decoder iteration (all decoder layers plus the LM head)."""
        start = timeline.makespan
        pass_result = self.simulate_stack_pass(
            timeline, "decoder", iteration, activations,
            query_tokens=query_tokens, self_kv_tokens=self_kv_tokens,
            cross_kv_tokens=cross_kv_tokens, start_at=start_at,
            batch_round=batch_round, label=label, plan=plan)
        lm_head = self.latency.lm_head_time(self.config, query_tokens)
        lm_op = timeline.add_compute(
            f"{label}decoder{iteration}.lm_head", lm_head, category="non_moe",
            earliest_start=start_at if pass_result.first_op is None else 0.0)
        result = IterationResult(part="decoder", iteration=iteration,
                                 duration=timeline.makespan - start,
                                 block_latencies=pass_result.records)
        first = pass_result.first_op.start if pass_result.first_op is not None else lm_op.start
        return IterationOutcome(result=result, first_start=first, end=lm_op.end)

    def encoder_pass(self, timeline: ExecutionTimeline,
                     activations: IterationActivations, input_tokens: int,
                     start_at: float = 0.0,
                     batch_round: Optional[SharedExpertRound] = None,
                     label: str = "",
                     plan: Optional[MigrationPlan] = None) -> IterationOutcome:
        """The encoder pass over ``input_tokens`` tokens."""
        start = timeline.makespan
        pass_result = self.simulate_stack_pass(
            timeline, "encoder", 0, activations,
            query_tokens=input_tokens, self_kv_tokens=input_tokens,
            cross_kv_tokens=None, start_at=start_at,
            batch_round=batch_round, label=label, plan=plan)
        result = IterationResult(part="encoder", iteration=0,
                                 duration=timeline.makespan - start,
                                 block_latencies=pass_result.records)
        return IterationOutcome(result=result, first_start=pass_result.start,
                                end=pass_result.end)
