"""Per-iteration simulation layer: one stack pass on an execution timeline.

Second of the three serving layers (placement → per-iteration simulation →
request lifecycle).  An :class:`IterationSimulator` walks one encoder pass or
one decoder iteration for a given design, appending compute and copy ops to
an :class:`~repro.system.timeline.ExecutionTimeline`.  It is deliberately
stateless across calls so that a request scheduler can interleave iterations
from *different* in-flight requests onto one shared timeline (continuous
batching) — the per-request lifecycle state lives in the caller
(:class:`~repro.serving.engine.ServingEngine` for the one-request-at-a-time
path, :class:`~repro.serving.scheduler.ContinuousBatchingScheduler` for the
batched path).

Batched rounds pass a :class:`SharedExpertRound`, which deduplicates expert
transfers across the requests of the round: when concurrent requests activate
the same expert of the same block, only the first request issues the
CPU→GPU migration and later requests execute against the already-resident
copy (their execution depends on the original copy op).

Expert-parallel replicas (a multi-device
:class:`~repro.system.hardware.DeviceTopology`) additionally split every MoE
block across the devices owning its activated experts: expert fetches land on
the owning shard's copy lane, each participating device executes its share of
the experts on its own compute lane, and the token traffic between the
devices — all-to-all dispatch before execution, combine after — is modelled
as transfers on the interconnect stream, sized from the gating activations.
A single-device topology takes none of these paths and reproduces the
original single-GPU timeline bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.migration import MigrationPlan, plan_for_design
from ..core.pregate import PreGateSchedule
from ..moe.configs import ModelConfig
from ..system.hardware import SystemSpec
from ..system.performance import GpuLatencyModel
from ..system.timeline import (STREAM_CODE, ExecutionTimeline, OpBatch,
                               Stream, TimelineOp, category_code)
from ..workloads.traces import IterationActivations
from .metrics import BlockLatencyRecord, IterationResult
from .placement import ModelPlacement

#: Key identifying one migratable expert: (global block index, expert id).
ExpertKey = Tuple[int, int]

# Stream / category codes used by the columnar emission path.
_COMPUTE = STREAM_CODE[Stream.COMPUTE]
_COPY = STREAM_CODE[Stream.COPY]
_STAGE = STREAM_CODE[Stream.STAGE]
_INTERCONNECT = STREAM_CODE[Stream.INTERCONNECT]
CAT_NON_MOE = category_code("non_moe")
CAT_GATE = category_code("gate")
CAT_SYNC = category_code("sync")
CAT_EXPERT_TRANSFER = category_code("expert_transfer")
CAT_EXPERT_EXECUTION = category_code("expert_execution")
CAT_STAGE_IN = category_code("stage_in")
CAT_ALLTOALL = category_code("alltoall")
CAT_COMPUTE = category_code("compute")


class SharedExpertRound:
    """Expert-transfer dedup state for one continuous-batching round.

    The scheduler registers, up front, every expert transfer each request of
    the round *would* issue (via :meth:`register_plan`).  During simulation
    the first request to need an expert fetches it into a shared batch slot;
    subsequent requests reuse it.  Each request still "releases" its planned
    transfers after the owning block executes, and the shared slot is freed
    only when the last planned user has released it — so GPU memory
    accounting matches a real batched runtime that refcounts expert pages.

    This is the round protocol the :class:`IterationSimulator` speaks
    (``register_plan`` / ``is_fetched`` / ``copy_op`` / ``fetch`` /
    ``release_keys`` / ``release`` / ``drain``);
    :class:`~repro.serving.prefetch.PrefetchRound` implements the same
    protocol on top of the shared residency map for the cached path.
    """

    def __init__(self) -> None:
        self._users: Dict[ExpertKey, int] = {}
        self._tags: Dict[ExpertKey, str] = {}
        self._copy_ops: Dict[ExpertKey, int] = {}

    # -- registration (before the round is simulated) -------------------
    def register_plan(self, placement: ModelPlacement, part: str,
                      plan: MigrationPlan, activations=None) -> None:
        for transfer in plan.transfers:
            key = (placement.global_block_index(part, transfer.block_index),
                   transfer.expert_id)
            self._users[key] = self._users.get(key, 0) + 1

    # -- queries during simulation --------------------------------------
    def is_fetched(self, key: ExpertKey) -> bool:
        return key in self._tags

    def copy_op(self, key: ExpertKey) -> Optional[int]:
        return self._copy_ops.get(key)

    def note_fetch(self, key: ExpertKey, tag: str, copy_op_id: int) -> None:
        self._tags[key] = tag
        self._copy_ops[key] = copy_op_id

    def fetch(self, placement: ModelPlacement, part: str, transfer,
              key: ExpertKey, copy_op_id: int) -> None:
        """Allocate the shared batch slot backing one issued migration."""
        tag = placement.allocate_shared_expert(
            part, transfer.block_index, transfer.expert_id)
        self.note_fetch(key, tag, copy_op_id)

    def release_keys(self, placement: ModelPlacement, part: str,
                     plan: MigrationPlan, activations, block: int) -> List[ExpertKey]:
        """Keys to release once ``block`` has executed: its planned transfers."""
        return [(placement.global_block_index(part, t.block_index), t.expert_id)
                for t in plan.transfers_for_block(block)]

    def release(self, placement: ModelPlacement, key: ExpertKey) -> None:
        remaining = self._users.get(key, 0) - 1
        if remaining > 0:
            self._users[key] = remaining
            return
        self._users.pop(key, None)
        self._copy_ops.pop(key, None)
        tag = self._tags.pop(key, None)
        if tag is not None:
            placement.free_expert(tag)

    def drain(self, placement: ModelPlacement) -> None:
        """Free any slots still held (abnormal termination safety net)."""
        for tag in self._tags.values():
            placement.free_expert(tag)
        self._users.clear()
        self._tags.clear()
        self._copy_ops.clear()


@dataclass
class StackPassResult:
    """Outcome of simulating one stack traversal."""

    records: List[BlockLatencyRecord] = field(default_factory=list)
    first_op: Optional[TimelineOp] = None
    last_op: Optional[TimelineOp] = None
    #: Op ids the next op after this pass must depend on explicitly: the
    #: final block's all-to-all combine when it landed off device 0's
    #: compute lane (expert-parallel replicas only; empty single-GPU).
    carry_deps: List[int] = field(default_factory=list)

    @property
    def start(self) -> float:
        return self.first_op.start if self.first_op is not None else 0.0

    @property
    def end(self) -> float:
        return self.last_op.end if self.last_op is not None else 0.0


@dataclass
class EmittedPass:
    """Batch-relative anchors of one stack pass emitted as columns.

    The batched (array-kernel) twin of :class:`StackPassResult`: op *times*
    do not exist until the owning timeline commits the batch, so the
    emission returns indices into the batch — the scheduler reads
    ``starts[first_index]`` / ``ends[last_index]`` after the commit.
    """

    #: Index (within the batch) of the pass's first op, -1 if none emitted.
    first_index: int
    #: Index of the op whose end is the pass completion time.
    last_index: int
    #: Global op ids the request's next pass must depend on (trailing
    #: all-to-all combine; empty single-GPU and after a decoder iteration).
    carry_deps: List[int] = field(default_factory=list)


@dataclass
class IterationOutcome:
    """An :class:`IterationResult` plus the timeline anchors the scheduler needs."""

    result: IterationResult
    first_start: float
    end: float
    #: Cross-lane ordering the request's *next* stack pass must declare
    #: (a trailing all-to-all combine; empty for single-GPU replicas).
    carry_deps: List[int] = field(default_factory=list)


class IterationSimulator:
    """Simulates single stack passes of one design on a shared timeline."""

    def __init__(self, config: ModelConfig, system: SystemSpec,
                 latency: GpuLatencyModel, design: str,
                 placement: ModelPlacement, activation_level: int = 1) -> None:
        self.config = config
        self.system = system
        self.latency = latency
        self.design = design
        self.placement = placement
        self.activation_level = activation_level
        self.topology = system.device_topology
        #: Whether MoE blocks split across devices (expert parallelism).
        self.multi_device = self.topology.num_devices > 1
        #: Bytes one token's activations occupy on the interconnect (fp16).
        self._token_bytes = config.d_model * 2
        #: Memoised migration plans keyed by (part, activations).  Only
        #: valid when the placement has no residency map / expert cache —
        #: plans then depend solely on the activations, so identical gating
        #: outcomes (ubiquitous in long decode-heavy loads) reuse one plan
        #: object instead of re-running the planner every round.
        self._plan_cache: Dict[Tuple, MigrationPlan] = {}
        #: Memoised op durations keyed by (kind, token counts).  The latency
        #: model is a pure function of these, so the batched emission path
        #: skips the roofline arithmetic for the (ubiquitous) repeated
        #: shapes of steady decode rounds.  Keys are bounded by the distinct
        #: token counts a workload produces.
        self._duration_cache: Dict[Tuple, float] = {}

    @property
    def offloads_experts(self) -> bool:
        return self.design != "gpu_only"

    # ------------------------------------------------------------------
    # Memoised latency lookups (batched emission path)
    # ------------------------------------------------------------------
    def _nonmoe_duration(self, part: str, query_tokens: int,
                         self_kv_tokens: int, cross_kv_tokens: int) -> float:
        key = ("nonmoe", part, query_tokens, self_kv_tokens, cross_kv_tokens)
        value = self._duration_cache.get(key)
        if value is None:
            if part == "encoder":
                value = self.latency.encoder_layer_nonmoe_time(
                    self.config, query_tokens)
            else:
                value = self.latency.decoder_layer_nonmoe_time(
                    self.config, query_tokens, self_kv_tokens, cross_kv_tokens)
            self._duration_cache[key] = value
        return value

    def _ffn_duration(self, query_tokens: int) -> float:
        key = ("ffn", query_tokens)
        value = self._duration_cache.get(key)
        if value is None:
            value = self._duration_cache[key] = self.latency.ffn_time(
                self.config, query_tokens)
        return value

    def _gate_duration(self, query_tokens: int) -> float:
        key = ("gate", query_tokens)
        value = self._duration_cache.get(key)
        if value is None:
            value = self._duration_cache[key] = self.latency.gate_time(
                self.config, query_tokens)
        return value

    def _exec_duration(self, query_tokens: int, num_active: int) -> float:
        key = ("exec", query_tokens, num_active)
        value = self._duration_cache.get(key)
        if value is None:
            value = self._duration_cache[key] = (
                self.latency.expert_execution_time(
                    self.config, query_tokens, num_active))
        return value

    def _lm_duration(self, query_tokens: int) -> float:
        key = ("lm_head", query_tokens)
        value = self._duration_cache.get(key)
        if value is None:
            value = self._duration_cache[key] = self.latency.lm_head_time(
                self.config, query_tokens)
        return value

    # ------------------------------------------------------------------
    # Migration planning
    # ------------------------------------------------------------------
    def make_plan(self, part: str, activations: IterationActivations) -> MigrationPlan:
        """The migration plan one stack pass over ``activations`` will follow.

        Deterministic given the placement's cache state, so a scheduler can
        pre-register a round's plans for transfer dedup before simulating it.
        Cache-free placements memoise the result by activation pattern (the
        planner's output then depends on nothing else); plans are treated as
        immutable by every consumer, so sharing one object across rounds is
        safe.
        """
        placement = self.placement
        memoizable = placement.residency is None and placement.cache is None
        key: Optional[Tuple] = None
        if memoizable:
            if self.design in ("gpu_only", "prefetch_all"):
                # These planners ignore *which* experts are activated — only
                # how many blocks the pass traverses.
                key = (part, len(activations))
            else:
                key = (part, tuple(tuple(block) for block in activations))
            cached = self._plan_cache.get(key)
            if cached is not None:
                return cached
        num_blocks = len(placement.moe_positions(part))
        resident = placement.cache_resident(part, num_blocks)
        plan = plan_for_design(
            self.design, activations, self.config.expert_bytes(), self.config.num_experts,
            activation_level=self.activation_level, resident=resident,
            source_tier=self.system.offload_tier)
        if key is not None:
            if len(self._plan_cache) >= 16384:
                self._plan_cache.clear()
            self._plan_cache[key] = plan
        return plan

    def _gates_evaluated_at(self, block: int,
                            schedule: Optional[PreGateSchedule]) -> int:
        """How many gate evaluations happen at MoE block ``block`` for this design."""
        if self.design == "pregated" and schedule is not None:
            gates = 0
            if block == 0:
                gates += schedule.num_first_gates()
            if schedule.has_pre_gate(block):
                gates += 1
            return gates
        # Conventional architectures evaluate exactly one gate per block.
        return 1

    # ------------------------------------------------------------------
    # Core simulation of one stack traversal
    # ------------------------------------------------------------------
    def simulate_stack_pass(
        self,
        timeline: ExecutionTimeline,
        part: str,
        iteration: int,
        activations: IterationActivations,
        query_tokens: int,
        self_kv_tokens: int,
        cross_kv_tokens: Optional[int],
        start_at: float = 0.0,
        batch_round: Optional[SharedExpertRound] = None,
        label: str = "",
        plan: Optional[MigrationPlan] = None,
        extra_deps: Optional[Sequence[int]] = None,
    ) -> StackPassResult:
        """Walk one stack (encoder pass or one decoder iteration).

        Ops are appended to ``timeline``; the compute stream is FIFO so
        consecutive layers serialise automatically, while expert transfers
        land on the copy stream with explicit dependencies implementing each
        design's selection→migration→execution ordering.  ``start_at`` gates
        the pass on the owning request's arrival time; ``batch_round``
        enables cross-request expert-transfer dedup; ``label`` prefixes op
        names so interleaved requests stay distinguishable in traces;
        ``plan`` supplies a precomputed migration plan (the scheduler already
        planned each round member for dedup registration) instead of
        re-planning here; ``extra_deps`` are op ids this pass's first compute
        op must wait for (the same request's trailing combine from its
        previous pass on an expert-parallel replica).
        """
        config = self.config
        placement = self.placement
        moe_positions = placement.moe_positions(part)
        num_layers = (config.num_encoder_layers if part == "encoder"
                      else config.num_decoder_layers)
        num_blocks = len(moe_positions)
        outcome = StackPassResult()

        if plan is None:
            plan = self.make_plan(part, activations)
        transfers_by_issue = plan.by_issue_block()

        schedule = None
        if self.design == "pregated" and num_blocks > 0:
            schedule = PreGateSchedule(num_blocks=num_blocks,
                                       activation_level=self.activation_level)

        gate_time = self.latency.gate_time(config, query_tokens)
        #: Per-target-block list of (op_id, owning device) for issued fetches.
        transfer_ops_by_target: Dict[int, List[Tuple[int, int]]] = {}
        allocation_tags: Dict[int, List[str]] = {}
        last_compute_op: Optional[TimelineOp] = None
        moe_block_cursor = 0
        #: Cross-lane ordering the next device-0 compute op must declare:
        #: the previous MoE block's combine op (expert-parallel only), seeded
        #: with the caller's carry-over from the request's previous pass.
        carry_deps: List[int] = list(extra_deps or [])

        def add_compute(name: str, duration: float, depends_on=None,
                        category: str = "compute") -> TimelineOp:
            deps = list(depends_on or [])
            if carry_deps:
                deps.extend(carry_deps)
                carry_deps.clear()
            op = timeline.add_compute(
                f"{label}{name}", duration, depends_on=deps, category=category,
                earliest_start=start_at if outcome.first_op is None else 0.0)
            if outcome.first_op is None:
                outcome.first_op = op
            outcome.last_op = op
            return op

        for layer in range(num_layers):
            # --- non-MoE portion of the transformer block -------------
            if part == "encoder":
                nonmoe = self.latency.encoder_layer_nonmoe_time(config, query_tokens)
            else:
                nonmoe = self.latency.decoder_layer_nonmoe_time(
                    config, query_tokens, self_kv_tokens, cross_kv_tokens or self_kv_tokens)
            last_compute_op = add_compute(
                f"{part}{iteration}.layer{layer}.attention", nonmoe, category="non_moe")

            if layer not in moe_positions:
                # Dense FFN layer.
                ffn = self.latency.ffn_time(config, query_tokens)
                last_compute_op = add_compute(
                    f"{part}{iteration}.layer{layer}.ffn", ffn, category="non_moe")
                continue

            # --- MoE block --------------------------------------------
            block = moe_block_cursor
            moe_block_cursor += 1
            input_ready = last_compute_op.end if last_compute_op else 0.0

            # (1) Expert-selection stage: gate / pre-gate / first-gate ops.
            num_gates = self._gates_evaluated_at(block, schedule)
            if num_gates > 0:
                last_compute_op = add_compute(
                    f"{part}{iteration}.moe{block}.gate", num_gates * gate_time,
                    category="gate")

            # (2) Issue expert migrations whose selection happened here.
            issued = transfers_by_issue.get(block, [])
            if issued and self.offloads_experts:
                to_issue = []
                for transfer in issued:
                    key = (placement.global_block_index(part, transfer.block_index),
                           transfer.expert_id)
                    if batch_round is not None and batch_round.is_fetched(key):
                        # Already satisfied: fetched by another request of this
                        # round (share the migration, depend on its copy op) or
                        # resident in the shared cache (no dependency needed).
                        dedup_op = batch_round.copy_op(key)
                        if dedup_op is not None:
                            transfer_ops_by_target.setdefault(
                                transfer.block_index, []).append(
                                    (dedup_op, placement.owner_device(transfer.expert_id)))
                        continue
                    to_issue.append((transfer, key))
                if to_issue:
                    sync_op = add_compute(
                        f"{part}{iteration}.moe{block}.issue_transfers",
                        self.system.host_sync_overhead, category="sync")
                    last_compute_op = sync_op
                    for transfer, key in to_issue:
                        # The placement routes the fetch through the tier
                        # path: a stage miss with a DRAM stage splits into an
                        # SSD→DRAM read on the stage stream plus a dependent
                        # PCIe op carrying the pipelined remainder.  The
                        # route's device is the shard owning the expert; its
                        # copy/stage lanes carry the fetch.
                        route = placement.route_fetch(key, transfer)
                        base = (f"{label}{part}{iteration}"
                                f".moe{transfer.block_index}")
                        deps = [sync_op.op_id]
                        if route.stage_duration > 0.0:
                            stage_op = timeline.add_stage(
                                f"{base}.stage_expert{transfer.expert_id}",
                                route.stage_duration, depends_on=deps,
                                device=route.device, num_bytes=transfer.bytes)
                            deps = [stage_op.op_id]
                        copy_op = timeline.add_copy(
                            f"{base}.fetch_expert{transfer.expert_id}",
                            route.copy_duration, depends_on=deps,
                            category="expert_transfer", device=route.device,
                            num_bytes=transfer.bytes)
                        transfer_ops_by_target.setdefault(
                            transfer.block_index, []).append(
                                (copy_op.op_id, route.device))
                        if batch_round is not None:
                            batch_round.fetch(placement, part, transfer, key,
                                              copy_op.op_id)
                        else:
                            tag = placement.allocate_expert(
                                part, transfer.block_index, transfer.expert_id)
                            allocation_tags.setdefault(transfer.block_index, []).append(tag)

            # (3) Expert-execution stage: waits for this block's transfers.
            activated = activations[block] if block < len(activations) else []
            block_transfer_ops = transfer_ops_by_target.get(block, [])
            ready_before_exec = last_compute_op.end if last_compute_op else 0.0
            if not self.multi_device:
                num_active = max(1, len(activated))
                exec_time = self.latency.expert_execution_time(
                    config, query_tokens, num_active)
                exec_op = add_compute(
                    f"{part}{iteration}.moe{block}.experts", exec_time,
                    depends_on=[op_id for op_id, _ in block_transfer_ops],
                    category="expert_execution")
                last_compute_op = exec_op
                block_end = exec_op
                exposed = max(0.0, exec_op.start - ready_before_exec)
            else:
                block_end, device0_exec, exposed = self._execute_sharded_block(
                    timeline, part, iteration, block, activated, query_tokens,
                    block_transfer_ops, last_compute_op, carry_deps, label)
                if device0_exec is not None:
                    last_compute_op = device0_exec
                outcome.last_op = block_end

            outcome.records.append(BlockLatencyRecord(
                part=part, iteration=iteration, block_index=block,
                latency=block_end.end - input_ready,
                num_active_experts=len(activated),
                exposed_transfer_time=exposed))

            # (4) Release (or retain) this block's experts.
            if batch_round is not None:
                for key in batch_round.release_keys(placement, part, plan,
                                                    activations, block):
                    batch_round.release(placement, key)
            else:
                placement.release_block_experts(
                    part, block, allocation_tags.get(block, []), activated)

        outcome.carry_deps = list(carry_deps)
        return outcome

    # ------------------------------------------------------------------
    # Expert-parallel block execution
    # ------------------------------------------------------------------
    def _execute_sharded_block(self, timeline: ExecutionTimeline, part: str,
                               iteration: int, block: int,
                               activated, query_tokens: int,
                               block_transfer_ops: List[Tuple[int, int]],
                               last_compute_op: Optional[TimelineOp],
                               carry_deps: List[int],
                               label: str) -> Tuple[TimelineOp, Optional[TimelineOp], float]:
        """Execute one MoE block across the devices owning its experts.

        Tokens are dispatched from device 0 (where the gate ran) to every
        remote device owning activated experts, each participating device
        executes its share on its own compute lane, and the results combine
        back — dispatch and combine are transfers on the interconnect
        stream, sized from the activation counts, so they overlap with the
        expert fetches in flight on the copy lanes.  Returns the op that
        completes the block, device 0's exec op (``None`` when device 0
        owns no activated expert) and the block's exposed transfer time —
        the worst per-device stall between compute-side readiness (the
        gate, or token arrival via dispatch for remote devices) and expert
        execution, i.e. migration latency left unhidden, mirroring the
        single-GPU definition.  Appends cross-lane ordering for the next
        compute op to ``carry_deps``.
        """
        config = self.config
        placement = self.placement
        counts: Dict[int, int] = {}
        for expert in activated:
            device = placement.owner_device(int(expert))
            counts[device] = counts.get(device, 0) + 1
        if not counts:
            # No activated expert recorded: the dispatch-overhead-only
            # evaluation runs on device 0, mirroring the single-GPU path.
            counts = {0: 0}
        total_active = max(1, len(activated))
        # Token routing estimate from the gating activations: query_tokens
        # tokens each pick top_k experts, spread evenly over the activated
        # set; assignments landing on remote devices cross the interconnect
        # (once to dispatch, once to combine).
        token_assignments = query_tokens * config.top_k
        remote_share = sum(n for d, n in counts.items() if d != 0) / total_active
        alltoall_bytes = token_assignments * remote_share * self._token_bytes
        base = f"{label}{part}{iteration}.moe{block}"
        participating = set(counts)
        leftover_deps = [op_id for op_id, dev in block_transfer_ops
                         if dev not in participating]

        dispatch_op = None
        if alltoall_bytes > 0:
            gate_deps = [last_compute_op.op_id] if last_compute_op is not None else []
            dispatch_op = timeline.add_interconnect(
                f"{base}.dispatch", self.topology.all_to_all_time(alltoall_bytes),
                depends_on=gate_deps, num_bytes=alltoall_bytes)
            placement.record_alltoall(alltoall_bytes)

        exec_ops: List[TimelineOp] = []
        device0_exec: Optional[TimelineOp] = None
        gate_ready = last_compute_op.end if last_compute_op is not None else 0.0
        exposed = 0.0
        for device in sorted(counts):
            exec_time = self.latency.expert_execution_time(
                config, query_tokens, max(1, counts[device]))
            deps = [op_id for op_id, dev in block_transfer_ops if dev == device]
            if device != 0 and dispatch_op is not None:
                deps.append(dispatch_op.op_id)
            if device == 0 and dispatch_op is None:
                # Sole-device block: adopt the transfers of non-participating
                # shards too, matching the single-GPU "execution waits for
                # every one of the block's transfers" semantics.
                deps.extend(leftover_deps)
                leftover_deps = []
            op = timeline.add_compute(
                f"{base}.experts", exec_time, depends_on=deps,
                category="expert_execution", device=device)
            exec_ops.append(op)
            # The device is compute-ready once the gate has run and (for
            # remote shards) its tokens have arrived; any further wait is a
            # stall on expert fetches — exposed migration latency.
            ready = gate_ready
            if device != 0 and dispatch_op is not None:
                ready = max(ready, dispatch_op.end)
            exposed = max(exposed, op.start - ready)
            if device == 0:
                device0_exec = op
        exposed = max(0.0, exposed)

        if dispatch_op is None:
            return exec_ops[0], device0_exec, exposed
        combine_op = timeline.add_interconnect(
            f"{base}.combine", self.topology.all_to_all_time(alltoall_bytes),
            depends_on=[op.op_id for op in exec_ops] + leftover_deps,
            num_bytes=alltoall_bytes)
        placement.record_alltoall(alltoall_bytes)
        carry_deps.append(combine_op.op_id)
        return combine_op, device0_exec, exposed

    # ------------------------------------------------------------------
    # Whole-iteration helpers shared by the engine and the scheduler
    # ------------------------------------------------------------------
    def decoder_iteration(self, timeline: ExecutionTimeline,
                          activations: IterationActivations,
                          query_tokens: int = 1, self_kv_tokens: int = 1,
                          cross_kv_tokens: int = 32, iteration: int = 0,
                          start_at: float = 0.0,
                          batch_round: Optional[SharedExpertRound] = None,
                          label: str = "",
                          plan: Optional[MigrationPlan] = None,
                          extra_deps: Optional[Sequence[int]] = None) -> IterationOutcome:
        """One decoder iteration (all decoder layers plus the LM head)."""
        start = timeline.makespan
        pass_result = self.simulate_stack_pass(
            timeline, "decoder", iteration, activations,
            query_tokens=query_tokens, self_kv_tokens=self_kv_tokens,
            cross_kv_tokens=cross_kv_tokens, start_at=start_at,
            batch_round=batch_round, label=label, plan=plan,
            extra_deps=extra_deps)
        lm_head = self.latency.lm_head_time(self.config, query_tokens)
        # The LM head consumes any trailing combine of the final MoE block.
        lm_op = timeline.add_compute(
            f"{label}decoder{iteration}.lm_head", lm_head, category="non_moe",
            depends_on=pass_result.carry_deps,
            earliest_start=start_at if pass_result.first_op is None else 0.0)
        result = IterationResult(part="decoder", iteration=iteration,
                                 duration=timeline.makespan - start,
                                 block_latencies=pass_result.records)
        first = pass_result.first_op.start if pass_result.first_op is not None else lm_op.start
        return IterationOutcome(result=result, first_start=first, end=lm_op.end)

    def encoder_pass(self, timeline: ExecutionTimeline,
                     activations: IterationActivations, input_tokens: int,
                     start_at: float = 0.0,
                     batch_round: Optional[SharedExpertRound] = None,
                     label: str = "",
                     plan: Optional[MigrationPlan] = None,
                     extra_deps: Optional[Sequence[int]] = None) -> IterationOutcome:
        """The encoder pass over ``input_tokens`` tokens."""
        start = timeline.makespan
        pass_result = self.simulate_stack_pass(
            timeline, "encoder", 0, activations,
            query_tokens=input_tokens, self_kv_tokens=input_tokens,
            cross_kv_tokens=None, start_at=start_at,
            batch_round=batch_round, label=label, plan=plan,
            extra_deps=extra_deps)
        result = IterationResult(part="encoder", iteration=0,
                                 duration=timeline.makespan - start,
                                 block_latencies=pass_result.records)
        return IterationOutcome(result=result, first_start=pass_result.start,
                                end=pass_result.end,
                                carry_deps=list(pass_result.carry_deps))

    # ------------------------------------------------------------------
    # Columnar emission (array-kernel hot path)
    # ------------------------------------------------------------------
    def emit_stack_pass(
        self,
        batch: OpBatch,
        part: str,
        iteration: int,
        activations: IterationActivations,
        query_tokens: int,
        self_kv_tokens: int,
        cross_kv_tokens: Optional[int],
        start_at: float = 0.0,
        batch_round: Optional[SharedExpertRound] = None,
        label: str = "",
        plan: Optional[MigrationPlan] = None,
        extra_deps: Optional[Sequence[int]] = None,
    ) -> EmittedPass:
        """Columnar twin of :meth:`simulate_stack_pass`.

        Emits *exactly* the ops the scalar walk would add — same order,
        durations, dependencies, categories, devices and bytes — as columns
        into ``batch``, without constructing :class:`TimelineOp` objects or
        (in no-trace mode) op-name strings.  Placement side effects (fetch
        routing, shared-slot allocation, transfer stats) happen here, in the
        scalar order; op times exist only once the owning timeline commits
        the batch.  The parity test matrix pins the two paths to each other.
        """
        config = self.config
        placement = self.placement
        moe_positions = placement.moe_positions(part)
        num_layers = (config.num_encoder_layers if part == "encoder"
                      else config.num_decoder_layers)
        num_blocks = len(moe_positions)
        if plan is None:
            plan = self.make_plan(part, activations)
        transfers_by_issue = plan.by_issue_block()
        schedule = None
        if self.design == "pregated" and num_blocks > 0:
            schedule = PreGateSchedule(num_blocks=num_blocks,
                                       activation_level=self.activation_level)
        gate_time = self._gate_duration(query_tokens)
        names = batch.record_names
        base_id = batch.base_id
        emitted = EmittedPass(first_index=-1, last_index=-1)
        transfer_ops_by_target: Dict[int, List[Tuple[int, int]]] = {}
        allocation_tags: Dict[int, List[str]] = {}
        last_compute_id = -1
        moe_block_cursor = 0
        carry_deps: List[int] = list(extra_deps or [])
        batch_add = batch.add

        def add_compute(name: Optional[str], duration: float,
                        deps: Sequence[int] = (),
                        category: int = CAT_COMPUTE) -> int:
            dep_list = list(deps)
            if carry_deps:
                dep_list.extend(carry_deps)
                carry_deps.clear()
            op_id = batch_add(
                _COMPUTE, duration, deps=dep_list, category=category,
                earliest_start=start_at if emitted.first_index < 0 else 0.0,
                name=name)
            if emitted.first_index < 0:
                emitted.first_index = op_id - base_id
            emitted.last_index = op_id - base_id
            return op_id

        for layer in range(num_layers):
            # --- non-MoE portion of the transformer block -------------
            nonmoe = self._nonmoe_duration(
                part, query_tokens, self_kv_tokens,
                cross_kv_tokens or self_kv_tokens)
            last_compute_id = add_compute(
                f"{label}{part}{iteration}.layer{layer}.attention"
                if names else None, nonmoe, category=CAT_NON_MOE)

            if layer not in moe_positions:
                last_compute_id = add_compute(
                    f"{label}{part}{iteration}.layer{layer}.ffn"
                    if names else None, self._ffn_duration(query_tokens),
                    category=CAT_NON_MOE)
                continue

            # --- MoE block --------------------------------------------
            block = moe_block_cursor
            moe_block_cursor += 1

            num_gates = self._gates_evaluated_at(block, schedule)
            if num_gates > 0:
                last_compute_id = add_compute(
                    f"{label}{part}{iteration}.moe{block}.gate"
                    if names else None, num_gates * gate_time,
                    category=CAT_GATE)

            issued = transfers_by_issue.get(block, [])
            if issued and self.offloads_experts:
                to_issue = []
                for transfer in issued:
                    key = (placement.global_block_index(part, transfer.block_index),
                           transfer.expert_id)
                    if batch_round is not None and batch_round.is_fetched(key):
                        dedup_op = batch_round.copy_op(key)
                        if dedup_op is not None:
                            transfer_ops_by_target.setdefault(
                                transfer.block_index, []).append(
                                    (dedup_op,
                                     placement.owner_device(transfer.expert_id)))
                        continue
                    to_issue.append((transfer, key))
                if to_issue:
                    sync_id = add_compute(
                        f"{label}{part}{iteration}.moe{block}.issue_transfers"
                        if names else None, self.system.host_sync_overhead,
                        category=CAT_SYNC)
                    last_compute_id = sync_id
                    for transfer, key in to_issue:
                        route = placement.route_fetch(key, transfer)
                        deps: List[int] = [sync_id]
                        if route.stage_duration > 0.0:
                            stage_id = batch_add(
                                _STAGE, route.stage_duration, deps=deps,
                                category=CAT_STAGE_IN, device=route.device,
                                num_bytes=transfer.bytes,
                                name=(f"{label}{part}{iteration}"
                                      f".moe{transfer.block_index}"
                                      f".stage_expert{transfer.expert_id}")
                                if names else None)
                            deps = [stage_id]
                        copy_id = batch_add(
                            _COPY, route.copy_duration, deps=deps,
                            category=CAT_EXPERT_TRANSFER, device=route.device,
                            num_bytes=transfer.bytes,
                            name=(f"{label}{part}{iteration}"
                                  f".moe{transfer.block_index}"
                                  f".fetch_expert{transfer.expert_id}")
                            if names else None)
                        transfer_ops_by_target.setdefault(
                            transfer.block_index, []).append(
                                (copy_id, route.device))
                        if batch_round is not None:
                            batch_round.fetch(placement, part, transfer, key,
                                              copy_id)
                        else:
                            tag = placement.allocate_expert(
                                part, transfer.block_index, transfer.expert_id)
                            allocation_tags.setdefault(
                                transfer.block_index, []).append(tag)

            activated = activations[block] if block < len(activations) else []
            block_transfer_ops = transfer_ops_by_target.get(block, [])
            if not self.multi_device:
                exec_time = self._exec_duration(query_tokens,
                                                max(1, len(activated)))
                last_compute_id = add_compute(
                    f"{label}{part}{iteration}.moe{block}.experts"
                    if names else None, exec_time,
                    deps=[op_id for op_id, _ in block_transfer_ops],
                    category=CAT_EXPERT_EXECUTION)
            else:
                block_end_id, device0_exec_id = self._emit_sharded_block(
                    batch, part, iteration, block, activated, query_tokens,
                    block_transfer_ops, last_compute_id, carry_deps, label)
                if device0_exec_id >= 0:
                    last_compute_id = device0_exec_id
                emitted.last_index = block_end_id - base_id

            if batch_round is not None:
                for key in batch_round.release_keys(placement, part, plan,
                                                    activations, block):
                    batch_round.release(placement, key)
            else:
                placement.release_block_experts(
                    part, block, allocation_tags.get(block, []), activated)

        emitted.carry_deps = list(carry_deps)
        return emitted

    def _emit_sharded_block(self, batch: OpBatch, part: str, iteration: int,
                            block: int, activated, query_tokens: int,
                            block_transfer_ops: List[Tuple[int, int]],
                            last_compute_id: int, carry_deps: List[int],
                            label: str) -> Tuple[int, int]:
        """Columnar twin of :meth:`_execute_sharded_block` (ids, not ops)."""
        config = self.config
        placement = self.placement
        counts: Dict[int, int] = {}
        for expert in activated:
            device = placement.owner_device(int(expert))
            counts[device] = counts.get(device, 0) + 1
        if not counts:
            counts = {0: 0}
        total_active = max(1, len(activated))
        token_assignments = query_tokens * config.top_k
        remote_share = sum(n for d, n in counts.items() if d != 0) / total_active
        alltoall_bytes = token_assignments * remote_share * self._token_bytes
        names = batch.record_names
        base = f"{label}{part}{iteration}.moe{block}" if names else None
        participating = set(counts)
        leftover_deps = [op_id for op_id, dev in block_transfer_ops
                         if dev not in participating]

        dispatch_id = -1
        if alltoall_bytes > 0:
            dispatch_id = batch.add(
                _INTERCONNECT, self.topology.all_to_all_time(alltoall_bytes),
                deps=[last_compute_id] if last_compute_id >= 0 else [],
                category=CAT_ALLTOALL, num_bytes=alltoall_bytes,
                name=f"{base}.dispatch" if names else None)
            placement.record_alltoall(alltoall_bytes)

        exec_ids: List[int] = []
        device0_exec_id = -1
        for device in sorted(counts):
            exec_time = self._exec_duration(query_tokens,
                                            max(1, counts[device]))
            deps = [op_id for op_id, dev in block_transfer_ops if dev == device]
            if device != 0 and dispatch_id >= 0:
                deps.append(dispatch_id)
            if device == 0 and dispatch_id < 0:
                deps.extend(leftover_deps)
                leftover_deps = []
            op_id = batch.add(_COMPUTE, exec_time, deps=deps,
                              category=CAT_EXPERT_EXECUTION, device=device,
                              name=f"{base}.experts" if names else None)
            exec_ids.append(op_id)
            if device == 0:
                device0_exec_id = op_id
        if dispatch_id < 0:
            return exec_ids[0], device0_exec_id
        combine_id = batch.add(
            _INTERCONNECT, self.topology.all_to_all_time(alltoall_bytes),
            deps=exec_ids + leftover_deps, category=CAT_ALLTOALL,
            num_bytes=alltoall_bytes, name=f"{base}.combine" if names else None)
        placement.record_alltoall(alltoall_bytes)
        carry_deps.append(combine_id)
        return combine_id, device0_exec_id

    def emit_decoder_iteration(self, batch: OpBatch,
                               activations: IterationActivations,
                               query_tokens: int = 1, self_kv_tokens: int = 1,
                               cross_kv_tokens: int = 32, iteration: int = 0,
                               start_at: float = 0.0,
                               batch_round: Optional[SharedExpertRound] = None,
                               label: str = "",
                               plan: Optional[MigrationPlan] = None,
                               extra_deps: Optional[Sequence[int]] = None) -> EmittedPass:
        """Columnar twin of :meth:`decoder_iteration` (pass + LM head)."""
        emitted = self.emit_stack_pass(
            batch, "decoder", iteration, activations,
            query_tokens=query_tokens, self_kv_tokens=self_kv_tokens,
            cross_kv_tokens=cross_kv_tokens, start_at=start_at,
            batch_round=batch_round, label=label, plan=plan,
            extra_deps=extra_deps)
        lm_id = batch.add(
            _COMPUTE, self._lm_duration(query_tokens),
            deps=emitted.carry_deps, category=CAT_NON_MOE,
            earliest_start=start_at if emitted.first_index < 0 else 0.0,
            name=f"{label}decoder{iteration}.lm_head"
            if batch.record_names else None)
        lm_index = lm_id - batch.base_id
        first = emitted.first_index if emitted.first_index >= 0 else lm_index
        return EmittedPass(first_index=first, last_index=lm_index)

    def emit_encoder_pass(self, batch: OpBatch,
                          activations: IterationActivations,
                          input_tokens: int, start_at: float = 0.0,
                          batch_round: Optional[SharedExpertRound] = None,
                          label: str = "",
                          plan: Optional[MigrationPlan] = None,
                          extra_deps: Optional[Sequence[int]] = None) -> EmittedPass:
        """Columnar twin of :meth:`encoder_pass`."""
        return self.emit_stack_pass(
            batch, "encoder", 0, activations, query_tokens=input_tokens,
            self_kv_tokens=input_tokens, cross_kv_tokens=None,
            start_at=start_at, batch_round=batch_round, label=label,
            plan=plan, extra_deps=extra_deps)
