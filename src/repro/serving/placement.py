"""Model-placement layer: parameter storage and GPU expert-slot accounting.

This is the first of the three serving layers (placement → per-iteration
simulation → request lifecycle).  A :class:`ModelPlacement` owns the memory
hierarchy of one replica and implements the storage policy of a design
(Figure 4): where the non-MoE parameters, the expert parameters and the
runtime workspace live, plus the transient GPU allocations made while
migrated experts are resident.

It contains *no timing logic* — the per-iteration simulator decides when
transfers happen; the placement only tracks the bytes they pin.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from ..moe.configs import ModelConfig
from ..moe.transformer import _moe_layer_positions
from ..system.cache import ExpertCache
from ..system.hardware import SystemSpec
from ..system.memory import MemoryHierarchy, MemoryPool
from ..system.residency import ExpertResidency

#: Fixed GPU memory consumed by the runtime itself (CUDA context, cuBLAS
#: workspaces, FasterTransformer's pre-allocated activation buffers).  The
#: paper's measured peak-memory numbers include this overhead, so the
#: simulator accounts for it explicitly.
DEFAULT_RUNTIME_WORKSPACE_BYTES = int(2e9)


class ModelPlacement:
    """Parameter placement and expert-slot accounting for one replica.

    Parameters
    ----------
    config:
        Model configuration being served.
    system:
        Hardware the replica runs on.
    offload_experts:
        Whether expert parameters live in the offload tier (all designs
        except GPU-only).
    cache:
        Optional per-request GPU expert cache (the single-request engine's
        Figure 15 path).  Mutually exclusive with the residency knobs.
    cache_policy / cache_capacity:
        When ``cache_capacity`` is not ``None`` (0 is a valid, cache-nothing
        value used by the parity tests) and the design offloads experts, the
        placement owns a shared refcounted
        :class:`~repro.system.residency.ExpertResidency` map charged against
        its GPU pool — the multi-request caching substrate the continuous-
        batching scheduler builds on.
    runtime_workspace_bytes / allow_oversubscription:
        See :class:`~repro.serving.engine.EngineConfig`.
    """

    def __init__(self, config: ModelConfig, system: SystemSpec,
                 offload_experts: bool,
                 cache: Optional[ExpertCache] = None,
                 cache_policy: Optional[str] = None,
                 cache_capacity: Optional[int] = None,
                 runtime_workspace_bytes: int = DEFAULT_RUNTIME_WORKSPACE_BYTES,
                 allow_oversubscription: bool = False) -> None:
        if cache is not None and cache_capacity is not None:
            raise ValueError(
                "pass either a per-request ExpertCache or the shared "
                "cache_policy/cache_capacity knobs, not both")
        if cache_policy is not None and cache_capacity is None:
            raise ValueError(
                "cache_policy requires cache_capacity (0 disables retention "
                "but keeps the residency machinery)")
        self.config = config
        self.system = system
        self.offload_experts = offload_experts
        self.cache = cache
        self.runtime_workspace_bytes = runtime_workspace_bytes
        self.allow_oversubscription = allow_oversubscription
        self.memory = MemoryHierarchy.from_system(system)
        self.gpu_pool: MemoryPool = self.memory.gpu
        self.residency: Optional[ExpertResidency] = None
        if cache_capacity is not None and offload_experts:
            self.residency = ExpertResidency(
                self.gpu_pool, config.expert_bytes(),
                capacity_experts=cache_capacity,
                policy=cache_policy or "lru",
                source_tier=system.offload_tier,
                allow_oversubscription=allow_oversubscription)
        self._loaded = False
        self._expert_seq = 0

        if config.is_moe:
            self.encoder_moe_positions = _moe_layer_positions(
                config.num_encoder_layers, config.moe_layer_frequency)
            self.decoder_moe_positions = _moe_layer_positions(
                config.num_decoder_layers, config.moe_layer_frequency)
        else:
            self.encoder_moe_positions = []
            self.decoder_moe_positions = []

    # ------------------------------------------------------------------
    # Model loading (Figure 4)
    # ------------------------------------------------------------------
    @property
    def loaded(self) -> bool:
        return self._loaded

    def load_model(self) -> None:
        """Place model parameters according to the design's storage policy.

        Raises :class:`~repro.system.memory.OutOfMemoryError` if the GPU
        cannot hold its share of the parameters (the GPU-only OOM case for
        Switch-Large in Figures 10-12).
        """
        if self._loaded:
            return
        allow = self.allow_oversubscription
        self.gpu_pool.allocate("runtime_workspace", self.runtime_workspace_bytes,
                               category="workspace", allow_oversubscribe=allow)
        self.gpu_pool.allocate("non_moe_params", self.config.non_moe_bytes(),
                               category="non_moe", allow_oversubscribe=allow)
        if self.offload_experts:
            offload_pool = self.memory.offload_pool(self.system.offload_tier)
            offload_pool.allocate("moe_params", self.config.moe_bytes(), category="moe")
        else:
            self.gpu_pool.allocate("moe_params", self.config.moe_bytes(),
                                   category="moe", allow_oversubscribe=allow)
        self._loaded = True

    # ------------------------------------------------------------------
    # Block topology helpers
    # ------------------------------------------------------------------
    def moe_positions(self, part: str) -> List[int]:
        return self.encoder_moe_positions if part == "encoder" else self.decoder_moe_positions

    def global_block_index(self, part: str, block_index: int) -> int:
        if part == "encoder":
            return block_index
        return len(self.encoder_moe_positions) + block_index

    # ------------------------------------------------------------------
    # Transient expert allocations
    # ------------------------------------------------------------------
    def cache_resident(self, part: str, num_blocks: int) -> List[Set[int]]:
        """Per-block sets of experts already resident in GPU memory.

        Consults the shared residency map when this placement has one (the
        continuous-batching path), otherwise the per-request expert cache —
        resident experts are excluded from migration plans.
        """
        if self.residency is not None:
            provider = self.residency.resident_for_block
        elif self.cache is not None and self.cache.enabled:
            provider = self.cache.resident_for_block
        else:
            return [set() for _ in range(num_blocks)]
        return [set(provider(self.global_block_index(part, block)))
                for block in range(num_blocks)]

    def allocate_expert(self, part: str, block_index: int, expert_id: int) -> str:
        """Reserve GPU memory for one migrated expert; returns the allocation tag."""
        gb = self.global_block_index(part, block_index)
        if self.cache is not None and self.cache.enabled:
            tag = f"cached_expert:{gb}:{expert_id}"
            if self.gpu_pool.has(tag):
                return tag
        else:
            self._expert_seq += 1
            tag = f"expert:{gb}:{expert_id}:{self._expert_seq}"
        self.gpu_pool.allocate(tag, self.config.expert_bytes(), category="experts",
                               allow_oversubscribe=self.allow_oversubscription)
        return tag

    def allocate_shared_expert(self, part: str, block_index: int, expert_id: int) -> str:
        """Reserve a batch-shared expert slot (continuous-batching dedup path).

        The sharing itself is tracked by the caller's
        :class:`~repro.serving.simulator.SharedExpertRound` refcount map,
        which holds the returned tag and frees it once the last round member
        using the expert has executed; the tag carries a sequence suffix so
        re-fetching an expert later in the same round can never collide with
        a previously freed slot.
        """
        gb = self.global_block_index(part, block_index)
        self._expert_seq += 1
        tag = f"batch_expert:{gb}:{expert_id}:{self._expert_seq}"
        self.gpu_pool.allocate(tag, self.config.expert_bytes(), category="experts",
                               allow_oversubscribe=self.allow_oversubscription)
        return tag

    def free_expert(self, tag: str) -> None:
        if self.gpu_pool.has(tag):
            self.gpu_pool.free(tag)

    def release_block_experts(self, part: str, block_index: int,
                              fetched_tags: Sequence[str], activated: Sequence[int]) -> None:
        """Free (or cache) the experts of a block after its execution."""
        gb = self.global_block_index(part, block_index)
        if self.cache is not None and self.cache.enabled:
            for expert_id in activated:
                self.cache.lookup((gb, expert_id))  # record the access for the policy
                evicted = self.cache.insert((gb, expert_id))
                if evicted is not None:
                    evicted_tag = f"cached_expert:{evicted[0]}:{evicted[1]}"
                    if self.gpu_pool.has(evicted_tag):
                        self.gpu_pool.free(evicted_tag)
            return
        for tag in fetched_tags:
            if self.gpu_pool.has(tag):
                self.gpu_pool.free(tag)
