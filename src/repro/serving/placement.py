"""Model-placement layer: parameter storage and GPU expert-slot accounting.

This is the first of the three serving layers (placement → per-iteration
simulation → request lifecycle).  A :class:`ModelPlacement` owns the memory
hierarchy of one replica and implements the storage policy of a design
(Figure 4): where the non-MoE parameters, the expert parameters and the
runtime workspace live, plus the transient GPU allocations made while
migrated experts are resident.

It contains *no timing logic* — the per-iteration simulator decides when
transfers happen; the placement only tracks the bytes they pin.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from ..core.migration import ExpertTransfer
from ..moe.configs import ModelConfig
from ..moe.transformer import _moe_layer_positions
from ..system.cache import ExpertCache
from ..system.hardware import SystemSpec
from ..system.memory import MemoryPool, TieredMemory
from ..system.residency import ExpertResidency
from ..system.tiers import FetchRoute, TierTransferStats

#: Fixed GPU memory consumed by the runtime itself (CUDA context, cuBLAS
#: workspaces, FasterTransformer's pre-allocated activation buffers).  The
#: paper's measured peak-memory numbers include this overhead, so the
#: simulator accounts for it explicitly.
DEFAULT_RUNTIME_WORKSPACE_BYTES = int(2e9)


class ModelPlacement:
    """Parameter placement and expert-slot accounting for one replica.

    Parameters
    ----------
    config:
        Model configuration being served.
    system:
        Hardware the replica runs on.
    offload_experts:
        Whether expert parameters live in the offload tier (all designs
        except GPU-only).
    cache:
        Optional per-request GPU expert cache (the single-request engine's
        Figure 15 path).  Mutually exclusive with the residency knobs.
    cache_policy / cache_capacity:
        When ``cache_capacity`` is not ``None`` (0 is a valid, cache-nothing
        value used by the parity tests) and the design offloads experts, the
        placement owns a shared refcounted
        :class:`~repro.system.residency.ExpertResidency` map charged against
        its GPU pool — the multi-request caching substrate the continuous-
        batching scheduler builds on.
    stage_policy / stage_capacity:
        Second-level cache for SSD offload: when ``stage_capacity`` is not
        ``None`` and the system's offload tier is ``"ssd"``, the placement
        owns a second :class:`~repro.system.residency.ExpertResidency`
        instance over host DRAM — the staging cache SSD-resident experts
        pass through on their way to the GPU.  Staged experts skip the SSD
        read entirely (only the PCIe hop remains); bytes are charged to the
        DRAM :class:`~repro.system.memory.MemoryPool` under the
        ``staged_experts`` category.  Capacity 0 keeps the staging
        machinery but retains nothing, reproducing the unstaged multi-hop
        timings exactly (no buffer space means the two links stay a single
        cut-through queue).
    runtime_workspace_bytes / allow_oversubscription:
        See :class:`~repro.serving.engine.EngineConfig`.
    """

    def __init__(self, config: ModelConfig, system: SystemSpec,
                 offload_experts: bool,
                 cache: Optional[ExpertCache] = None,
                 cache_policy: Optional[str] = None,
                 cache_capacity: Optional[int] = None,
                 stage_policy: Optional[str] = None,
                 stage_capacity: Optional[int] = None,
                 runtime_workspace_bytes: int = DEFAULT_RUNTIME_WORKSPACE_BYTES,
                 allow_oversubscription: bool = False) -> None:
        if cache is not None and cache_capacity is not None:
            raise ValueError(
                "pass either a per-request ExpertCache or the shared "
                "cache_policy/cache_capacity knobs, not both")
        if cache_policy is not None and cache_capacity is None:
            raise ValueError(
                "cache_policy requires cache_capacity (0 disables retention "
                "but keeps the residency machinery)")
        if stage_policy is not None and stage_capacity is None:
            raise ValueError(
                "stage_policy requires stage_capacity (0 disables retention "
                "but keeps the staging machinery)")
        if stage_capacity is not None and system.offload_tier != "ssd":
            raise ValueError(
                "a DRAM staging cache only applies to SSD offload; "
                f"this system's offload tier is {system.offload_tier!r}")
        self.config = config
        self.system = system
        self.offload_experts = offload_experts
        self.cache = cache
        self.runtime_workspace_bytes = runtime_workspace_bytes
        self.allow_oversubscription = allow_oversubscription
        self.memory = TieredMemory.from_system(system)
        self.gpu_pool: MemoryPool = self.memory.gpu
        self.residency: Optional[ExpertResidency] = None
        if cache_capacity is not None and offload_experts:
            self.residency = ExpertResidency(
                self.gpu_pool, config.expert_bytes(),
                capacity_experts=cache_capacity,
                policy=cache_policy or "lru",
                source_tier=system.offload_tier,
                allow_oversubscription=allow_oversubscription)
        self.stage: Optional[ExpertResidency] = None
        if stage_capacity is not None and offload_experts:
            self.stage = ExpertResidency(
                self.memory.pool("dram"), config.expert_bytes(),
                capacity_experts=stage_capacity,
                policy=stage_policy or "lru",
                source_tier="ssd",
                allow_oversubscription=allow_oversubscription,
                tag_prefix="staged_expert", category="staged_experts")
        #: Per-tier transfer ledger: every issued expert fetch is recorded
        #: here with its per-hop byte attribution and stage hit/miss outcome.
        self.transfers = TierTransferStats(
            source_tier=system.offload_tier if offload_experts else "hbm")
        # Tier paths are constants of the system spec; cache them so the
        # per-fetch routing in the hot simulation loop does not rebuild them.
        self._offload_path = system.tier_path() if offload_experts else None
        self._pcie_path = system.tier_path("dram")
        self._loaded = False
        self._expert_seq = 0

        if config.is_moe:
            self.encoder_moe_positions = _moe_layer_positions(
                config.num_encoder_layers, config.moe_layer_frequency)
            self.decoder_moe_positions = _moe_layer_positions(
                config.num_decoder_layers, config.moe_layer_frequency)
        else:
            self.encoder_moe_positions = []
            self.decoder_moe_positions = []

    # ------------------------------------------------------------------
    # Model loading (Figure 4)
    # ------------------------------------------------------------------
    @property
    def loaded(self) -> bool:
        return self._loaded

    def load_model(self) -> None:
        """Place model parameters according to the design's storage policy.

        Raises :class:`~repro.system.memory.OutOfMemoryError` if the GPU
        cannot hold its share of the parameters (the GPU-only OOM case for
        Switch-Large in Figures 10-12).
        """
        if self._loaded:
            return
        allow = self.allow_oversubscription
        self.gpu_pool.allocate("runtime_workspace", self.runtime_workspace_bytes,
                               category="workspace", allow_oversubscribe=allow)
        self.gpu_pool.allocate("non_moe_params", self.config.non_moe_bytes(),
                               category="non_moe", allow_oversubscribe=allow)
        if self.offload_experts:
            offload_pool = self.memory.pool(self.system.offload_tier)
            offload_pool.allocate("moe_params", self.config.moe_bytes(), category="moe")
        else:
            self.gpu_pool.allocate("moe_params", self.config.moe_bytes(),
                                   category="moe", allow_oversubscribe=allow)
        self._loaded = True

    # ------------------------------------------------------------------
    # Block topology helpers
    # ------------------------------------------------------------------
    def moe_positions(self, part: str) -> List[int]:
        return self.encoder_moe_positions if part == "encoder" else self.decoder_moe_positions

    def global_block_index(self, part: str, block_index: int) -> int:
        if part == "encoder":
            return block_index
        return len(self.encoder_moe_positions) + block_index

    # ------------------------------------------------------------------
    # Tiered fetch routing
    # ------------------------------------------------------------------
    def route_fetch(self, key: Tuple[int, int],
                    transfer: ExpertTransfer) -> FetchRoute:
        """Decide the hop structure of one issued expert fetch.

        For DRAM-resident experts the route is the single PCIe hop (the
        legacy path).  For SSD-resident experts the route consults the DRAM
        staging cache when one is configured:

        * **stage hit** — the expert's bytes are already in host DRAM, so
          only the PCIe hop remains (no SSD read at all);
        * **stage miss** — the bytes stream SSD→DRAM→GPU; with stage
          capacity the SSD read is its own op on the stage stream (it can
          overlap compute *and* other experts' PCIe copies) and the
          dependent copy op carries the pipelined remainder, so an idle
          system still completes the fetch in exactly the multi-hop
          pipelined time.  A zero-capacity stage has no buffer to decouple
          the links, so the fetch stays one cut-through copy op — timing
          parity with the unstaged path.

        Side-effectful: stage residency is consulted (pin + release, so
        retention follows the stage policy/capacity) and the fetch is
        recorded in the per-tier transfer ledger.
        """
        tier = transfer.source_tier
        path = (self._offload_path
                if self._offload_path is not None and self._offload_path.source == tier
                else self.system.tier_path(tier))
        num_bytes = transfer.bytes
        if tier != "ssd" or self.stage is None:
            route = FetchRoute(source_tier=tier,
                               copy_duration=path.transfer_time(num_bytes))
        else:
            hit = self.stage.pin(key)
            self.stage.release(key)
            if hit:
                route = FetchRoute(
                    source_tier="ssd", stage_hit=True,
                    copy_duration=self._pcie_path.transfer_time(num_bytes))
            elif self.stage.capacity <= 0:
                route = FetchRoute(source_tier="ssd", stage_hit=False,
                                   copy_duration=path.transfer_time(num_bytes))
            else:
                route = FetchRoute(
                    source_tier="ssd", stage_hit=False,
                    stage_duration=path.first_hop_time(num_bytes),
                    copy_duration=path.cut_through_tail(num_bytes))
        self.transfers.record_fetch(route, num_bytes)
        return route

    # ------------------------------------------------------------------
    # Transient expert allocations
    # ------------------------------------------------------------------
    def cache_resident(self, part: str, num_blocks: int) -> List[Set[int]]:
        """Per-block sets of experts already resident in GPU memory.

        Consults the shared residency map when this placement has one (the
        continuous-batching path), otherwise the per-request expert cache —
        resident experts are excluded from migration plans.
        """
        if self.residency is not None:
            provider = self.residency.resident_for_block
        elif self.cache is not None and self.cache.enabled:
            provider = self.cache.resident_for_block
        else:
            return [set() for _ in range(num_blocks)]
        return [set(provider(self.global_block_index(part, block)))
                for block in range(num_blocks)]

    def allocate_expert(self, part: str, block_index: int, expert_id: int) -> str:
        """Reserve GPU memory for one migrated expert; returns the allocation tag."""
        gb = self.global_block_index(part, block_index)
        if self.cache is not None and self.cache.enabled:
            tag = f"cached_expert:{gb}:{expert_id}"
            if self.gpu_pool.has(tag):
                return tag
        else:
            self._expert_seq += 1
            tag = f"expert:{gb}:{expert_id}:{self._expert_seq}"
        self.gpu_pool.allocate(tag, self.config.expert_bytes(), category="experts",
                               allow_oversubscribe=self.allow_oversubscription)
        return tag

    def allocate_shared_expert(self, part: str, block_index: int, expert_id: int) -> str:
        """Reserve a batch-shared expert slot (continuous-batching dedup path).

        The sharing itself is tracked by the caller's
        :class:`~repro.serving.simulator.SharedExpertRound` refcount map,
        which holds the returned tag and frees it once the last round member
        using the expert has executed; the tag carries a sequence suffix so
        re-fetching an expert later in the same round can never collide with
        a previously freed slot.
        """
        gb = self.global_block_index(part, block_index)
        self._expert_seq += 1
        tag = f"batch_expert:{gb}:{expert_id}:{self._expert_seq}"
        self.gpu_pool.allocate(tag, self.config.expert_bytes(), category="experts",
                               allow_oversubscribe=self.allow_oversubscription)
        return tag

    def free_expert(self, tag: str) -> None:
        if self.gpu_pool.has(tag):
            self.gpu_pool.free(tag)

    def release_block_experts(self, part: str, block_index: int,
                              fetched_tags: Sequence[str], activated: Sequence[int]) -> None:
        """Free (or cache) the experts of a block after its execution."""
        gb = self.global_block_index(part, block_index)
        if self.cache is not None and self.cache.enabled:
            for expert_id in activated:
                self.cache.lookup((gb, expert_id))  # record the access for the policy
                evicted = self.cache.insert((gb, expert_id))
                if evicted is not None:
                    evicted_tag = f"cached_expert:{evicted[0]}:{evicted[1]}"
                    if self.gpu_pool.has(evicted_tag):
                        self.gpu_pool.free(evicted_tag)
            return
        for tag in fetched_tags:
            if self.gpu_pool.has(tag):
                self.gpu_pool.free(tag)
