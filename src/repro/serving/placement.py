"""Model-placement layer: parameter storage and GPU expert-slot accounting.

This is the first of the three serving layers (placement → per-iteration
simulation → request lifecycle).  A :class:`ShardedPlacement` owns the memory
hierarchy of one replica and implements the storage policy of a design
(Figure 4): where the non-MoE parameters, the expert parameters and the
runtime workspace live, plus the transient GPU allocations made while
migrated experts are resident.

A replica may span several GPUs (expert parallelism): the placement then
splits into one :class:`DeviceShard` per device — each with its own HBM
:class:`~repro.system.memory.MemoryPool`, shared-residency map and DRAM
staging cache — and a :class:`ShardAssignment` that maps every expert id to
the device owning its parameters.  Fetches, expert allocations and cache
pins route to the owning shard.  A single-GPU replica is the degenerate
one-shard case and behaves bit-identically to the original single-pool
placement.

It contains *no timing logic* — the per-iteration simulator decides when
transfers happen; the placement only tracks the bytes they pin.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from ..core.migration import ExpertTransfer
from ..moe.configs import ModelConfig
from ..moe.transformer import _moe_layer_positions
from ..system.cache import ExpertCache
from ..system.hardware import DeviceTopology, SystemSpec
from ..system.memory import MemoryPool, TieredMemory
from ..system.residency import ExpertResidency, ResidencyStats
from ..system.tiers import FetchRoute, TierTransferStats, merge_optional_stats

#: Fixed GPU memory consumed by the runtime itself (CUDA context, cuBLAS
#: workspaces, FasterTransformer's pre-allocated activation buffers).  The
#: paper's measured peak-memory numbers include this overhead, so the
#: simulator accounts for it explicitly.
DEFAULT_RUNTIME_WORKSPACE_BYTES = int(2e9)

#: Expert→device assignment policies of :class:`ShardAssignment`.
SHARD_POLICIES = ("contiguous", "round_robin", "load_balanced")


class ShardAssignment:
    """Static expert→device assignment for one expert-parallel replica.

    The same map applies to every MoE block (the standard expert-parallel
    layout: rank *d* owns the same expert-id slice of each layer).

    Policies
    --------
    ``contiguous``
        Expert *e* lives on device ``e * D // E`` — the natural slicing of a
        checkpoint, but it concentrates hot low-id experts on device 0 when
        the gate distribution is skewed.
    ``round_robin``
        Expert *e* lives on device ``e % D`` — spreads neighbouring ids.
    ``load_balanced``
        Greedy longest-processing-time assignment by expected gate load:
        experts are placed heaviest-first onto the least-loaded device, so a
        skewed popularity distribution ends up evenly spread.  With uniform
        (or absent) ``expert_weights`` this degenerates to an equal split.
    """

    def __init__(self, num_experts: int, num_devices: int,
                 policy: str = "contiguous",
                 expert_weights: Optional[Sequence[float]] = None) -> None:
        if policy not in SHARD_POLICIES:
            raise ValueError(
                f"unknown shard policy {policy!r}; known: {SHARD_POLICIES}")
        if num_experts < 0:
            raise ValueError("num_experts must be non-negative")
        if num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        if expert_weights is not None:
            if len(expert_weights) != num_experts:
                raise ValueError(
                    f"expert_weights has {len(expert_weights)} entries for "
                    f"{num_experts} experts")
            if any(w < 0 for w in expert_weights):
                raise ValueError("expert_weights must be non-negative")
            if num_experts > 0 and sum(expert_weights) == 0:
                raise ValueError(
                    "expert_weights must not be all zero (the load-balanced "
                    "greedy would pile every expert onto device 0)")
            weights = [float(w) for w in expert_weights]
        else:
            weights = [1.0] * num_experts
        self.num_experts = num_experts
        self.num_devices = num_devices
        self.policy = policy
        self.expert_weights = weights
        self._device_of: List[int] = [0] * num_experts
        self.device_weights: List[float] = [0.0] * num_devices
        if policy == "contiguous":
            for e in range(num_experts):
                self._device_of[e] = e * num_devices // num_experts
        elif policy == "round_robin":
            for e in range(num_experts):
                self._device_of[e] = e % num_devices
        else:  # load_balanced: greedy LPT over the expected gate load
            order = sorted(range(num_experts), key=lambda e: (-weights[e], e))
            for e in order:
                target = min(range(num_devices), key=lambda d: (self.device_weights[d], d))
                self._device_of[e] = target
                self.device_weights[target] += weights[e]
        if policy != "load_balanced":
            for e in range(num_experts):
                self.device_weights[self._device_of[e]] += weights[e]

    def device_of(self, expert_id: int) -> int:
        """Device owning ``expert_id``'s parameter slice."""
        if not 0 <= expert_id < self.num_experts:
            raise ValueError(
                f"expert_id must be in [0, {self.num_experts}), got {expert_id}")
        return self._device_of[expert_id]

    def experts_on(self, device: int) -> List[int]:
        return [e for e in range(self.num_experts) if self._device_of[e] == device]

    def imbalance(self) -> float:
        """Max-over-mean expected gate load across devices (1.0 = balanced)."""
        mean = sum(self.device_weights) / self.num_devices
        if mean <= 0.0:
            return 1.0
        return max(self.device_weights) / mean


class DeviceShard:
    """One GPU's slice of an expert-parallel replica.

    Owns the device's HBM :class:`~repro.system.memory.MemoryPool`, its
    shared-residency map (cache of its own experts) and its slice of the
    host-DRAM staging cache.  The shard holds only *its* experts' bytes —
    the :class:`ShardAssignment` decides which those are.
    """

    def __init__(self, device_id: int, pool: MemoryPool,
                 residency: Optional[ExpertResidency] = None,
                 stage: Optional[ExpertResidency] = None) -> None:
        self.device_id = device_id
        self.pool = pool
        self.residency = residency
        self.stage = stage


class ShardedResidency:
    """Routes the :class:`~repro.system.residency.ExpertResidency` protocol
    across per-shard maps by expert→device ownership.

    Pins charge the owning shard's HBM pool and evictions stay shard-local,
    exactly as an expert-parallel runtime refcounts pages per rank.  Only
    constructed for multi-GPU placements; a single-GPU placement exposes its
    one underlying map directly.
    """

    def __init__(self, residencies: Sequence[ExpertResidency],
                 assignment: ShardAssignment) -> None:
        self._residencies = list(residencies)
        self.assignment = assignment

    def _for(self, key: Tuple[int, int]) -> ExpertResidency:
        return self._residencies[self.assignment.device_of(key[1])]

    def pin(self, key: Tuple[int, int]) -> bool:
        return self._for(key).pin(key)

    def release(self, key: Tuple[int, int]) -> None:
        self._for(key).release(key)

    def is_resident(self, key: Tuple[int, int]) -> bool:
        return self._for(key).is_resident(key)

    def pins(self, key: Tuple[int, int]) -> int:
        return self._for(key).pins(key)

    def resident_for_block(self, block_index: int) -> List[int]:
        resident: List[int] = []
        for shard_map in self._residencies:
            resident.extend(shard_map.resident_for_block(block_index))
        return resident

    def resident_keys(self) -> List[Tuple[int, int]]:
        return [key for shard_map in self._residencies
                for key in shard_map.resident_keys()]

    def evict_unpinned(self) -> int:
        return sum(shard_map.evict_unpinned() for shard_map in self._residencies)

    def __len__(self) -> int:
        return sum(len(shard_map) for shard_map in self._residencies)

    def __contains__(self, key: Tuple[int, int]) -> bool:
        return self.is_resident(key)

    @property
    def capacity(self) -> int:
        return sum(shard_map.capacity for shard_map in self._residencies)

    @property
    def policy(self):
        return self._residencies[0].policy

    @property
    def retained_count(self) -> int:
        return sum(shard_map.retained_count for shard_map in self._residencies)

    @property
    def pinned_count(self) -> int:
        return sum(shard_map.pinned_count for shard_map in self._residencies)

    @property
    def stats(self) -> ResidencyStats:
        """Pooled counters across the shards (freshly merged each call)."""
        return merge_optional_stats([r.stats for r in self._residencies])


def _split_capacity(capacity: int, num_devices: int, device: int) -> int:
    """Device ``device``'s share of a replica-wide entry budget."""
    return capacity // num_devices + (1 if device < capacity % num_devices else 0)


class ShardedPlacement:
    """Parameter placement and expert-slot accounting for one replica.

    Parameters
    ----------
    config:
        Model configuration being served.
    system:
        Hardware the replica runs on; its
        :attr:`~repro.system.hardware.SystemSpec.device_topology` fixes the
        shard count (one :class:`DeviceShard` per GPU).
    offload_experts:
        Whether expert parameters live in the offload tier (all designs
        except GPU-only).
    cache:
        Optional per-request GPU expert cache (the single-request engine's
        Figure 15 path).  Mutually exclusive with the residency knobs.
    cache_policy / cache_capacity:
        When ``cache_capacity`` is not ``None`` (0 is a valid, cache-nothing
        value used by the parity tests) and the design offloads experts, the
        placement owns a shared refcounted
        :class:`~repro.system.residency.ExpertResidency` map charged against
        its GPU pool(s) — the multi-request caching substrate the continuous-
        batching scheduler builds on.  With several devices the capacity is
        split evenly across the shards (each rank caches its own experts).
    stage_policy / stage_capacity:
        Second-level cache for SSD offload: when ``stage_capacity`` is not
        ``None`` and the system's offload tier is ``"ssd"``, each shard owns
        a slice of a host-DRAM :class:`~repro.system.residency.ExpertResidency`
        — the staging cache SSD-resident experts pass through on their way
        to the GPU.  Staged experts skip the SSD read entirely (only the
        PCIe hop remains); bytes are charged to the DRAM
        :class:`~repro.system.memory.MemoryPool` under the
        ``staged_experts`` category.  Capacity 0 keeps the staging
        machinery but retains nothing, reproducing the unstaged multi-hop
        timings exactly (no buffer space means the two links stay a single
        cut-through queue).
    shard_policy / expert_weights:
        Expert→device assignment policy (see :class:`ShardAssignment`) and
        the optional expected per-expert gate load driving ``load_balanced``.
        Irrelevant for single-GPU replicas.
    runtime_workspace_bytes / allow_oversubscription:
        See :class:`~repro.serving.engine.EngineConfig`.
    """

    def __init__(self, config: ModelConfig, system: SystemSpec,
                 offload_experts: bool,
                 cache: Optional[ExpertCache] = None,
                 cache_policy: Optional[str] = None,
                 cache_capacity: Optional[int] = None,
                 stage_policy: Optional[str] = None,
                 stage_capacity: Optional[int] = None,
                 shard_policy: str = "contiguous",
                 expert_weights: Optional[Sequence[float]] = None,
                 runtime_workspace_bytes: int = DEFAULT_RUNTIME_WORKSPACE_BYTES,
                 allow_oversubscription: bool = False) -> None:
        if cache is not None and cache_capacity is not None:
            raise ValueError(
                "pass either a per-request ExpertCache or the shared "
                "cache_policy/cache_capacity knobs, not both")
        if cache_policy is not None and cache_capacity is None:
            raise ValueError(
                "cache_policy requires cache_capacity (0 disables retention "
                "but keeps the residency machinery)")
        if stage_policy is not None and stage_capacity is None:
            raise ValueError(
                "stage_policy requires stage_capacity (0 disables retention "
                "but keeps the staging machinery)")
        if stage_capacity is not None and system.offload_tier != "ssd":
            raise ValueError(
                "a DRAM staging cache only applies to SSD offload; "
                f"this system's offload tier is {system.offload_tier!r}")
        self.config = config
        self.system = system
        self.topology: DeviceTopology = system.device_topology
        self.offload_experts = offload_experts
        self.cache = cache
        self.runtime_workspace_bytes = runtime_workspace_bytes
        self.allow_oversubscription = allow_oversubscription
        num_devices = self.topology.num_devices
        self.assignment = ShardAssignment(
            config.num_experts if config.is_moe else 0, num_devices,
            policy=shard_policy, expert_weights=expert_weights)

        # Per-device HBM pools; the host DRAM and SSD tiers stay shared.
        device_pools = [
            MemoryPool(self._pool_name(d), gpu.memory_bytes, tier="hbm")
            for d, gpu in enumerate(self.topology.devices)
        ]
        host = MemoryPool(f"CPU DRAM ({system.host.name})", system.host.dram_bytes,
                          tier="dram")
        ssd = MemoryPool(f"SSD ({system.ssd.name})", system.ssd.capacity_bytes,
                         tier="ssd")
        self.memory = TieredMemory(gpu=device_pools[0], cpu=host, ssd=ssd)
        self.shards: List[DeviceShard] = []
        for d, pool in enumerate(device_pools):
            residency = None
            if cache_capacity is not None and offload_experts:
                residency = ExpertResidency(
                    pool, config.expert_bytes(),
                    capacity_experts=_split_capacity(cache_capacity, num_devices, d),
                    policy=cache_policy or "lru",
                    source_tier=system.offload_tier,
                    allow_oversubscription=allow_oversubscription)
            stage = None
            if stage_capacity is not None and offload_experts:
                stage = ExpertResidency(
                    host, config.expert_bytes(),
                    capacity_experts=_split_capacity(stage_capacity, num_devices, d),
                    policy=stage_policy or "lru",
                    source_tier="ssd",
                    allow_oversubscription=allow_oversubscription,
                    tag_prefix="staged_expert" if d == 0 else f"staged_expert.d{d}",
                    category="staged_experts")
            self.shards.append(DeviceShard(d, pool, residency=residency, stage=stage))

        # Single-GPU placements expose the underlying maps directly (the
        # legacy surface the engine/scheduler tests pin); multi-GPU
        # placements expose ownership-routing views over the shards.
        if num_devices == 1:
            self.residency = self.shards[0].residency
            self.stage = self.shards[0].stage
        else:
            self.residency = (ShardedResidency(
                [s.residency for s in self.shards], self.assignment)
                if cache_capacity is not None and offload_experts else None)
            self.stage = (ShardedResidency(
                [s.stage for s in self.shards], self.assignment)
                if stage_capacity is not None and offload_experts else None)

        #: Per-tier transfer ledger: every issued expert fetch is recorded
        #: here with its per-hop byte attribution and stage hit/miss outcome.
        self.transfers = TierTransferStats(
            source_tier=system.offload_tier if offload_experts else "hbm")
        #: Observability hook: when a list is installed here (the scheduler
        #: does so while span logging is enabled), :meth:`route_fetch`
        #: appends ``(source_tier, stage_hit)`` per issued fetch, in copy-op
        #: emission order — the attribution the span assembler zips with
        #: the pass's transfer ops.  ``None`` (default) costs one ``is not
        #: None`` check per fetch.
        self.route_log: Optional[List[Tuple[str, bool]]] = None
        #: Bytes each device's fetches moved over its copy lane (shard
        #: imbalance telemetry).
        self.device_fetch_bytes: List[int] = [0] * num_devices
        #: Token bytes moved over the intra-node interconnect (all-to-all
        #: dispatch + combine around the MoE blocks).
        self.alltoall_bytes: int = 0
        # Tier paths are constants of the system spec; cache them so the
        # per-fetch routing in the hot simulation loop does not rebuild them.
        self._offload_path = system.tier_path() if offload_experts else None
        self._pcie_path = system.tier_path("dram")
        # Transfer durations along a fixed path depend only on the byte
        # count, and expert fetches are all the same size — memoise the
        # (path, bytes) → duration evaluations instead of re-walking the
        # hop list on every fetch of every round.
        self._path_time_cache: dict = {}
        self._loaded = False
        self._expert_seq = 0
        # Round replay walks the residency-style maps (per-device GPU
        # residency shards, then per-device DRAM stage shards) in a fixed
        # order for counter snapshots and fast-forwards.
        self._replay_maps = (
            [s.residency for s in self.shards if s.residency is not None]
            + [s.stage for s in self.shards if s.stage is not None])

        if config.is_moe:
            self.encoder_moe_positions = _moe_layer_positions(
                config.num_encoder_layers, config.moe_layer_frequency)
            self.decoder_moe_positions = _moe_layer_positions(
                config.num_decoder_layers, config.moe_layer_frequency)
        else:
            self.encoder_moe_positions = []
            self.decoder_moe_positions = []

    def _pool_name(self, device: int) -> str:
        gpu = self.topology.devices[device]
        if self.topology.num_devices == 1:
            return f"GPU ({gpu.name})"
        return f"GPU{device} ({gpu.name})"

    # ------------------------------------------------------------------
    # Device/shard helpers
    # ------------------------------------------------------------------
    @property
    def num_devices(self) -> int:
        return self.topology.num_devices

    @property
    def gpu_pool(self) -> MemoryPool:
        """Device 0's HBM pool (the whole GPU for single-device replicas)."""
        return self.shards[0].pool

    @property
    def peak_gpu_bytes(self) -> int:
        """Peak HBM usage summed over the replica's devices."""
        return sum(shard.pool.peak for shard in self.shards)

    def owner_device(self, expert_id: int) -> int:
        """Device owning ``expert_id`` (0 for non-MoE configs)."""
        if self.assignment.num_experts == 0:
            return 0
        return self.assignment.device_of(expert_id)

    def shard_for(self, expert_id: int) -> DeviceShard:
        return self.shards[self.owner_device(expert_id)]

    def record_alltoall(self, num_bytes: float) -> None:
        """Account one all-to-all dispatch/combine's interconnect traffic."""
        self.alltoall_bytes += int(num_bytes)

    # ------------------------------------------------------------------
    # Round-replay counter fast-forward
    # ------------------------------------------------------------------
    def replay_counters(self) -> Tuple[int, ...]:
        """Flat snapshot of every counter round replay bumps.

        All integers, so the replay controller can require *exact* per-round
        delta equality before fast-forwarding, and bump by ``n * delta``
        without floating-point drift.  Order is fixed: the
        :class:`~repro.system.tiers.TierTransferStats` fields, the all-to-all
        byte counter, per-device fetched bytes, then the
        :class:`~repro.system.residency.ResidencyStats` counters of every
        residency-style map (GPU residency shards, then DRAM stage shards).
        """
        counters = (*self.transfers.replay_counters(), self.alltoall_bytes,
                    *self.device_fetch_bytes)
        for res in self._replay_maps:
            counters += res.replay_stats_counters()
        return counters

    def replay_fast_forward(self, num_rounds: int, delta: Sequence[int],
                            residency_deltas: Sequence[tuple] = ()) -> None:
        """Advance the counters by ``num_rounds`` identical rounds' worth.

        ``delta`` is the per-round difference of :meth:`replay_counters`
        the replay controller verified to be constant across its recorded
        window; ``residency_deltas`` is the per-map policy delta returned by
        :meth:`replay_residency_window`.  Replayed rounds allocate and free
        the same expert slots the recorded rounds did, so memory state and
        peaks are already exact.
        """
        width = TierTransferStats.REPLAY_WIDTH
        self.transfers.replay_fast_forward(num_rounds, delta[:width])
        self.alltoall_bytes += num_rounds * delta[width]
        cursor = width + 1
        for device in range(len(self.device_fetch_bytes)):
            self.device_fetch_bytes[device] += num_rounds * delta[cursor]
            cursor += 1
        if not self._replay_maps:
            return
        if not residency_deltas:
            residency_deltas = [()] * len(self._replay_maps)
        for res, policy_delta in zip(self._replay_maps, residency_deltas):
            res.replay_fast_forward(num_rounds, delta[cursor:cursor + 5],
                                    policy_delta)
            cursor += 5

    # ------------------------------------------------------------------
    # Round-replay residency state
    # ------------------------------------------------------------------
    @property
    def replay_retentive(self) -> bool:
        """Whether any residency-style map retains state across rounds.

        When it does, replay signatures must pin *actual* expert ids, not
        anonymised collision patterns: identity-sensitive policy state (LRU
        order, LFU counts) evolves per key, so two rounds that collide
        identically but touch different experts are not interchangeable.
        """
        return any(res.capacity > 0 for res in self._replay_maps)

    def replay_epoch(self) -> int:
        """Monotone counter of resident-set changes across every map."""
        return sum(res.epoch for res in self._replay_maps)

    def replay_outcome(self, key: Tuple[int, int]) -> int:
        """Structure-deciding residency outcome one expert access will see.

        ``0``: no maps in play (plain fetch path).  ``1``: GPU-resident —
        the migration plan skips the fetch entirely.  ``2``: fetched with no
        DRAM stage.  ``3``: fetched, stage hit (PCIe hop only).  ``4``:
        fetched, stage miss (SSD read + stage-in op).
        """
        shard = self.shards[self.owner_device(key[1])]
        if shard.residency is not None and key in shard.residency:
            return 1
        if shard.stage is not None:
            return 3 if key in shard.stage else 4
        return 2 if shard.residency is not None else 0

    def replay_residency_state(self) -> tuple:
        """Per-map behavioural snapshots for one round record."""
        return tuple(res.replay_state() for res in self._replay_maps)

    def replay_residency_window(self, states: Sequence[tuple]) -> "tuple | None":
        """Verify every map is exactly replayable across a round window.

        Returns the per-map policy deltas for
        :meth:`replay_fast_forward`, or ``None`` when any map must stand
        down (drifting resident set or non-constant policy delta).
        """
        deltas = []
        for i, res in enumerate(self._replay_maps):
            delta = res.replay_window_delta([s[i] for s in states])
            if delta is None:
                return None
            deltas.append(delta)
        return tuple(deltas)

    def fetch_imbalance(self,
                        since: Optional[Sequence[int]] = None) -> Optional[float]:
        """Max-over-mean fetched bytes across devices (``None`` single-GPU).

        ``since`` is an earlier copy of :attr:`device_fetch_bytes`, so a
        load test reports the imbalance of *its* traffic rather than the
        placement's lifetime.  Falls back to the assignment's expected-load
        imbalance when nothing was fetched in the window.
        """
        if self.num_devices == 1:
            return None
        baseline = list(since) if since is not None else [0] * self.num_devices
        deltas = [now - before
                  for now, before in zip(self.device_fetch_bytes, baseline)]
        total = sum(deltas)
        if total == 0:
            return self.assignment.imbalance()
        return max(deltas) / (total / self.num_devices)

    # ------------------------------------------------------------------
    # Model loading (Figure 4)
    # ------------------------------------------------------------------
    @property
    def loaded(self) -> bool:
        return self._loaded

    def load_model(self) -> None:
        """Place model parameters according to the design's storage policy.

        Raises :class:`~repro.system.memory.OutOfMemoryError` if a GPU
        cannot hold its share of the parameters (the GPU-only OOM case for
        Switch-Large in Figures 10-12).  The non-MoE parameters and runtime
        workspace are replicated on every device (expert parallelism keeps
        the dense layers data-parallel); expert parameters land on their
        owning shard — or in the offload tier when the design migrates them.
        """
        if self._loaded:
            return
        allow = self.allow_oversubscription
        for shard in self.shards:
            shard.pool.allocate("runtime_workspace", self.runtime_workspace_bytes,
                                category="workspace", allow_oversubscribe=allow)
            shard.pool.allocate("non_moe_params", self.config.non_moe_bytes(),
                                category="non_moe", allow_oversubscribe=allow)
        if self.offload_experts:
            offload_pool = self.memory.pool(self.system.offload_tier)
            offload_pool.allocate("moe_params", self.config.moe_bytes(), category="moe")
        elif self.num_devices == 1:
            self.gpu_pool.allocate("moe_params", self.config.moe_bytes(),
                                   category="moe", allow_oversubscribe=allow)
        else:
            # GPU-only, expert-parallel: each shard holds its experts' slice
            # of every MoE block.
            expert_bytes = self.config.expert_bytes()
            num_blocks = self.config.num_moe_blocks("all")
            gate_bytes = self.config.moe_bytes() - (
                num_blocks * self.config.num_experts * expert_bytes)
            for shard in self.shards:
                owned = len(self.assignment.experts_on(shard.device_id))
                shard_bytes = num_blocks * owned * expert_bytes
                if shard.device_id == 0:
                    shard_bytes += max(0, gate_bytes)
                shard.pool.allocate("moe_params", shard_bytes, category="moe",
                                    allow_oversubscribe=allow)
        self._loaded = True

    # ------------------------------------------------------------------
    # Block topology helpers
    # ------------------------------------------------------------------
    def moe_positions(self, part: str) -> List[int]:
        return self.encoder_moe_positions if part == "encoder" else self.decoder_moe_positions

    def global_block_index(self, part: str, block_index: int) -> int:
        if part == "encoder":
            return block_index
        return len(self.encoder_moe_positions) + block_index

    # ------------------------------------------------------------------
    # Tiered fetch routing
    # ------------------------------------------------------------------
    def route_fetch(self, key: Tuple[int, int],
                    transfer: ExpertTransfer) -> FetchRoute:
        """Decide the hop structure (and owning device) of one expert fetch.

        For DRAM-resident experts the route is the single PCIe hop (the
        legacy path).  For SSD-resident experts the route consults the
        owning shard's DRAM staging cache when one is configured:

        * **stage hit** — the expert's bytes are already in host DRAM, so
          only the PCIe hop remains (no SSD read at all);
        * **stage miss** — the bytes stream SSD→DRAM→GPU; with stage
          capacity the SSD read is its own op on the stage stream (it can
          overlap compute *and* other experts' PCIe copies) and the
          dependent copy op carries the pipelined remainder, so an idle
          system still completes the fetch in exactly the multi-hop
          pipelined time.  A zero-capacity stage has no buffer to decouple
          the links, so the fetch stays one cut-through copy op — timing
          parity with the unstaged path.

        Side-effectful: stage residency is consulted (pin + release, so
        retention follows the stage policy/capacity) and the fetch is
        recorded in the per-tier transfer ledger.  The returned route's
        ``device`` is the shard whose copy lane the fetch occupies.
        """
        tier = transfer.source_tier
        path = (self._offload_path
                if self._offload_path is not None and self._offload_path.source == tier
                else self.system.tier_path(tier))
        num_bytes = transfer.bytes
        device = self.owner_device(transfer.expert_id)
        stage = self.shards[device].stage
        if tier != "ssd" or stage is None:
            route = FetchRoute(source_tier=tier,
                               copy_duration=self._path_times(path, num_bytes)[0],
                               device=device)
        else:
            hit = stage.pin(key)
            stage.release(key)
            if hit:
                route = FetchRoute(
                    source_tier="ssd", stage_hit=True,
                    copy_duration=self._path_times(self._pcie_path, num_bytes)[0],
                    device=device)
            elif stage.capacity <= 0:
                route = FetchRoute(source_tier="ssd", stage_hit=False,
                                   copy_duration=self._path_times(path, num_bytes)[0],
                                   device=device)
            else:
                times = self._path_times(path, num_bytes)
                route = FetchRoute(
                    source_tier="ssd", stage_hit=False,
                    stage_duration=times[1],
                    copy_duration=times[2],
                    device=device)
        self.transfers.record_fetch(route, num_bytes)
        self.device_fetch_bytes[device] += int(num_bytes)
        if self.route_log is not None:
            self.route_log.append((route.source_tier, route.stage_hit))
        return route

    def _path_times(self, path, num_bytes: int) -> Tuple[float, float, float]:
        """(pipelined total, first-hop, cut-through-tail) for ``num_bytes``.

        Memoised per (source, dest, byte count): within one placement the
        system spec fixes the hop structure of a (source, dest) route, and
        fetches are expert-sized, so the cache holds a handful of entries
        while saving a hop-list walk per fetch.
        """
        cache_key = (path.source, path.dest, num_bytes)
        times = self._path_time_cache.get(cache_key)
        if times is None:
            times = (path.transfer_time(num_bytes),
                     path.first_hop_time(num_bytes),
                     path.cut_through_tail(num_bytes))
            self._path_time_cache[cache_key] = times
        return times

    # ------------------------------------------------------------------
    # Transient expert allocations
    # ------------------------------------------------------------------
    def cache_resident(self, part: str, num_blocks: int) -> List[Set[int]]:
        """Per-block sets of experts already resident in GPU memory.

        Consults the shared residency map when this placement has one (the
        continuous-batching path), otherwise the per-request expert cache —
        resident experts are excluded from migration plans.
        """
        if self.residency is not None:
            provider = self.residency.resident_for_block
        elif self.cache is not None and self.cache.enabled:
            provider = self.cache.resident_for_block
        else:
            return [set() for _ in range(num_blocks)]
        return [set(provider(self.global_block_index(part, block)))
                for block in range(num_blocks)]

    def allocate_expert(self, part: str, block_index: int, expert_id: int) -> str:
        """Reserve GPU memory for one migrated expert; returns the allocation tag.

        The bytes land in the owning shard's pool.
        """
        gb = self.global_block_index(part, block_index)
        pool = self.shard_for(expert_id).pool
        if self.cache is not None and self.cache.enabled:
            tag = f"cached_expert:{gb}:{expert_id}"
            if pool.has(tag):
                return tag
        else:
            self._expert_seq += 1
            tag = f"expert:{gb}:{expert_id}:{self._expert_seq}"
        pool.allocate(tag, self.config.expert_bytes(), category="experts",
                      allow_oversubscribe=self.allow_oversubscription)
        return tag

    def allocate_shared_expert(self, part: str, block_index: int, expert_id: int) -> str:
        """Reserve a batch-shared expert slot (continuous-batching dedup path).

        The sharing itself is tracked by the caller's
        :class:`~repro.serving.simulator.SharedExpertRound` refcount map,
        which holds the returned tag and frees it once the last round member
        using the expert has executed; the tag carries a sequence suffix so
        re-fetching an expert later in the same round can never collide with
        a previously freed slot.
        """
        gb = self.global_block_index(part, block_index)
        self._expert_seq += 1
        tag = f"batch_expert:{gb}:{expert_id}:{self._expert_seq}"
        self.shard_for(expert_id).pool.allocate(
            tag, self.config.expert_bytes(), category="experts",
            allow_oversubscribe=self.allow_oversubscription)
        return tag

    def free_expert(self, tag: str) -> None:
        for shard in self.shards:
            if shard.pool.has(tag):
                shard.pool.free(tag)
                return

    def release_block_experts(self, part: str, block_index: int,
                              fetched_tags: Sequence[str], activated: Sequence[int]) -> None:
        """Free (or cache) the experts of a block after its execution."""
        gb = self.global_block_index(part, block_index)
        if self.cache is not None and self.cache.enabled:
            for expert_id in activated:
                self.cache.lookup((gb, expert_id))  # record the access for the policy
                evicted = self.cache.insert((gb, expert_id))
                if evicted is not None:
                    evicted_tag = f"cached_expert:{evicted[0]}:{evicted[1]}"
                    self.free_expert(evicted_tag)
            return
        for tag in fetched_tags:
            self.free_expert(tag)


#: The historical name of the placement layer — a single-GPU replica is just
#: a one-shard :class:`ShardedPlacement`.
ModelPlacement = ShardedPlacement
