"""Continuous-batching request scheduler (request-lifecycle layer under load).

Where :class:`~repro.serving.engine.ServingEngine` serves one request
end-to-end on a private timeline, the scheduler serves a *stream* of
timestamped requests on one shared
:class:`~repro.system.timeline.ExecutionTimeline`, iteration-interleaved in
the style of Orca's continuous batching:

* requests are admitted as they arrive, up to ``max_batch_size`` in flight;
* each scheduling **round** advances every in-flight request by one unit —
  its encoder (prefill) pass the first time, one decoder iteration after —
  so a newly arrived request starts decoding without waiting for older
  requests to finish;
* within a round, expert transfers are deduplicated across requests via
  :class:`~repro.serving.simulator.SharedExpertRound`: concurrent requests
  that activate the same expert of the same block share a single CPU→GPU
  migration;
* with a cache enabled (``cache_policy``/``cache_capacity``), rounds run on
  the shared refcounted :class:`~repro.system.residency.ExpertResidency`
  map through a :class:`~repro.serving.prefetch.CrossRequestPrefetcher`:
  hot experts stay resident *across* rounds and requests (LIFO/LRU/LFU
  replacement of unpinned entries), so repeat activations skip the CPU→GPU
  link entirely.

The scheduler is built from the same placement + per-iteration-simulation
layers as the engine, so a one-request workload reproduces the engine's
``run_request`` timeline *exactly* — the backward-compatibility contract the
tests pin down to 1e-9.

Modelling note: rounds time-multiplex the GPU at decoder-iteration
granularity (the paper's systems are optimised for per-request batch size 1,
so per-kernel batching across requests is not modelled; what continuous
batching buys here is pipelining of arrivals, shared expert migrations and
honest queueing behaviour under load).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..moe.configs import ModelConfig, get_config
from ..obs.probes import ServingProbes
from ..obs.spans import (CAT_DECODE as SPAN_DECODE, CAT_FETCH as SPAN_FETCH,
                         CAT_PREFILL as SPAN_PREFILL, CAT_STAGE as SPAN_STAGE,
                         PassFetch, SpanLog)
from ..system.cache import ExpertCache
from ..system.hardware import PAPER_SYSTEM, LinkSpec, SystemSpec
from ..system.memory import OutOfMemoryError
from ..system.performance import GpuLatencyModel
from ..system.timeline import (_COMPUTE_CODE, STREAMS, ArrayTimeline,
                               ExecutionTimeline, OpBatch, Stream,
                               TIMELINE_ENGINES, make_timeline)
from ..workloads.arrivals import LoadSpec, TimedRequest, generate_timed_requests
from ..workloads.generator import WorkloadSpec
from ..workloads.traces import RequestTrace
from .engine import EngineConfig, _ENGINES
from .metrics import LoadTestResult, ServedRequestResult
from .placement import ModelPlacement
from .prefetch import CrossRequestPrefetcher
from .simulator import (CAT_EXPERT_TRANSFER, CAT_STAGE_IN, EmittedPass,
                        IterationSimulator, SharedExpertRound)


@dataclass
class _InFlightRequest:
    """Lifecycle state of one admitted request."""

    timed: TimedRequest
    prefilled: bool = False
    next_decode: int = 0
    first_scheduled_time: Optional[float] = None
    token_times: List[float] = field(default_factory=list)
    #: Op ids the request's next pass must wait for (a trailing all-to-all
    #: combine on expert-parallel replicas; always empty single-GPU).
    pending_deps: List[int] = field(default_factory=list)
    #: Memo of per-step structural signatures used by round replay.
    step_sigs: Dict[int, Tuple] = field(default_factory=dict)

    @property
    def trace(self) -> RequestTrace:
        return self.timed.trace

    @property
    def done(self) -> bool:
        return self.prefilled and self.next_decode >= len(self.trace.decode_activations)


@dataclass
class _RoundRecord:
    """Everything round replay needs about one executed decode round.

    Captured by the batched round path when the round is replay-eligible
    (decode-only, no carried cross-pass deps, no cache/stage state).  The
    :class:`~repro.system.timeline.OpBatch` is kept by reference — its
    columns are the round's structural template.
    """

    base_id: int
    num_ops: int
    req_ids: Tuple[int, ...]
    batch: OpBatch
    starts: np.ndarray
    ends: np.ndarray
    #: Per-state (first op, last op) batch indices of the request's pass.
    first_index: Tuple[int, ...]
    last_index: Tuple[int, ...]
    lane_free_before: Dict[Tuple[Stream, int], float]
    #: :meth:`ExecutionTimeline.replay_snapshot` taken after the commit.
    snapshot: Dict[str, object]
    #: :meth:`ModelPlacement.replay_counters` taken after the round.
    counters: Tuple[int, ...]
    peak_gpu_bytes: int
    #: :meth:`ModelPlacement.replay_residency_state` taken after the round
    #: (``()`` for placements with no residency-style maps).
    residency_state: tuple = ()


def _quad_coeffs(v0: float, v1: float, v2: float) -> Tuple[float, float, float]:
    """Quadratic-extrapolation coefficients from three trailing samples.

    ``v0, v1, v2`` are the values at rounds ``j0-2, j0-1, j0``.  The value
    ``m`` rounds past ``j0`` is ``v2 + m*delta + T(m)*curv`` with
    ``T(m) = m(m+1)/2`` — exact whenever the underlying sequence is a
    quadratic in the round index, which is what affine per-round durations
    produce (attention time grows linearly with KV length; everything else
    is constant).
    """
    delta = v2 - v1
    curv = delta - (v1 - v0)
    return v2, delta, curv


def _quad_eval(coeffs: Tuple[float, float, float], m: np.ndarray) -> np.ndarray:
    v2, delta, curv = coeffs
    return v2 + m * delta + (m * (m + 1) / 2.0) * curv


class _RoundReplay:
    """Steady-state decode-round fast-forward controller.

    Watches the batched round path for runs of **structurally identical**
    decode rounds (same requests, same op columns: streams, devices,
    categories, bytes, dependency pattern).  Op *durations* are allowed to
    drift affinely with the round index — that is exactly what growing KV
    lengths do to the attention ops — which makes every op time, lane clock
    and accumulated aggregate an exact quadratic in the round index.

    After :data:`HISTORY` consecutive identical rounds it plans a window:

    * **completion bound** — never replay past any request's last decode;
    * **signature scan** — upcoming rounds must keep the template's
      structure (expert-collision pattern and shard ownership, anonymised
      over expert ids);
    * **duration model check** — per-round durations must be affine across
      the window *and* the roofline model must still be on the same branch
      at the landing round (binary-searched if not);
    * **counter check** — placement/tier counters must tick by exactly the
      same integer delta each round;
    * **crossing horizon** — for every op, the winning term of its
      ``max(lane free, dep ready, earliest)`` (and of the exposed-stall
      submax) must keep winning for the whole window; each loser's margin
      is itself a quadratic, so the first future violation is found in
      closed form;
    * **arrival bound** — never replay past the point where the compute
      lanes catch up with the next pending arrival while a batch slot is
      open.

    A planned window of ``n`` rounds is applied in closed form:
    :meth:`~repro.system.timeline.ExecutionTimeline.fast_forward` jumps the
    lane clocks and aggregates, the placement counters bump by ``n`` deltas,
    and each request's token clock is extended with its extrapolated
    per-round completion times.  Exact scheduling resumes on the next round.
    """

    #: Consecutive identical rounds required before planning (4 gives three
    #: per-round deltas — enough to pin a quadratic accumulation exactly).
    HISTORY = 4
    #: Smallest window worth the planning cost.
    MIN_ROUNDS = 3
    #: Hard cap per window (keeps constraint matrices small; a new window
    #: starts immediately after, so long steady states still replay fully).
    MAX_ROUNDS = 512
    #: Rounds to wait after a failed plan before trying again.
    COOLDOWN = 2

    def __init__(self, scheduler: "ContinuousBatchingScheduler") -> None:
        self.scheduler = scheduler
        self.placement = scheduler.placement
        self.simulator = scheduler.simulator
        self.history: deque = deque(maxlen=self.HISTORY)
        self.cooldown = 0
        # Residency-aware signature configuration: with residency/stage maps
        # in play, each expert access's hit/miss outcome shapes the round
        # (resident experts drop out of migration plans; stage hits skip the
        # SSD read op), so the outcome joins the signature.  Retentive maps
        # (capacity > 0) additionally pin *raw* expert ids: their policy
        # state (LRU order, LFU counts) evolves per key, so anonymised
        # collision patterns are not interchangeable across rounds.
        self._has_maps = bool(self.placement._replay_maps)
        self._outcome = self.placement.replay_outcome
        self._raw_keys = self.placement.replay_retentive
        self._epoch = self.placement.replay_epoch
        self._decoder_gblock = self.placement.global_block_index("decoder", 0)
        # Telemetry (copied into the LoadTestResult by serve()).
        self.windows = 0
        self.rounds = 0
        self.ops = 0

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self.history.clear()

    def observe(self, record: _RoundRecord) -> None:
        """Chain a freshly executed eligible round into the history."""
        if self.history and not self._same_shape(self.history[-1], record):
            self.history.clear()
        self.history.append(record)
        if self.cooldown:
            self.cooldown -= 1

    def ready(self) -> bool:
        return len(self.history) == self.HISTORY and self.cooldown == 0

    @staticmethod
    def _same_shape(prev: _RoundRecord, rec: _RoundRecord) -> bool:
        """Structural equality of two rounds (durations excluded)."""
        if (prev.req_ids != rec.req_ids or prev.num_ops != rec.num_ops
                or prev.first_index != rec.first_index
                or prev.last_index != rec.last_index):
            return False
        pb, rb = prev.batch, rec.batch
        if (pb.stream != rb.stream or pb.device != rb.device
                or pb.category != rb.category or pb.num_bytes != rb.num_bytes
                or pb.dep_offsets != rb.dep_offsets):
            return False
        shift = rec.base_id - prev.base_id
        for a, b in zip(pb.dep_ids, rb.dep_ids):
            if b - a != shift:
                return False
        return True

    # ------------------------------------------------------------------
    # Round structure signatures (forward scan)
    # ------------------------------------------------------------------
    #: Cached single-device top-1 signatures: with one expert per block the
    #: ``(block, expert)`` keys are all distinct, so the anonymised pattern
    #: is ``((1, 0), (1, 1), ...)`` whatever the expert ids — the common
    #: decode case, worth skipping the seen-dict walk for.
    _TOP1_SIGS: Dict[int, Tuple] = {}

    @classmethod
    def _top1_signature(cls, num_blocks: int) -> Tuple:
        sig = cls._TOP1_SIGS.get(num_blocks)
        if sig is None:
            sig = cls._TOP1_SIGS[num_blocks] = tuple(
                (1, i) for i in range(num_blocks))
        return sig

    def _step_signature(self, state: _InFlightRequest, step: int) -> Tuple:
        """Canonical structure of one request's decode step, cached.

        Expert ids are anonymised to first-occurrence indices (the dedup
        collision pattern is what shapes the round, not the ids); shard
        ownership is included on multi-GPU replicas because it routes the
        fetch lanes.  With residency/stage maps each access's predicted
        hit/miss outcome is folded in (it decides whether fetch/stage ops
        exist at all), and retentive maps switch the signature to raw
        expert ids — see ``__init__``.  The memo is epoch-guarded: any
        resident-set change invalidates previously computed signatures.
        """
        cache = state.step_sigs
        has_maps = self._has_maps
        epoch = self._epoch() if has_maps else 0
        cached = cache.get(step)
        if cached is not None and cached[0] == epoch:
            return cached[1]
        multi = self.simulator.multi_device
        acts = state.trace.decode_activations[step]
        if not multi and not has_maps and all(len(e) == 1 for e in acts):
            sig = self._top1_signature(len(acts))
            cache[step] = (epoch, sig)
            return sig
        owner = self.placement.owner_device
        outcome = self._outcome
        raw = self._raw_keys
        gblock = self._decoder_gblock
        seen: Dict[Tuple[int, int], int] = {}
        counter = 0
        parts = []
        for block, experts in enumerate(acts):
            entry = [len(experts)]
            for expert in experts:
                expert = int(expert)
                if raw:
                    entry.append(expert)
                else:
                    idx = seen.get((block, expert))
                    if idx is None:
                        seen[(block, expert)] = idx = counter
                        counter += 1
                    entry.append(idx)
                if multi:
                    entry.append(owner(expert))
                if has_maps:
                    entry.append(outcome((gblock + block, expert)))
            parts.append(tuple(entry))
        sig = tuple(parts)
        cache[step] = (epoch, sig)
        return sig

    def _round_signature(self, active: Sequence[_InFlightRequest],
                         offset: int) -> Tuple:
        """Structure signature of the round ``offset`` steps ahead.

        ``offset`` is relative to each state's ``next_decode`` (-1 is the
        round just executed).  Single-request rounds use the cached
        per-step signature; multi-request rounds additionally canonicalise
        the *cross*-request collision pattern.
        """
        if len(active) == 1:
            state = active[0]
            return self._step_signature(state, state.next_decode + offset)
        multi = self.simulator.multi_device
        owner = self.placement.owner_device
        has_maps = self._has_maps
        outcome = self._outcome
        raw = self._raw_keys
        gblock = self._decoder_gblock
        seen: Dict[Tuple[int, int], int] = {}
        counter = 0
        parts = []
        for state in active:
            acts = state.trace.decode_activations[state.next_decode + offset]
            for block, experts in enumerate(acts):
                entry = [len(experts)]
                for expert in experts:
                    expert = int(expert)
                    if raw:
                        entry.append(expert)
                    else:
                        idx = seen.get((block, expert))
                        if idx is None:
                            seen[(block, expert)] = idx = counter
                            counter += 1
                        entry.append(idx)
                    if multi:
                        entry.append(owner(expert))
                    if has_maps:
                        entry.append(outcome((gblock + block, expert)))
                parts.append(tuple(entry))
        return tuple(parts)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def try_apply(self, timeline: ArrayTimeline,
                  active: List[_InFlightRequest],
                  pending: deque) -> bool:
        """Plan and apply a replay window; returns whether rounds were skipped."""
        records = list(self.history)
        last = records[-1]
        if tuple(s.timed.request_id for s in active) != last.req_ids:
            self.history.clear()
            return False
        # ---- completion bound ----------------------------------------
        n = min(self.MAX_ROUNDS,
                min(len(s.trace.decode_activations) - s.next_decode
                    for s in active))
        if n < 1:
            return False
        # ---- forward structure scan ----------------------------------
        template = self._round_signature(active, -1)
        n_sig = 0
        while n_sig < n and self._round_signature(active, n_sig) == template:
            n_sig += 1
        n = n_sig
        if n < self.MIN_ROUNDS:
            self.cooldown = self.COOLDOWN
            return False
        # ---- per-round durations affine across the window ------------
        d = [np.asarray(r.batch.duration) for r in records]
        diff = d[3] - d[2]
        if (not np.allclose(d[1] - d[0], diff, rtol=0.0, atol=1e-15)
                or not np.allclose(d[2] - d[1], diff, rtol=0.0, atol=1e-15)):
            self.cooldown = self.COOLDOWN
            return False
        # ---- integer counters tick identically -----------------------
        deltas = [tuple(b - a for a, b in zip(r1.counters, r2.counters))
                  for r1, r2 in zip(records, records[1:])]
        if deltas[0] != deltas[1] or deltas[1] != deltas[2]:
            self.cooldown = self.COOLDOWN
            return False
        if len({r.peak_gpu_bytes for r in records}) != 1:
            self.cooldown = self.COOLDOWN
            return False
        # ---- residency maps exactly replayable over the window -------
        residency_deltas: tuple = ()
        if self._has_maps:
            residency_deltas = self.placement.replay_residency_window(
                [r.residency_state for r in records])
            if residency_deltas is None:
                self.cooldown = self.COOLDOWN
                return False
        # ---- duration model still on the recorded roofline branch ----
        n = self._duration_model_bound(active, records, diff, n)
        if n < 1:
            self.cooldown = self.COOLDOWN
            return False
        # ---- crossing horizon (argmax stability) ---------------------
        n = self._crossing_bound(records, n)
        if n < 1:
            self.cooldown = self.COOLDOWN
            return False
        # ---- arrival bound -------------------------------------------
        if pending and len(active) < self.scheduler.max_batch_size:
            n = self._arrival_bound(records, pending[0].arrival_time, n)
            if n < 1:
                self.cooldown = self.COOLDOWN
                return False
        self._apply(timeline, active, records, n, residency_deltas)
        return True

    def _duration_model_bound(self, active, records, diff, n: int) -> int:
        """Largest window on which the affine duration model stays exact.

        The only round-varying durations in a steady decode round are the
        non-MoE attention ops (KV length grows by one per round).  The
        roofline model is piecewise affine in KV length — extrapolation is
        exact until the max(compute, memory) branch flips.  Verify the
        landing round against the real model; binary-search the boundary if
        it moved.
        """
        last = records[-1]

        def model_ok(m: int) -> bool:
            for state, first in zip(active, last.first_index):
                predicted = last.batch.duration[first] + m * diff[first]
                actual = self.simulator._nonmoe_duration(
                    "decoder", 1, state.next_decode + m,
                    state.trace.input_length)
                if abs(actual - predicted) > 1e-15 + 1e-12 * abs(actual):
                    return False
            return True

        if model_ok(n):
            return n
        lo, hi = 0, n
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if model_ok(mid):
                lo = mid
            else:
                hi = mid - 1
        return lo

    def _crossing_bound(self, records: List[_RoundRecord], n: int) -> int:
        """Largest window on which every op's schedule argmax is stable.

        Each op starts at ``max(lane free, dep ready, earliest)`` and its
        exposed-stall floor is ``max(lane free, compute-dep ready,
        earliest)``.  With affine durations every candidate term is an
        exact quadratic in the round index, so each loser's margin
        ``D(m) = start - candidate`` is too; the window must stop before
        any margin crosses zero.  Built from the last three recorded
        rounds; requires the recorded winner to have been the same term in
        all three (otherwise an argmax already flipped inside the window).
        """
        r1, r2, r3 = records[-3], records[-2], records[-1]
        batch = r3.batch
        num = r3.num_ops
        streams = batch.stream
        devices = batch.device
        offsets = batch.dep_offsets
        dep_ids = batch.dep_ids
        base = r3.base_id
        starts = (r1.starts, r2.starts, r3.starts)
        ends = (r1.ends, r2.ends, r3.ends)
        lfb = (r1.lane_free_before, r2.lane_free_before, r3.lane_free_before)

        # Candidate rows: (op index, 3 candidate samples, is_compute_cand).
        row_op: List[int] = []
        row_samples: List[Tuple[float, float, float]] = []
        row_is_compute: List[bool] = []
        lane_prev: Dict[Tuple[int, int], int] = {}
        for i in range(num):
            lane = (streams[i], devices[i])
            prev = lane_prev.get(lane)
            if prev is None:
                key = (STREAMS[streams[i]], devices[i])
                samples = tuple(f.get(key, 0.0) for f in lfb)
            else:
                samples = tuple(e[prev] for e in ends)
            row_op.append(i)
            row_samples.append(samples)
            row_is_compute.append(True)  # the lane term floors the stall too
            lane_prev[lane] = i
            for k in range(offsets[i], offsets[i + 1]):
                j = dep_ids[k] - base
                row_op.append(i)
                row_samples.append(tuple(e[j] for e in ends))
                row_is_compute.append(streams[j] == _COMPUTE_CODE)
        op_idx = np.asarray(row_op, dtype=np.int64)
        cand = np.asarray(row_samples, dtype=np.float64)
        is_comp = np.asarray(row_is_compute, dtype=bool)
        start_samples = np.stack([s[op_idx] for s in starts], axis=1)

        # The start max: margins of every candidate against the actual start.
        margin = start_samples - cand
        # Winner stability: some candidate must explain the start exactly in
        # all three rounds (the kernel computes start as that very max, so
        # the winner's margin is exactly 0.0).
        winner_rows = np.all(margin == 0.0, axis=1)
        explained = np.zeros(num, dtype=bool)
        explained[op_idx[winner_rows]] = True
        # Ops whose start is the constant zero floor (earliest_start == 0
        # for every replay-eligible op) are stable by definition.
        explained[np.all(np.stack(starts, axis=1) == 0.0, axis=1)] = True
        if not explained.all():
            return 0

        # The exposed-stall floor max over compute-side candidates only.
        is_compute_op = np.asarray(
            [s == _COMPUTE_CODE for s in streams], dtype=bool)
        comp_rows = is_comp & is_compute_op[op_idx]
        ready = np.full((num, 3), -np.inf)
        np.maximum.at(ready, op_idx[comp_rows], cand[comp_rows])
        ready[~is_compute_op] = 0.0
        ready = np.maximum(ready, 0.0)  # the earliest_start (= 0) floor
        ready_margin = ready[op_idx[comp_rows]] - cand[comp_rows]
        r_winner = np.all(ready_margin == 0.0, axis=1)
        r_explained = np.zeros(num, dtype=bool)
        r_explained[op_idx[comp_rows][r_winner]] = True
        r_explained[np.all(ready == 0.0, axis=1)] = True
        if not r_explained[is_compute_op].all():
            return 0

        rows = np.concatenate([margin, ready_margin])
        # Quadratic margin extrapolation: D(m) = D0 + m*delta + T(m)*curv.
        d0 = rows[:, 2]
        delta = rows[:, 2] - rows[:, 1]
        curv = delta - (rows[:, 1] - rows[:, 0])
        # Constant non-negative margins can never cross; drop them.
        live = ~((delta == 0.0) & (curv == 0.0))
        d0, delta, curv = d0[live], delta[live], curv[live]
        if d0.size == 0:
            return n
        m = np.arange(1, n + 1, dtype=np.float64)
        margins = (d0[:, None] + np.outer(delta, m)
                   + np.outer(curv, m * (m + 1) / 2.0))
        bad = (margins < 0.0).any(axis=0)
        if bad.any():
            return int(np.argmax(bad))
        return n

    def _arrival_bound(self, records: List[_RoundRecord], arrival: float,
                       n: int) -> int:
        """Stop before the compute lanes catch up with the next arrival."""
        r1, r2, r3 = records[-3], records[-2], records[-1]
        lanes = [key for key in r3.snapshot["lane_free"]
                 if key[0] is Stream.COMPUTE]
        m = np.arange(1, n + 1, dtype=np.float64)
        now = np.full(n, -np.inf)
        for key in lanes:
            coeffs = _quad_coeffs(r1.snapshot["lane_free"].get(key, 0.0),
                                  r2.snapshot["lane_free"].get(key, 0.0),
                                  r3.snapshot["lane_free"][key])
            now = np.maximum(now, _quad_eval(coeffs, m))
        admits = now >= arrival
        if admits.any():
            # Replaying up to (and including) the first admitting round is
            # exact: admission happens at the next loop turn, as it would
            # have step-by-step.
            return int(np.argmax(admits)) + 1
        return n

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def _apply(self, timeline: ArrayTimeline,
               active: List[_InFlightRequest],
               records: List[_RoundRecord], n: int,
               residency_deltas: tuple = ()) -> None:
        r0, r1, r2, r3 = records
        m = np.arange(1, n + 1, dtype=np.float64)

        # Per-request token clocks: the pass-completion time is an exact
        # quadratic in the round index.
        for idx, state in enumerate(active):
            last = r3.last_index[idx]
            coeffs = _quad_coeffs(float(r1.ends[last]), float(r2.ends[last]),
                                  float(r3.ends[last]))
            state.token_times.extend(_quad_eval(coeffs, m).tolist())
            state.next_decode += n

        # Lane clocks (values — quadratic) and accumulated aggregates
        # (per-round deltas quadratic: three snapshot deltas pin them).
        snaps = [r.snapshot for r in records]
        lane_free: Dict[Tuple[Stream, int], float] = {}
        makespan = float(snaps[-1]["makespan"])
        for key in snaps[-1]["lane_free"]:
            coeffs = _quad_coeffs(
                float(snaps[1]["lane_free"].get(key, 0.0)),
                float(snaps[2]["lane_free"].get(key, 0.0)),
                float(snaps[3]["lane_free"][key]))
            value = float(_quad_eval(coeffs, np.float64(n)))
            lane_free[key] = value
            if value > makespan:
                makespan = value

        def accumulate(field_name: str) -> Dict:
            latest = snaps[3][field_name]
            out = {}
            for key, current in latest.items():
                samples = [s[field_name].get(key, 0.0) for s in snaps]
                d1, d2, d3 = (samples[1] - samples[0], samples[2] - samples[1],
                              samples[3] - samples[2])
                delta = d3 - d2
                curv = delta - (d2 - d1)
                total = (n * d3 + (n * (n + 1) / 2.0) * delta
                         + (n * (n + 1) * (n + 2) / 6.0) * curv)
                out[key] = current + total
            return out

        def accumulate_exact(field_name: str, cast) -> Dict:
            latest = snaps[3][field_name]
            out = {}
            for key, current in latest.items():
                samples = [s[field_name].get(key, cast(0)) for s in snaps]
                d3 = samples[3] - samples[2]
                # Structural identity makes these per-round deltas constant;
                # replay was vetoed earlier if any counter drifted.
                out[key] = current + cast(n) * d3
            return out

        counter_delta = tuple(b - a for a, b in
                              zip(r2.counters, r3.counters))
        timeline.fast_forward(
            num_ops=n * r3.num_ops, makespan=makespan, lane_free=lane_free,
            lane_busy=accumulate("lane_busy"),
            lane_exposed=accumulate("lane_exposed"),
            category_count=accumulate_exact("category_count", int),
            category_duration=accumulate("category_duration"),
            category_bytes=accumulate_exact("category_bytes", float))
        self.placement.replay_fast_forward(n, counter_delta,
                                           residency_deltas)
        self.windows += 1
        self.rounds += n
        self.ops += n * r3.num_ops
        self.history.clear()


class ContinuousBatchingScheduler:
    """Iteration-level scheduler for one single-GPU replica.

    Parameters
    ----------
    design:
        One of the four system designs (``gpu_only`` … ``pregated``).
    config:
        Model configuration (object or registry name).
    max_batch_size:
        Maximum number of requests in flight at once; also the client count
        when serving closed-loop (all-zero arrival times).
    cache_policy / cache_capacity:
        Enable shared expert caching: a refcounted
        :class:`~repro.system.residency.ExpertResidency` map holding up to
        ``cache_capacity`` unpinned experts in GPU HBM under the given
        replacement policy (``lifo`` / ``lru`` / ``lfu``).  ``cache_capacity=0``
        runs the residency machinery but retains nothing — byte- and
        time-identical to the uncached scheduler (the parity tests pin it).
        Ignored for the ``gpu_only`` design, which never migrates experts.
    cache:
        A legacy :class:`~repro.system.cache.ExpertCache` may be passed
        instead of the knobs; its policy name and capacity are adopted into
        a shared residency map (the per-request cache object itself cannot
        track cross-request pinning, so only its configuration is used).
    stage_policy / stage_capacity:
        Enable the host-DRAM staging cache for SSD offload (``SSD_SYSTEM``):
        a second :class:`~repro.system.residency.ExpertResidency` holding up
        to ``stage_capacity`` experts in DRAM so repeat SSD fetches skip the
        SSD read and only cross PCIe.  ``stage_capacity=0`` keeps the
        machinery but retains nothing — time-identical to the unstaged SSD
        path (the tier parity contract).  Rejected on DRAM-offload systems.
    num_gpus / interconnect:
        Expert-parallel replica shape: ``num_gpus`` scales the system to
        that many identical devices over ``interconnect`` (NVLink 3 by
        default).  Left ``None``, the system's own topology applies;
        ``num_gpus=1`` is the legacy single-GPU replica.
    shard_policy / expert_weights:
        Expert→device assignment (``contiguous`` / ``round_robin`` /
        ``load_balanced``) and the expected per-expert gate load the
        load-balanced policy spreads; see
        :class:`~repro.serving.placement.ShardAssignment`.
    record_trace:
        ``False`` (default) serves on a bounded-memory timeline: each
        round's ops are retired once no in-flight request can reference
        them, so resident op count stays O(active window) and 100k-request
        loads fit in RAM.  ``True`` keeps the full op trace (Figure 9
        rendering / ``to_records`` export).  Every reported load metric is
        identical in both modes — the parity tests pin them to 1e-9.
    timeline_engine:
        ``"array"`` (default) runs rounds through the batched columnar
        timeline kernel (:class:`~repro.system.timeline.ArrayTimeline`):
        each round's ops are emitted as one
        :class:`~repro.system.timeline.OpBatch` and scheduled with
        vectorised aggregate folds.  ``"scalar"`` keeps the op-at-a-time
        reference path.  Both produce bit-identical schedules — the parity
        tests pin every metric across engines.
    round_replay:
        With the array engine in no-trace mode on cache-free, stage-free
        placements, detect steady-state decode rounds and fast-forward them
        in closed form (see :class:`_RoundReplay`).  Exact by construction:
        replay only applies when the extrapolation provably matches what
        step-by-step execution would produce.  Ignored (never fires) with
        the scalar engine, trace recording, caches, staging or span
        logging.
    probe_interval:
        Enable the sampled probe layer: every ``probe_interval`` simulated
        seconds (measured at round boundaries — see
        :class:`~repro.obs.probes.ServingProbes` for the cadence
        semantics), gauges for queue depth, active batch size, HBM usage,
        resident/staged expert bytes, per-device utilisation, replay
        engagement and timeline op count are sampled into a
        :class:`~repro.obs.probes.MetricsRegistry` surfaced as
        ``result.probes``.  ``None`` (default) disables all probe work.
    span_log:
        Record a per-request span tree (queue → prefill → decode
        iterations → expert fetches with source-tier and stage hit/miss
        attribution) on ``result.spans``.  Assembled from each round's
        committed op columns, so it works in no-trace mode; requires the
        array timeline engine and stands down round replay.
    """

    def __init__(self, design: str, config: "ModelConfig | str",
                 system: SystemSpec = PAPER_SYSTEM,
                 latency_model: Optional[GpuLatencyModel] = None,
                 cache: Optional[ExpertCache] = None,
                 engine_config: Optional[EngineConfig] = None,
                 max_batch_size: int = 8,
                 cache_policy: Optional[str] = None,
                 cache_capacity: Optional[int] = None,
                 stage_policy: Optional[str] = None,
                 stage_capacity: Optional[int] = None,
                 num_gpus: Optional[int] = None,
                 shard_policy: str = "contiguous",
                 expert_weights: Optional[Sequence[float]] = None,
                 interconnect: Optional[LinkSpec] = None,
                 record_trace: bool = False,
                 timeline_engine: str = "array",
                 round_replay: bool = True,
                 probe_interval: Optional[float] = None,
                 span_log: bool = False) -> None:
        if design not in _ENGINES:
            raise ValueError(f"unknown design {design!r}; known: {sorted(_ENGINES)}")
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if timeline_engine not in TIMELINE_ENGINES:
            raise ValueError(
                f"unknown timeline_engine {timeline_engine!r}; "
                f"known: {sorted(TIMELINE_ENGINES)}")
        if probe_interval is not None and probe_interval <= 0:
            raise ValueError(
                f"probe_interval must be > 0 (or None), got {probe_interval}")
        if span_log and timeline_engine != "array":
            raise ValueError(
                "span_log needs the array timeline engine: spans are "
                "assembled from each round's committed op columns, which "
                "the scalar path never materialises")
        if cache is not None:
            if cache_policy is not None or cache_capacity is not None:
                raise ValueError(
                    "pass either a legacy ExpertCache or cache_policy/"
                    "cache_capacity, not both")
            cache_policy = cache.policy.name
            cache_capacity = cache.capacity
        if num_gpus is not None or interconnect is not None:
            system = system.with_num_gpus(
                num_gpus if num_gpus is not None else system.num_gpus,
                interconnect=interconnect)
        self.design = design
        self.config = get_config(config) if isinstance(config, str) else config
        self.system = system
        self.latency = latency_model or GpuLatencyModel(system.gpu)
        self.engine_config = engine_config or EngineConfig()
        self.max_batch_size = max_batch_size
        self.record_trace = record_trace
        self.timeline_engine = timeline_engine
        self.round_replay = round_replay
        self.probe_interval = probe_interval
        self.span_log = span_log
        self.placement = ModelPlacement(
            self.config, system, offload_experts=design != "gpu_only",
            cache_policy=cache_policy, cache_capacity=cache_capacity,
            stage_policy=stage_policy, stage_capacity=stage_capacity,
            shard_policy=shard_policy, expert_weights=expert_weights,
            runtime_workspace_bytes=self.engine_config.runtime_workspace_bytes,
            allow_oversubscription=self.engine_config.allow_oversubscription)
        self.residency = self.placement.residency
        self.prefetcher = (CrossRequestPrefetcher(self.residency)
                           if self.residency is not None else None)
        self.simulator = IterationSimulator(
            self.config, system, self.latency, design, self.placement,
            activation_level=self.engine_config.activation_level)
        #: Timeline of the most recent :meth:`serve` call (rendering /
        #: aggregate inspection; a full op trace only with ``record_trace``).
        self.last_timeline: Optional[ExecutionTimeline] = None
        #: Replay controller of the most recent :meth:`serve` call (None
        #: when the configuration makes replay ineligible).
        self.last_replay: Optional[_RoundReplay] = None

    def __getstate__(self):
        # When a ReplicaCluster ships schedulers to process-pool workers,
        # a previous serve's timeline (potentially a full op trace) is dead
        # weight the worker never reads — drop it from the pickle, along
        # with the replay controller's round history.
        state = dict(self.__dict__)
        state["last_timeline"] = None
        state["last_replay"] = None
        return state

    # ------------------------------------------------------------------
    def serve(self, requests: Sequence[Union[TimedRequest, RequestTrace]],
              offered_load: Optional[float] = None,
              replica: int = 0) -> LoadTestResult:
        """Serve timestamped requests to completion; returns load metrics.

        Plain :class:`RequestTrace` inputs are wrapped with arrival time 0
        (closed-loop style).  An un-loadable model (GPU-only over HBM) is
        reported via ``result.oom`` instead of raising, like
        :meth:`ServingEngine.run_workload`.
        """
        timed = [req if isinstance(req, TimedRequest)
                 else TimedRequest(request_id=i, arrival_time=0.0, trace=req)
                 for i, req in enumerate(requests)]
        for req in timed:
            if req.arrival_time < 0:
                raise ValueError(
                    f"request {req.request_id} has negative arrival_time "
                    f"{req.arrival_time}; arrivals are absolute timestamps >= 0")
        result = LoadTestResult(design=self.design, config_name=self.config.name,
                                offered_load=offered_load,
                                num_gpus=self.placement.num_devices)
        stats_before = (self.residency.stats.snapshot()
                        if self.residency is not None else None)
        transfers_before = self.placement.transfers.snapshot()
        alltoall_before = self.placement.alltoall_bytes
        fetch_bytes_before = list(self.placement.device_fetch_bytes)
        try:
            self.placement.load_model()
        except OutOfMemoryError as exc:
            result.oom = True
            result.oom_reason = str(exc)
            return result

        timeline = make_timeline(self.timeline_engine,
                                 record_trace=self.record_trace)
        self.last_timeline = timeline
        batched = isinstance(timeline, ArrayTimeline)
        # Round replay needs the batched kernel's column template and no
        # trace/span rows to materialise.  Cached, staged and multi-GPU
        # placements are handled by the signature itself: residency hit/miss
        # outcomes and shard ownership join the round signature, and the
        # controller only fast-forwards windows over which every map's
        # resident set is a fixed point and its policy state advances by an
        # identical replayable delta each round.
        replay: Optional[_RoundReplay] = None
        if (batched and self.round_replay and not self.record_trace
                and not self.span_log):
            replay = _RoundReplay(self)
        self.last_replay = replay
        probes = (ServingProbes(self.probe_interval)
                  if self.probe_interval is not None else None)
        spans = SpanLog() if self.span_log else None
        logged_spans: List = []
        if spans is not None:
            # Install the fetch-attribution hook; drained once per round by
            # the batched path, uninstalled when serving ends.
            self.placement.route_log = []
        pending = deque(sorted(timed, key=lambda r: (r.arrival_time, r.request_id)))
        active: List[_InFlightRequest] = []

        try:
            while pending or active:
                now = timeline.stream_free_time(Stream.COMPUTE)
                if not active and pending:
                    # Idle replica: jump to the next arrival so every request of
                    # a simultaneous burst is admitted into the same round (the
                    # ops themselves are gated on arrival via earliest_start).
                    now = max(now, pending[0].arrival_time)
                while (pending and len(active) < self.max_batch_size
                       and pending[0].arrival_time <= now):
                    admitted = _InFlightRequest(timed=pending.popleft())
                    active.append(admitted)
                    if spans is not None:
                        spans.admit(admitted.timed.request_id,
                                    admitted.timed.arrival_time)

                ops_before = timeline.num_ops if probes is not None else 0
                replayed = (replay is not None and replay.ready()
                            and replay.try_apply(timeline, active, pending))
                if not replayed:
                    if batched:
                        self._run_round_batched(timeline, active, replay, spans)
                    else:
                        self._run_round(timeline, active)
                    if probes is not None:
                        probes.observe_round(timeline.num_ops - ops_before)
                # One-pass rebuild of the in-flight list; removing finished
                # states with list.remove() was O(batch²) per round.
                still_active: List[_InFlightRequest] = []
                for state in active:
                    if state.done:
                        result.requests.append(self._finalise(state, replica))
                        if spans is not None:
                            logged_spans.append(spans.finalise(
                                state.timed.request_id,
                                state.token_times[-1] if state.token_times
                                else (state.first_scheduled_time or 0.0)))
                    else:
                        still_active.append(state)
                active = still_active
                # After a round, the only op ids a future op can name are the
                # in-flight requests' carried cross-pass dependencies (trailing
                # all-to-all combines); everything else is retired so resident
                # op count stays O(active window) in no-trace mode.
                timeline.retire_completed(
                    keep=[dep for state in active for dep in state.pending_deps])
                if probes is not None and probes.due(timeline.makespan):
                    self._sample_probes(probes, timeline, timeline.makespan,
                                        len(pending), len(active), replay)
        finally:
            if spans is not None:
                self.placement.route_log = None

        if probes is not None:
            # Forced final sample: every gauge's last value matches the
            # end-of-run aggregates (the probe-consistency contract).
            if probes.last_sample != timeline.makespan:
                self._sample_probes(probes, timeline, timeline.makespan,
                                    0, 0, replay)
            result.probes = probes.registry
        if spans is not None:
            result.spans = logged_spans
        result.makespan = timeline.makespan
        result.peak_gpu_bytes = self.placement.peak_gpu_bytes
        result.expert_bytes_transferred = (
            timeline.category_count("expert_transfer")
            * self.config.expert_bytes())
        result.timeline_total_ops = timeline.num_ops
        result.timeline_peak_live_ops = timeline.peak_live_ops
        if self.residency is not None:
            result.cache_stats = self.residency.stats.since(stats_before)
        if self.placement.offload_experts:
            result.tier_stats = self.placement.transfers.since(transfers_before)
        result.alltoall_bytes = self.placement.alltoall_bytes - alltoall_before
        result.device_utilisation = [
            timeline.device_utilisation(d)
            for d in range(self.placement.num_devices)]
        result.shard_imbalance = self.placement.fetch_imbalance(
            since=fetch_bytes_before)
        if replay is not None:
            result.replay_windows = replay.windows
            result.replay_rounds = replay.rounds
            result.replay_ops = replay.ops
        result.requests.sort(key=lambda r: r.request_id)
        return result

    # ------------------------------------------------------------------
    def _run_round(self, timeline: ExecutionTimeline,
                   active: Sequence[_InFlightRequest]) -> None:
        """Advance every in-flight request by one unit, sharing transfers."""
        batch_round = (self.prefetcher.begin_round()
                       if self.prefetcher is not None else SharedExpertRound())
        # Register every member's planned transfers first so an expert stays
        # resident until its last user in the round has executed; the plans
        # are reused for the simulation itself below.  With a cache, the
        # registration also pins every already-resident expert the plans
        # rely on, so no mid-round eviction can invalidate a plan.
        plans = []
        for state in active:
            part, activations = self._next_unit(state)
            plan = self.simulator.make_plan(part, activations)
            batch_round.register_plan(self.placement, part, plan, activations)
            plans.append(plan)
        try:
            for state, plan in zip(active, plans):
                self._advance(timeline, state, batch_round, plan)
        finally:
            batch_round.drain(self.placement)

    def _run_round_batched(self, timeline: ArrayTimeline,
                           active: Sequence[_InFlightRequest],
                           replay: Optional[_RoundReplay],
                           spans: Optional[SpanLog] = None) -> None:
        """Advance every in-flight request by one unit as one op batch.

        The columnar twin of :meth:`_run_round`: the same plans, the same
        transfer sharing, the same op stream — but emitted into one
        :class:`~repro.system.timeline.OpBatch` and scheduled by the array
        kernel's single commit.  Replay-eligible rounds (pure decode, no
        carried cross-pass deps) are recorded for :class:`_RoundReplay`.
        """
        batch_round = (self.prefetcher.begin_round()
                       if self.prefetcher is not None else SharedExpertRound())
        plans = []
        for state in active:
            part, activations = self._next_unit(state)
            plan = self.simulator.make_plan(part, activations)
            batch_round.register_plan(self.placement, part, plan, activations)
            plans.append(plan)
        # A replay-eligible round is pure decode with no carried deps: every
        # dependency is then intra-batch, no op is arrival-gated, and the
        # round's op columns are a function of the activations alone.
        eligible = (replay is not None
                    and all(s.prefilled and not s.pending_deps
                            for s in active))
        if eligible:
            # Lane clocks as the round found them (the commit advances
            # them); nothing between commits moves a lane.
            lane_free_before = dict(timeline._lane_free)
        batch = timeline.begin_batch()
        passes: List[EmittedPass] = []
        was_decode: List[bool] = []
        route_log = self.placement.route_log
        # Per-pass (op_lo, op_hi, route_lo, route_hi) slices of the batch
        # and the fetch-attribution log, recorded only when span logging.
        pass_bounds: List[Tuple[int, int, int, int]] = []
        try:
            for state, plan in zip(active, plans):
                label = f"r{state.timed.request_id}."
                start_at = (state.timed.arrival_time
                            if state.first_scheduled_time is None else 0.0)
                if spans is not None:
                    ops_lo = len(batch.stream)
                    routes_lo = len(route_log) if route_log is not None else 0
                if not state.prefilled:
                    em = self.simulator.emit_encoder_pass(
                        batch, state.trace.encoder_activations,
                        state.trace.input_length, start_at=start_at,
                        batch_round=batch_round, label=label, plan=plan,
                        extra_deps=state.pending_deps)
                    state.prefilled = True
                    was_decode.append(False)
                else:
                    step = state.next_decode
                    em = self.simulator.emit_decoder_iteration(
                        batch, state.trace.decode_activations[step],
                        query_tokens=1, self_kv_tokens=step + 1,
                        cross_kv_tokens=state.trace.input_length,
                        iteration=step, start_at=start_at,
                        batch_round=batch_round, label=label, plan=plan,
                        extra_deps=state.pending_deps)
                    state.next_decode += 1
                    was_decode.append(True)
                passes.append(em)
                if spans is not None:
                    pass_bounds.append((
                        ops_lo, len(batch.stream), routes_lo,
                        len(route_log) if route_log is not None else 0))
        finally:
            batch_round.drain(self.placement)
        starts, ends = timeline.commit_batch(batch)
        for state, em, decoded in zip(active, passes, was_decode):
            if decoded:
                state.token_times.append(float(ends[em.last_index]))
            state.pending_deps = list(em.carry_deps)
            if state.first_scheduled_time is None:
                state.first_scheduled_time = float(starts[em.first_index])
        if spans is not None:
            for state, em, decoded, bounds in zip(active, passes, was_decode,
                                                  pass_bounds):
                # next_decode was already advanced above for decode passes.
                iteration = state.next_decode - 1 if decoded else 0
                spans.record_pass(
                    state.timed.request_id,
                    SPAN_DECODE if decoded else SPAN_PREFILL, iteration,
                    float(starts[em.first_index]), float(ends[em.last_index]),
                    self._pass_fetches(batch, starts, ends, bounds, route_log))
            if route_log is not None:
                del route_log[:]
        if replay is None:
            return
        if not eligible or (batch.dep_ids
                            and min(batch.dep_ids) < batch.base_id):
            replay.reset()
            return
        replay.observe(_RoundRecord(
            base_id=batch.base_id, num_ops=len(batch.stream),
            req_ids=tuple(s.timed.request_id for s in active),
            batch=batch, starts=starts, ends=ends,
            first_index=tuple(em.first_index for em in passes),
            last_index=tuple(em.last_index for em in passes),
            lane_free_before=lane_free_before,
            snapshot=timeline.replay_snapshot(),
            counters=self.placement.replay_counters(),
            peak_gpu_bytes=self.placement.peak_gpu_bytes,
            residency_state=self.placement.replay_residency_state()))

    def _pass_fetches(self, batch: OpBatch, starts: np.ndarray,
                      ends: np.ndarray, bounds: Tuple[int, int, int, int],
                      route_log) -> List[PassFetch]:
        """Attribute one pass's expert-fetch ops to their routing decisions.

        ``route_fetch`` calls align 1:1 with ``CAT_EXPERT_TRANSFER`` copy ops
        in emission order, and a ``CAT_STAGE_IN`` op (when present) directly
        precedes its copy op — so the stage op peeks the route at the cursor
        without consuming it.
        """
        lo, hi, rlo, rhi = bounds
        routes = route_log[rlo:rhi] if route_log is not None else []
        categories = batch.category
        devices = batch.device
        num_bytes = batch.num_bytes
        fetches: List[PassFetch] = []
        cursor = 0
        for i in range(lo, hi):
            cat = categories[i]
            if cat == CAT_EXPERT_TRANSFER:
                tier, hit = (routes[cursor] if cursor < len(routes)
                             else ("unknown", False))
                cursor += 1
                kind = SPAN_FETCH
            elif cat == CAT_STAGE_IN:
                tier, hit = (routes[cursor] if cursor < len(routes)
                             else ("unknown", False))
                kind = SPAN_STAGE
            else:
                continue
            fetches.append(PassFetch(
                kind=kind, start=float(starts[i]), end=float(ends[i]),
                device=int(devices[i]), num_bytes=float(num_bytes[i]),
                source_tier=tier, stage_hit=hit))
        return fetches

    def _sample_probes(self, probes: ServingProbes,
                       timeline: Union[ExecutionTimeline, ArrayTimeline],
                       now: float, queue_depth: int, active_requests: int,
                       replay: Optional[_RoundReplay]) -> None:
        """Record one sample of every serving gauge at sim-time ``now``."""
        reg = probes.registry
        placement = self.placement
        reg.gauge("queue_depth", mode="max").sample(now, float(queue_depth))
        reg.gauge("active_requests").sample(now, float(active_requests))
        reg.gauge("hbm_used_bytes").sample(
            now, float(sum(s.pool.in_use for s in placement.shards)))
        reg.gauge("resident_expert_bytes").sample(
            now, float(sum(s.pool.category_usage("experts")
                           for s in placement.shards)))
        staged = sum(s.stage.resident_bytes for s in placement.shards
                     if s.stage is not None)
        reg.gauge("staged_expert_bytes").sample(now, float(staged))
        for d in range(placement.num_devices):
            reg.gauge(f"device{d}_utilisation", mode="mean").sample(
                now, timeline.device_utilisation(d))
        reg.gauge("replay_rounds").sample(
            now, float(replay.rounds if replay is not None else 0))
        reg.gauge("timeline_ops").sample(now, float(timeline.num_ops))
        probes.mark_sampled(now)

    def _next_unit(self, state: _InFlightRequest):
        if not state.prefilled:
            return "encoder", state.trace.encoder_activations
        return "decoder", state.trace.decode_activations[state.next_decode]

    def _advance(self, timeline: ExecutionTimeline, state: _InFlightRequest,
                 batch_round: SharedExpertRound, plan) -> None:
        label = f"r{state.timed.request_id}."
        start_at = state.timed.arrival_time if state.first_scheduled_time is None else 0.0
        if not state.prefilled:
            outcome = self.simulator.encoder_pass(
                timeline, state.trace.encoder_activations, state.trace.input_length,
                start_at=start_at, batch_round=batch_round, label=label, plan=plan,
                extra_deps=state.pending_deps)
            state.prefilled = True
        else:
            step = state.next_decode
            outcome = self.simulator.decoder_iteration(
                timeline, state.trace.decode_activations[step],
                query_tokens=1, self_kv_tokens=step + 1,
                cross_kv_tokens=state.trace.input_length, iteration=step,
                start_at=start_at, batch_round=batch_round, label=label, plan=plan,
                extra_deps=state.pending_deps)
            state.next_decode += 1
            state.token_times.append(outcome.end)
        state.pending_deps = list(outcome.carry_deps)
        if state.first_scheduled_time is None:
            state.first_scheduled_time = outcome.first_start

    def _finalise(self, state: _InFlightRequest, replica: int) -> ServedRequestResult:
        trace = state.trace
        return ServedRequestResult(
            request_id=state.timed.request_id, design=self.design,
            config_name=self.config.name,
            input_length=trace.input_length, output_length=trace.output_length,
            arrival_time=state.timed.arrival_time,
            first_scheduled_time=state.first_scheduled_time or 0.0,
            first_token_time=state.token_times[0] if state.token_times else 0.0,
            completion_time=state.token_times[-1] if state.token_times else 0.0,
            token_times=list(state.token_times), replica=replica)


def serve_load(design: str, config: "ModelConfig | str", load: LoadSpec,
               workload: Optional[WorkloadSpec] = None,
               system: SystemSpec = PAPER_SYSTEM,
               engine_config: Optional[EngineConfig] = None,
               max_batch_size: int = 8,
               cache_policy: Optional[str] = None,
               cache_capacity: Optional[int] = None,
               stage_policy: Optional[str] = None,
               stage_capacity: Optional[int] = None,
               num_gpus: Optional[int] = None,
               shard_policy: str = "contiguous",
               expert_weights: Optional[Sequence[float]] = None,
               interconnect: Optional[LinkSpec] = None,
               record_trace: bool = False,
               timeline_engine: str = "array",
               round_replay: bool = True,
               probe_interval: Optional[float] = None,
               span_log: bool = False) -> LoadTestResult:
    """Materialise a :class:`LoadSpec` and serve it on one replica.

    The one-call load-test entry point: open-loop specs timestamp requests
    with their arrival process and record the offered load; closed-loop
    specs use ``load.concurrency`` as the in-flight cap (each admission
    slot plays the role of one client issuing requests back-to-back).
    ``cache_policy``/``cache_capacity`` enable shared expert caching without
    constructing the residency map by hand; ``stage_policy``/
    ``stage_capacity`` enable the host-DRAM staging cache when serving an
    SSD-offload system (``SSD_SYSTEM``); ``num_gpus``/``shard_policy``
    shard the expert pool across an expert-parallel multi-GPU replica.
    """
    requests = generate_timed_requests(config, load, workload=workload)
    if load.mode == "closed":
        max_batch_size = load.concurrency
    scheduler = ContinuousBatchingScheduler(design, config, system=system,
                                            engine_config=engine_config,
                                            max_batch_size=max_batch_size,
                                            cache_policy=cache_policy,
                                            cache_capacity=cache_capacity,
                                            stage_policy=stage_policy,
                                            stage_capacity=stage_capacity,
                                            num_gpus=num_gpus,
                                            shard_policy=shard_policy,
                                            expert_weights=expert_weights,
                                            interconnect=interconnect,
                                            record_trace=record_trace,
                                            timeline_engine=timeline_engine,
                                            round_replay=round_replay,
                                            probe_interval=probe_interval,
                                            span_log=span_log)
    offered = load.request_rate if load.mode == "open" else None
    return scheduler.serve(requests, offered_load=offered)


def make_scheduler(design: str, config: "ModelConfig | str",
                   system: SystemSpec = PAPER_SYSTEM,
                   engine_config: Optional[EngineConfig] = None,
                   max_batch_size: int = 8,
                   cache_policy: Optional[str] = None,
                   cache_capacity: Optional[int] = None,
                   stage_policy: Optional[str] = None,
                   stage_capacity: Optional[int] = None,
                   num_gpus: Optional[int] = None,
                   shard_policy: str = "contiguous",
                   expert_weights: Optional[Sequence[float]] = None,
                   interconnect: Optional[LinkSpec] = None,
                   record_trace: bool = False,
                   timeline_engine: str = "array",
                   round_replay: bool = True,
                   probe_interval: Optional[float] = None,
                   span_log: bool = False) -> ContinuousBatchingScheduler:
    """Factory mirroring :func:`repro.serving.engine.make_engine`."""
    return ContinuousBatchingScheduler(design, config, system=system,
                                       engine_config=engine_config,
                                       max_batch_size=max_batch_size,
                                       cache_policy=cache_policy,
                                       cache_capacity=cache_capacity,
                                       stage_policy=stage_policy,
                                       stage_capacity=stage_capacity,
                                       num_gpus=num_gpus,
                                       shard_policy=shard_policy,
                                       expert_weights=expert_weights,
                                       interconnect=interconnect,
                                       record_trace=record_trace,
                                       timeline_engine=timeline_engine,
                                       round_replay=round_replay,
                                       probe_interval=probe_interval,
                                       span_log=span_log)
