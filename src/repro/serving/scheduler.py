"""Continuous-batching request scheduler (request-lifecycle layer under load).

Where :class:`~repro.serving.engine.ServingEngine` serves one request
end-to-end on a private timeline, the scheduler serves a *stream* of
timestamped requests on one shared
:class:`~repro.system.timeline.ExecutionTimeline`, iteration-interleaved in
the style of Orca's continuous batching:

* requests are admitted as they arrive, up to ``max_batch_size`` in flight;
* each scheduling **round** advances every in-flight request by one unit —
  its encoder (prefill) pass the first time, one decoder iteration after —
  so a newly arrived request starts decoding without waiting for older
  requests to finish;
* within a round, expert transfers are deduplicated across requests via
  :class:`~repro.serving.simulator.SharedExpertRound`: concurrent requests
  that activate the same expert of the same block share a single CPU→GPU
  migration;
* with a cache enabled (``cache_policy``/``cache_capacity``), rounds run on
  the shared refcounted :class:`~repro.system.residency.ExpertResidency`
  map through a :class:`~repro.serving.prefetch.CrossRequestPrefetcher`:
  hot experts stay resident *across* rounds and requests (LIFO/LRU/LFU
  replacement of unpinned entries), so repeat activations skip the CPU→GPU
  link entirely.

The scheduler is built from the same placement + per-iteration-simulation
layers as the engine, so a one-request workload reproduces the engine's
``run_request`` timeline *exactly* — the backward-compatibility contract the
tests pin down to 1e-9.

Modelling note: rounds time-multiplex the GPU at decoder-iteration
granularity (the paper's systems are optimised for per-request batch size 1,
so per-kernel batching across requests is not modelled; what continuous
batching buys here is pipelining of arrivals, shared expert migrations and
honest queueing behaviour under load).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from ..moe.configs import ModelConfig, get_config
from ..system.cache import ExpertCache
from ..system.hardware import PAPER_SYSTEM, LinkSpec, SystemSpec
from ..system.memory import OutOfMemoryError
from ..system.performance import GpuLatencyModel
from ..system.timeline import ExecutionTimeline, Stream
from ..workloads.arrivals import LoadSpec, TimedRequest, generate_timed_requests
from ..workloads.generator import WorkloadSpec
from ..workloads.traces import RequestTrace
from .engine import EngineConfig, _ENGINES
from .metrics import LoadTestResult, ServedRequestResult
from .placement import ModelPlacement
from .prefetch import CrossRequestPrefetcher
from .simulator import IterationSimulator, SharedExpertRound


@dataclass
class _InFlightRequest:
    """Lifecycle state of one admitted request."""

    timed: TimedRequest
    prefilled: bool = False
    next_decode: int = 0
    first_scheduled_time: Optional[float] = None
    token_times: List[float] = field(default_factory=list)
    #: Op ids the request's next pass must wait for (a trailing all-to-all
    #: combine on expert-parallel replicas; always empty single-GPU).
    pending_deps: List[int] = field(default_factory=list)

    @property
    def trace(self) -> RequestTrace:
        return self.timed.trace

    @property
    def done(self) -> bool:
        return self.prefilled and self.next_decode >= len(self.trace.decode_activations)


class ContinuousBatchingScheduler:
    """Iteration-level scheduler for one single-GPU replica.

    Parameters
    ----------
    design:
        One of the four system designs (``gpu_only`` … ``pregated``).
    config:
        Model configuration (object or registry name).
    max_batch_size:
        Maximum number of requests in flight at once; also the client count
        when serving closed-loop (all-zero arrival times).
    cache_policy / cache_capacity:
        Enable shared expert caching: a refcounted
        :class:`~repro.system.residency.ExpertResidency` map holding up to
        ``cache_capacity`` unpinned experts in GPU HBM under the given
        replacement policy (``lifo`` / ``lru`` / ``lfu``).  ``cache_capacity=0``
        runs the residency machinery but retains nothing — byte- and
        time-identical to the uncached scheduler (the parity tests pin it).
        Ignored for the ``gpu_only`` design, which never migrates experts.
    cache:
        A legacy :class:`~repro.system.cache.ExpertCache` may be passed
        instead of the knobs; its policy name and capacity are adopted into
        a shared residency map (the per-request cache object itself cannot
        track cross-request pinning, so only its configuration is used).
    stage_policy / stage_capacity:
        Enable the host-DRAM staging cache for SSD offload (``SSD_SYSTEM``):
        a second :class:`~repro.system.residency.ExpertResidency` holding up
        to ``stage_capacity`` experts in DRAM so repeat SSD fetches skip the
        SSD read and only cross PCIe.  ``stage_capacity=0`` keeps the
        machinery but retains nothing — time-identical to the unstaged SSD
        path (the tier parity contract).  Rejected on DRAM-offload systems.
    num_gpus / interconnect:
        Expert-parallel replica shape: ``num_gpus`` scales the system to
        that many identical devices over ``interconnect`` (NVLink 3 by
        default).  Left ``None``, the system's own topology applies;
        ``num_gpus=1`` is the legacy single-GPU replica.
    shard_policy / expert_weights:
        Expert→device assignment (``contiguous`` / ``round_robin`` /
        ``load_balanced``) and the expected per-expert gate load the
        load-balanced policy spreads; see
        :class:`~repro.serving.placement.ShardAssignment`.
    record_trace:
        ``False`` (default) serves on a bounded-memory timeline: each
        round's ops are retired once no in-flight request can reference
        them, so resident op count stays O(active window) and 100k-request
        loads fit in RAM.  ``True`` keeps the full op trace (Figure 9
        rendering / ``to_records`` export).  Every reported load metric is
        identical in both modes — the parity tests pin them to 1e-9.
    """

    def __init__(self, design: str, config: "ModelConfig | str",
                 system: SystemSpec = PAPER_SYSTEM,
                 latency_model: Optional[GpuLatencyModel] = None,
                 cache: Optional[ExpertCache] = None,
                 engine_config: Optional[EngineConfig] = None,
                 max_batch_size: int = 8,
                 cache_policy: Optional[str] = None,
                 cache_capacity: Optional[int] = None,
                 stage_policy: Optional[str] = None,
                 stage_capacity: Optional[int] = None,
                 num_gpus: Optional[int] = None,
                 shard_policy: str = "contiguous",
                 expert_weights: Optional[Sequence[float]] = None,
                 interconnect: Optional[LinkSpec] = None,
                 record_trace: bool = False) -> None:
        if design not in _ENGINES:
            raise ValueError(f"unknown design {design!r}; known: {sorted(_ENGINES)}")
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if cache is not None:
            if cache_policy is not None or cache_capacity is not None:
                raise ValueError(
                    "pass either a legacy ExpertCache or cache_policy/"
                    "cache_capacity, not both")
            cache_policy = cache.policy.name
            cache_capacity = cache.capacity
        if num_gpus is not None or interconnect is not None:
            system = system.with_num_gpus(
                num_gpus if num_gpus is not None else system.num_gpus,
                interconnect=interconnect)
        self.design = design
        self.config = get_config(config) if isinstance(config, str) else config
        self.system = system
        self.latency = latency_model or GpuLatencyModel(system.gpu)
        self.engine_config = engine_config or EngineConfig()
        self.max_batch_size = max_batch_size
        self.record_trace = record_trace
        self.placement = ModelPlacement(
            self.config, system, offload_experts=design != "gpu_only",
            cache_policy=cache_policy, cache_capacity=cache_capacity,
            stage_policy=stage_policy, stage_capacity=stage_capacity,
            shard_policy=shard_policy, expert_weights=expert_weights,
            runtime_workspace_bytes=self.engine_config.runtime_workspace_bytes,
            allow_oversubscription=self.engine_config.allow_oversubscription)
        self.residency = self.placement.residency
        self.prefetcher = (CrossRequestPrefetcher(self.residency)
                           if self.residency is not None else None)
        self.simulator = IterationSimulator(
            self.config, system, self.latency, design, self.placement,
            activation_level=self.engine_config.activation_level)
        #: Timeline of the most recent :meth:`serve` call (rendering /
        #: aggregate inspection; a full op trace only with ``record_trace``).
        self.last_timeline: Optional[ExecutionTimeline] = None

    def __getstate__(self):
        # When a ReplicaCluster ships schedulers to process-pool workers,
        # a previous serve's timeline (potentially a full op trace) is dead
        # weight the worker never reads — drop it from the pickle.
        state = dict(self.__dict__)
        state["last_timeline"] = None
        return state

    # ------------------------------------------------------------------
    def serve(self, requests: Sequence[Union[TimedRequest, RequestTrace]],
              offered_load: Optional[float] = None,
              replica: int = 0) -> LoadTestResult:
        """Serve timestamped requests to completion; returns load metrics.

        Plain :class:`RequestTrace` inputs are wrapped with arrival time 0
        (closed-loop style).  An un-loadable model (GPU-only over HBM) is
        reported via ``result.oom`` instead of raising, like
        :meth:`ServingEngine.run_workload`.
        """
        timed = [req if isinstance(req, TimedRequest)
                 else TimedRequest(request_id=i, arrival_time=0.0, trace=req)
                 for i, req in enumerate(requests)]
        for req in timed:
            if req.arrival_time < 0:
                raise ValueError(
                    f"request {req.request_id} has negative arrival_time "
                    f"{req.arrival_time}; arrivals are absolute timestamps >= 0")
        result = LoadTestResult(design=self.design, config_name=self.config.name,
                                offered_load=offered_load,
                                num_gpus=self.placement.num_devices)
        stats_before = (self.residency.stats.snapshot()
                        if self.residency is not None else None)
        transfers_before = self.placement.transfers.snapshot()
        alltoall_before = self.placement.alltoall_bytes
        fetch_bytes_before = list(self.placement.device_fetch_bytes)
        try:
            self.placement.load_model()
        except OutOfMemoryError as exc:
            result.oom = True
            result.oom_reason = str(exc)
            return result

        timeline = ExecutionTimeline(record_trace=self.record_trace)
        self.last_timeline = timeline
        pending = deque(sorted(timed, key=lambda r: (r.arrival_time, r.request_id)))
        active: List[_InFlightRequest] = []

        while pending or active:
            now = timeline.stream_free_time(Stream.COMPUTE)
            if not active and pending:
                # Idle replica: jump to the next arrival so every request of
                # a simultaneous burst is admitted into the same round (the
                # ops themselves are gated on arrival via earliest_start).
                now = max(now, pending[0].arrival_time)
            while (pending and len(active) < self.max_batch_size
                   and pending[0].arrival_time <= now):
                active.append(_InFlightRequest(timed=pending.popleft()))

            self._run_round(timeline, active)
            # One-pass rebuild of the in-flight list; removing finished
            # states with list.remove() was O(batch²) per round.
            still_active: List[_InFlightRequest] = []
            for state in active:
                if state.done:
                    result.requests.append(self._finalise(state, replica))
                else:
                    still_active.append(state)
            active = still_active
            # After a round, the only op ids a future op can name are the
            # in-flight requests' carried cross-pass dependencies (trailing
            # all-to-all combines); everything else is retired so resident
            # op count stays O(active window) in no-trace mode.
            timeline.retire_completed(
                keep=[dep for state in active for dep in state.pending_deps])

        result.makespan = timeline.makespan
        result.peak_gpu_bytes = self.placement.peak_gpu_bytes
        result.expert_bytes_transferred = (
            timeline.category_count("expert_transfer")
            * self.config.expert_bytes())
        result.timeline_total_ops = timeline.num_ops
        result.timeline_peak_live_ops = timeline.peak_live_ops
        if self.residency is not None:
            result.cache_stats = self.residency.stats.since(stats_before)
        if self.placement.offload_experts:
            result.tier_stats = self.placement.transfers.since(transfers_before)
        result.alltoall_bytes = self.placement.alltoall_bytes - alltoall_before
        result.device_utilisation = [
            timeline.device_utilisation(d)
            for d in range(self.placement.num_devices)]
        result.shard_imbalance = self.placement.fetch_imbalance(
            since=fetch_bytes_before)
        result.requests.sort(key=lambda r: r.request_id)
        return result

    # ------------------------------------------------------------------
    def _run_round(self, timeline: ExecutionTimeline,
                   active: Sequence[_InFlightRequest]) -> None:
        """Advance every in-flight request by one unit, sharing transfers."""
        batch_round = (self.prefetcher.begin_round()
                       if self.prefetcher is not None else SharedExpertRound())
        # Register every member's planned transfers first so an expert stays
        # resident until its last user in the round has executed; the plans
        # are reused for the simulation itself below.  With a cache, the
        # registration also pins every already-resident expert the plans
        # rely on, so no mid-round eviction can invalidate a plan.
        plans = []
        for state in active:
            part, activations = self._next_unit(state)
            plan = self.simulator.make_plan(part, activations)
            batch_round.register_plan(self.placement, part, plan, activations)
            plans.append(plan)
        try:
            for state, plan in zip(active, plans):
                self._advance(timeline, state, batch_round, plan)
        finally:
            batch_round.drain(self.placement)

    def _next_unit(self, state: _InFlightRequest):
        if not state.prefilled:
            return "encoder", state.trace.encoder_activations
        return "decoder", state.trace.decode_activations[state.next_decode]

    def _advance(self, timeline: ExecutionTimeline, state: _InFlightRequest,
                 batch_round: SharedExpertRound, plan) -> None:
        label = f"r{state.timed.request_id}."
        start_at = state.timed.arrival_time if state.first_scheduled_time is None else 0.0
        if not state.prefilled:
            outcome = self.simulator.encoder_pass(
                timeline, state.trace.encoder_activations, state.trace.input_length,
                start_at=start_at, batch_round=batch_round, label=label, plan=plan,
                extra_deps=state.pending_deps)
            state.prefilled = True
        else:
            step = state.next_decode
            outcome = self.simulator.decoder_iteration(
                timeline, state.trace.decode_activations[step],
                query_tokens=1, self_kv_tokens=step + 1,
                cross_kv_tokens=state.trace.input_length, iteration=step,
                start_at=start_at, batch_round=batch_round, label=label, plan=plan,
                extra_deps=state.pending_deps)
            state.next_decode += 1
            state.token_times.append(outcome.end)
        state.pending_deps = list(outcome.carry_deps)
        if state.first_scheduled_time is None:
            state.first_scheduled_time = outcome.first_start

    def _finalise(self, state: _InFlightRequest, replica: int) -> ServedRequestResult:
        trace = state.trace
        return ServedRequestResult(
            request_id=state.timed.request_id, design=self.design,
            config_name=self.config.name,
            input_length=trace.input_length, output_length=trace.output_length,
            arrival_time=state.timed.arrival_time,
            first_scheduled_time=state.first_scheduled_time or 0.0,
            first_token_time=state.token_times[0] if state.token_times else 0.0,
            completion_time=state.token_times[-1] if state.token_times else 0.0,
            token_times=list(state.token_times), replica=replica)


def serve_load(design: str, config: "ModelConfig | str", load: LoadSpec,
               workload: Optional[WorkloadSpec] = None,
               system: SystemSpec = PAPER_SYSTEM,
               engine_config: Optional[EngineConfig] = None,
               max_batch_size: int = 8,
               cache_policy: Optional[str] = None,
               cache_capacity: Optional[int] = None,
               stage_policy: Optional[str] = None,
               stage_capacity: Optional[int] = None,
               num_gpus: Optional[int] = None,
               shard_policy: str = "contiguous",
               expert_weights: Optional[Sequence[float]] = None,
               interconnect: Optional[LinkSpec] = None,
               record_trace: bool = False) -> LoadTestResult:
    """Materialise a :class:`LoadSpec` and serve it on one replica.

    The one-call load-test entry point: open-loop specs timestamp requests
    with their arrival process and record the offered load; closed-loop
    specs use ``load.concurrency`` as the in-flight cap (each admission
    slot plays the role of one client issuing requests back-to-back).
    ``cache_policy``/``cache_capacity`` enable shared expert caching without
    constructing the residency map by hand; ``stage_policy``/
    ``stage_capacity`` enable the host-DRAM staging cache when serving an
    SSD-offload system (``SSD_SYSTEM``); ``num_gpus``/``shard_policy``
    shard the expert pool across an expert-parallel multi-GPU replica.
    """
    requests = generate_timed_requests(config, load, workload=workload)
    if load.mode == "closed":
        max_batch_size = load.concurrency
    scheduler = ContinuousBatchingScheduler(design, config, system=system,
                                            engine_config=engine_config,
                                            max_batch_size=max_batch_size,
                                            cache_policy=cache_policy,
                                            cache_capacity=cache_capacity,
                                            stage_policy=stage_policy,
                                            stage_capacity=stage_capacity,
                                            num_gpus=num_gpus,
                                            shard_policy=shard_policy,
                                            expert_weights=expert_weights,
                                            interconnect=interconnect,
                                            record_trace=record_trace)
    offered = load.request_rate if load.mode == "open" else None
    return scheduler.serve(requests, offered_load=offered)


def make_scheduler(design: str, config: "ModelConfig | str",
                   system: SystemSpec = PAPER_SYSTEM,
                   engine_config: Optional[EngineConfig] = None,
                   max_batch_size: int = 8,
                   cache_policy: Optional[str] = None,
                   cache_capacity: Optional[int] = None,
                   stage_policy: Optional[str] = None,
                   stage_capacity: Optional[int] = None,
                   num_gpus: Optional[int] = None,
                   shard_policy: str = "contiguous",
                   expert_weights: Optional[Sequence[float]] = None,
                   interconnect: Optional[LinkSpec] = None,
                   record_trace: bool = False) -> ContinuousBatchingScheduler:
    """Factory mirroring :func:`repro.serving.engine.make_engine`."""
    return ContinuousBatchingScheduler(design, config, system=system,
                                       engine_config=engine_config,
                                       max_batch_size=max_batch_size,
                                       cache_policy=cache_policy,
                                       cache_capacity=cache_capacity,
                                       stage_policy=stage_policy,
                                       stage_capacity=stage_capacity,
                                       num_gpus=num_gpus,
                                       shard_policy=shard_policy,
                                       expert_weights=expert_weights,
                                       interconnect=interconnect,
                                       record_trace=record_trace)
