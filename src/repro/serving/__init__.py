"""Serving engines for the four MoE inference system designs."""

from .engine import (
    DESIGN_LABELS,
    EngineConfig,
    GPUOnlyEngine,
    OnDemandEngine,
    PreGatedEngine,
    PrefetchAllEngine,
    ServingEngine,
    compare_designs,
    make_engine,
)
from .metrics import (
    BlockLatencyRecord,
    IterationResult,
    RequestResult,
    WorkloadResult,
    normalise,
)

__all__ = [
    "DESIGN_LABELS",
    "EngineConfig",
    "GPUOnlyEngine",
    "OnDemandEngine",
    "PreGatedEngine",
    "PrefetchAllEngine",
    "ServingEngine",
    "compare_designs",
    "make_engine",
    "BlockLatencyRecord",
    "IterationResult",
    "RequestResult",
    "WorkloadResult",
    "normalise",
]
