"""Serving layer: engines, continuous-batching scheduler and replica cluster.

Three-layer architecture:

* :mod:`~repro.serving.placement` — model-placement (parameter storage and
  GPU expert-slot accounting);
* :mod:`~repro.serving.simulator` — per-iteration simulation of one stack
  pass on a shared execution timeline;
* request lifecycle — :mod:`~repro.serving.engine` for one-request-at-a-time
  serving of the four designs, :mod:`~repro.serving.scheduler` for
  continuous batching under an arrival process, and
  :mod:`~repro.serving.cluster` for multi-replica routing.
"""

from .cluster import ClusterResult, ReplicaCluster, ROUTING_POLICIES
from .engine import (
    DESIGN_LABELS,
    EngineConfig,
    GPUOnlyEngine,
    OnDemandEngine,
    PreGatedEngine,
    PrefetchAllEngine,
    ServingEngine,
    compare_designs,
    make_engine,
)
from .metrics import (
    BlockLatencyRecord,
    IterationResult,
    LatencyStats,
    LoadTestResult,
    RequestResult,
    ServedRequestResult,
    WorkloadResult,
    merge_load_results,
    normalise,
    percentile,
)
from .placement import (
    SHARD_POLICIES,
    DeviceShard,
    ModelPlacement,
    ShardAssignment,
    ShardedPlacement,
    ShardedResidency,
)
from .prefetch import CrossRequestPrefetcher, PrefetchRound
from .scheduler import ContinuousBatchingScheduler, make_scheduler, serve_load
from .simulator import IterationSimulator, SharedExpertRound

__all__ = [
    "DESIGN_LABELS",
    "EngineConfig",
    "GPUOnlyEngine",
    "OnDemandEngine",
    "PreGatedEngine",
    "PrefetchAllEngine",
    "ServingEngine",
    "compare_designs",
    "make_engine",
    "ModelPlacement",
    "ShardedPlacement",
    "ShardAssignment",
    "ShardedResidency",
    "DeviceShard",
    "SHARD_POLICIES",
    "IterationSimulator",
    "SharedExpertRound",
    "CrossRequestPrefetcher",
    "PrefetchRound",
    "ContinuousBatchingScheduler",
    "make_scheduler",
    "serve_load",
    "ReplicaCluster",
    "ClusterResult",
    "ROUTING_POLICIES",
    "BlockLatencyRecord",
    "IterationResult",
    "RequestResult",
    "WorkloadResult",
    "LatencyStats",
    "LoadTestResult",
    "ServedRequestResult",
    "merge_load_results",
    "normalise",
    "percentile",
]
