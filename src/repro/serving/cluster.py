"""Multi-replica serving: a request router over N single-GPU replicas.

The paper's system is a single GPU; production traffic from millions of
users is served by fleets of identical replicas behind a router.  This
module simulates that layer: each replica is one
:class:`~repro.serving.scheduler.ContinuousBatchingScheduler` (its own
placement, memory pools and timeline), and the cluster assigns each arriving
request to a replica with one of two policies:

* ``round_robin`` — rotate through replicas in request-id order;
* ``least_loaded`` — assign to the replica with the smallest estimated
  backlog at the request's arrival time, where backlog is tracked as a
  virtual finish time fed by a per-request work estimate (input + output
  tokens × an estimated per-token service time).  This is the router-side
  approximation a real load balancer makes from queue-depth telemetry; it
  has no access to the replicas' actual simulated timelines.

Replicas run concurrently, so cluster throughput divides total generated
tokens by the slowest replica's makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..moe.configs import ModelConfig, get_config
from ..system.hardware import PAPER_SYSTEM, SystemSpec
from ..workloads.arrivals import TimedRequest
from .engine import EngineConfig
from .metrics import LoadTestResult, merge_load_results
from .scheduler import ContinuousBatchingScheduler

ROUTING_POLICIES = ("round_robin", "least_loaded")


@dataclass
class ClusterResult:
    """Per-replica load results plus the cluster-level aggregate."""

    design: str
    config_name: str
    policy: str
    num_replicas: int
    replica_results: List[LoadTestResult] = field(default_factory=list)

    def combined(self) -> LoadTestResult:
        """Cluster-level metrics: pooled requests, slowest-replica makespan."""
        return merge_load_results(self.replica_results, num_replicas=self.num_replicas)

    def summary(self) -> dict:
        summary = self.combined().summary()
        summary["policy"] = self.policy
        return summary


class ReplicaCluster:
    """N identical single-GPU replicas behind a request router."""

    def __init__(self, design: str, config: "ModelConfig | str",
                 num_replicas: int = 2, policy: str = "round_robin",
                 system: SystemSpec = PAPER_SYSTEM,
                 engine_config: Optional[EngineConfig] = None,
                 max_batch_size: int = 8) -> None:
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        if policy not in ROUTING_POLICIES:
            raise ValueError(f"unknown policy {policy!r}; known: {ROUTING_POLICIES}")
        self.design = design
        self.config = get_config(config) if isinstance(config, str) else config
        self.policy = policy
        self.num_replicas = num_replicas
        self.system = system
        self.engine_config = engine_config
        self.max_batch_size = max_batch_size
        self.replicas = [
            ContinuousBatchingScheduler(design, self.config, system=system,
                                        engine_config=engine_config,
                                        max_batch_size=max_batch_size)
            for _ in range(num_replicas)
        ]
        # Rough per-token service time for the router's backlog estimate:
        # all decoder layers' non-MoE time plus each MoE block's expert
        # execution (migration stalls are design-dependent and not modelled
        # here — the router only sees relative work, not the timeline).
        latency = self.replicas[0].latency
        per_layer = latency.decoder_layer_nonmoe_time(self.config, 1, 1, 1)
        expert_time = 0.0
        if self.config.is_moe:
            expert_time = (self.config.num_moe_blocks("decoder")
                           * latency.expert_execution_time(self.config, 1,
                                                           self.config.top_k))
        self._est_token_time = (self.config.num_decoder_layers * per_layer
                                + expert_time)

    # ------------------------------------------------------------------
    def route(self, requests: Sequence[TimedRequest]) -> List[List[TimedRequest]]:
        """Assign each request to a replica; returns per-replica request lists."""
        assignments: List[List[TimedRequest]] = [[] for _ in range(self.num_replicas)]
        ordered = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        if self.policy == "round_robin":
            for i, request in enumerate(ordered):
                assignments[i % self.num_replicas].append(request)
            return assignments
        # least_loaded: virtual-finish-time backlog estimate per replica.
        backlog = [0.0] * self.num_replicas
        for request in ordered:
            loads = [max(0.0, b - request.arrival_time) for b in backlog]
            target = loads.index(min(loads))
            work = (request.input_length + request.output_length) * self._est_token_time
            backlog[target] = max(backlog[target], request.arrival_time) + work
            assignments[target].append(request)
        return assignments

    def serve(self, requests: Sequence[TimedRequest],
              offered_load: Optional[float] = None) -> ClusterResult:
        """Route and serve all requests; replicas simulate independently."""
        result = ClusterResult(design=self.design, config_name=self.config.name,
                               policy=self.policy, num_replicas=self.num_replicas)
        for replica_id, assigned in enumerate(self.route(requests)):
            replica_result = self.replicas[replica_id].serve(
                assigned, offered_load=offered_load, replica=replica_id)
            result.replica_results.append(replica_result)
        return result
