"""Multi-replica serving: a request router over N single-GPU replicas.

The paper's system is a single GPU; production traffic from millions of
users is served by fleets of identical replicas behind a router.  This
module simulates that layer: each replica is one
:class:`~repro.serving.scheduler.ContinuousBatchingScheduler` (its own
placement, memory pools and timeline), and the cluster assigns each arriving
request to a replica with one of two policies:

* ``round_robin`` — rotate through replicas in request-id order;
* ``least_loaded`` — assign to the replica with the smallest estimated
  backlog at the request's arrival time, where backlog is tracked as a
  virtual finish time fed by a per-request work estimate (input + output
  tokens × an estimated per-token service time).  This is the router-side
  approximation a real load balancer makes from queue-depth telemetry; it
  has no access to the replicas' actual simulated timelines.
* ``cache_aware`` — when per-replica expert caches are enabled, prefer the
  replica whose cache is most likely to already hold the request's experts:
  the router keeps a bounded per-replica window of recently routed expert
  keys (the affinity estimate a real balancer builds from pre-gate
  telemetry) and scores each replica by overlap with the request's
  activation profile.  Affinity may override the backlog by at most one
  request's worth of estimated work — replicas further behind are excluded
  before scoring — so a hot expert set cannot herd all traffic onto one
  replica.

Replicas run concurrently, so cluster throughput divides total generated
tokens by the slowest replica's makespan.

The replicas' simulations are independent, so :meth:`ReplicaCluster.serve`
can fan them out over a process pool (``max_workers``).  The replica
schedulers and the shared arrival stream travel to the workers as a
*one-time payload* — inherited for free when workers fork, shipped once
per worker through the pool initializer otherwise — and each work item is
just ``(replica_id, request indices, offered_load)``, so no placement or
trace data is re-pickled per replica.  Results are merged in replica-id
order, making the parallel run bit-identical to the serial one.  The
trade-off is that the parent process's scheduler objects are not mutated
in parallel mode — cache warmth and memory-pool peaks accumulated
*inside* a parallel ``serve`` stay in the workers — so serve sequentially
when chaining load tests that must share replica state.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from ..moe.configs import ModelConfig, get_config
from ..sweeps import fork_start_method, ordered_pool_map
from ..system.hardware import PAPER_SYSTEM, LinkSpec, SystemSpec
from ..workloads.arrivals import TimedRequest
from ..workloads.traces import RequestTrace
from .engine import EngineConfig
from .metrics import LoadTestResult, merge_load_results
from .scheduler import ContinuousBatchingScheduler

ROUTING_POLICIES = ("round_robin", "least_loaded", "cache_aware")


#: One-time worker payload: ``(replica schedulers, shared request stream)``.
#: Set in the parent before pool creation (inherited by forked workers) and
#: re-set through the pool initializer where workers are spawned instead.
_WORKER_PAYLOAD: "Optional[Tuple[list, list]]" = None


def _set_worker_payload(payload) -> None:
    """Install the shared serve payload (pool initializer / parent set-up)."""
    global _WORKER_PAYLOAD
    _WORKER_PAYLOAD = payload


def _serve_replica(item) -> "Tuple[int, LoadTestResult]":
    """Serve one replica's assignment (module-level for process-pool pickling).

    The item carries only indices into the shared arrival stream; the
    schedulers and requests come from the one-time payload.
    """
    replica_id, indices, offered_load = item
    replicas, requests = _WORKER_PAYLOAD
    assigned = [requests[i] for i in indices]
    return replica_id, replicas[replica_id].serve(assigned,
                                                  offered_load=offered_load,
                                                  replica=replica_id)

#: Router-side affinity window when no cache capacity is configured.
DEFAULT_AFFINITY_WINDOW = 256


@dataclass
class ClusterResult:
    """Per-replica load results plus the cluster-level aggregate."""

    design: str
    config_name: str
    policy: str
    num_replicas: int
    replica_results: List[LoadTestResult] = field(default_factory=list)

    def combined(self) -> LoadTestResult:
        """Cluster-level metrics: pooled requests, slowest-replica makespan."""
        return merge_load_results(self.replica_results, num_replicas=self.num_replicas)

    def summary(self) -> dict:
        summary = self.combined().summary()
        summary["policy"] = self.policy
        return summary


class ReplicaCluster:
    """N identical single-GPU replicas behind a request router."""

    def __init__(self, design: str, config: "ModelConfig | str",
                 num_replicas: int = 2, policy: str = "round_robin",
                 system: SystemSpec = PAPER_SYSTEM,
                 engine_config: Optional[EngineConfig] = None,
                 max_batch_size: int = 8,
                 cache_policy: Optional[str] = None,
                 cache_capacity: Optional[int] = None,
                 stage_policy: Optional[str] = None,
                 stage_capacity: Optional[int] = None,
                 num_gpus: Optional[int] = None,
                 shard_policy: str = "contiguous",
                 expert_weights: Optional[Sequence[float]] = None,
                 interconnect: Optional[LinkSpec] = None,
                 record_trace: bool = False,
                 timeline_engine: str = "array",
                 round_replay: bool = True,
                 probe_interval: Optional[float] = None,
                 span_log: bool = False,
                 max_workers: Optional[int] = None) -> None:
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1 (or None for serial)")
        if policy not in ROUTING_POLICIES:
            raise ValueError(f"unknown policy {policy!r}; known: {ROUTING_POLICIES}")
        self.design = design
        self.config = get_config(config) if isinstance(config, str) else config
        self.policy = policy
        self.num_replicas = num_replicas
        self.system = system
        self.engine_config = engine_config
        self.max_batch_size = max_batch_size
        self.cache_policy = cache_policy
        self.cache_capacity = cache_capacity
        self.stage_policy = stage_policy
        self.stage_capacity = stage_capacity
        self.num_gpus = num_gpus
        self.shard_policy = shard_policy
        self.record_trace = record_trace
        self.timeline_engine = timeline_engine
        self.round_replay = round_replay
        self.probe_interval = probe_interval
        self.span_log = span_log
        #: Process-pool width for :meth:`serve`; ``None``/1 serves the
        #: replicas sequentially in-process.
        self.max_workers = max_workers
        self.replicas = [
            ContinuousBatchingScheduler(design, self.config, system=system,
                                        engine_config=engine_config,
                                        max_batch_size=max_batch_size,
                                        cache_policy=cache_policy,
                                        cache_capacity=cache_capacity,
                                        stage_policy=stage_policy,
                                        stage_capacity=stage_capacity,
                                        num_gpus=num_gpus,
                                        shard_policy=shard_policy,
                                        expert_weights=expert_weights,
                                        interconnect=interconnect,
                                        record_trace=record_trace,
                                        timeline_engine=timeline_engine,
                                        round_replay=round_replay,
                                        probe_interval=probe_interval,
                                        span_log=span_log)
            for _ in range(num_replicas)
        ]
        self._affinity_window = (cache_capacity if cache_capacity
                                 else DEFAULT_AFFINITY_WINDOW)
        # Rough per-token service time for the router's backlog estimate:
        # all decoder layers' non-MoE time plus each MoE block's expert
        # execution (migration stalls are design-dependent and not modelled
        # here — the router only sees relative work, not the timeline).
        latency = self.replicas[0].latency
        per_layer = latency.decoder_layer_nonmoe_time(self.config, 1, 1, 1)
        expert_time = 0.0
        if self.config.is_moe:
            expert_time = (self.config.num_moe_blocks("decoder")
                           * latency.expert_execution_time(self.config, 1,
                                                           self.config.top_k))
        self._est_token_time = (self.config.num_decoder_layers * per_layer
                                + expert_time)

    # ------------------------------------------------------------------
    def request_expert_keys(self, trace: RequestTrace) -> Set[Tuple[int, int]]:
        """Global expert keys a request activates (the router's affinity signal).

        Uses the same ``(global_moe_block, expert_id)`` keying as the
        placement layer.  A real balancer would build this from pre-gate
        telemetry as tokens decode; the simulation reads it off the trace,
        which is the idealised (fully informed) version of that signal.
        """
        keys: Set[Tuple[int, int]] = set()
        num_encoder_blocks = self.config.num_moe_blocks("encoder")
        for block, experts in enumerate(trace.encoder_activations):
            keys.update((block, int(e)) for e in experts)
        for activations in trace.decode_activations:
            for block, experts in enumerate(activations):
                keys.update((num_encoder_blocks + block, int(e)) for e in experts)
        return keys

    def route(self, requests: Sequence[TimedRequest]) -> List[List[TimedRequest]]:
        """Assign each request to a replica; returns per-replica request lists."""
        assignments: List[List[TimedRequest]] = [[] for _ in range(self.num_replicas)]
        ordered = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        if self.policy == "round_robin":
            for i, request in enumerate(ordered):
                assignments[i % self.num_replicas].append(request)
            return assignments
        # least_loaded / cache_aware: virtual-finish-time backlog estimate,
        # optionally biased by router-side cache-affinity tracking.
        backlog = [0.0] * self.num_replicas
        seen: List["OrderedDict[Tuple[int, int], None]"] = [
            OrderedDict() for _ in range(self.num_replicas)]
        for request in ordered:
            loads = [max(0.0, b - request.arrival_time) for b in backlog]
            work = (request.input_length + request.output_length) * self._est_token_time
            if self.policy == "cache_aware":
                keys = self.request_expert_keys(request.trace)
                # Affinity may override backlog by at most one request of work.
                eligible = [i for i in range(self.num_replicas)
                            if loads[i] <= min(loads) + work]
                target = max(eligible,
                             key=lambda i: (sum(1 for k in keys if k in seen[i]),
                                            -loads[i]))
                for key in keys:
                    seen[target][key] = None
                    seen[target].move_to_end(key)
                while len(seen[target]) > self._affinity_window:
                    seen[target].popitem(last=False)
            else:
                target = loads.index(min(loads))
            backlog[target] = max(backlog[target], request.arrival_time) + work
            assignments[target].append(request)
        return assignments

    def serve(self, requests: Sequence[TimedRequest],
              offered_load: Optional[float] = None,
              max_workers: Optional[int] = None) -> ClusterResult:
        """Route and serve all requests; replicas simulate independently.

        ``max_workers`` (defaulting to the constructor's value) > 1 serves
        the replicas on a process pool.  The schedulers and the request
        stream ship to the workers once (fork inheritance, or the pool
        initializer on spawn platforms) and each work item is only
        ``(replica_id, indices, offered_load)``.  Results are merged in
        replica-id order, so parallel and serial runs produce identical
        :class:`ClusterResult`\\ s; in parallel mode each worker operates
        on its own copy of the schedulers, so the parent's replica objects
        keep their pre-serve state (see the module docstring).
        """
        result = ClusterResult(design=self.design, config_name=self.config.name,
                               policy=self.policy, num_replicas=self.num_replicas)
        workers = max_workers if max_workers is not None else self.max_workers
        requests = list(requests)
        index_of = {id(request): i for i, request in enumerate(requests)}
        items = [(replica_id, [index_of[id(r)] for r in assigned], offered_load)
                 for replica_id, assigned in enumerate(self.route(requests))]
        payload = (self.replicas, requests)
        if fork_start_method():
            initializer, initargs = None, ()
        else:
            initializer, initargs = _set_worker_payload, (payload,)
        _set_worker_payload(payload)
        try:
            for _, replica_result in ordered_pool_map(
                    _serve_replica, items, workers,
                    initializer=initializer, initargs=initargs):
                result.replica_results.append(replica_result)
        finally:
            _set_worker_payload(None)
        return result
