"""Shared sweep scaffolding for the serving load studies.

The load studies (Figure 15 under load, Figure 16 under load, the
expert-parallel sweep, the CLI sweeps) all walk a cartesian grid of serving
knobs — design × capacity × offered load × … — and key their results by the
swept values.  :func:`run_grid` is that loop, written once: axes are
declared as keyword arguments (name → values, in key order) and the serve
callable receives one keyword per axis.

Grid cells are independent simulations, so :func:`run_grid` optionally fans
them out over a process pool (``max_workers``): cells are submitted in
declaration order and the result dict is assembled in that same order
regardless of completion order, so a parallel sweep is bit-identical to the
serial one.  The same pattern serves
:meth:`repro.serving.cluster.ReplicaCluster.serve`'s per-replica loop.

This module lives in the installed package (``repro.sweeps``) so the CLI
can use it; ``benchmarks/sweeps.py`` re-exports it for the benchmark files.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from itertools import product
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

import multiprocessing

from .workloads import POISSON_QA_LOAD, LoadSpec


def open_loop(rate: float, base: LoadSpec = POISSON_QA_LOAD) -> LoadSpec:
    """Open-loop Poisson arrivals at ``rate`` requests/second."""
    return base.with_overrides(request_rate=rate)


def _run_cell(item: Tuple[Callable[..., Any], Dict[str, Any]]) -> Any:
    """Execute one grid cell (module-level so the process pool can pickle it)."""
    serve, kwargs = item
    return serve(**kwargs)


def fork_start_method() -> bool:
    """Whether worker processes inherit the parent's memory (``fork``).

    Callers shipping a shared payload to the workers use this to pick the
    transport: under ``fork`` a module-level global set before pool
    creation is inherited for free; elsewhere (``spawn``/``forkserver``)
    the payload must travel through a pool ``initializer`` and is pickled
    once per worker.
    """
    return multiprocessing.get_start_method(allow_none=False) == "fork"


def ordered_pool_map(fn: Callable[[Any], Any], items: Sequence[Any],
                     max_workers: Optional[int],
                     initializer: Optional[Callable[..., None]] = None,
                     initargs: Tuple[Any, ...] = ()) -> list:
    """Map ``fn`` over ``items``, results in item order.

    The one pool/merge policy shared by :func:`run_grid` and
    :meth:`repro.serving.cluster.ReplicaCluster.serve`: with
    ``max_workers`` > 1 and more than one item, the calls run on a process
    pool (``fn`` and the items must be picklable); otherwise they run
    serially in-process.  Either way the result list lines up with the
    input order, so parallel and serial runs are interchangeable.

    ``initializer``/``initargs`` run once per worker process at pool
    start-up — the hook for shipping a shared payload once instead of
    re-pickling it into every item.  They are ignored on the serial path,
    where ``fn`` already sees the caller's process state.
    """
    items = list(items)
    if max_workers is None or max_workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(max_workers, len(items)),
                             initializer=initializer,
                             initargs=initargs) as pool:
        return list(pool.map(fn, items))


def profiled(fn: Callable[..., Any], *args: Any,
             top: int = 25, sort: str = "cumulative",
             **kwargs: Any) -> Any:
    """Run ``fn(*args, **kwargs)`` under :mod:`cProfile`; print the top rows.

    The CLI's ``--profile`` hook: the sweep runs in-process under the
    profiler and the ``top`` highest-``sort`` entries are printed to stdout
    after the sweep's own output would normally appear.  Returns ``fn``'s
    result unchanged, so a profiled sweep still renders its report.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler)
        stats.sort_stats(sort).print_stats(top)
    return result


def run_grid(serve: Callable[..., Any],
             max_workers: Optional[int] = None,
             **axes: Sequence[Any]) -> Dict[Tuple[Any, ...], Any]:
    """Run ``serve(**combo)`` for every combination of the named axes.

    ``axes`` maps axis names to their swept values; combinations are visited
    in row-major order of the declaration.  Returns a dict keyed by the
    tuple of axis values (declaration order) — the shape every load
    benchmark's report/assert loops consume.

    ``max_workers`` > 1 runs the cells on a process pool (each cell is an
    independent simulation); ``serve`` and the axis values must then be
    picklable (a top-level function or :func:`functools.partial` of one).
    Results are merged in declaration order whatever the completion order,
    so the output is identical to the serial run.  An axis cannot be named
    ``max_workers``.
    """
    if not axes:
        raise ValueError("run_grid needs at least one axis")
    names = list(axes)
    combos = list(product(*axes.values()))
    items = [(serve, dict(zip(names, combo))) for combo in combos]
    cells = ordered_pool_map(_run_cell, items, max_workers)
    return dict(zip(combos, cells))
