"""Minimal command-line entry point: run a named benchmark sweep.

``python -m repro <sweep>`` serves a small named load study and prints the
paper-style load report (optionally also writing it as CSV) — the smoke path
CI runs and the quickest way to see the simulator end-to-end without pytest:

* ``expert_parallel`` — design × num_gpus on one replica (the expert-
  parallel sharding study);
* ``serving_load`` — design × offered load on a single-GPU replica;
* ``trace`` — one observability run: a multi-GPU SSD-staged pregated serve
  with span logging and probes on, written as Chrome trace-event JSON
  (``--out``, openable at https://ui.perfetto.dev) with the sampled
  metrics optionally exported via ``--metrics-out``;
* ``simperf`` — the simulator's own performance (simulated requests per
  wall-clock second, peak resident op count) across the serving-engine
  modes (trace / no-trace / kernel / kernel+replay / probed) plus the
  cached / multi-GPU placement rungs; ``--full`` runs the recorded
  1.6k/16k/100k/1M scaling ladder and rewrites ``BENCH_simperf.json``,
  and quick runs fail if any mode's throughput drops below its recorded
  floor or replay fails to engage on a placement rung (the CI perf
  smoke);
* ``tensorperf`` — the real-model tensor engine's performance (forward /
  train-step / generate throughput, eager vs lazy backend) on the model
  shape ladder, with eager↔lazy parity checked and speedups reported
  against the recorded pre-optimisation baseline; ``--full`` adds the
  serving-scale rung and rewrites ``BENCH_tensorperf.json``, and every
  run fails if eager train throughput drops below the recorded floor.

``--quick`` shrinks the request count and grid for CI smoke runs;
``--seed N`` reseeds the sweep's workload and arrival process;
``--workers N`` fans the sweep's grid cells out over a process pool (cells
are independent simulations and the merged report is identical to the
serial one); ``--metrics-out PATH`` exports every cell's sampled probe
series as JSONL (or CSV when PATH ends in ``.csv``); ``--profile`` wraps
the in-process sweep in :mod:`cProfile` and prints the 25
highest-cumulative-time functions.
"""

from __future__ import annotations

import argparse
import sys
from functools import partial
from typing import Dict, List, Optional

from .analysis.report import FigureReport, load_test_report
from .analysis.simperf import SIMPERF_FILENAME, run_simperf, write_simperf
from .analysis.tensorperf import (GENERATE_STANDDOWN_FLOOR,
                                  TENSORPERF_FILENAME, run_tensorperf,
                                  write_tensorperf)
from .moe.configs import get_config
from .obs.probes import append_metrics_rows, write_metrics_rows
from .obs.trace_export import write_chrome_trace
from .serving.scheduler import make_scheduler, serve_load
from .sweeps import profiled, run_grid
from .system.hardware import SSD_SYSTEM
from .workloads.arrivals import POISSON_QA_LOAD, generate_timed_requests
from .workloads.generator import WorkloadSpec

#: Default output path of the ``simperf`` sweep (in the current directory).
SIMPERF_JSON = SIMPERF_FILENAME

#: Default output path of the ``tensorperf`` sweep (in the current directory).
TENSORPERF_JSON = TENSORPERF_FILENAME

#: Probe cadence (simulated seconds) for sweep cells when ``--metrics-out``
#: is given, and for the ``trace`` scenario (always probed).
PROBE_INTERVAL = 0.05

#: Default output path of the ``trace`` sweep.
TRACE_JSON = "trace.json"


def _workload(quick: bool, seed: int = 0) -> WorkloadSpec:
    return WorkloadSpec(name="cli_sweep", num_requests=2 if quick else 4,
                        input_length=8, output_length=4 if quick else 8,
                        routing_skew=1.5, seed=seed)


# The grid cells run through repro.sweeps.run_grid, which may dispatch them
# to a process pool — so the serve callables are top-level functions
# (picklable), parameterised with functools.partial.
def _serve_expert_parallel(design: str, num_gpus: int, quick: bool = False,
                           seed: int = 0, probes: bool = False):
    return serve_load(design, get_config("switch_base_64"),
                      POISSON_QA_LOAD.with_overrides(request_rate=4.0, seed=seed),
                      workload=_workload(quick, seed), max_batch_size=4,
                      num_gpus=num_gpus,
                      probe_interval=PROBE_INTERVAL if probes else None)


def _serve_load_cell(design: str, rate: float, quick: bool = False,
                     seed: int = 0, probes: bool = False):
    return serve_load(design, get_config("switch_base_64"),
                      POISSON_QA_LOAD.with_overrides(request_rate=rate, seed=seed),
                      workload=_workload(quick, seed), max_batch_size=4,
                      probe_interval=PROBE_INTERVAL if probes else None)


def _export_grid_metrics(results: Dict, axis_names: List[str],
                         path: str) -> None:
    """Write every probed cell's metric records, tagged with its axis values."""
    rows: List[Dict[str, object]] = []
    for combo, result in results.items():
        if result.probes is None:
            continue
        append_metrics_rows(rows, result.probes, dict(zip(axis_names, combo)))
    write_metrics_rows(rows, path)


def run_expert_parallel(quick: bool, workers: Optional[int] = None,
                        seed: int = 0,
                        metrics_out: Optional[str] = None) -> FigureReport:
    """Design × num_gpus sweep on one expert-parallel replica."""
    designs = ("pregated", "ondemand") if quick else ("pregated", "ondemand",
                                                      "prefetch_all")
    gpu_counts = (1, 2) if quick else (1, 2, 4)
    results = run_grid(partial(_serve_expert_parallel, quick=quick, seed=seed,
                               probes=metrics_out is not None),
                       max_workers=workers,
                       design=list(designs), num_gpus=list(gpu_counts))
    if metrics_out:
        _export_grid_metrics(results, ["design", "num_gpus"], metrics_out)
    return load_test_report(
        list(results.values()), figure="expert_parallel sweep",
        description="Design ordering across expert-parallel replica sizes")


def run_serving_load(quick: bool, workers: Optional[int] = None,
                     seed: int = 0,
                     metrics_out: Optional[str] = None) -> FigureReport:
    """Design × offered load on a single-GPU replica."""
    designs = ("pregated", "ondemand") if quick else ("pregated", "ondemand",
                                                      "prefetch_all")
    rates = (4.0,) if quick else (2.0, 8.0)
    results = run_grid(partial(_serve_load_cell, quick=quick, seed=seed,
                               probes=metrics_out is not None),
                       max_workers=workers,
                       design=list(designs), rate=list(rates))
    if metrics_out:
        _export_grid_metrics(results, ["design", "rate"], metrics_out)
    return load_test_report(
        list(results.values()), figure="serving_load sweep",
        description="Sustained throughput and tail latency under load")


def run_trace(quick: bool, out: str = TRACE_JSON, seed: int = 0,
              metrics_out: Optional[str] = None) -> FigureReport:
    """One observed serve: spans + probes on, exported as a Perfetto trace."""
    config = get_config("switch_base_64")
    workload = _workload(quick, seed).with_overrides(
        name="cli_trace", num_requests=4 if quick else 8)
    load = POISSON_QA_LOAD.with_overrides(request_rate=4.0, seed=seed)
    scheduler = make_scheduler("pregated", config, system=SSD_SYSTEM,
                               stage_policy="lru", stage_capacity=8,
                               num_gpus=2, max_batch_size=4,
                               record_trace=True, span_log=True,
                               probe_interval=PROBE_INTERVAL)
    requests = generate_timed_requests(config, load, workload=workload)
    result = scheduler.serve(requests, offered_load=load.request_rate)
    write_chrome_trace(out, timeline=scheduler.last_timeline,
                       spans=result.spans,
                       metadata={"design": scheduler.design,
                                 "config": config.name,
                                 "system": SSD_SYSTEM.name,
                                 "num_gpus": 2, "seed": seed})
    if metrics_out:
        rows: List[Dict[str, object]] = []
        append_metrics_rows(rows, result.probes, {"design": scheduler.design})
        write_metrics_rows(rows, metrics_out)
    return load_test_report(
        [result], figure="trace",
        description=f"SSD-staged 2-GPU pregated serve, trace written to {out} "
                    "(open at https://ui.perfetto.dev)")


def run_simperf_sweep(quick: bool, workers: Optional[int] = None,
                      full: bool = False) -> FigureReport:
    """Simulator self-performance: serving-engine modes across request counts."""
    # Always serial: the measurement is the wall clock (main() rejects
    # --workers for this sweep).
    payload = run_simperf(quick=quick, full=full)
    if full:
        # Only the full 1.6k/16k/100k ladder is worth committing; smoke
        # shapes must not overwrite the recorded artifact.
        write_simperf(payload, SIMPERF_JSON)
    written = f" (written to {SIMPERF_JSON})" if full else ""
    report = FigureReport(
        figure="simperf",
        description=(f"Simulator throughput serving "
                     f"{payload['design']}/{payload['config']} "
                     f"decode-heavy batch-1 requests{written}"),
        headers=["requests", "mode", "wall (s)", "sim req/s", "total ops",
                 "peak resident ops", "replayed rounds"],
    )
    for size, by_mode in sorted(payload["scaling"].items(),
                                key=lambda kv: int(kv[0])):
        for mode, row in by_mode.items():
            report.add_row(int(size), mode, round(row["wall_seconds"], 3),
                           round(row["simulated_requests_per_second"], 1),
                           row["total_ops"], row["peak_resident_ops"],
                           row["replay_rounds"])
    for name, rung in payload["placements"].items():
        for mode in ("kernel", "kernel_replay"):
            row = rung[mode]
            report.add_row(f"{rung['requests']} [{name}]", mode,
                           round(row["wall_seconds"], 3),
                           round(row["simulated_requests_per_second"], 1),
                           row["total_ops"], row["peak_resident_ops"],
                           row["replay_rounds"])
    floors = payload["floors"]
    # The probed mode shares the no-trace floor: the sampled probe layer
    # must not cost a no-trace run more than the floor's jitter headroom.
    floor_by_mode = {
        "no_trace": floors["no_trace_req_per_s"],
        "no_trace_probed": floors["no_trace_req_per_s"],
        "kernel": floors["kernel_req_per_s"],
        "kernel_replay": floors["kernel_replay_req_per_s"],
    }
    for size, by_mode in payload["scaling"].items():
        for mode, floor in floor_by_mode.items():
            measured_mode = by_mode.get(mode)
            if measured_mode is None:
                continue
            measured = measured_mode["simulated_requests_per_second"]
            if measured < floor:
                raise SystemExit(
                    f"simperf regression: {mode} mode served {measured:.1f} "
                    f"sim req/s at {size} requests, below the recorded floor "
                    f"of {floor:.1f} (see {SIMPERF_FILENAME})")
    # The placement rungs exist to prove replay covers cached / multi-GPU
    # serving: a rung where no window fires is a regression even if the
    # throughput floor holds.
    for name, rung in payload["placements"].items():
        if rung["kernel_replay"]["replay_windows"] <= 0:
            raise SystemExit(
                f"simperf regression: round replay never engaged on the "
                f"{name} placement rung (see {SIMPERF_FILENAME})")
    return report


def run_tensorperf_sweep(quick: bool, workers: Optional[int] = None,
                         full: bool = False) -> FigureReport:
    """Real-model tensor-path performance: eager vs lazy across the shape ladder."""
    # Always serial: the measurement is the wall clock (main() rejects
    # --workers for this sweep).
    payload = run_tensorperf(quick=quick, full=full)
    if full:
        # Only the full ladder (including the serving-scale rung) is worth
        # committing; smoke shapes must not overwrite the recorded artifact.
        write_tensorperf(payload, TENSORPERF_JSON)
    written = f" (written to {TENSORPERF_JSON})" if full else ""
    report = FigureReport(
        figure="tensorperf",
        description=("Real-model tensor engine throughput, eager vs lazy x "
                     "fp64/fp32/mixed, against the recorded pre-optimisation "
                     f"baseline{written}"),
        headers=["rung", "backend", "precision", "train steps/s", "train tok/s",
                 "forward tok/s", "generate tok/s", "train speedup vs recorded"],
    )
    speedups = payload["speedup_over_recorded_baseline"]
    for name, row in payload["ladder"].items():
        for cell, metrics in row["cells"].items():
            backend, precision = cell.split("/")
            speedup = speedups.get(name, {}).get("train_steps_per_s")
            report.add_row(
                name, backend, precision,
                round(metrics["train_steps_per_s"], 2),
                round(metrics["train_tokens_per_s"]),
                round(metrics["forward_tokens_per_s"]),
                round(metrics["generate_tokens_per_s"]),
                f"{speedup:.1f}x" if cell == "eager/pure_fp64" and speedup
                else "")
    for precision, parity in payload["parity"]["backend"].items():
        if max(parity["loss_abs_diff"],
               parity["grad_max_abs_diff"]) > parity["budget"]:
            raise SystemExit(
                f"tensorperf parity failure: eager vs lazy differ by "
                f"{parity['grad_max_abs_diff']:.3e} under {precision} "
                f"(budget {parity['budget']:.0e})")
    for precision, parity in payload["parity"]["precision"].items():
        if (parity["loss_abs_diff"] > parity["loss_budget"]
                or parity["grad_max_abs_diff"] > parity["grad_budget"]):
            raise SystemExit(
                f"tensorperf precision-parity failure: {precision} deviates "
                f"from pure_fp64 by loss {parity['loss_abs_diff']:.3e} / "
                f"grad {parity['grad_max_abs_diff']:.3e} (budgets "
                f"{parity['loss_budget']:.0e} / {parity['grad_budget']:.0e})")
    floors = payload["floors"]["train_steps_per_s"]
    for name, row in payload["ladder"].items():
        for precision, rung_floors in floors.items():
            floor = rung_floors.get(name)
            if floor is None:
                continue
            measured = row["cells"][f"eager/{precision}"]["train_steps_per_s"]
            if measured < floor:
                raise SystemExit(
                    f"tensorperf regression: eager/{precision} train step ran "
                    f"{measured:.2f} steps/s on the {name} rung, below the "
                    f"recorded floor of {floor:.2f} (see {TENSORPERF_FILENAME})")
        # Decode stands the lazy graph down to the eager engine; the
        # interleaved lazy/eager decode-minimum ratio sits at ~1.0 and
        # collapses to ~0.5 if the stand-down ever breaks.
        for precision in payload["precisions"]:
            ratio = row["cells"][f"lazy/{precision}"]["generate_lazy_over_eager"]
            if ratio < GENERATE_STANDDOWN_FLOOR:
                raise SystemExit(
                    f"tensorperf regression: lazy decode ran at {ratio:.2f}x "
                    f"eager on the {name} rung ({precision}) — the "
                    f"greedy-decode stand-down looks broken")
    return report


SWEEPS: Dict[str, object] = {
    "expert_parallel": run_expert_parallel,
    "serving_load": run_serving_load,
    "simperf": run_simperf_sweep,
    "tensorperf": run_tensorperf_sweep,
    "trace": run_trace,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run a named benchmark sweep of the Pre-gated MoE "
                    "serving simulator.")
    parser.add_argument("sweep", choices=sorted(SWEEPS) + ["list"],
                        help="sweep to run ('list' prints the available names)")
    parser.add_argument("--quick", action="store_true",
                        help="shrink the grid for a CI smoke run")
    parser.add_argument("--full", action="store_true",
                        help="simperf only: run the recorded 1.6k/16k/100k "
                             "scaling ladder and rewrite BENCH_simperf.json "
                             "(minutes of wall time)")
    parser.add_argument("--seed", type=int, default=None, metavar="N",
                        help="reseed the sweep's workload and arrival "
                             "process (default 0)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="run the sweep's grid cells on an N-process pool")
    parser.add_argument("--profile", action="store_true",
                        help="run the sweep under cProfile and print the top "
                             "25 functions by cumulative time")
    parser.add_argument("--csv", metavar="PATH", default=None,
                        help="also write the report as CSV to PATH")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="trace only: trace-event JSON output path "
                             f"(default {TRACE_JSON})")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="export sampled probe series as JSONL "
                             "(CSV when PATH ends in .csv)")
    args = parser.parse_args(argv)
    if args.workers is not None and args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.sweep in ("simperf", "tensorperf") and args.workers is not None:
        parser.error(f"{args.sweep} measures wall-clock serially; "
                     "--workers would distort it")
    if args.sweep == "trace" and args.workers is not None:
        parser.error("trace serves one scenario; --workers does not apply")
    if args.full and args.sweep not in ("simperf", "tensorperf"):
        parser.error("--full only applies to the simperf and tensorperf sweeps")
    if args.full and args.quick:
        parser.error("--full and --quick are mutually exclusive")
    if args.out is not None and args.sweep != "trace":
        parser.error("--out only applies to the trace sweep")
    if args.seed is not None and args.sweep in ("simperf", "tensorperf"):
        parser.error(f"{args.sweep} measures the recorded (seed-pinned) "
                     "scenario; --seed does not apply")
    if args.metrics_out is not None and args.sweep in ("simperf", "tensorperf"):
        parser.error(f"{args.sweep} reports wall-clock, not probe series; "
                     "--metrics-out does not apply")
    if args.profile and args.workers is not None and args.workers > 1:
        parser.error("--profile profiles the in-process sweep; it cannot "
                     "see into --workers subprocesses")
    if args.sweep == "list":
        for name, runner in sorted(SWEEPS.items()):
            print(f"{name}: {runner.__doc__.strip().splitlines()[0]}")
        return 0
    runner = SWEEPS[args.sweep]
    if args.sweep == "trace":
        kwargs = {"out": args.out if args.out is not None else TRACE_JSON,
                  "seed": args.seed or 0, "metrics_out": args.metrics_out}
    elif args.sweep in ("simperf", "tensorperf"):
        kwargs = {"workers": args.workers, "full": args.full}
    else:
        kwargs = {"workers": args.workers, "seed": args.seed or 0,
                  "metrics_out": args.metrics_out}
    if args.profile:
        report = profiled(runner, args.quick, **kwargs)
    else:
        report = runner(args.quick, **kwargs)
    print(report.render())
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(report.as_csv())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
