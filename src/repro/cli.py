"""Minimal command-line entry point: run a named benchmark sweep.

``python -m repro <sweep>`` serves a small named load study and prints the
paper-style load report (optionally also writing it as CSV) — the smoke path
CI runs and the quickest way to see the simulator end-to-end without pytest:

* ``expert_parallel`` — design × num_gpus on one replica (the expert-
  parallel sharding study);
* ``serving_load`` — design × offered load on a single-GPU replica.

``--quick`` shrinks the request count and grid for CI smoke runs.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from .analysis.report import FigureReport, load_test_report
from .moe.configs import get_config
from .serving.scheduler import serve_load
from .workloads.arrivals import POISSON_QA_LOAD
from .workloads.generator import WorkloadSpec


def _workload(quick: bool) -> WorkloadSpec:
    return WorkloadSpec(name="cli_sweep", num_requests=2 if quick else 4,
                        input_length=8, output_length=4 if quick else 8,
                        routing_skew=1.5, seed=0)


def run_expert_parallel(quick: bool) -> FigureReport:
    """Design × num_gpus sweep on one expert-parallel replica."""
    config = get_config("switch_base_64")
    designs = ("pregated", "ondemand") if quick else ("pregated", "ondemand",
                                                      "prefetch_all")
    gpu_counts = (1, 2) if quick else (1, 2, 4)
    load = POISSON_QA_LOAD.with_overrides(request_rate=4.0)
    results = [serve_load(design, config, load, workload=_workload(quick),
                          max_batch_size=4, num_gpus=num_gpus)
               for design in designs for num_gpus in gpu_counts]
    return load_test_report(
        results, figure="expert_parallel sweep",
        description="Design ordering across expert-parallel replica sizes")


def run_serving_load(quick: bool) -> FigureReport:
    """Design × offered load on a single-GPU replica."""
    config = get_config("switch_base_64")
    designs = ("pregated", "ondemand") if quick else ("pregated", "ondemand",
                                                      "prefetch_all")
    rates = (4.0,) if quick else (2.0, 8.0)
    results = [serve_load(design, config,
                          POISSON_QA_LOAD.with_overrides(request_rate=rate),
                          workload=_workload(quick), max_batch_size=4)
               for design in designs for rate in rates]
    return load_test_report(
        results, figure="serving_load sweep",
        description="Sustained throughput and tail latency under load")


SWEEPS: Dict[str, object] = {
    "expert_parallel": run_expert_parallel,
    "serving_load": run_serving_load,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run a named benchmark sweep of the Pre-gated MoE "
                    "serving simulator.")
    parser.add_argument("sweep", choices=sorted(SWEEPS) + ["list"],
                        help="sweep to run ('list' prints the available names)")
    parser.add_argument("--quick", action="store_true",
                        help="shrink the grid for a CI smoke run")
    parser.add_argument("--csv", metavar="PATH", default=None,
                        help="also write the report as CSV to PATH")
    args = parser.parse_args(argv)
    if args.sweep == "list":
        for name, runner in sorted(SWEEPS.items()):
            print(f"{name}: {runner.__doc__.strip().splitlines()[0]}")
        return 0
    report = SWEEPS[args.sweep](args.quick)
    print(report.render())
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(report.as_csv())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
