"""Fine-tuning harness reproducing the paper's accuracy experiments."""

from .finetune import (
    AccuracyComparison,
    FinetuneOutcome,
    activation_level_sweep,
    compare_architectures,
    finetune_conventional,
    finetune_pregated,
    pretrain_conventional,
)
from .trainer import Trainer, TrainingConfig, TrainingResult

__all__ = [
    "AccuracyComparison",
    "FinetuneOutcome",
    "activation_level_sweep",
    "compare_architectures",
    "finetune_conventional",
    "finetune_pregated",
    "pretrain_conventional",
    "Trainer",
    "TrainingConfig",
    "TrainingResult",
]
