"""Fine-tuning harness for conventional and pre-gated MoE models.

Reproduces the paper's training recipe (Section V, "Model training"): both
architectures start from the *same* pre-trained weights, are fine-tuned on
the downstream task with the *same* constant learning rate and the *same*
number of steps, and are then evaluated with the task's metrics.  The only
architectural difference is where the gates live — which is exactly what
Table II and Figure 13 isolate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.pregated_model import PreGatedSwitchTransformer
from ..data.metrics import EvalScores, evaluate_predictions
from ..data.tasks import Seq2SeqDataset
from ..data.tokenizer import Tokenizer
from ..moe.transformer import SwitchTransformer
from ..tensor import Adam, clip_grad_norm, use_precision
from ..tensor import functional as F

Model = Union[SwitchTransformer, PreGatedSwitchTransformer]


@dataclass(frozen=True)
class TrainingConfig:
    """Fine-tuning hyper-parameters.

    The paper fine-tunes with mini-batches of 256 sequences for 2,048 steps
    at a constant learning rate of 1e-4; the functional reproduction scales
    the batch size and step count down to what a numpy model needs on the
    synthetic tasks, but keeps the *structure* of the recipe (constant LR,
    identical settings for both architectures, auxiliary load-balancing
    loss).
    """

    steps: int = 200
    batch_size: int = 16
    learning_rate: float = 1e-4
    aux_loss_weight: float = 1e-2
    max_grad_norm: float = 1.0
    log_every: int = 50
    seed: int = 0
    #: Precision policy the whole run executes under ("pure_fp64",
    #: "pure_fp32" or "mixed" — see :mod:`repro.tensor.precision`).  The
    #: model should be *built* under the same policy so parameter dtypes
    #: match; :class:`Trainer` activates it around every step and eval.
    precision: str = "pure_fp64"


@dataclass
class TrainingResult:
    """Loss curve and bookkeeping from one fine-tuning run."""

    steps: int
    losses: List[float] = field(default_factory=list)
    aux_losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    def mean_loss(self, last_n: int = 10) -> float:
        window = self.losses[-last_n:] if self.losses else []
        return float(np.mean(window)) if window else float("nan")


class Trainer:
    """Teacher-forced seq2seq fine-tuning loop."""

    def __init__(self, model: Model, config: Optional[TrainingConfig] = None) -> None:
        self.model = model
        self.config = config or TrainingConfig()
        # The optimiser snapshots master weights under the active policy, so
        # construct it under the configured one.
        with use_precision(self.config.precision):
            self.optimizer = Adam(model.parameters(), lr=self.config.learning_rate)
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    def train_step(self, batch) -> Dict[str, float]:
        """One optimisation step on a :class:`~repro.data.tasks.Batch`."""
        with use_precision(self.config.precision):
            return self._train_step(batch)

    def _train_step(self, batch) -> Dict[str, float]:
        self.model.train()
        output = self.model(batch.encoder_ids, batch.decoder_input_ids,
                            input_padding_mask=batch.encoder_padding_mask)
        # Token id 0 is always the pad token (see repro.data.tokenizer); padded
        # target positions must not contribute to the loss.
        task_loss = F.cross_entropy(output.logits, batch.decoder_target_ids, ignore_index=0)
        loss = task_loss + output.aux_loss * self.config.aux_loss_weight
        self.model.zero_grad()
        loss.backward()
        clip_grad_norm(self.model.parameters(), self.config.max_grad_norm)
        self.optimizer.step()
        return {"loss": float(loss.item()),
                "task_loss": float(task_loss.item()),
                "aux_loss": float(output.aux_loss.item())}

    def fit(self, dataset: Seq2SeqDataset,
            callback: Optional[Callable[[int, Dict[str, float]], None]] = None) -> TrainingResult:
        """Fine-tune for ``config.steps`` steps, cycling over the dataset."""
        result = TrainingResult(steps=self.config.steps)
        batch_iter = self._infinite_batches(dataset)
        for step in range(self.config.steps):
            batch = next(batch_iter)
            stats = self.train_step(batch)
            result.losses.append(stats["loss"])
            result.aux_losses.append(stats["aux_loss"])
            if callback is not None and (step + 1) % self.config.log_every == 0:
                callback(step + 1, stats)
        return result

    def _infinite_batches(self, dataset: Seq2SeqDataset):
        while True:
            yield from dataset.batches(self.config.batch_size, shuffle=True, rng=self._rng)

    # ------------------------------------------------------------------
    def evaluate(self, dataset: Seq2SeqDataset, tokenizer: Tokenizer,
                 max_new_tokens: int = 8) -> EvalScores:
        """Greedy-decode the eval set and score it with the Table II metrics."""
        self.model.eval()
        with use_precision(self.config.precision):
            return self._evaluate(dataset, tokenizer, max_new_tokens)

    def _evaluate(self, dataset: Seq2SeqDataset, tokenizer: Tokenizer,
                  max_new_tokens: int) -> EvalScores:
        predictions: List[str] = []
        references: List[str] = []
        for batch in dataset.batches(self.config.batch_size):
            generated, _ = self.model.greedy_decode(
                batch.encoder_ids, bos_id=tokenizer.bos_id, eos_id=tokenizer.eos_id,
                max_new_tokens=max_new_tokens,
                input_padding_mask=batch.encoder_padding_mask)
            for row, reference in zip(generated, batch.targets):
                predictions.append(_strip_at_eos(row[1:], tokenizer))
                references.append(reference)
        return evaluate_predictions(predictions, references)


def _strip_at_eos(token_ids: Sequence[int], tokenizer: Tokenizer) -> str:
    """Decode generated ids, truncating at the first EOS."""
    kept: List[int] = []
    for token_id in token_ids:
        if int(token_id) == tokenizer.eos_id:
            break
        kept.append(int(token_id))
    return tokenizer.decode(kept)
