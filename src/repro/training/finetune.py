"""High-level fine-tuning experiments: conventional vs pre-gated accuracy.

These helpers orchestrate the Table II and Figure 13 experiments:

* fine-tune a conventional Switch-Transformer on a downstream task;
* build a pre-gated model from the *same* pre-trained weights and fine-tune
  it with the *same* recipe;
* evaluate both with the task's metrics and compare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence


from ..core.pregated_model import PreGatedSwitchTransformer
from ..data.metrics import EvalScores
from ..data.tasks import SyntheticTask, make_task, train_eval_split
from ..data.tokenizer import default_vocabulary
from ..moe.configs import ModelConfig, get_config
from ..moe.transformer import SwitchTransformer
from ..tensor import use_precision
from .trainer import Trainer, TrainingConfig, TrainingResult


@dataclass
class FinetuneOutcome:
    """Result of fine-tuning one architecture on one task."""

    architecture: str          # "conventional" or "pregated (N=k)"
    task: str
    config_name: str
    scores: EvalScores
    training: TrainingResult

    def metric(self, name: str) -> float:
        return self.scores.as_dict()[name]


@dataclass
class AccuracyComparison:
    """Conventional vs pre-gated comparison on one task (one Table II cell pair)."""

    task: str
    config_name: str
    conventional: FinetuneOutcome
    pregated: FinetuneOutcome

    def gap(self, metric: str) -> float:
        """Pre-gated minus conventional score (positive means pre-gated is better)."""
        return self.pregated.metric(metric) - self.conventional.metric(metric)


def pretrain_conventional(config: "ModelConfig | str", task: SyntheticTask,
                          training: Optional[TrainingConfig] = None,
                          seed: int = 0) -> SwitchTransformer:
    """Produce the "pre-trained" conventional model both architectures start from.

    The paper starts from Google's released pre-trained checkpoints; the
    functional substitute is a conventional model briefly trained on the task
    distribution, which plays the same role — a shared, non-random starting
    point whose experts already carry useful structure.
    """
    pre_cfg = training or TrainingConfig(steps=60, batch_size=16, seed=seed)
    config = get_config(config) if isinstance(config, str) else config
    # Build under the run's precision policy so parameter dtypes match what
    # the trainer (and its Adam master weights) expect.
    with use_precision(pre_cfg.precision):
        model = SwitchTransformer(config, seed=seed)
    train_set, _ = train_eval_split(task, train_size=pre_cfg.batch_size * 8, eval_size=8,
                                    tokenizer=task.tokenizer)
    Trainer(model, pre_cfg).fit(train_set)
    return model


def finetune_conventional(pretrained: SwitchTransformer, task: SyntheticTask,
                          training: TrainingConfig, train_size: int = 256,
                          eval_size: int = 64) -> FinetuneOutcome:
    """Fine-tune the conventional architecture and evaluate it."""
    config = pretrained.config
    with use_precision(training.precision):
        model = SwitchTransformer(config, seed=training.seed)
        model.load_state_dict(pretrained.state_dict())
    train_set, eval_set = train_eval_split(task, train_size, eval_size, tokenizer=task.tokenizer)
    trainer = Trainer(model, training)
    result = trainer.fit(train_set)
    scores = trainer.evaluate(eval_set, task.tokenizer)
    return FinetuneOutcome(architecture="conventional", task=task.name,
                           config_name=config.name, scores=scores, training=result)


def finetune_pregated(pretrained: SwitchTransformer, task: SyntheticTask,
                      training: TrainingConfig, activation_level: int = 1,
                      train_size: int = 256, eval_size: int = 64) -> FinetuneOutcome:
    """Fine-tune the pre-gated architecture (from the same pre-trained weights)."""
    config = pretrained.config
    with use_precision(training.precision):
        model = PreGatedSwitchTransformer(config, activation_level=activation_level,
                                          seed=training.seed)
        model.load_from_conventional(pretrained)
    train_set, eval_set = train_eval_split(task, train_size, eval_size, tokenizer=task.tokenizer)
    trainer = Trainer(model, training)
    result = trainer.fit(train_set)
    scores = trainer.evaluate(eval_set, task.tokenizer)
    return FinetuneOutcome(architecture=f"pregated (N={activation_level})", task=task.name,
                           config_name=config.name, scores=scores, training=result)


def compare_architectures(config_name: str, task_name: str,
                          training: Optional[TrainingConfig] = None,
                          activation_level: int = 1,
                          train_size: int = 256, eval_size: int = 64,
                          seed: int = 0) -> AccuracyComparison:
    """Run the full Table II protocol for one (model, task) cell.

    Both architectures share the pre-trained weights, the fine-tuning
    recipe, the training data and the evaluation data.
    """
    training = training or TrainingConfig(seed=seed)
    config = get_config(config_name)
    tokenizer = default_vocabulary(num_content_words=max(60, config.vocab_size - 4))
    if tokenizer.vocab_size > config.vocab_size:
        tokenizer = default_vocabulary(num_content_words=config.vocab_size - 4)
    task = make_task(task_name, tokenizer=tokenizer, seed=seed)
    pretrained = pretrain_conventional(config, task, seed=seed)
    conventional = finetune_conventional(pretrained, task, training,
                                         train_size=train_size, eval_size=eval_size)
    pregated = finetune_pregated(pretrained, task, training, activation_level=activation_level,
                                 train_size=train_size, eval_size=eval_size)
    return AccuracyComparison(task=task_name, config_name=config_name,
                              conventional=conventional, pregated=pregated)


def activation_level_sweep(config_name: str, task_name: str,
                           levels: Sequence[int] = (1, 2, 3),
                           training: Optional[TrainingConfig] = None,
                           train_size: int = 256, eval_size: int = 64,
                           seed: int = 0) -> Dict[str, FinetuneOutcome]:
    """Figure 13: accuracy as the pre-gate activation level N varies.

    Returns outcomes keyed by ``"conventional"`` (N=0, i.e. the standard gate)
    and ``"N=1"``, ``"N=2"``, ... for each requested pre-gate level.
    """
    training = training or TrainingConfig(seed=seed)
    config = get_config(config_name)
    tokenizer = default_vocabulary(num_content_words=config.vocab_size - 4)
    task = make_task(task_name, tokenizer=tokenizer, seed=seed)
    pretrained = pretrain_conventional(config, task, seed=seed)

    outcomes: Dict[str, FinetuneOutcome] = {
        "conventional": finetune_conventional(pretrained, task, training,
                                              train_size=train_size, eval_size=eval_size)
    }
    max_level = config.num_moe_blocks("decoder") - 1 if config.is_moe else 0
    for level in levels:
        if level > max_level:
            continue
        outcomes[f"N={level}"] = finetune_pregated(
            pretrained, task, training, activation_level=level,
            train_size=train_size, eval_size=eval_size)
    return outcomes
