"""Gate (router) functions for MoE blocks.

The gate function assigns each token a probability distribution over the
experts of an MoE block and selects the top-k experts to activate.  This
module implements the conventional Switch-Transformer router (top-1 with a
load-balancing auxiliary loss) and generalises it to top-k so that the
"number of activated experts" sweep of Figure 14 can be reproduced.

The same :class:`Router` module is reused by the pre-gate function of the
core contribution (:mod:`repro.core.pregate`); what changes there is *which
block's experts* the routing decision applies to, not the router mechanics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..tensor import Linear, Module, Tensor
from ..tensor import functional as F


@dataclass
class RoutingDecision:
    """The outcome of evaluating a gate function on a batch of tokens.

    Attributes
    ----------
    expert_indices:
        Integer array of shape ``(tokens, k)`` — the experts each token is
        routed to, sorted by descending router probability.
    expert_weights:
        Router probabilities for the selected experts, shape ``(tokens, k)``
        (renormalised over the selected k so they sum to 1 per token).
    router_probs:
        Full softmax distribution over experts, shape ``(tokens, num_experts)``
        (kept as a Tensor so the auxiliary loss can back-propagate).
    activated_experts:
        Sorted list of the distinct expert ids activated by *any* token in
        the batch.  This is the set the serving system must have resident in
        GPU memory for the block's execution stage.
    aux_loss:
        Switch-Transformer load-balancing loss for this routing decision.
    """

    expert_indices: np.ndarray
    expert_weights: np.ndarray
    router_probs: Tensor
    activated_experts: List[int]
    aux_loss: Tensor

    @property
    def num_tokens(self) -> int:
        return int(self.expert_indices.shape[0])

    @property
    def top_k(self) -> int:
        return int(self.expert_indices.shape[1])

    def tokens_for_expert(self, expert_id: int) -> np.ndarray:
        """Return indices of tokens routed to ``expert_id`` (any of their k slots)."""
        rows, _ = np.nonzero(self.expert_indices == expert_id)
        return np.unique(rows)


def load_balancing_loss(router_probs: Tensor, expert_indices: np.ndarray, num_experts: int) -> Tensor:
    """Switch-Transformer auxiliary load-balancing loss.

    ``loss = num_experts * sum_e f_e * P_e`` where ``f_e`` is the fraction of
    tokens dispatched to expert *e* (top-1 assignment) and ``P_e`` the mean
    router probability assigned to expert *e*.  Minimised when routing is
    uniform across experts.
    """
    tokens = expert_indices.shape[0]
    if tokens == 0:
        return Tensor(0.0)
    top1 = expert_indices[:, 0]
    counts = np.bincount(top1, minlength=num_experts).astype(np.float64)
    fraction_dispatched = counts / tokens
    mean_probs = router_probs.mean(axis=0)
    return (mean_probs * Tensor(fraction_dispatched)).sum() * float(num_experts)


class Router(Module):
    """Softmax router (gate function) over ``num_experts`` experts.

    Implemented, as in the paper, as a compact linear projection from the
    token representation to expert logits followed by a softmax — "the gate
    function is implemented as a compact MLP layer having low computation
    requirement" (Figure 7 caption).

    Parameters
    ----------
    d_model:
        Token representation dimension.
    num_experts:
        Number of experts to route over.
    top_k:
        Number of experts activated per token (Switch default: 1).
    jitter:
        Multiplicative input noise applied during training only; improves
        router exploration (from the Switch-Transformer recipe).
    """

    def __init__(self, d_model: int, num_experts: int, top_k: int = 1,
                 jitter: float = 0.0, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if num_experts < 1:
            raise ValueError("num_experts must be >= 1")
        if not 1 <= top_k <= num_experts:
            raise ValueError(f"top_k must be in [1, {num_experts}], got {top_k}")
        self.d_model = d_model
        self.num_experts = num_experts
        self.top_k = top_k
        self.jitter = jitter
        self._rng = rng or np.random.default_rng()
        self.classifier = Linear(d_model, num_experts, bias=False, rng=rng)

    def forward(self, hidden: Tensor, top_k: Optional[int] = None) -> RoutingDecision:
        """Route a batch of token representations.

        Parameters
        ----------
        hidden:
            Tensor of shape ``(tokens, d_model)`` (callers flatten batch and
            sequence dimensions before routing).
        top_k:
            Optional override of the configured top-k, used by the Figure 14
            sweep over the number of activated experts.
        """
        if hidden.ndim != 2:
            raise ValueError(f"router expects (tokens, d_model), got shape {hidden.shape}")
        k = self.top_k if top_k is None else top_k
        if not 1 <= k <= self.num_experts:
            raise ValueError(f"top_k must be in [1, {self.num_experts}], got {k}")

        inputs = hidden
        if self.training and self.jitter > 0:
            noise = self._rng.uniform(1.0 - self.jitter, 1.0 + self.jitter, size=hidden.shape)
            inputs = hidden * Tensor(noise)

        logits = self.classifier(inputs)
        probs = F.softmax(logits, axis=-1)

        indices, _ = F.top_k_indices(probs.numpy(), k)
        selected = np.take_along_axis(probs.numpy(), indices, axis=-1)
        denom = np.maximum(selected.sum(axis=-1, keepdims=True), 1e-9)
        weights = selected / denom

        activated = sorted(int(e) for e in np.unique(indices))
        aux = load_balancing_loss(probs, indices, self.num_experts)
        return RoutingDecision(
            expert_indices=indices,
            expert_weights=weights,
            router_probs=probs,
            activated_experts=activated,
            aux_loss=aux,
        )
