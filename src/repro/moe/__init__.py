"""Conventional Mixture-of-Experts (Switch-Transformer) substrate.

Contains the baseline MoE model architecture the paper builds on: routers,
experts, MoE blocks, the Switch-Transformer encoder-decoder, the model
configuration registry, and the analytical FLOPs / capacity models used by
Figures 2 and 3.
"""

from .capacity import CapacityBreakdown, capacity_breakdown, capacity_table, fits_in_memory, memory_ratio
from .configs import (
    BYTES_FP16,
    BYTES_FP32,
    PERFORMANCE_CONFIGS,
    TABLE1_CONFIGS,
    ModelConfig,
    get_config,
    list_configs,
)
from .expert import Expert, ExpertPool
from .flops import FlopsBreakdown, gflops_per_sequence, moe_block_flops, sequence_flops
from .gating import Router, RoutingDecision, load_balancing_loss
from .moe_block import MoEBlock
from .transformer import (
    DecoderBlock,
    EncoderBlock,
    RoutingTraceEntry,
    Seq2SeqOutput,
    SwitchTransformer,
)

__all__ = [
    "CapacityBreakdown",
    "capacity_breakdown",
    "capacity_table",
    "fits_in_memory",
    "memory_ratio",
    "BYTES_FP16",
    "BYTES_FP32",
    "PERFORMANCE_CONFIGS",
    "TABLE1_CONFIGS",
    "ModelConfig",
    "get_config",
    "list_configs",
    "Expert",
    "ExpertPool",
    "FlopsBreakdown",
    "gflops_per_sequence",
    "moe_block_flops",
    "sequence_flops",
    "Router",
    "RoutingDecision",
    "load_balancing_loss",
    "MoEBlock",
    "DecoderBlock",
    "EncoderBlock",
    "RoutingTraceEntry",
    "Seq2SeqOutput",
    "SwitchTransformer",
]
