"""Model-capacity (memory footprint) analysis.

Reproduces Figure 3 and the capacity column of Table I: the breakdown of a
model's memory footprint into MoE parameters (experts + gate functions) and
non-MoE parameters (attention, dense FFNs, norms, embeddings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from .configs import ModelConfig, get_config

GB = 1e9


@dataclass(frozen=True)
class CapacityBreakdown:
    """Memory capacity of one model configuration, split MoE vs non-MoE."""

    config_name: str
    moe_bytes: int
    non_moe_bytes: int
    moe_params: int
    non_moe_params: int

    @property
    def total_bytes(self) -> int:
        return self.moe_bytes + self.non_moe_bytes

    @property
    def total_params(self) -> int:
        return self.moe_params + self.non_moe_params

    @property
    def moe_fraction(self) -> float:
        """Fraction of the model capacity taken by MoE parameters."""
        total = self.total_bytes
        return self.moe_bytes / total if total else 0.0

    def gigabytes(self) -> Dict[str, float]:
        return {
            "moe": self.moe_bytes / GB,
            "non_moe": self.non_moe_bytes / GB,
            "total": self.total_bytes / GB,
        }


def capacity_breakdown(config: ModelConfig) -> CapacityBreakdown:
    """Compute the MoE vs non-MoE capacity split for a configuration."""
    return CapacityBreakdown(
        config_name=config.name,
        moe_bytes=config.moe_bytes(),
        non_moe_bytes=config.non_moe_bytes(),
        moe_params=config.moe_params(),
        non_moe_params=config.non_moe_params(),
    )


def capacity_table(config_names: Iterable[str]) -> List[CapacityBreakdown]:
    """Capacity breakdowns for a list of registry names (Figure 3 series)."""
    return [capacity_breakdown(get_config(name)) for name in config_names]


def memory_ratio(moe_config: ModelConfig, dense_config: ModelConfig) -> float:
    """How many times more memory the MoE model needs than its dense counterpart.

    The paper quotes "up to 75x" for SwitchTransformer vs the FLOPs-equivalent
    T5 (Section I / Figure 3).
    """
    dense_total = dense_config.total_bytes()
    if dense_total == 0:
        raise ValueError("dense model has zero capacity")
    return moe_config.total_bytes() / dense_total


def fits_in_memory(config: ModelConfig, memory_bytes: int,
                   activation_reserve_fraction: float = 0.05) -> bool:
    """Whether the whole model (plus an activation reserve) fits in ``memory_bytes``.

    Used to reproduce the GPU-only OOM result for Switch-Large on an 80GB
    A100 (Figures 10-12).
    """
    if not 0.0 <= activation_reserve_fraction < 1.0:
        raise ValueError("activation_reserve_fraction must be in [0, 1)")
    usable = memory_bytes * (1.0 - activation_reserve_fraction)
    return config.total_bytes() <= usable
