"""Analytical FLOPs model for MoE vs dense transformer inference.

Reproduces the computation behind Figure 2 of the paper: the number of
floating-point operations required to process one sequence is (nearly)
independent of the number of experts, because only ``top_k`` experts are
activated per token regardless of how many exist.

FLOPs are counted as multiply-accumulate pairs (2 FLOPs per MAC), the usual
convention for transformer FLOPs estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .configs import ModelConfig


@dataclass(frozen=True)
class FlopsBreakdown:
    """Per-component FLOPs for processing one sequence."""

    attention: float
    dense_ffn: float
    expert_ffn: float
    gate: float
    embedding: float

    @property
    def total(self) -> float:
        return self.attention + self.dense_ffn + self.expert_ffn + self.gate + self.embedding

    def as_dict(self) -> Dict[str, float]:
        return {
            "attention": self.attention,
            "dense_ffn": self.dense_ffn,
            "expert_ffn": self.expert_ffn,
            "gate": self.gate,
            "embedding": self.embedding,
            "total": self.total,
        }


def attention_flops(config: ModelConfig, seq_len: int) -> float:
    """FLOPs of one multi-head attention layer over a sequence.

    Includes the four projections plus the score and context matmuls.
    """
    d = config.d_model
    proj = 4 * 2.0 * seq_len * d * d
    scores = 2.0 * seq_len * seq_len * d
    context = 2.0 * seq_len * seq_len * d
    return proj + scores + context


def ffn_flops(config: ModelConfig, seq_len: int) -> float:
    """FLOPs of one dense FFN (equivalently one expert) over a sequence."""
    return 2 * 2.0 * seq_len * config.d_model * config.d_ff


def gate_flops(config: ModelConfig, seq_len: int) -> float:
    """FLOPs of one gate function evaluation over a sequence."""
    if not config.is_moe:
        return 0.0
    return 2.0 * seq_len * config.d_model * config.num_experts


def logits_flops(config: ModelConfig, seq_len: int) -> float:
    """FLOPs of the final LM-head projection."""
    return 2.0 * seq_len * config.d_model * config.vocab_size


def sequence_flops(config: ModelConfig, seq_len: int = 256,
                   top_k: int | None = None) -> FlopsBreakdown:
    """FLOPs required to process one sequence of ``seq_len`` tokens.

    For MoE configurations each token only executes ``top_k`` experts, so the
    expert-FFN term scales with ``top_k`` — not with ``num_experts``.  This is
    the mechanism behind the flat MoE curves of Figure 2.
    """
    k = top_k if top_k is not None else config.top_k
    attn_layers = config.num_encoder_layers + 2 * config.num_decoder_layers
    attention = attn_layers * attention_flops(config, seq_len)

    dense_ffn_blocks = config.num_dense_ffn_blocks("all")
    moe_blocks = config.num_moe_blocks("all")
    dense = dense_ffn_blocks * ffn_flops(config, seq_len)
    experts = moe_blocks * k * ffn_flops(config, seq_len)
    gates = moe_blocks * gate_flops(config, seq_len)
    embedding = logits_flops(config, seq_len)
    return FlopsBreakdown(attention=attention, dense_ffn=dense, expert_ffn=experts,
                          gate=gates, embedding=embedding)


def gflops_per_sequence(config: ModelConfig, seq_len: int = 256,
                        top_k: int | None = None) -> float:
    """Convenience wrapper returning Figure 2's metric (GFLOPs/sequence)."""
    return sequence_flops(config, seq_len, top_k=top_k).total / 1e9


def moe_block_flops(config: ModelConfig, tokens: int, num_active_experts: int | None = None) -> float:
    """FLOPs of a single MoE block execution over ``tokens`` routed tokens.

    ``num_active_experts`` defaults to ``config.top_k`` (per token).  When the
    Figure 14 sweep manually activates more experts per token, each token's
    representation is processed by that many experts.
    """
    k = num_active_experts if num_active_experts is not None else config.top_k
    return gate_flops(config, tokens) + k * ffn_flops(config, tokens)
