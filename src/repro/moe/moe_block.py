"""The conventional (sparse) MoE block.

A conventional MoE block couples a gate function and an expert pool: the
gate *selects* which experts to activate for the current block, and the
expert pool *executes* them.  Because the selection is input-dependent, the
two stages are inherently sequential — this is exactly the data dependency
the pre-gate function of :mod:`repro.core` removes.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..tensor import Module, Tensor
from .expert import ExpertPool
from .gating import Router, RoutingDecision


class MoEBlock(Module):
    """Gate + expert pool, evaluated sequentially (Figure 1b).

    Parameters
    ----------
    d_model / d_ff:
        Token representation and expert hidden dimensions.
    num_experts:
        Number of experts in the pool.
    top_k:
        Experts activated per token.
    block_index:
        Position of this MoE block in the model's MoE-block ordering; the
        serving system uses it to attribute expert migrations.
    """

    def __init__(self, d_model: int, d_ff: int, num_experts: int, top_k: int = 1,
                 block_index: int = 0, activation: str = "relu",
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.d_model = d_model
        self.d_ff = d_ff
        self.num_experts = num_experts
        self.top_k = top_k
        self.block_index = block_index
        self.gate = Router(d_model, num_experts, top_k=top_k, rng=rng)
        self.experts = ExpertPool(num_experts, d_model, d_ff, activation=activation, rng=rng)

    def forward(self, hidden: Tensor, top_k: Optional[int] = None) -> Tuple[Tensor, RoutingDecision]:
        """Run expert selection followed by expert execution.

        ``hidden`` has shape ``(tokens, d_model)``; callers flatten the
        batch/sequence dimensions before dispatching to the MoE block.

        Returns the block output and the :class:`RoutingDecision`, which the
        serving layer consumes as the expert-activation trace.
        """
        routing = self.gate(hidden, top_k=top_k)
        output = self.experts(hidden, routing)
        return output, routing

    def execute_with_routing(self, hidden: Tensor, routing: RoutingDecision) -> Tensor:
        """Expert-execution stage only, with an externally supplied routing.

        Used by the pre-gated architecture where the routing decision for
        this block was produced by the *previous* block's pre-gate function.
        """
        return self.experts(hidden, routing)
