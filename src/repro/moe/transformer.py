"""Switch-Transformer encoder-decoder model (conventional MoE baseline).

This is the functional (numpy) implementation of the baseline model the
paper builds on: a T5-style encoder-decoder in which every
``moe_layer_frequency``-th FFN layer is replaced by a sparse MoE block
(Figure 1).  It supports teacher-forced training (for the fine-tuning
experiments of Table II / Figure 13) and incremental greedy decoding with
key/value caches (for the functional end-to-end examples).

The paper-scale configurations are never instantiated with real weights —
the serving/performance experiments use the analytic hardware model in
:mod:`repro.system` — but the model code is configuration-driven so tiny
and paper-scale configs share the same structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..tensor import (
    Dropout,
    Embedding,
    FeedForward,
    KVCache,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    MultiHeadAttention,
    Tensor,
    no_grad,
    use_backend,
)
from .configs import ModelConfig
from .gating import RoutingDecision
from .moe_block import MoEBlock


@dataclass
class RoutingTraceEntry:
    """One MoE block evaluation recorded during a forward pass."""

    stack: str                      # "encoder" or "decoder"
    layer_index: int                # transformer-block index within the stack
    moe_block_index: int            # index among the MoE blocks of that stack
    decision: RoutingDecision

    @property
    def activated_experts(self) -> List[int]:
        return list(self.decision.activated_experts)


@dataclass
class Seq2SeqOutput:
    """Output bundle of a forward pass."""

    logits: Tensor
    aux_loss: Tensor
    routing_trace: List[RoutingTraceEntry] = field(default_factory=list)
    encoder_hidden: Optional[Tensor] = None


class EncoderBlock(Module):
    """Transformer encoder block: self-attention + (dense FFN | MoE block)."""

    def __init__(self, config: ModelConfig, layer_index: int, use_moe: bool,
                 moe_block_index: int = 0, dropout: float = 0.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.layer_index = layer_index
        self.use_moe = use_moe
        self.moe_block_index = moe_block_index
        self.attention = MultiHeadAttention(config.d_model, config.num_heads, causal=False, rng=rng)
        self.attn_norm = LayerNorm(config.d_model)
        self.ffn_norm = LayerNorm(config.d_model)
        self.dropout = Dropout(dropout, rng=rng)
        if use_moe:
            self.moe = MoEBlock(config.d_model, config.d_ff, config.num_experts,
                                top_k=config.top_k, block_index=moe_block_index, rng=rng)
        else:
            self.ffn = FeedForward(config.d_model, config.d_ff, rng=rng)

    def forward(self, hidden: Tensor, padding_mask: Optional[np.ndarray] = None,
                top_k: Optional[int] = None) -> Tuple[Tensor, Optional[RoutingDecision]]:
        attn_out = self.attention(self.attn_norm(hidden), key_padding_mask=padding_mask)
        hidden = hidden + self.dropout(attn_out)

        normed = self.ffn_norm(hidden)
        routing = None
        if self.use_moe:
            batch, length, dim = normed.shape
            flat = normed.reshape(batch * length, dim)
            moe_out, routing = self.moe(flat, top_k=top_k)
            ffn_out = moe_out.reshape(batch, length, dim)
        else:
            ffn_out = self.ffn(normed)
        hidden = hidden + self.dropout(ffn_out)
        return hidden, routing


class DecoderBlock(Module):
    """Transformer decoder block: causal self-attention + cross-attention + FFN/MoE."""

    def __init__(self, config: ModelConfig, layer_index: int, use_moe: bool,
                 moe_block_index: int = 0, dropout: float = 0.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.layer_index = layer_index
        self.use_moe = use_moe
        self.moe_block_index = moe_block_index
        self.self_attention = MultiHeadAttention(config.d_model, config.num_heads, causal=True, rng=rng)
        self.cross_attention = MultiHeadAttention(config.d_model, config.num_heads, causal=False, rng=rng)
        self.self_norm = LayerNorm(config.d_model)
        self.cross_norm = LayerNorm(config.d_model)
        self.ffn_norm = LayerNorm(config.d_model)
        self.dropout = Dropout(dropout, rng=rng)
        if use_moe:
            self.moe = MoEBlock(config.d_model, config.d_ff, config.num_experts,
                                top_k=config.top_k, block_index=moe_block_index, rng=rng)
        else:
            self.ffn = FeedForward(config.d_model, config.d_ff, rng=rng)

    def forward(
        self,
        hidden: Tensor,
        encoder_hidden: Tensor,
        encoder_padding_mask: Optional[np.ndarray] = None,
        kv_cache: Optional[KVCache] = None,
        top_k: Optional[int] = None,
    ) -> Tuple[Tensor, Optional[RoutingDecision]]:
        self_out = self.self_attention(self.self_norm(hidden), kv_cache=kv_cache)
        hidden = hidden + self.dropout(self_out)

        cross_out = self.cross_attention(
            self.cross_norm(hidden), key=encoder_hidden, value=encoder_hidden,
            key_padding_mask=encoder_padding_mask,
        )
        hidden = hidden + self.dropout(cross_out)

        normed = self.ffn_norm(hidden)
        routing = None
        if self.use_moe:
            batch, length, dim = normed.shape
            flat = normed.reshape(batch * length, dim)
            moe_out, routing = self.moe(flat, top_k=top_k)
            ffn_out = moe_out.reshape(batch, length, dim)
        else:
            ffn_out = self.ffn(normed)
        hidden = hidden + self.dropout(ffn_out)
        return hidden, routing


def _moe_layer_positions(num_layers: int, frequency: int) -> List[int]:
    """Indices of transformer blocks whose FFN is an MoE block.

    Switch-Transformer replaces every ``frequency``-th FFN starting from the
    ``frequency - 1``-th block (so frequency 2 gives blocks 1, 3, 5, ...).
    """
    if frequency < 1:
        raise ValueError("moe_layer_frequency must be >= 1")
    return [i for i in range(num_layers) if (i + 1) % frequency == 0]


class SwitchTransformer(Module):
    """Conventional Switch-Transformer encoder-decoder model.

    Parameters
    ----------
    config:
        A :class:`~repro.moe.configs.ModelConfig`.  When ``config.is_moe`` is
        False this degenerates to the dense T5 baseline.
    dropout:
        Dropout rate applied to residual branches during training.
    seed:
        Seed for the model's private RNG so weight initialisation is
        reproducible across the conventional vs pre-gated comparison.
    """

    def __init__(self, config: ModelConfig, dropout: float = 0.0, seed: int = 0) -> None:
        super().__init__()
        self.config = config
        rng = np.random.default_rng(seed)
        self.embedding = Embedding(config.vocab_size, config.d_model, rng=rng)
        self.encoder_moe_positions = _moe_layer_positions(
            config.num_encoder_layers, config.moe_layer_frequency) if config.is_moe else []
        self.decoder_moe_positions = _moe_layer_positions(
            config.num_decoder_layers, config.moe_layer_frequency) if config.is_moe else []

        encoder_blocks = []
        moe_idx = 0
        for i in range(config.num_encoder_layers):
            use_moe = i in self.encoder_moe_positions
            encoder_blocks.append(EncoderBlock(config, i, use_moe, moe_block_index=moe_idx,
                                               dropout=dropout, rng=rng))
            moe_idx += int(use_moe)
        self.encoder_blocks = ModuleList(encoder_blocks)
        self.encoder_final_norm = LayerNorm(config.d_model)

        decoder_blocks = []
        moe_idx = 0
        for i in range(config.num_decoder_layers):
            use_moe = i in self.decoder_moe_positions
            decoder_blocks.append(DecoderBlock(config, i, use_moe, moe_block_index=moe_idx,
                                               dropout=dropout, rng=rng))
            moe_idx += int(use_moe)
        self.decoder_blocks = ModuleList(decoder_blocks)
        self.decoder_final_norm = LayerNorm(config.d_model)

        self.lm_head = Linear(config.d_model, config.vocab_size, bias=False, rng=rng)

    # ------------------------------------------------------------------
    # Encoder / decoder passes
    # ------------------------------------------------------------------
    def encode(self, input_ids: np.ndarray, padding_mask: Optional[np.ndarray] = None,
               trace: Optional[List[RoutingTraceEntry]] = None,
               top_k: Optional[int] = None) -> Tensor:
        hidden = self.embedding(input_ids)
        for block in self.encoder_blocks:
            hidden, routing = block(hidden, padding_mask=padding_mask, top_k=top_k)
            if routing is not None and trace is not None:
                trace.append(RoutingTraceEntry("encoder", block.layer_index,
                                               block.moe_block_index, routing))
        return self.encoder_final_norm(hidden)

    def decode(self, decoder_ids: np.ndarray, encoder_hidden: Tensor,
               encoder_padding_mask: Optional[np.ndarray] = None,
               kv_caches: Optional[List[KVCache]] = None,
               trace: Optional[List[RoutingTraceEntry]] = None,
               top_k: Optional[int] = None) -> Tensor:
        hidden = self.embedding(decoder_ids)
        for i, block in enumerate(self.decoder_blocks):
            cache = kv_caches[i] if kv_caches is not None else None
            hidden, routing = block(hidden, encoder_hidden,
                                    encoder_padding_mask=encoder_padding_mask,
                                    kv_cache=cache, top_k=top_k)
            if routing is not None and trace is not None:
                trace.append(RoutingTraceEntry("decoder", block.layer_index,
                                               block.moe_block_index, routing))
        hidden = self.decoder_final_norm(hidden)
        return self.lm_head(hidden)

    # ------------------------------------------------------------------
    def forward(self, input_ids: np.ndarray, decoder_ids: np.ndarray,
                input_padding_mask: Optional[np.ndarray] = None,
                top_k: Optional[int] = None) -> Seq2SeqOutput:
        """Teacher-forced forward pass returning logits and the routing trace."""
        trace: List[RoutingTraceEntry] = []
        encoder_hidden = self.encode(input_ids, padding_mask=input_padding_mask,
                                     trace=trace, top_k=top_k)
        logits = self.decode(decoder_ids, encoder_hidden,
                             encoder_padding_mask=input_padding_mask,
                             trace=trace, top_k=top_k)
        aux = Tensor(0.0)
        for entry in trace:
            aux = aux + entry.decision.aux_loss
        if trace:
            aux = aux * (1.0 / len(trace))
        return Seq2SeqOutput(logits=logits, aux_loss=aux, routing_trace=trace,
                             encoder_hidden=encoder_hidden)

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def greedy_decode(self, input_ids: np.ndarray, bos_id: int, eos_id: int,
                      max_new_tokens: int = 16,
                      input_padding_mask: Optional[np.ndarray] = None,
                      collect_trace: bool = False,
                      top_k: Optional[int] = None
                      ) -> Tuple[np.ndarray, List[List[RoutingTraceEntry]]]:
        """Greedy incremental decoding (one decoder iteration per output token).

        Returns the generated token ids (including the BOS prefix) and, if
        requested, the routing trace of every decoder iteration — the
        per-iteration expert-activation record consumed by the serving
        simulator.
        """
        input_ids = np.asarray(input_ids, dtype=np.int64)
        batch = input_ids.shape[0]
        traces: List[List[RoutingTraceEntry]] = []
        # Decode runs eagerly regardless of the active backend: every step
        # immediately demands concrete logits (argmax → next token), so the
        # lazy graph can never amortise — it only adds per-token record +
        # materialise overhead (measurably slower at batch decode sizes).
        with use_backend("eager"), no_grad():
            encoder_trace: List[RoutingTraceEntry] = [] if collect_trace else None
            encoder_hidden = self.encode(input_ids, padding_mask=input_padding_mask,
                                         trace=encoder_trace, top_k=top_k)
            if collect_trace and encoder_trace:
                traces.append(encoder_trace)

            kv_caches = [KVCache() for _ in range(self.config.num_decoder_layers)]
            # Preallocated output buffer: the whole batch decodes in one
            # tensor step per token, with no per-token reallocation.
            generated = np.full((batch, max_new_tokens + 1), eos_id, dtype=np.int64)
            generated[:, 0] = bos_id
            length = 1
            finished = np.zeros(batch, dtype=bool)
            for _ in range(max_new_tokens):
                step_trace: List[RoutingTraceEntry] = [] if collect_trace else None
                last_tokens = generated[:, length - 1:length]
                logits = self.decode(last_tokens, encoder_hidden,
                                     encoder_padding_mask=input_padding_mask,
                                     kv_caches=kv_caches, trace=step_trace, top_k=top_k)
                next_ids = np.argmax(logits.numpy()[:, -1, :], axis=-1)
                next_ids = np.where(finished, eos_id, next_ids)
                generated[:, length] = next_ids
                length += 1
                if collect_trace:
                    traces.append(step_trace)
                finished |= next_ids == eos_id
                if finished.all():
                    break
        return generated[:, :length], traces

    # ------------------------------------------------------------------
    def decoder_moe_block_count(self) -> int:
        return len(self.decoder_moe_positions)

    def encoder_moe_block_count(self) -> int:
        return len(self.encoder_moe_positions)
