"""Model configuration registry for Switch-Transformer and dense T5.

The registry covers every configuration the paper evaluates (Table I plus the
Switch-Base-256 point of Figure 12 and the Switch-XXL point of Figure 16),
along with the FLOPs-equivalent dense T5 models used in Figures 2 and 3.

Two kinds of configurations exist:

* **Paper-scale** configurations (``switch_base_8`` ... ``switch_xxl``) carry
  the real model dimensions and are used for parameter-count arithmetic, the
  capacity model and the hardware performance model.  They are never
  instantiated as numpy weights (Switch-Large alone would need >100 GB).
* **Tiny** configurations (``tiny_*``) are functional, trainable models used
  for the accuracy experiments (Table II, Figure 13) and for integration
  tests.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

#: Bytes per parameter.  Table I's capacity column corresponds to 4 bytes per
#: parameter (fp32 master weights); Switch-XXL is served quantised.
BYTES_FP32 = 4
BYTES_FP16 = 2
BYTES_INT8 = 1
#: Effective bytes/param of the quantised Switch-XXL deployment: the paper
#: reports 395B parameters and 217GB of model capacity after quantisation.
BYTES_XXL_QUANTISED = 217e9 / 395e9


@dataclass(frozen=True)
class ModelConfig:
    """Architecture hyper-parameters of an (MoE) encoder-decoder transformer.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"switch_base_128"``.
    d_model:
        Embedding / hidden dimension.
    d_ff:
        Inner dimension of each FFN / expert layer.
    num_heads:
        Attention heads.
    num_encoder_layers / num_decoder_layers:
        Transformer block counts for encoder and decoder.
    num_experts:
        Experts per MoE block (1 means a dense model: the FFN is the single
        "expert" and no gate exists).
    top_k:
        Number of experts activated per token (Switch uses top-1).
    moe_layer_frequency:
        Every ``moe_layer_frequency``-th FFN layer is an MoE block
        (Switch-Transformer replaces every other FFN, i.e. frequency 2).
    vocab_size:
        Vocabulary size (T5/Switch use 32k sentencepiece).
    bytes_per_param:
        Precision used when computing deployment capacity.
    """

    name: str
    d_model: int
    d_ff: int
    num_heads: int
    num_encoder_layers: int
    num_decoder_layers: int
    num_experts: int = 1
    top_k: int = 1
    moe_layer_frequency: int = 2
    vocab_size: int = 32128
    d_kv: Optional[int] = None
    bytes_per_param: float = BYTES_FP32
    label: str = ""

    # ------------------------------------------------------------------
    # Derived structural quantities
    # ------------------------------------------------------------------
    @property
    def is_moe(self) -> bool:
        return self.num_experts > 1

    @property
    def head_dim(self) -> int:
        return self.d_kv if self.d_kv is not None else self.d_model // self.num_heads

    @property
    def num_layers(self) -> int:
        """Total number of transformer blocks (encoder + decoder)."""
        return self.num_encoder_layers + self.num_decoder_layers

    def num_moe_blocks(self, part: str = "all") -> int:
        """Number of FFN positions that are MoE blocks.

        Parameters
        ----------
        part:
            ``"encoder"``, ``"decoder"`` or ``"all"``.
        """
        if not self.is_moe:
            return 0
        counts = {
            "encoder": self.num_encoder_layers // self.moe_layer_frequency,
            "decoder": self.num_decoder_layers // self.moe_layer_frequency,
        }
        counts["all"] = counts["encoder"] + counts["decoder"]
        if part not in counts:
            raise ValueError(f"part must be one of {sorted(counts)}, got {part!r}")
        return counts[part]

    def num_dense_ffn_blocks(self, part: str = "all") -> int:
        """Number of FFN positions that remain dense FFNs."""
        totals = {
            "encoder": self.num_encoder_layers,
            "decoder": self.num_decoder_layers,
            "all": self.num_layers,
        }
        return totals[part] - self.num_moe_blocks(part)

    # ------------------------------------------------------------------
    # Parameter counting
    # ------------------------------------------------------------------
    @property
    def attention_params_per_layer(self) -> int:
        """Parameters of one multi-head attention (Q, K, V, O projections)."""
        return 4 * self.d_model * self.num_heads * self.head_dim

    @property
    def ffn_params(self) -> int:
        """Parameters of one dense FFN (= one expert)."""
        return 2 * self.d_model * self.d_ff

    @property
    def expert_params(self) -> int:
        """Parameters of a single expert layer (identical to a dense FFN)."""
        return self.ffn_params

    @property
    def gate_params(self) -> int:
        """Parameters of one gate (router) function: a d_model x E projection."""
        return self.d_model * self.num_experts if self.is_moe else 0

    @property
    def layernorm_params_per_layer(self) -> int:
        # Two norms per encoder block, three per decoder block (self-attn,
        # cross-attn, FFN); we approximate with 2 scale+shift pairs for the
        # encoder and 3 for the decoder when counting exactly in
        # capacity.py.  Here we expose the per-norm size.
        return 2 * self.d_model

    @property
    def embedding_params(self) -> int:
        """Shared input/output token embedding."""
        return self.vocab_size * self.d_model

    def moe_params(self) -> int:
        """Total MoE parameters: all experts plus all gate functions."""
        if not self.is_moe:
            return 0
        blocks = self.num_moe_blocks("all")
        return blocks * (self.num_experts * self.expert_params + self.gate_params)

    def non_moe_params(self) -> int:
        """Total dense (always-resident) parameters."""
        attention = 0
        norms = 0
        # Encoder blocks: self-attention + 2 norms.
        attention += self.num_encoder_layers * self.attention_params_per_layer
        norms += self.num_encoder_layers * 2 * (2 * self.d_model)
        # Decoder blocks: self-attention + cross-attention + 3 norms.
        attention += self.num_decoder_layers * 2 * self.attention_params_per_layer
        norms += self.num_decoder_layers * 3 * (2 * self.d_model)
        dense_ffn = self.num_dense_ffn_blocks("all") * self.ffn_params
        final_norms = 2 * (2 * self.d_model)
        return attention + norms + dense_ffn + final_norms + self.embedding_params

    def total_params(self) -> int:
        return self.moe_params() + self.non_moe_params()

    # ------------------------------------------------------------------
    # Byte-level capacity
    # ------------------------------------------------------------------
    def expert_bytes(self) -> int:
        """Size in bytes of a single expert's parameters."""
        return int(self.expert_params * self.bytes_per_param)

    def moe_bytes(self) -> int:
        return int(self.moe_params() * self.bytes_per_param)

    def non_moe_bytes(self) -> int:
        return int(self.non_moe_params() * self.bytes_per_param)

    def total_bytes(self) -> int:
        return int(self.total_params() * self.bytes_per_param)

    # ------------------------------------------------------------------
    def scaled(self, **overrides) -> "ModelConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, ModelConfig] = {}


def register(config: ModelConfig) -> ModelConfig:
    if config.name in _REGISTRY:
        raise ValueError(f"duplicate model config {config.name!r}")
    _REGISTRY[config.name] = config
    return config


def get_config(name: str) -> ModelConfig:
    """Look up a configuration by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown model config {name!r}; known: {sorted(_REGISTRY)}") from None


def list_configs() -> Dict[str, ModelConfig]:
    """Return a copy of the full registry."""
    return dict(_REGISTRY)


# --- Paper-scale Switch-Transformer configurations (Table I) ------------
# Switch-Base mirrors T5-Base: d_model=768, d_ff=3072, 12 enc + 12 dec
# layers.  The paper's Table I reports "Layers: 12" meaning 12 MoE layers
# (every other FFN across the 24 transformer blocks).
SWITCH_BASE_8 = register(ModelConfig(
    name="switch_base_8", label="Switch-Base (8 experts)",
    d_model=768, d_ff=3072, num_heads=12,
    num_encoder_layers=12, num_decoder_layers=12,
    num_experts=8, top_k=1,
))

SWITCH_BASE_64 = register(SWITCH_BASE_8.scaled(
    name="switch_base_64", label="Switch-Base (64 experts)", num_experts=64))

SWITCH_BASE_128 = register(SWITCH_BASE_8.scaled(
    name="switch_base_128", label="Switch-Base (128 experts)", num_experts=128))

SWITCH_BASE_256 = register(SWITCH_BASE_8.scaled(
    name="switch_base_256", label="Switch-Base (256 experts)", num_experts=256))

# Switch-Large mirrors T5-Large: d_model=1024, d_ff=4096, 24+24 layers,
# 16 heads, 128 experts (24 MoE layers -> Table I "Layers: 24").
SWITCH_LARGE_128 = register(ModelConfig(
    name="switch_large_128", label="Switch-Large (128 experts)",
    d_model=1024, d_ff=4096, num_heads=16,
    num_encoder_layers=24, num_decoder_layers=24,
    num_experts=128, top_k=1,
))

# Switch-XXL (Figure 16): same layer structure as Switch-Large but the
# feature dimension and head count scaled 4x, ~395B parameters, served
# quantised (217 GB).
SWITCH_XXL = register(ModelConfig(
    name="switch_xxl", label="Switch-XXL (128 experts)",
    d_model=4096, d_ff=16384, num_heads=64,
    num_encoder_layers=24, num_decoder_layers=24,
    num_experts=128, top_k=1,
    bytes_per_param=BYTES_XXL_QUANTISED,
))

# --- Dense T5 baselines (single "expert", no gate) -----------------------
T5_BASE = register(ModelConfig(
    name="t5_base", label="T5-Base (dense)",
    d_model=768, d_ff=3072, num_heads=12,
    num_encoder_layers=12, num_decoder_layers=12,
    num_experts=1,
))

T5_LARGE = register(ModelConfig(
    name="t5_large", label="T5-Large (dense)",
    d_model=1024, d_ff=4096, num_heads=16,
    num_encoder_layers=24, num_decoder_layers=24,
    num_experts=1,
))

# --- Tiny functional configurations (trainable on CPU) -------------------
TINY_DENSE = register(ModelConfig(
    name="tiny_dense", label="Tiny dense (functional tests)",
    d_model=32, d_ff=64, num_heads=4,
    num_encoder_layers=2, num_decoder_layers=2,
    num_experts=1, vocab_size=64, bytes_per_param=BYTES_FP32,
))

TINY_MOE_4 = register(ModelConfig(
    name="tiny_moe_4", label="Tiny MoE (4 experts)",
    d_model=32, d_ff=64, num_heads=4,
    num_encoder_layers=2, num_decoder_layers=4,
    num_experts=4, top_k=1, moe_layer_frequency=1,
    vocab_size=64, bytes_per_param=BYTES_FP32,
))

TINY_MOE_8 = register(ModelConfig(
    name="tiny_moe_8", label="Tiny MoE (8 experts)",
    d_model=32, d_ff=64, num_heads=4,
    num_encoder_layers=2, num_decoder_layers=4,
    num_experts=8, top_k=1, moe_layer_frequency=1,
    vocab_size=64, bytes_per_param=BYTES_FP32,
))

SWITCH_MINI_8 = register(ModelConfig(
    name="switch_mini_8", label="Switch-Mini (8 experts)",
    d_model=64, d_ff=128, num_heads=4,
    num_encoder_layers=4, num_decoder_layers=4,
    num_experts=8, top_k=1, moe_layer_frequency=1,
    vocab_size=128, bytes_per_param=BYTES_FP32,
))

#: Configurations evaluated in the latency/throughput figures (Figs. 10-12).
PERFORMANCE_CONFIGS = (
    "switch_base_8",
    "switch_base_64",
    "switch_base_128",
    "switch_large_128",
)

#: Configurations evaluated in Table I.
TABLE1_CONFIGS = (
    "switch_base_8",
    "switch_base_64",
    "switch_base_128",
    "switch_large_128",
)
